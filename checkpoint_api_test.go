package searchseizure

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
)

// goldenTinyFingerprint is the tinyConfig() faults-off dataset fingerprint
// (the same configuration and constant as internal/core's golden). Every
// resume path below must converge to it — a checkpointed study is
// bit-identical to an uninterrupted one.
const goldenTinyFingerprint = 0xf6f361ae7ec6499d

func mustGolden(t *testing.T, s *Study) {
	t.Helper()
	data, err := s.RunContext(context.Background())
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if got := data.Fingerprint(); uint64(got) != goldenTinyFingerprint {
		t.Fatalf("fingerprint %#x != golden %#x", got, uint64(goldenTinyFingerprint))
	}
}

// TestCheckpointResumeAfterCancellation is the paved-path crash story:
// a study is cancelled mid-run (day-granular, like a drained SIGTERM), a
// brand-new process opens the same checkpoint directory, and the finished
// dataset is bit-identical to an uninterrupted run.
func TestCheckpointResumeAfterCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	s, err := New(tinyConfig(), WithCheckpoint(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel at a mid-run day boundary; the checkpoint hook chains after
	// this one, so the snapshot for the cancellation day still lands.
	cut := s.World.Sim.Days() / 2
	s.World.OnDayEnd = func(d simclock.Day) {
		if int(d)+1 == cut {
			cancel()
		}
	}
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	resumed, err := New(tinyConfig(), WithCheckpoint(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	mustGolden(t, resumed)
	if got := int(resumed.World.Snapshot().NextDay); got != resumed.World.Sim.Days() {
		t.Fatalf("resumed study stopped at day %d", got)
	}
}

// TestCheckpointResumeAtDayZero: a checkpoint written before any day ran
// (e.g. a SIGTERM during warm-up) resumes from day 0 and still converges.
func TestCheckpointResumeAtDayZero(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	s, err := New(tinyConfig(), WithCheckpoint(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	resumed, err := New(tinyConfig(), WithCheckpoint(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	mustGolden(t, resumed)
}

// TestCheckpointResumeWhenComplete: the final snapshot of a finished study
// restores into a world with no days left; RunContext finalizes straight
// away and the dataset still carries the golden fingerprint.
func TestCheckpointResumeWhenComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	s, err := New(tinyConfig(), WithCheckpoint(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	mustGolden(t, s)

	resumed, err := New(tinyConfig(), WithCheckpoint(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	mustGolden(t, resumed)
}

// TestCheckpointConfigMismatchSurfaces: pointing a differently-seeded study
// at an existing checkpoint directory is a usage error, not a silent
// restart.
func TestCheckpointConfigMismatchSurfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	s, err := New(tinyConfig(), WithCheckpoint(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	other := tinyConfig()
	other.Seed++
	mismatched, err := New(other, WithCheckpoint(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mismatched.RunContext(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "config") {
		t.Fatalf("got %v, want a config-mismatch restore error", err)
	}
}

func TestWithCheckpointRejectsEmptyDir(t *testing.T) {
	if _, err := New(tinyConfig(), WithCheckpoint("", 1)); err == nil {
		t.Fatal("New accepted an empty checkpoint directory")
	}
}

// TestCheckpointSurvivesKill9 is the headline durability claim, tested for
// real: a child process running a checkpointed study is killed with
// SIGKILL — no handler, no flush, no goodbye — mid-study, and a fresh
// process over the same directory finishes the study bit-identically.
func TestCheckpointSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if os.Getenv("SSCKPT_CHILD") != "" {
		t.Skip("child guard")
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=^TestCheckpointKill9Child$", "-test.v")
	cmd.Env = append(os.Environ(), "SSCKPT_CHILD=1", "SSCKPT_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the child to commit at least two snapshots, then kill -9 —
	// possibly mid-write of a third, which recovery must shrug off.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if n, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt")); len(n) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child produced no checkpoints within the deadline")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	resumed, err := New(tinyConfig(), WithCheckpoint(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	mustGolden(t, resumed)
}

// TestCheckpointKill9Child is the sacrificial process for the kill -9
// tests. It only runs when a parent execs it with the guard env set; the
// optional SSCKPT_PROFILE env selects a fault profile.
func TestCheckpointKill9Child(t *testing.T) {
	if os.Getenv("SSCKPT_CHILD") == "" {
		t.Skip("only runs as the kill -9 child")
	}
	opts := []Option{WithCheckpoint(os.Getenv("SSCKPT_DIR"), 1)}
	if p := os.Getenv("SSCKPT_PROFILE"); p != "" {
		opts = append(opts, WithFaults(p))
	}
	s, err := New(tinyConfig(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCrashRecoveryMatrix is the CI crash-recovery job: a study
// under the matrix fault profile (FAULT_PROFILE, default moderate) is
// killed with SIGKILL at a day chosen by hashing the seed and profile — so
// the kill point wanders across code changes instead of fossilising on a
// hand-picked day — then a fresh process resumes from the surviving
// snapshots and its fingerprint must equal an uninterrupted run's.
func TestCheckpointCrashRecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if os.Getenv("SSCKPT_CHILD") != "" {
		t.Skip("child guard")
	}
	profile := os.Getenv("FAULT_PROFILE")
	if profile == "" {
		profile = "moderate"
	}
	cfg := tinyConfig()
	base, err := New(cfg, WithFaults(profile))
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	days := base.World.Sim.Days()

	h := fnv.New64a()
	fmt.Fprintf(h, "crash-recovery/%d/%s", cfg.Seed, profile)
	killDay := 1 + int(h.Sum64()%uint64(days-1))
	t.Logf("profile %s: killing after the day-%d snapshot lands", profile, killDay)

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCheckpointKill9Child$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SSCKPT_CHILD=1", "SSCKPT_DIR="+dir, "SSCKPT_PROFILE="+profile)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	target := filepath.Join(dir, fmt.Sprintf("ckpt-%08d.ckpt", killDay))
	deadline := time.Now().Add(3 * time.Minute)
	for {
		if _, err := os.Stat(target); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child never reached day %d within the deadline", killDay)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	resumed, err := New(cfg, WithFaults(profile), WithCheckpoint(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("resumed fingerprint %#x != uninterrupted %#x",
			got.Fingerprint(), want.Fingerprint())
	}
}
