package searchseizure

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

func boolp(b bool) *bool { return &b }

// TestStudySpecValidateTable is the field-level contract the HTTP 400s are
// built on: every bad field is reported with its stable machine-readable
// code, and multiple problems surface in one pass.
func TestStudySpecValidateTable(t *testing.T) {
	cases := []struct {
		name string
		spec StudySpec
		want []FieldError // Field+Code only; empty means valid
	}{
		{"zero value is valid", StudySpec{}, nil},
		{"explicit defaults are valid",
			StudySpec{Preset: "test", Seed: 1, Faults: "off"}, nil},
		{"bench preset", StudySpec{Preset: "bench"}, nil},
		{"paper preset", StudySpec{Preset: "default"}, nil},
		{"moderate faults", StudySpec{Faults: "moderate"}, nil},
		{"capped days", StudySpec{Days: 7}, nil},
		{"negative seed", StudySpec{Seed: -1},
			[]FieldError{{Field: "seed", Code: CodeNegative}}},
		{"unknown fault profile", StudySpec{Faults: "catastrophic"},
			[]FieldError{{Field: "faults", Code: CodeUnknownProfile}}},
		{"negative days", StudySpec{Days: -3},
			[]FieldError{{Field: "days", Code: CodeNegative}}},
		{"unknown preset", StudySpec{Preset: "huge"},
			[]FieldError{{Field: "preset", Code: CodeUnknownPreset}}},
		{"negative scale", StudySpec{Scale: -0.5},
			[]FieldError{{Field: "scale", Code: CodeOutOfRange}}},
		{"negative terms", StudySpec{TermsPerVertical: -1},
			[]FieldError{{Field: "terms_per_vertical", Code: CodeNegative}}},
		{"negative slots", StudySpec{SlotsPerTerm: -9},
			[]FieldError{{Field: "slots_per_term", Code: CodeNegative}}},
		{"negative checkpoint cadence", StudySpec{CheckpointEvery: -1},
			[]FieldError{{Field: "checkpoint_every", Code: CodeNegative}}},
		{"multiple problems reported together",
			StudySpec{Preset: "huge", Seed: -5, Faults: "nope", Days: -1},
			[]FieldError{
				{Field: "preset", Code: CodeUnknownPreset},
				{Field: "seed", Code: CodeNegative},
				{Field: "faults", Code: CodeUnknownProfile},
				{Field: "days", Code: CodeNegative},
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if len(tc.want) == 0 {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("Validate() = %v (%T), want *ValidationError", err, err)
			}
			if len(verr.Fields) != len(tc.want) {
				t.Fatalf("got %d field errors %v, want %d", len(verr.Fields), verr.Fields, len(tc.want))
			}
			for i, want := range tc.want {
				got := verr.Fields[i]
				if got.Field != want.Field || got.Code != want.Code {
					t.Errorf("field error %d = {%s %s}, want {%s %s}",
						i, got.Field, got.Code, want.Field, want.Code)
				}
				if got.Message == "" {
					t.Errorf("field error %d has no message", i)
				}
			}
			if msg := err.Error(); msg == "" {
				t.Error("ValidationError has empty Error()")
			}
		})
	}
}

// TestStudySpecConfigMapping: the spec resolves onto the preset with every
// override applied, and a config rebuilt from the same spec is identical.
func TestStudySpecConfigMapping(t *testing.T) {
	spec := StudySpec{
		Preset:           "test",
		Seed:             42,
		Faults:           "moderate",
		Days:             9,
		TermsPerVertical: 3,
		SlotsPerTerm:     20,
		ExtendedTail:     boolp(false),
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	want := TestConfig()
	if cfg.Seed != 42 || cfg.MaxDays != 9 || cfg.TermsPerVertical != 3 ||
		cfg.SlotsPerTerm != 20 || cfg.ExtendedTail || !cfg.Faults.Enabled() {
		t.Fatalf("spec mapped to %+v", cfg)
	}
	if cfg.Scale != want.Scale {
		t.Fatalf("unset scale must keep the preset's (%g), got %g", want.Scale, cfg.Scale)
	}

	again, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if again.ConfigHash() != cfg.ConfigHash() {
		t.Fatal("the same spec resolved to two different configs")
	}

	if _, err := (StudySpec{Seed: -1}).Config(); err == nil {
		t.Fatal("Config() accepted an invalid spec")
	}
}

// TestStudySpecRoundTripsJSON: the spec is the wire format; omitted fields
// must stay omitted and the tri-state ExtendedTail must survive.
func TestStudySpecRoundTripsJSON(t *testing.T) {
	spec := StudySpec{Seed: 7, Faults: "severe", ExtendedTail: boolp(false)}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back StudySpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed != 7 || back.Faults != "severe" ||
		back.ExtendedTail == nil || *back.ExtendedTail {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	var sparse StudySpec
	if err := json.Unmarshal([]byte(`{"seed": 3}`), &sparse); err != nil {
		t.Fatal(err)
	}
	if sparse.ExtendedTail != nil {
		t.Fatal("absent extended_tail decoded non-nil")
	}
}

func TestStudySpecWithDefaults(t *testing.T) {
	d := (StudySpec{}).WithDefaults()
	if d.Preset != "test" || d.Faults != "off" || d.Seed != 1 {
		t.Fatalf("WithDefaults() = %+v", d)
	}
	keep := (StudySpec{Preset: "bench", Faults: "moderate", Seed: 9}).WithDefaults()
	if keep.Preset != "bench" || keep.Faults != "moderate" || keep.Seed != 9 {
		t.Fatalf("WithDefaults() clobbered explicit fields: %+v", keep)
	}
}

// TestNewFromSpecMatchesNew: the spec path and the config path build
// bit-identical studies — the no-drift guarantee the CLI and HTTP layers
// rely on.
func TestNewFromSpecMatchesNew(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := StudySpec{
		Seed:             1,
		Days:             3,
		TermsPerVertical: 3,
		SlotsPerTerm:     20,
		ExtendedTail:     boolp(false),
	}
	fromSpec, err := NewFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.MaxDays = 3
	fromCfg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := fromSpec.Run()
	b := fromCfg.Run()
	if a.DaysRun != 3 || a.DayFingerprint() != b.DayFingerprint() {
		t.Fatalf("spec study (%d days, %#x) != config study (%d days, %#x)",
			a.DaysRun, a.DayFingerprint(), b.DaysRun, b.DayFingerprint())
	}

	if _, err := NewFromSpec(StudySpec{Faults: "bogus"}); err == nil {
		t.Fatal("NewFromSpec accepted an invalid spec")
	}
}

func TestExperimentUnknownIDIsTyped(t *testing.T) {
	s := NewStudy(tinyConfig())
	_, err := s.Experiment("nope")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("Experiment(nope) = %v, want ErrUnknownExperiment", err)
	}
	if got := s.ListExperiments(); len(got) == 0 || got[0].ID == "" {
		t.Fatalf("ListExperiments() = %v", got)
	}
}

// TestSpecPresetsPinned is the preset-drift guard: every advertised preset
// validates, resolves through WithDefaults to a concrete Config, and
// hashes to a pinned value. A drifted hash means a preset silently changed
// shape — existing checkpoints taken under it stop resuming (RestoreSnapshot
// checks the hash), so a deliberate change must update both the pin here
// and the study docs.
func TestSpecPresetsPinned(t *testing.T) {
	pinned := map[string]string{
		"test":    "860763aaa157a115",
		"bench":   "8af150a8d35f89ab",
		"default": "982ceb749b843d62",
	}
	if len(pinned) != len(SpecPresets()) {
		t.Fatalf("pinned %d presets, SpecPresets advertises %d: pin the new one", len(pinned), len(SpecPresets()))
	}
	for _, name := range SpecPresets() {
		spec := StudySpec{Preset: name}
		if err := spec.Validate(); err != nil {
			t.Fatalf("preset %q does not validate: %v", name, err)
		}
		full := spec.WithDefaults()
		if full.Preset != name || full.Seed == 0 || full.Faults == "" {
			t.Fatalf("preset %q did not resolve defaults: %+v", name, full)
		}
		cfg, err := full.Config()
		if err != nil {
			t.Fatalf("preset %q does not map to a config: %v", name, err)
		}
		got := fmt.Sprintf("%016x", cfg.ConfigHash())
		if got != pinned[name] {
			t.Fatalf("preset %q config hash drifted: got %s, pinned %s (a deliberate change must re-pin here)", name, got, pinned[name])
		}
	}
}
