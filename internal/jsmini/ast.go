package jsmini

import "fmt"

// Statements.
type stmt interface{ isStmt() }

type varStmt struct {
	name string
	init expr // may be nil
}

type exprStmt struct{ e expr }

type ifStmt struct {
	cond expr
	then []stmt
	els  []stmt
}

type assignStmt struct {
	target expr // identExpr or memberExpr or indexExpr
	op     string
	value  expr
}

func (varStmt) isStmt()    {}
func (exprStmt) isStmt()   {}
func (ifStmt) isStmt()     {}
func (assignStmt) isStmt() {}

// Expressions.
type expr interface{ isExpr() }

type strLit struct{ v string }
type numLit struct{ v float64 }
type identExpr struct{ name string }
type memberExpr struct {
	obj  expr
	name string
}
type indexExpr struct {
	obj expr
	idx expr
}
type callExpr struct {
	fn   expr
	args []expr
}
type binExpr struct {
	op   string
	l, r expr
}
type unaryExpr struct {
	op string
	e  expr
}
type condExpr struct {
	cond, then, els expr
}
type funcLit struct {
	params []string
	body   []stmt
}

func (strLit) isExpr()     {}
func (numLit) isExpr()     {}
func (identExpr) isExpr()  {}
func (memberExpr) isExpr() {}
func (indexExpr) isExpr()  {}
func (callExpr) isExpr()   {}
func (binExpr) isExpr()    {}
func (unaryExpr) isExpr()  {}
func (condExpr) isExpr()   {}
func (funcLit) isExpr()    {}

type parser struct {
	toks []token
	pos  int
}

func parse(src string) ([]stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []stmt
	for !p.at(tokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokKind, text string) bool {
	t := p.peek()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	t := p.peek()
	return token{}, fmt.Errorf("jsmini: parse error at %d: want %q, got %q", t.pos, text, t.text)
}

func (p *parser) statement() (stmt, error) {
	t := p.peek()
	switch {
	case t.kind == tokIdent && t.text == "var":
		p.next()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		var init expr
		if p.accept(tokPunct, "=") {
			init, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		p.accept(tokPunct, ";")
		return varStmt{name: name.text, init: init}, nil
	case t.kind == tokIdent && t.text == "if":
		return p.ifStatement()
	case t.kind == tokPunct && t.text == ";":
		p.next()
		return exprStmt{e: strLit{}}, nil
	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if op := p.peek(); op.kind == tokPunct && (op.text == "=" || op.text == "+=") {
			p.next()
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.accept(tokPunct, ";")
			switch e.(type) {
			case identExpr, memberExpr, indexExpr:
				return assignStmt{target: e, op: op.text, value: v}, nil
			}
			return nil, fmt.Errorf("jsmini: invalid assignment target at %d", op.pos)
		}
		p.accept(tokPunct, ";")
		return exprStmt{e: e}, nil
	}
}

func (p *parser) ifStatement() (stmt, error) {
	p.next() // "if"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	var els []stmt
	if p.at(tokIdent, "else") {
		p.next()
		if p.at(tokIdent, "if") {
			s, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			els = []stmt{s}
		} else {
			els, err = p.blockOrSingle()
			if err != nil {
				return nil, err
			}
		}
	}
	return ifStmt{cond: cond, then: then, els: els}, nil
}

func (p *parser) blockOrSingle() ([]stmt, error) {
	if p.accept(tokPunct, "{") {
		var stmts []stmt
		for !p.accept(tokPunct, "}") {
			if p.at(tokEOF, "") {
				return nil, fmt.Errorf("jsmini: unterminated block")
			}
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, s)
		}
		return stmts, nil
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []stmt{s}, nil
}

// expression parses with precedence: ternary > || > && > equality >
// relational > additive > multiplicative > unary > postfix (call, member,
// index) > primary.
func (p *parser) expression() (expr, error) { return p.ternary() }

func (p *parser) ternary() (expr, error) {
	cond, err := p.or()
	if err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, "?") {
		return cond, nil
	}
	then, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	els, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return condExpr{cond: cond, then: then, els: els}, nil
}

func (p *parser) binaryLevel(ops []string, sub func() (expr, error)) (expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(tokPunct, op) {
				p.next()
				r, err := sub()
				if err != nil {
					return nil, err
				}
				l = binExpr{op: op, l: l, r: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) or() (expr, error) {
	return p.binaryLevel([]string{"||"}, p.and)
}
func (p *parser) and() (expr, error) {
	return p.binaryLevel([]string{"&&"}, p.equality)
}
func (p *parser) equality() (expr, error) {
	return p.binaryLevel([]string{"===", "!==", "==", "!="}, p.relational)
}
func (p *parser) relational() (expr, error) {
	return p.binaryLevel([]string{"<=", ">=", "<", ">"}, p.additive)
}
func (p *parser) additive() (expr, error) {
	return p.binaryLevel([]string{"+", "-"}, p.multiplicative)
}
func (p *parser) multiplicative() (expr, error) {
	return p.binaryLevel([]string{"*", "/", "%"}, p.unary)
}

func (p *parser) unary() (expr, error) {
	if p.at(tokPunct, "!") || p.at(tokPunct, "-") {
		op := p.next().text
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: op, e: e}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "."):
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			e = memberExpr{obj: e, name: name.text}
		case p.accept(tokPunct, "["):
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			e = indexExpr{obj: e, idx: idx}
		case p.accept(tokPunct, "("):
			var args []expr
			for !p.accept(tokPunct, ")") {
				if len(args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			e = callExpr{fn: e, args: args}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokString:
		p.next()
		return strLit{v: t.text}, nil
	case t.kind == tokNumber:
		p.next()
		var v float64
		fmt.Sscanf(t.text, "%g", &v)
		return numLit{v: v}, nil
	case t.kind == tokIdent && t.text == "function":
		return p.funcLiteral()
	case t.kind == tokIdent:
		p.next()
		return identExpr{name: t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("jsmini: unexpected token %q at %d", t.text, t.pos)
	}
}

// funcLiteral parses `function(params){ body }`. Named function statements
// are not needed by the cloaking corpus; anonymous IIFEs are.
func (p *parser) funcLiteral() (expr, error) {
	p.next() // "function"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.accept(tokPunct, ")") {
		if len(params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		params = append(params, name.text)
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var body []stmt
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, fmt.Errorf("jsmini: unterminated function body")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return funcLit{params: params, body: body}, nil
}
