package jsmini

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// Element is a DOM element created by a script (createElement) or targeted
// by it. Only the attributes cloaking detection cares about are modelled.
type Element struct {
	Tag      string
	Attrs    map[string]string
	Appended bool // true once passed to appendChild
}

// Page is the host environment a script runs against, and accumulates the
// script's observable effects.
type Page struct {
	// Inputs.
	URL      string // page URL (document.location)
	Referrer string // document.referrer
	// Effects.
	Redirect string     // destination of window.location assignment/replace
	Writes   []string   // arguments of document.write, in order
	Created  []*Element // elements created via document.createElement
	Cookies  []string   // values assigned to document.cookie
}

// AppendedElements returns the created elements that were attached to the
// document (the only ones a renderer lays out).
func (pg *Page) AppendedElements() []*Element {
	var out []*Element
	for _, e := range pg.Created {
		if e.Appended {
			out = append(out, e)
		}
	}
	return out
}

// ErrBudget is returned when a script exceeds its evaluation budget.
var ErrBudget = errors.New("jsmini: evaluation budget exceeded")

// value is a runtime value: nil (undefined), string, float64, bool,
// []value (array), *Element, *object, or builtin.
type value interface{}

// object is a generic property bag with an optional kind tag that switches
// on host behaviour (document, window, location, style, navigator).
type object struct {
	kind  string
	props map[string]value
	elem  *Element // set for kind=="style" wrappers
}

// builtin is a host function.
type builtin func(in *interp, this value, args []value) (value, error)

// boundMethod pairs a receiver with a builtin, created on member access.
type boundMethod struct {
	this value
	fn   builtin
}

// closure is a user-defined function literal with no captured environment
// beyond the globals (sufficient for the cloaking corpus's IIFEs).
type closure struct {
	params []string
	body   []stmt
}

type interp struct {
	page   *Page
	vars   map[string]value
	budget int
}

// Exec parses and executes src against page. Script effects (redirects,
// writes, created elements, cookies) are recorded on page. A nil error
// means the script ran to completion within budget.
func Exec(src string, page *Page) error {
	stmts, err := parse(src)
	if err != nil {
		return err
	}
	in := &interp{page: page, vars: map[string]value{}, budget: 200000}
	in.installGlobals()
	return in.run(stmts)
}

func (in *interp) run(stmts []stmt) error {
	for _, s := range stmts {
		if err := in.exec(s); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) step() error {
	in.budget--
	if in.budget <= 0 {
		return ErrBudget
	}
	return nil
}

func (in *interp) exec(s stmt) error {
	if err := in.step(); err != nil {
		return err
	}
	switch s := s.(type) {
	case varStmt:
		var v value
		if s.init != nil {
			var err error
			v, err = in.eval(s.init)
			if err != nil {
				return err
			}
		}
		in.vars[s.name] = v
		return nil
	case exprStmt:
		_, err := in.eval(s.e)
		return err
	case assignStmt:
		return in.assign(s)
	case ifStmt:
		cond, err := in.eval(s.cond)
		if err != nil {
			return err
		}
		if truthy(cond) {
			return in.run(s.then)
		}
		return in.run(s.els)
	default:
		return fmt.Errorf("jsmini: unknown statement %T", s)
	}
}

func (in *interp) assign(s assignStmt) error {
	v, err := in.eval(s.value)
	if err != nil {
		return err
	}
	switch t := s.target.(type) {
	case identExpr:
		if s.op == "+=" {
			v = addValues(in.vars[t.name], v)
		}
		in.vars[t.name] = v
		return nil
	case memberExpr:
		obj, err := in.eval(t.obj)
		if err != nil {
			return err
		}
		if s.op == "+=" {
			cur, _ := in.member(obj, t.name)
			v = addValues(cur, v)
		}
		return in.setMember(obj, t.name, v)
	case indexExpr:
		obj, err := in.eval(t.obj)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.idx)
		if err != nil {
			return err
		}
		return in.setMember(obj, toString(idx), v)
	}
	return fmt.Errorf("jsmini: bad assignment target %T", s.target)
}

// setMember applies host semantics for assignments to document/window
// properties, element attributes and style fields.
func (in *interp) setMember(obj value, name string, v value) error {
	switch o := obj.(type) {
	case *object:
		switch {
		case (o.kind == "window" || o.kind == "document") && name == "location":
			in.page.Redirect = toString(v)
			return nil
		case o.kind == "location" && (name == "href" || name == "hash" || name == "search"):
			if name == "href" {
				in.page.Redirect = toString(v)
			}
			return nil
		case o.kind == "document" && name == "cookie":
			in.page.Cookies = append(in.page.Cookies, toString(v))
			return nil
		case o.kind == "style":
			if o.elem != nil {
				o.elem.Attrs["style:"+camelToCSS(name)] = toString(v)
			}
			return nil
		}
		o.props[name] = v
		return nil
	case *Element:
		switch name {
		case "style":
			return fmt.Errorf("jsmini: cannot replace style object")
		case "innerHTML":
			in.page.Writes = append(in.page.Writes, toString(v))
			o.Attrs["innerHTML"] = toString(v)
			return nil
		default:
			o.Attrs[strings.ToLower(name)] = toString(v)
			return nil
		}
	}
	return fmt.Errorf("jsmini: cannot set %q on %T", name, obj)
}

func camelToCSS(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'A' && r <= 'Z' {
			b.WriteByte('-')
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func (in *interp) eval(e expr) (value, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	switch e := e.(type) {
	case strLit:
		return e.v, nil
	case numLit:
		return e.v, nil
	case identExpr:
		if v, ok := in.vars[e.name]; ok {
			return v, nil
		}
		switch e.name {
		case "undefined", "null":
			return nil, nil
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		return nil, fmt.Errorf("jsmini: undefined identifier %q", e.name)
	case funcLit:
		return closure{params: e.params, body: e.body}, nil
	case memberExpr:
		obj, err := in.eval(e.obj)
		if err != nil {
			return nil, err
		}
		v, err := in.member(obj, e.name)
		if err != nil {
			return nil, err
		}
		return v, nil
	case indexExpr:
		obj, err := in.eval(e.obj)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(e.idx)
		if err != nil {
			return nil, err
		}
		if arr, ok := obj.([]value); ok {
			i := int(toNumber(idx))
			if i < 0 || i >= len(arr) {
				return nil, nil
			}
			return arr[i], nil
		}
		if s, ok := obj.(string); ok {
			i := int(toNumber(idx))
			if i < 0 || i >= len(s) {
				return nil, nil
			}
			return s[i : i+1], nil
		}
		return in.member(obj, toString(idx))
	case callExpr:
		return in.call(e)
	case binExpr:
		return in.binary(e)
	case unaryExpr:
		v, err := in.eval(e.e)
		if err != nil {
			return nil, err
		}
		switch e.op {
		case "!":
			return !truthy(v), nil
		case "-":
			return -toNumber(v), nil
		}
		return nil, fmt.Errorf("jsmini: unary %q", e.op)
	case condExpr:
		c, err := in.eval(e.cond)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			return in.eval(e.then)
		}
		return in.eval(e.els)
	}
	return nil, fmt.Errorf("jsmini: unknown expression %T", e)
}

func (in *interp) call(e callExpr) (value, error) {
	var this value
	var fn value
	var err error
	if m, ok := e.fn.(memberExpr); ok {
		this, err = in.eval(m.obj)
		if err != nil {
			return nil, err
		}
		fn, err = in.member(this, m.name)
		if err != nil {
			return nil, err
		}
	} else {
		fn, err = in.eval(e.fn)
		if err != nil {
			return nil, err
		}
	}
	args := make([]value, len(e.args))
	for i, a := range e.args {
		args[i], err = in.eval(a)
		if err != nil {
			return nil, err
		}
	}
	switch f := fn.(type) {
	case builtin:
		return f(in, this, args)
	case boundMethod:
		return f.fn(in, f.this, args)
	case closure:
		// Parameters shadow globals for the call's duration.
		saved := make(map[string]value, len(f.params))
		defined := make(map[string]bool, len(f.params))
		for i, p := range f.params {
			if old, ok := in.vars[p]; ok {
				saved[p] = old
				defined[p] = true
			}
			if i < len(args) {
				in.vars[p] = args[i]
			} else {
				in.vars[p] = nil
			}
		}
		runErr := in.run(f.body)
		for _, p := range f.params {
			if defined[p] {
				in.vars[p] = saved[p]
			} else {
				delete(in.vars, p)
			}
		}
		return nil, runErr
	}
	return nil, fmt.Errorf("jsmini: call of non-function %T", fn)
}

func (in *interp) binary(e binExpr) (value, error) {
	// Short-circuit logical operators.
	if e.op == "&&" || e.op == "||" {
		l, err := in.eval(e.l)
		if err != nil {
			return nil, err
		}
		if e.op == "&&" && !truthy(l) {
			return l, nil
		}
		if e.op == "||" && truthy(l) {
			return l, nil
		}
		return in.eval(e.r)
	}
	l, err := in.eval(e.l)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(e.r)
	if err != nil {
		return nil, err
	}
	switch e.op {
	case "+":
		return addValues(l, r), nil
	case "-":
		return toNumber(l) - toNumber(r), nil
	case "*":
		return toNumber(l) * toNumber(r), nil
	case "/":
		return toNumber(l) / toNumber(r), nil
	case "%":
		ln, rn := int64(toNumber(l)), int64(toNumber(r))
		if rn == 0 {
			return 0.0, nil
		}
		return float64(ln % rn), nil
	case "==", "===":
		return looseEq(l, r), nil
	case "!=", "!==":
		return !looseEq(l, r), nil
	case "<":
		return compare(l, r) < 0, nil
	case ">":
		return compare(l, r) > 0, nil
	case "<=":
		return compare(l, r) <= 0, nil
	case ">=":
		return compare(l, r) >= 0, nil
	}
	return nil, fmt.Errorf("jsmini: binary %q", e.op)
}

func addValues(l, r value) value {
	if ls, ok := l.(string); ok {
		return ls + toString(r)
	}
	if rs, ok := r.(string); ok {
		return toString(l) + rs
	}
	return toNumber(l) + toNumber(r)
}

func compare(l, r value) int {
	if ls, lok := l.(string); lok {
		if rs, rok := r.(string); rok {
			return strings.Compare(ls, rs)
		}
	}
	ln, rn := toNumber(l), toNumber(r)
	switch {
	case ln < rn:
		return -1
	case ln > rn:
		return 1
	}
	return 0
}

func looseEq(l, r value) bool {
	if l == nil || r == nil {
		return l == nil && r == nil
	}
	if _, ok := l.(string); ok {
		return toString(l) == toString(r)
	}
	if _, ok := r.(string); ok {
		return toString(l) == toString(r)
	}
	if lb, ok := l.(bool); ok {
		if rb, ok := r.(bool); ok {
			return lb == rb
		}
	}
	return toNumber(l) == toNumber(r)
}

func truthy(v value) bool {
	switch v := v.(type) {
	case nil:
		return false
	case bool:
		return v
	case string:
		return v != ""
	case float64:
		return v != 0
	default:
		return true
	}
}

func toString(v value) string {
	switch v := v.(type) {
	case nil:
		return "undefined"
	case string:
		return v
	case float64:
		if v == float64(int64(v)) {
			return strconv.FormatInt(int64(v), 10)
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	case bool:
		if v {
			return "true"
		}
		return "false"
	case []value:
		parts := make([]string, len(v))
		for i, e := range v {
			parts[i] = toString(e)
		}
		return strings.Join(parts, ",")
	case *object:
		return "[object " + v.kind + "]"
	case *Element:
		return "[object HTMLElement]"
	default:
		return fmt.Sprintf("%v", v)
	}
}

func toNumber(v value) float64 {
	switch v := v.(type) {
	case nil:
		return 0
	case float64:
		return v
	case bool:
		if v {
			return 1
		}
		return 0
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// member resolves property reads, including string/array methods and host
// object behaviour.
func (in *interp) member(obj value, name string) (value, error) {
	switch o := obj.(type) {
	case string:
		return stringMember(o, name)
	case []value:
		return arrayMember(o, name)
	case *Element:
		switch name {
		case "style":
			return &object{kind: "style", props: map[string]value{}, elem: o}, nil
		case "src", "width", "height", "id", "name":
			return o.Attrs[name], nil
		case "setAttribute":
			return boundMethod{this: o, fn: builtinSetAttribute}, nil
		case "appendChild":
			return boundMethod{this: o, fn: builtinAppendChild}, nil
		}
		return o.Attrs[strings.ToLower(name)], nil
	case *object:
		switch o.kind {
		case "document":
			switch name {
			case "referrer":
				return in.page.Referrer, nil
			case "location":
				return in.locationObject(), nil
			case "URL":
				return in.page.URL, nil
			case "cookie":
				return strings.Join(in.page.Cookies, "; "), nil
			case "write", "writeln":
				return boundMethod{this: o, fn: builtinDocumentWrite}, nil
			case "createElement":
				return boundMethod{this: o, fn: builtinCreateElement}, nil
			case "getElementById":
				return boundMethod{this: o, fn: builtinGetElementByID}, nil
			case "body", "documentElement", "head":
				return &object{kind: "body", props: map[string]value{}}, nil
			}
		case "window":
			switch name {
			case "location":
				return in.locationObject(), nil
			case "document":
				return in.vars["document"], nil
			case "innerWidth":
				return 1366.0, nil
			case "innerHeight":
				return 768.0, nil
			case "navigator":
				return in.vars["navigator"], nil
			case "setTimeout":
				return builtin(builtinSetTimeout), nil
			}
		case "location":
			switch name {
			case "href":
				return in.page.URL, nil
			case "hostname", "host":
				return hostOf(in.page.URL), nil
			case "replace", "assign":
				return boundMethod{this: o, fn: builtinLocationReplace}, nil
			case "protocol":
				if strings.HasPrefix(in.page.URL, "https") {
					return "https:", nil
				}
				return "http:", nil
			}
		case "navigator":
			if name == "userAgent" {
				if ua, ok := o.props["userAgent"]; ok {
					return ua, nil
				}
				return "", nil
			}
		case "body":
			if name == "appendChild" {
				return boundMethod{this: o, fn: builtinAppendChild}, nil
			}
			if name == "innerHTML" {
				return "", nil
			}
		case "String":
			if name == "fromCharCode" {
				return builtin(builtinFromCharCode), nil
			}
		case "Math":
			switch name {
			case "floor":
				return builtin(func(_ *interp, _ value, a []value) (value, error) {
					return float64(int64(toNumber(arg(a, 0)))), nil
				}), nil
			case "random":
				// Deterministic: cloaking kits use Math.random only for
				// cache busting, which detection must not depend on.
				return builtin(func(_ *interp, _ value, _ []value) (value, error) {
					return 0.5, nil
				}), nil
			}
		}
		if v, ok := o.props[name]; ok {
			return v, nil
		}
		return nil, nil
	case nil:
		return nil, fmt.Errorf("jsmini: member %q of undefined", name)
	}
	return nil, fmt.Errorf("jsmini: member %q of %T", name, obj)
}

func hostOf(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Hostname()
}

func arg(args []value, i int) value {
	if i < len(args) {
		return args[i]
	}
	return nil
}

func (in *interp) locationObject() *object {
	return &object{kind: "location", props: map[string]value{}}
}

func (in *interp) installGlobals() {
	in.vars["document"] = &object{kind: "document", props: map[string]value{}}
	in.vars["window"] = &object{kind: "window", props: map[string]value{}}
	in.vars["self"] = in.vars["window"]
	in.vars["top"] = in.vars["window"]
	in.vars["location"] = in.locationObject()
	in.vars["navigator"] = &object{kind: "navigator", props: map[string]value{}}
	in.vars["String"] = &object{kind: "String", props: map[string]value{}}
	in.vars["Math"] = &object{kind: "Math", props: map[string]value{}}
	in.vars["unescape"] = builtin(builtinUnescape)
	in.vars["decodeURIComponent"] = builtin(builtinUnescape)
	in.vars["escape"] = builtin(func(_ *interp, _ value, a []value) (value, error) {
		return url.QueryEscape(toString(arg(a, 0))), nil
	})
	in.vars["parseInt"] = builtin(func(_ *interp, _ value, a []value) (value, error) {
		// Like JavaScript's parseInt: consume the leading optional sign and
		// digits, ignore the rest.
		s := strings.TrimSpace(toString(arg(a, 0)))
		i := 0
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			i++
		}
		j := i
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == i {
			return 0.0, nil
		}
		n, _ := strconv.ParseInt(s[:j], 10, 64)
		return float64(n), nil
	})
	in.vars["eval"] = builtin(builtinEval)
	in.vars["setTimeout"] = builtin(builtinSetTimeout)
	in.vars["alert"] = builtin(func(_ *interp, _ value, _ []value) (value, error) {
		return nil, nil
	})
}

func builtinDocumentWrite(in *interp, _ value, args []value) (value, error) {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(toString(a))
	}
	in.page.Writes = append(in.page.Writes, b.String())
	return nil, nil
}

func builtinCreateElement(in *interp, _ value, args []value) (value, error) {
	e := &Element{Tag: strings.ToLower(toString(arg(args, 0))), Attrs: map[string]string{}}
	in.page.Created = append(in.page.Created, e)
	return e, nil
}

func builtinGetElementByID(in *interp, _ value, args []value) (value, error) {
	id := toString(arg(args, 0))
	for _, e := range in.page.Created {
		if e.Attrs["id"] == id {
			return e, nil
		}
	}
	// Unknown ids resolve to a fresh detached element so scripts keep going.
	e := &Element{Tag: "div", Attrs: map[string]string{"id": id}}
	in.page.Created = append(in.page.Created, e)
	return e, nil
}

func builtinSetAttribute(_ *interp, this value, args []value) (value, error) {
	e, ok := this.(*Element)
	if !ok {
		return nil, fmt.Errorf("jsmini: setAttribute on %T", this)
	}
	e.Attrs[strings.ToLower(toString(arg(args, 0)))] = toString(arg(args, 1))
	return nil, nil
}

func builtinAppendChild(_ *interp, _ value, args []value) (value, error) {
	if e, ok := arg(args, 0).(*Element); ok {
		e.Appended = true
		return e, nil
	}
	return nil, nil
}

func builtinLocationReplace(in *interp, _ value, args []value) (value, error) {
	in.page.Redirect = toString(arg(args, 0))
	return nil, nil
}

func builtinFromCharCode(_ *interp, _ value, args []value) (value, error) {
	var b strings.Builder
	for _, a := range args {
		b.WriteRune(rune(int(toNumber(a))))
	}
	return b.String(), nil
}

func builtinUnescape(_ *interp, _ value, args []value) (value, error) {
	s := toString(arg(args, 0))
	if out, err := url.QueryUnescape(s); err == nil {
		return out, nil
	}
	return s, nil
}

// builtinEval re-enters the interpreter on dynamically assembled source —
// the obfuscation pattern that motivates executing rather than grepping
// scripts.
func builtinEval(in *interp, _ value, args []value) (value, error) {
	src := toString(arg(args, 0))
	stmts, err := parse(src)
	if err != nil {
		return nil, err
	}
	return nil, in.run(stmts)
}

// builtinSetTimeout runs the callback immediately: the simulation has no
// event loop, and cloaking kits use timeouts only to dodge naive crawlers.
func builtinSetTimeout(in *interp, _ value, args []value) (value, error) {
	switch f := arg(args, 0).(type) {
	case closure:
		return nil, in.run(f.body)
	case string:
		return builtinEval(in, nil, []value{f})
	}
	return nil, nil
}
