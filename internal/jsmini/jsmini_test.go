package jsmini

import (
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string) *Page {
	t.Helper()
	pg := &Page{URL: "http://doorway.example.com/page", Referrer: ""}
	if err := Exec(src, pg); err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return pg
}

func TestSimpleRedirect(t *testing.T) {
	pg := run(t, `window.location = "http://store.example.net/";`)
	if pg.Redirect != "http://store.example.net/" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
}

func TestLocationHrefRedirect(t *testing.T) {
	pg := run(t, `window.location.href = "http://a.com/x";`)
	if pg.Redirect != "http://a.com/x" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
	pg = run(t, `document.location.replace("http://b.com/");`)
	if pg.Redirect != "http://b.com/" {
		t.Fatalf("replace redirect = %q", pg.Redirect)
	}
}

func TestConditionalReferrerRedirect(t *testing.T) {
	src := `if (document.referrer.indexOf("google") != -1) {
		window.location = "http://store.example.net/";
	}`
	pg := &Page{URL: "http://d.com/", Referrer: "http://www.google.com/search?q=x"}
	if err := Exec(src, pg); err != nil {
		t.Fatal(err)
	}
	if pg.Redirect == "" {
		t.Fatal("search visitor should be redirected")
	}
	pg2 := &Page{URL: "http://d.com/", Referrer: ""}
	if err := Exec(src, pg2); err != nil {
		t.Fatal(err)
	}
	if pg2.Redirect != "" {
		t.Fatal("direct visitor must not be redirected")
	}
}

func TestStringConcatObfuscation(t *testing.T) {
	pg := run(t, `var a = "http://" + "sto" + "re.co" + "m/"; window.location = a;`)
	if pg.Redirect != "http://store.com/" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
}

func TestReverseObfuscation(t *testing.T) {
	pg := run(t, `var u = "/moc.erots//:ptth".split("").reverse().join("");
		window.location = u;`)
	if pg.Redirect != "http://store.com/" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
}

func TestFromCharCodeObfuscation(t *testing.T) {
	pg := run(t, `window.location = String.fromCharCode(104,116,116,112,58,47,47,120,46,99,111)+"m";`)
	if pg.Redirect != "http://x.com" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
}

func TestUnescapeObfuscation(t *testing.T) {
	pg := run(t, `window.location = unescape("http%3A%2F%2Fy.com%2F");`)
	if pg.Redirect != "http://y.com/" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
}

func TestEvalObfuscation(t *testing.T) {
	pg := run(t, `var code = "window.location = " + String.fromCharCode(34) + "http://z.com/" + String.fromCharCode(34) + ";";
		eval(code);`)
	if pg.Redirect != "http://z.com/" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
}

func TestIframeInjectionCreateElement(t *testing.T) {
	pg := run(t, `var f = document.createElement("iframe");
		f.src = "http://store.example.net/";
		f.width = "100%";
		f.height = "100%";
		f.style.border = "0";
		document.body.appendChild(f);`)
	els := pg.AppendedElements()
	if len(els) != 1 {
		t.Fatalf("appended elements = %d", len(els))
	}
	e := els[0]
	if e.Tag != "iframe" || e.Attrs["src"] != "http://store.example.net/" {
		t.Fatalf("element = %+v", e)
	}
	if e.Attrs["width"] != "100%" || e.Attrs["height"] != "100%" {
		t.Fatalf("dimensions = %+v", e.Attrs)
	}
	if e.Attrs["style:border"] != "0" {
		t.Fatalf("style = %+v", e.Attrs)
	}
}

func TestIframeSetAttribute(t *testing.T) {
	pg := run(t, `var f = document.createElement("iframe");
		f.setAttribute("src", "http://s.com/");
		f.setAttribute("WIDTH", "1000");
		document.body.appendChild(f);`)
	e := pg.AppendedElements()[0]
	if e.Attrs["src"] != "http://s.com/" || e.Attrs["width"] != "1000" {
		t.Fatalf("attrs = %+v", e.Attrs)
	}
}

func TestDocumentWriteIframe(t *testing.T) {
	pg := run(t, `document.write('<iframe src="http://s.com/" width="100%" height="100%"></iframe>');`)
	if len(pg.Writes) != 1 || !strings.Contains(pg.Writes[0], `src="http://s.com/"`) {
		t.Fatalf("writes = %q", pg.Writes)
	}
}

func TestCreatedNotAppendedInvisible(t *testing.T) {
	pg := run(t, `var f = document.createElement("iframe"); f.src = "http://s.com/";`)
	if len(pg.AppendedElements()) != 0 {
		t.Fatal("unappended element must not be visible")
	}
	if len(pg.Created) != 1 {
		t.Fatal("created element must be tracked")
	}
}

func TestSetTimeoutRunsCallback(t *testing.T) {
	pg := run(t, `setTimeout(function(){ window.location = "http://late.com/"; }, 100);`)
	if pg.Redirect != "http://late.com/" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
}

func TestCookieAssignment(t *testing.T) {
	pg := run(t, `document.cookie = "seen=1; path=/";`)
	if len(pg.Cookies) != 1 || !strings.HasPrefix(pg.Cookies[0], "seen=1") {
		t.Fatalf("cookies = %q", pg.Cookies)
	}
}

func TestArithmeticAndComparison(t *testing.T) {
	pg := run(t, `var n = 2 * 3 + 4; if (n == 10) { window.location = "http://ok/"; }`)
	if pg.Redirect != "http://ok/" {
		t.Fatal("arithmetic broken")
	}
	pg = run(t, `if (3 < 2) { window.location = "http://bad/"; } else { window.location = "http://good/"; }`)
	if pg.Redirect != "http://good/" {
		t.Fatal("else branch broken")
	}
}

func TestTernaryAndLogical(t *testing.T) {
	pg := run(t, `var u = (document.referrer.length > 0) ? "http://ref/" : "http://noref/";
		window.location = u;`)
	if pg.Redirect != "http://noref/" {
		t.Fatalf("ternary = %q", pg.Redirect)
	}
	pg2 := &Page{URL: "http://d/", Referrer: "http://google.com/"}
	if err := Exec(`if (document.referrer.indexOf("google") >= 0 && document.referrer.indexOf("bot") < 0) {
		window.location="http://both/";}`, pg2); err != nil {
		t.Fatal(err)
	}
	if pg2.Redirect != "http://both/" {
		t.Fatalf("logical = %q", pg2.Redirect)
	}
}

func TestHostnameProperty(t *testing.T) {
	pg := &Page{URL: "http://sub.door.com/a/b"}
	if err := Exec(`if (location.hostname == "sub.door.com") { window.location = "http://hit/"; }`, pg); err != nil {
		t.Fatal(err)
	}
	if pg.Redirect != "http://hit/" {
		t.Fatalf("hostname branch not taken: %q", pg.Redirect)
	}
}

func TestNavigatorUserAgentAbsentByDefault(t *testing.T) {
	pg := run(t, `var ua = navigator.userAgent; if (ua == "") { window.location = "http://nua/"; }`)
	if pg.Redirect != "http://nua/" {
		t.Fatal("empty userAgent branch not taken")
	}
}

func TestBudgetTerminatesRunaway(t *testing.T) {
	// A self-recursive eval loop must hit the budget, not hang.
	pg := &Page{}
	err := Exec(`var s = "eval(s)"; eval(s);`, pg)
	if err == nil {
		t.Fatal("runaway script must fail")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`var = ;`, `if (`, `foo(`, `"unterminated`, `var a = {;`,
	} {
		if err := Exec(src, &Page{}); err == nil {
			t.Errorf("Exec(%q) should fail", src)
		}
	}
}

func TestUndefinedIdentifierError(t *testing.T) {
	if err := Exec(`window.location = missing;`, &Page{}); err == nil {
		t.Fatal("undefined identifier must error")
	}
}

func TestCommentsIgnored(t *testing.T) {
	pg := run(t, `// line comment
		/* block
		comment */
		window.location = "http://c.com/"; // trailing`)
	if pg.Redirect != "http://c.com/" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
}

func TestStringMethods(t *testing.T) {
	pg := run(t, `var s = "AbC dEf";
		if (s.toLowerCase() == "abc def" && s.toUpperCase().indexOf("DEF") == 4 &&
			s.substring(0,3) == "AbC" && s.charAt(1) == "b" && s.replace("AbC","x") == "x dEf" &&
			s.length == 7) {
			window.location = "http://strings-ok/";
		}`)
	if pg.Redirect != "http://strings-ok/" {
		t.Fatal("string methods broken")
	}
}

func TestCharCodeAtRoundTrip(t *testing.T) {
	pg := run(t, `var s = "Q";
		if (String.fromCharCode(s.charCodeAt(0)) == "Q") { window.location = "http://rt/"; }`)
	if pg.Redirect != "http://rt/" {
		t.Fatal("charCodeAt round trip broken")
	}
}

func TestExecDoesNotPanicOnArbitraryInput(t *testing.T) {
	check := func(src string) bool {
		pg := &Page{URL: "http://x/", Referrer: "http://y/"}
		_ = Exec(src, pg) // errors are fine; panics are not
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionParamsScoping(t *testing.T) {
	pg := run(t, `var x = "outer";
		var f = function(x){ window.location = "http://" + x + "/"; };
		f("inner");
		if (x == "outer") { document.write("restored"); }`)
	if pg.Redirect != "http://inner/" {
		t.Fatalf("param binding broken: %q", pg.Redirect)
	}
	if len(pg.Writes) != 1 {
		t.Fatal("outer variable not restored after call")
	}
}

func TestIndexing(t *testing.T) {
	pg := run(t, `var parts = "a|b|c".split("|");
		window.location = "http://" + parts[1] + parts.length + "/";`)
	if pg.Redirect != "http://b3/" {
		t.Fatalf("indexing = %q", pg.Redirect)
	}
}

func BenchmarkExecRedirect(b *testing.B) {
	src := `if (document.referrer.indexOf("google") != -1) { window.location = "http://s.com/"; }`
	for i := 0; i < b.N; i++ {
		pg := &Page{URL: "http://d/", Referrer: "http://google.com/"}
		if err := Exec(src, pg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecIframeObfuscated(b *testing.B) {
	src := `var u = "/moc.erots//:ptth".split("").reverse().join("");
		var f = document.createElement("iframe");
		f.setAttribute("src", u);
		f.width = "100%"; f.height = "100%";
		document.body.appendChild(f);`
	for i := 0; i < b.N; i++ {
		pg := &Page{URL: "http://d/"}
		if err := Exec(src, pg); err != nil {
			b.Fatal(err)
		}
	}
}
