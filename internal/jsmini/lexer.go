// Package jsmini implements a deliberately small JavaScript interpreter
// covering the idioms black-hat SEO kits use for client-side cloaking:
// string-concatenation and fromCharCode/unescape obfuscation, conditional
// redirects keyed on document.referrer, full-page iframe injection via
// document.createElement/appendChild, and document.write. The VanGogh
// crawler executes page scripts with it to observe the DOM a real browser
// would build — the capability whose cost the paper identifies as the main
// obstacle to detecting iframe cloaking at scale.
//
// The interpreter is defensive: it has an instruction budget, no host
// access beyond the supplied Page, and treats any unsupported construct as
// a soft error rather than a panic.
package jsmini

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // operators and punctuation
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns an error for unterminated strings; all other
// byte sequences lex to punctuation or identifiers.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			l.lexPunct()
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return fmt.Errorf("jsmini: unterminated escape at %d", l.pos)
			}
			l.pos++
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'x':
				if l.pos+2 < len(l.src) {
					var v int
					fmt.Sscanf(l.src[l.pos+1:l.pos+3], "%x", &v)
					b.WriteByte(byte(v))
					l.pos += 2
				}
			default:
				b.WriteByte(e)
			}
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("jsmini: unterminated string at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

// multi-character punctuation, longest first.
var puncts = []string{
	"===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "(", ")", "{", "}",
	"[", "]", ";", ",", ".", "?", ":",
}

func (l *lexer) lexPunct() {
	rest := l.src[l.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			l.toks = append(l.toks, token{kind: tokPunct, text: p, pos: l.pos})
			l.pos += len(p)
			return
		}
	}
	// Unknown byte: emit as punct so the parser can reject it in context.
	l.toks = append(l.toks, token{kind: tokPunct, text: rest[:1], pos: l.pos})
	l.pos++
}
