package jsmini

import (
	"fmt"
	"strings"
)

// stringMember implements the string properties and methods the cloaking
// corpus relies on (indexOf, split/reverse/join obfuscation, substring,
// charAt, charCodeAt, replace, toLowerCase, length).
func stringMember(s, name string) (value, error) {
	switch name {
	case "length":
		return float64(len(s)), nil
	case "indexOf":
		return builtin(func(_ *interp, _ value, a []value) (value, error) {
			start := 0
			if len(a) > 1 {
				start = int(toNumber(a[1]))
			}
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				return -1.0, nil
			}
			idx := strings.Index(s[start:], toString(arg(a, 0)))
			if idx < 0 {
				return -1.0, nil
			}
			return float64(start + idx), nil
		}), nil
	case "lastIndexOf":
		return builtin(func(_ *interp, _ value, a []value) (value, error) {
			return float64(strings.LastIndex(s, toString(arg(a, 0)))), nil
		}), nil
	case "charAt":
		return builtin(func(_ *interp, _ value, a []value) (value, error) {
			i := int(toNumber(arg(a, 0)))
			if i < 0 || i >= len(s) {
				return "", nil
			}
			return s[i : i+1], nil
		}), nil
	case "charCodeAt":
		return builtin(func(_ *interp, _ value, a []value) (value, error) {
			i := int(toNumber(arg(a, 0)))
			if i < 0 || i >= len(s) {
				return 0.0, nil
			}
			return float64(s[i]), nil
		}), nil
	case "substring", "slice", "substr":
		isSubstr := name == "substr"
		return builtin(func(_ *interp, _ value, a []value) (value, error) {
			start := clampIdx(int(toNumber(arg(a, 0))), len(s))
			end := len(s)
			if len(a) > 1 {
				if isSubstr {
					end = clampIdx(start+int(toNumber(a[1])), len(s))
				} else {
					end = clampIdx(int(toNumber(a[1])), len(s))
				}
			}
			if end < start {
				start, end = end, start
			}
			return s[start:end], nil
		}), nil
	case "split":
		return builtin(func(_ *interp, _ value, a []value) (value, error) {
			sep := toString(arg(a, 0))
			var parts []string
			if sep == "" {
				for i := 0; i < len(s); i++ {
					parts = append(parts, s[i:i+1])
				}
			} else {
				parts = strings.Split(s, sep)
			}
			out := make([]value, len(parts))
			for i, p := range parts {
				out[i] = p
			}
			return out, nil
		}), nil
	case "replace":
		return builtin(func(_ *interp, _ value, a []value) (value, error) {
			return strings.Replace(s, toString(arg(a, 0)), toString(arg(a, 1)), 1), nil
		}), nil
	case "toLowerCase":
		return builtin(func(_ *interp, _ value, _ []value) (value, error) {
			return strings.ToLower(s), nil
		}), nil
	case "toUpperCase":
		return builtin(func(_ *interp, _ value, _ []value) (value, error) {
			return strings.ToUpper(s), nil
		}), nil
	case "concat":
		return builtin(func(_ *interp, _ value, a []value) (value, error) {
			var b strings.Builder
			b.WriteString(s)
			for _, x := range a {
				b.WriteString(toString(x))
			}
			return b.String(), nil
		}), nil
	case "trim":
		return builtin(func(_ *interp, _ value, _ []value) (value, error) {
			return strings.TrimSpace(s), nil
		}), nil
	}
	return nil, fmt.Errorf("jsmini: string has no member %q", name)
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// arrayMember implements the array methods used by split/reverse/join
// obfuscation chains.
func arrayMember(a []value, name string) (value, error) {
	switch name {
	case "length":
		return float64(len(a)), nil
	case "reverse":
		return builtin(func(_ *interp, _ value, _ []value) (value, error) {
			out := make([]value, len(a))
			for i, v := range a {
				out[len(a)-1-i] = v
			}
			return out, nil
		}), nil
	case "join":
		return builtin(func(_ *interp, _ value, args []value) (value, error) {
			sep := ","
			if len(args) > 0 {
				sep = toString(args[0])
			}
			parts := make([]string, len(a))
			for i, v := range a {
				parts[i] = toString(v)
			}
			return strings.Join(parts, sep), nil
		}), nil
	case "pop":
		return builtin(func(_ *interp, _ value, _ []value) (value, error) {
			if len(a) == 0 {
				return nil, nil
			}
			return a[len(a)-1], nil
		}), nil
	case "slice":
		return builtin(func(_ *interp, _ value, args []value) (value, error) {
			start := clampIdx(int(toNumber(arg(args, 0))), len(a))
			end := len(a)
			if len(args) > 1 {
				end = clampIdx(int(toNumber(args[1])), len(a))
			}
			if end < start {
				end = start
			}
			out := make([]value, end-start)
			copy(out, a[start:end])
			return out, nil
		}), nil
	}
	return nil, fmt.Errorf("jsmini: array has no member %q", name)
}
