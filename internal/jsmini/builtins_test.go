package jsmini

import (
	"strings"
	"testing"
)

// exec runs src against a fresh page and fails the test on error.
func exec(t *testing.T, src string, pg *Page) {
	t.Helper()
	if pg == nil {
		pg = &Page{URL: "http://d/"}
	}
	if err := Exec(src, pg); err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
}

// redirectOf runs src and returns the redirect target.
func redirectOf(t *testing.T, src string) string {
	t.Helper()
	pg := &Page{URL: "http://d/"}
	exec(t, src, pg)
	return pg.Redirect
}

func TestSubstringVariants(t *testing.T) {
	cases := map[string]string{
		`window.location = "abcdef".substring(1,3);`:   "bc",
		`window.location = "abcdef".substring(3,1);`:   "bc", // swapped bounds
		`window.location = "abcdef".slice(2);`:         "cdef",
		`window.location = "abcdef".substr(1,3);`:      "bcd",
		`window.location = "abcdef".substr(4,99);`:     "ef",
		`window.location = "abcdef".substring(-5,2);`:  "ab",
		`window.location = "abcdef".substring(0,999);`: "abcdef",
	}
	for src, want := range cases {
		if got := redirectOf(t, src); got != want {
			t.Errorf("%s -> %q, want %q", src, got, want)
		}
	}
}

func TestStringSearchMethods(t *testing.T) {
	cases := map[string]string{
		`window.location = "" + "banana".lastIndexOf("an");`: "3",
		`window.location = "" + "banana".indexOf("an", 2);`:  "3",
		`window.location = "" + "banana".indexOf("zz");`:     "-1",
		`window.location = "" + "banana".indexOf("an", 99);`: "-1",
		`window.location = "" + "banana".indexOf("an", -4);`: "1",
		`window.location = "ab".concat("cd", "ef");`:         "abcdef",
		`window.location = "  pad  ".trim();`:                "pad",
		`window.location = "a-b-c".replace("-", "+");`:       "a+b-c",
	}
	for src, want := range cases {
		if got := redirectOf(t, src); got != want {
			t.Errorf("%s -> %q, want %q", src, got, want)
		}
	}
}

func TestArrayMethods(t *testing.T) {
	cases := map[string]string{
		`window.location = "a,b,c".split(",").pop();`:                  "c",
		`window.location = "a,b,c,d".split(",").slice(1,3).join("+");`: "b+c",
		`window.location = "a,b".split(",").join();`:                   "a,b",
		`window.location = "" + "a,b,c".split(",").length;`:            "3",
		`window.location = "x".split(",").slice(5).join("");`:          "",
	}
	for src, want := range cases {
		if got := redirectOf(t, src); got != want {
			t.Errorf("%s -> %q, want %q", src, got, want)
		}
	}
}

func TestMathAndGlobals(t *testing.T) {
	cases := map[string]string{
		`window.location = "" + Math.floor(3.9);`:     "3",
		`window.location = "" + parseInt("42abc");`:   "42",
		`window.location = escape("a b");`:            "a+b",
		`window.location = "" + (Math.random() < 1);`: "true",
		`window.location = "" + window.innerWidth;`:   "1366",
		`window.location = "" + window.innerHeight;`:  "768",
	}
	for src, want := range cases {
		if got := redirectOf(t, src); got != want {
			t.Errorf("%s -> %q, want %q", src, got, want)
		}
	}
}

func TestLocationProtocolAndHost(t *testing.T) {
	pg := &Page{URL: "https://secure.shop.example/a"}
	exec(t, `if (location.protocol == "https:" && location.host == "secure.shop.example") {
		window.location = "http://ok/";
	}`, pg)
	if pg.Redirect != "http://ok/" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
	pg2 := &Page{URL: "http://plain.example/"}
	exec(t, `window.location = location.protocol;`, pg2)
	if pg2.Redirect != "http:" {
		t.Fatalf("protocol = %q", pg2.Redirect)
	}
}

func TestDocumentURLAndCookieRead(t *testing.T) {
	pg := &Page{URL: "http://door.example/x"}
	exec(t, `document.cookie = "a=1";
		document.cookie = "b=2";
		if (document.cookie.indexOf("a=1") != -1 && document.URL == "http://door.example/x") {
			window.location = "http://cookie-ok/";
		}`, pg)
	if pg.Redirect != "http://cookie-ok/" {
		t.Fatalf("redirect = %q", pg.Redirect)
	}
}

func TestGetElementByIDAndInnerHTML(t *testing.T) {
	pg := &Page{URL: "http://d/"}
	exec(t, `var el = document.getElementById("slot");
		el.innerHTML = '<iframe src="http://s/" width="100%" height="100%"></iframe>';`, pg)
	if len(pg.Writes) != 1 || !strings.Contains(pg.Writes[0], "iframe") {
		t.Fatalf("writes = %q", pg.Writes)
	}
	// The same id resolves to the same element.
	exec(t, `var a = document.getElementById("x"); a.src = "1";
		var b = document.getElementById("x");
		if (b.src == "1") { window.location = "http://same/"; }`, pg)
	if pg.Redirect != "http://same/" {
		t.Fatal("getElementById must be stable per id")
	}
}

func TestPlusEqualsAndElseIf(t *testing.T) {
	got := redirectOf(t, `var u = "http://";
		u += "x";
		u += ".com/";
		var n = 2;
		if (n == 1) { window.location = "http://one/"; }
		else if (n == 2) { window.location = u; }
		else { window.location = "http://other/"; }`)
	if got != "http://x.com/" {
		t.Fatalf("redirect = %q", got)
	}
}

func TestMemberPlusEquals(t *testing.T) {
	pg := &Page{URL: "http://d/"}
	exec(t, `var f = document.createElement("iframe");
		f.src = "http://a";
		f.src += ".com/";
		document.body.appendChild(f);`, pg)
	if pg.AppendedElements()[0].Attrs["src"] != "http://a.com/" {
		t.Fatalf("src = %q", pg.AppendedElements()[0].Attrs["src"])
	}
}

func TestNumericOps(t *testing.T) {
	cases := map[string]string{
		`window.location = "" + (7 % 3);`:     "1",
		`window.location = "" + (7 % 0);`:     "0",
		`window.location = "" + (10 / 4);`:    "2.5",
		`window.location = "" + (2 - 5);`:     "-3",
		`window.location = "" + (-(3));`:      "-3",
		`window.location = "" + (1 <= 1);`:    "true",
		`window.location = "" + (2 >= 3);`:    "false",
		`window.location = "" + ("b" > "a");`: "true",
		`window.location = "" + !0;`:          "true",
		`window.location = "" + ("5" - 2);`:   "3",
		`window.location = "" + (true + 1);`:  "2",
	}
	for src, want := range cases {
		if got := redirectOf(t, src); got != want {
			t.Errorf("%s -> %q, want %q", src, got, want)
		}
	}
}

func TestSelfAndTopAliases(t *testing.T) {
	got := redirectOf(t, `if (self == top) { window.location = "http://toplevel/"; }`)
	if got != "http://toplevel/" {
		t.Fatalf("redirect = %q", got)
	}
}

func TestAlertIsNoop(t *testing.T) {
	pg := &Page{URL: "http://d/"}
	exec(t, `alert("hi"); window.location = "http://after/";`, pg)
	if pg.Redirect != "http://after/" {
		t.Fatal("alert must not halt execution")
	}
}

func TestWindowSetTimeoutMember(t *testing.T) {
	got := redirectOf(t, `window.setTimeout(function(){ window.location = "http://wt/"; }, 50);`)
	if got != "http://wt/" {
		t.Fatalf("redirect = %q", got)
	}
	// String-form timeout runs through eval.
	got2 := redirectOf(t, `setTimeout("window.location = 'http://str/';", 10);`)
	if got2 != "http://str/" {
		t.Fatalf("redirect = %q", got2)
	}
}

func TestCharAtOutOfRangeAndStringIndex(t *testing.T) {
	cases := map[string]string{
		`window.location = "abc".charAt(99) + "x";`:    "x",
		`window.location = "" + "abc".charCodeAt(99);`: "0",
		`window.location = "abc"[1];`:                  "b",
	}
	for src, want := range cases {
		if got := redirectOf(t, src); got != want {
			t.Errorf("%s -> %q, want %q", src, got, want)
		}
	}
}

func TestDecodeURIComponent(t *testing.T) {
	got := redirectOf(t, `window.location = decodeURIComponent("http%3A%2F%2Fd.com%2F");`)
	if got != "http://d.com/" {
		t.Fatalf("redirect = %q", got)
	}
}

func TestLocationAssignMethod(t *testing.T) {
	got := redirectOf(t, `location.assign("http://assigned/");`)
	if got != "http://assigned/" {
		t.Fatalf("redirect = %q", got)
	}
}

func TestErrorPaths(t *testing.T) {
	for _, src := range []string{
		`missingFn();`,               // call of undefined
		`var a = 1; a.b.c;`,          // member of number member chain
		`document.body.style = "x";`, // replacing style object (unsupported member set on object kind body? -> props)
		`"abc".noSuchMethod();`,      // unknown string method
		`"a,b".split(",").noSuch();`, // unknown array method
	} {
		pg := &Page{URL: "http://d/"}
		if err := Exec(src, pg); err == nil {
			// document.body.style = "x" actually assigns a prop on the body
			// object, which is allowed; skip that one.
			if !strings.Contains(src, "document.body.style") {
				t.Errorf("Exec(%q) should fail", src)
			}
		}
	}
}

func TestElementStyleReplacementRejected(t *testing.T) {
	pg := &Page{URL: "http://d/"}
	err := Exec(`var f = document.createElement("div"); f.style = "x";`, pg)
	if err == nil {
		t.Fatal("replacing an element's style object must fail")
	}
}

func TestObjectToStringConversions(t *testing.T) {
	got := redirectOf(t, `window.location = "" + document;`)
	if !strings.Contains(got, "[object document]") {
		t.Fatalf("document string = %q", got)
	}
	got2 := redirectOf(t, `var f = document.createElement("div"); window.location = "" + f;`)
	if !strings.Contains(got2, "HTMLElement") {
		t.Fatalf("element string = %q", got2)
	}
	got3 := redirectOf(t, `window.location = "" + "a,b".split(",");`)
	if got3 != "a,b" {
		t.Fatalf("array string = %q", got3)
	}
	got4 := redirectOf(t, `var u; window.location = "" + u;`)
	if got4 != "undefined" {
		t.Fatalf("undefined string = %q", got4)
	}
}

func TestHexEscapeInString(t *testing.T) {
	got := redirectOf(t, "window.location = \"\\x68\\x69\";")
	if got != "hi" {
		t.Fatalf("hex escape = %q", got)
	}
}
