// Package export serialises a completed study dataset to JSON and CSV so
// downstream tooling (notebooks, plotting) can regenerate the paper's
// figures from the same numbers the in-process experiments use.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/brands"
	"repro/internal/core"
)

// Table is one experiment's result: the id and title identifying which of
// the paper's tables or figures it reproduces, plus the computed Result.
// Rendering is deferred — String() produces the text form on demand, and
// MarshalJSON emits {id, title, text} — so callers choose the output format
// instead of receiving pre-rendered text.
type Table struct {
	ID     string
	Title  string
	Result fmt.Stringer
}

// String renders the result as the experiment's text table.
func (t Table) String() string {
	if t.Result == nil {
		return ""
	}
	return t.Result.String()
}

// MarshalJSON emits the table as {"id", "title", "text"}.
func (t Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Text  string `json:"text"`
	}{t.ID, t.Title, t.String()})
}

// Summary is the JSON top-level document.
type Summary struct {
	StudyDays       int            `json:"study_days"`
	SimDays         int            `json:"sim_days"`
	TotalPSRs       int64          `json:"total_psrs"`
	TotalDoorways   int            `json:"total_doorways"`
	TotalStores     int            `json:"total_stores"`
	AttributedShare float64        `json:"attributed_share"`
	CVAccuracy      float64        `json:"classifier_cv_accuracy"`
	Verticals       []VerticalRow  `json:"verticals"`
	Campaigns       []CampaignRow  `json:"campaigns"`
	Seizures        []SeizureEvent `json:"seizures"`
}

// VerticalRow is one Table 1 line.
type VerticalRow struct {
	Vertical  string `json:"vertical"`
	PSRs      int64  `json:"psrs"`
	Doorways  int    `json:"doorways"`
	Stores    int    `json:"stores"`
	Campaigns int    `json:"campaigns"`
}

// CampaignRow is one Table 2 line.
type CampaignRow struct {
	Name     string `json:"name"`
	Doorways int    `json:"doorways"`
	Stores   int    `json:"stores"`
	PeakDays int    `json:"peak_days"`
}

// SeizureEvent is one observed seizure.
type SeizureEvent struct {
	Domain  string `json:"domain"`
	Day     int    `json:"day"`
	CaseID  string `json:"case_id"`
	Firm    string `json:"firm"`
	StoreID string `json:"store_id,omitempty"`
}

// BuildSummary assembles the JSON document from a dataset.
func BuildSummary(d *core.Dataset) *Summary {
	s := &Summary{
		StudyDays:       d.StudyDays,
		SimDays:         d.SimDays,
		TotalPSRs:       d.TotalPSRs(),
		TotalDoorways:   d.TotalDoorways(),
		TotalStores:     d.TotalStores(),
		AttributedShare: d.AttributedShare(),
		CVAccuracy:      d.World().CVAccuracy,
	}
	for _, v := range brands.All() {
		vo := d.Verticals[v]
		s.Verticals = append(s.Verticals, VerticalRow{
			Vertical:  v.String(),
			PSRs:      vo.PSRObservations,
			Doorways:  len(vo.DoorwaysSeen),
			Stores:    len(vo.StoresSeen),
			Campaigns: len(vo.CampaignsSeen),
		})
	}
	names := make([]string, 0, len(d.Campaigns))
	for name := range d.Campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		co := d.Campaigns[name]
		_, _, peak := co.PSRTop100.PeakRange(0.6)
		s.Campaigns = append(s.Campaigns, CampaignRow{
			Name:     name,
			Doorways: len(co.Doorways),
			Stores:   len(co.StoresSeen),
			PeakDays: peak,
		})
	}
	for _, sz := range d.Seizures {
		if !sz.SeenInPSRs {
			continue
		}
		s.Seizures = append(s.Seizures, SeizureEvent{
			Domain: sz.Domain, Day: int(sz.Day), CaseID: sz.CaseID,
			Firm: sz.FirmKey, StoreID: sz.StoreID,
		})
	}
	return s
}

// WriteSummaryJSON writes the summary document.
func WriteSummaryJSON(w io.Writer, d *core.Dataset) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildSummary(d))
}

// WriteVerticalSeriesCSV writes one row per day with each vertical's top-10
// and top-100 poisoning percentages and penalised share — the Figure 2/3
// raw series.
func WriteVerticalSeriesCSV(w io.Writer, d *core.Dataset) error {
	cw := csv.NewWriter(w)
	header := []string{"day"}
	for _, v := range brands.All() {
		name := sanitizeCol(v.String())
		header = append(header, name+"_top10_pct", name+"_top100_pct", name+"_penalized_pct")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for day := 0; day < d.SimDays; day++ {
		row := []string{strconv.Itoa(day)}
		for _, v := range brands.All() {
			vo := d.Verticals[v]
			row = append(row,
				f(vo.Top10PoisonedPct.At(day)),
				f(vo.Top100PoisonedPct.At(day)),
				f(vo.PenalizedPct.At(day)))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCampaignSeriesCSV writes one row per (day, campaign) with PSR counts
// — the Figure 4 raw series.
func WriteCampaignSeriesCSV(w io.Writer, d *core.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"day", "campaign", "psrs_top100", "psrs_top10", "labeled"}); err != nil {
		return err
	}
	names := make([]string, 0, len(d.Campaigns))
	for name := range d.Campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	for day := 0; day < d.SimDays; day++ {
		for _, name := range names {
			co := d.Campaigns[name]
			t100 := co.PSRTop100.At(day)
			t10 := co.PSRTop10.At(day)
			lab := co.LabeledPSRs.At(day)
			if t100 == 0 && t10 == 0 && lab == 0 {
				continue
			}
			if err := cw.Write([]string{
				strconv.Itoa(day), name, f(t100), f(t10), f(lab),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func sanitizeCol(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c-'A'+'a')
		case c == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}

// Dir writes summary.json, vertical_series.csv and campaign_series.csv into
// path, creating it if needed.
func Dir(path string, d *core.Dataset) error {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	write := func(name string, fn func(io.Writer, *core.Dataset) error) error {
		fp, err := os.Create(filepath.Join(path, name))
		if err != nil {
			return fmt.Errorf("export: %w", err)
		}
		defer fp.Close()
		if err := fn(fp, d); err != nil {
			return fmt.Errorf("export %s: %w", name, err)
		}
		return fp.Close()
	}
	if err := write("summary.json", WriteSummaryJSON); err != nil {
		return err
	}
	if err := write("vertical_series.csv", WriteVerticalSeriesCSV); err != nil {
		return err
	}
	return write("campaign_series.csv", WriteCampaignSeriesCSV)
}
