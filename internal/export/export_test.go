package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	once sync.Once
	data *core.Dataset
)

func dataset(t *testing.T) *core.Dataset {
	t.Helper()
	once.Do(func() {
		cfg := core.TestConfig()
		cfg.TermsPerVertical = 4
		cfg.SlotsPerTerm = 20
		cfg.ExtendedTail = false
		data = core.NewWorld(cfg).Run()
	})
	return data
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	d := dataset(t)
	var buf bytes.Buffer
	if err := WriteSummaryJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.TotalPSRs != d.TotalPSRs() {
		t.Fatalf("psrs = %d, want %d", s.TotalPSRs, d.TotalPSRs())
	}
	if len(s.Verticals) != 16 {
		t.Fatalf("verticals = %d", len(s.Verticals))
	}
	if len(s.Campaigns) == 0 {
		t.Fatal("no campaigns exported")
	}
	if s.AttributedShare <= 0 || s.AttributedShare > 1 {
		t.Fatalf("attributed share = %v", s.AttributedShare)
	}
}

func TestVerticalSeriesCSVShape(t *testing.T) {
	d := dataset(t)
	var buf bytes.Buffer
	if err := WriteVerticalSeriesCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != d.SimDays+1 {
		t.Fatalf("rows = %d, want %d", len(rows), d.SimDays+1)
	}
	if len(rows[0]) != 1+16*3 {
		t.Fatalf("columns = %d", len(rows[0]))
	}
	if rows[0][0] != "day" || !strings.HasSuffix(rows[0][1], "_top10_pct") {
		t.Fatalf("header = %v", rows[0][:3])
	}
}

func TestCampaignSeriesCSVSparse(t *testing.T) {
	d := dataset(t)
	var buf bytes.Buffer
	if err := WriteCampaignSeriesCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sparse: no all-zero rows after the header.
	for _, row := range rows[1:] {
		if row[2] == "0.000" && row[3] == "0.000" && row[4] == "0.000" {
			t.Fatalf("all-zero row exported: %v", row)
		}
	}
}

func TestDirWritesAllArtifacts(t *testing.T) {
	d := dataset(t)
	dir := t.TempDir()
	if err := Dir(dir, d); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"summary.json", "vertical_series.csv", "campaign_series.csv"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestDirBadPath(t *testing.T) {
	d := dataset(t)
	if err := Dir("/proc/definitely/not/writable", d); err == nil {
		t.Fatal("bad path must fail")
	}
}

func TestSanitizeCol(t *testing.T) {
	if got := sanitizeCol("Beats By Dre"); got != "beats_by_dre" {
		t.Fatalf("got %q", got)
	}
	if got := sanitizeCol("PHP?P="); got != "phpp" {
		t.Fatalf("got %q", got)
	}
}
