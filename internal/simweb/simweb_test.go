package simweb

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/htmlgen"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/store"
)

type fixture struct {
	web  *Web
	gen  *htmlgen.Generator
	deps []*campaign.Deployment
}

func findDep(deps []*campaign.Deployment, name string) *campaign.Deployment {
	for _, d := range deps {
		if d.Spec.Name == name {
			return d
		}
	}
	return nil
}

// buildFixture wires a tiny web: one doorway per cloaking mode and one store.
func buildFixture(t *testing.T) *fixture {
	t.Helper()
	r := rng.New(11)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.01)
	gen := htmlgen.New(r)
	f := &fixture{web: NewWeb(), gen: gen, deps: deps}
	return f
}

func (f *fixture) mountStore(t *testing.T, depName string) (*store.Store, string) {
	t.Helper()
	dep := findDep(f.deps, depName)
	if dep == nil {
		t.Fatalf("deployment %s missing", depName)
	}
	st := store.New(dep.Stores[0], rng.New(5), 245)
	site := &StoreSite{Store: st, Gen: f.gen, Window: simclock.StudyWindow()}
	dom := dep.Stores[0].Domains[0]
	f.web.Register(dom, site)
	return st, dom
}

func (f *fixture) mountDoorway(t *testing.T, depName string, js bool, target string) (*campaign.Doorway, string) {
	t.Helper()
	dep := findDep(f.deps, depName)
	if dep == nil {
		t.Fatalf("deployment %s missing", depName)
	}
	dw := dep.Doorways[0]
	site := &DoorwaySite{
		Doorway:    dw,
		Gen:        f.gen,
		Terms:      []string{"cheap brand goods", "brand outlet online"},
		Resolve:    func(simclock.Day) string { return target },
		JSRedirect: js,
	}
	f.web.Register(dw.Domain, site)
	return dw, dw.Domain
}

func TestRedirectCloakingSemantics(t *testing.T) {
	f := buildFixture(t)
	_, storeDom := f.mountStore(t, "KEY")
	_, doorDom := f.mountDoorway(t, "KEY", false, "http://"+storeDom+"/")

	// Crawler sees keyword-stuffed content.
	crawler := f.web.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: CrawlerUA})
	if crawler.Status != 200 || !strings.Contains(crawler.Body, "cheap brand goods") {
		t.Fatalf("crawler view wrong: %d", crawler.Status)
	}
	// Search click-through is redirected to the store.
	user := f.web.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: BrowserUA,
		Referrer: SearchReferrer + "?q=cheap+brand+goods"})
	if user.Status != 302 || user.Location != "http://"+storeDom+"/" {
		t.Fatalf("search user not redirected: %+v", user)
	}
	// Direct visitors see the original compromised-site content.
	direct := f.web.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: BrowserUA})
	if direct.Status != 200 || strings.Contains(strings.ToLower(direct.Body), "checkout") {
		t.Fatalf("direct visitor must see original content")
	}
	if direct.Body == crawler.Body {
		t.Fatal("direct view must differ from crawler view")
	}
}

func TestJSRedirectVariant(t *testing.T) {
	f := buildFixture(t)
	_, storeDom := f.mountStore(t, "NEWSORG")
	_, doorDom := f.mountDoorway(t, "NEWSORG", true, "http://"+storeDom+"/")
	user := f.web.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: BrowserUA,
		Referrer: SearchReferrer})
	if user.Status != 200 {
		t.Fatalf("JS redirect must serve 200, got %d", user.Status)
	}
	if !strings.Contains(user.Body, "<script") {
		t.Fatal("JS redirect page must carry a script")
	}
}

func TestIframeCloakingServesSameDocToAll(t *testing.T) {
	f := buildFixture(t)
	_, storeDom := f.mountStore(t, "MOONKIS")
	_, doorDom := f.mountDoorway(t, "MOONKIS", false, "http://"+storeDom+"/")
	crawler := f.web.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: CrawlerUA})
	user := f.web.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: BrowserUA,
		Referrer: SearchReferrer})
	if crawler.Body != user.Body {
		t.Fatal("iframe cloaking must serve identical documents")
	}
	if crawler.Status != 200 || user.Status != 200 {
		t.Fatal("iframe cloaking never redirects")
	}
	if !strings.Contains(user.Body, "<script") {
		t.Fatal("iframe payload missing")
	}
}

func TestUserAgentCloakingRedirectsEveryNonCrawler(t *testing.T) {
	f := buildFixture(t)
	_, storeDom := f.mountStore(t, "NORTHFACEC")
	_, doorDom := f.mountDoorway(t, "NORTHFACEC", false, "http://"+storeDom+"/")
	// Even a referrer-less visitor is redirected.
	direct := f.web.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: BrowserUA})
	if direct.Status != 302 {
		t.Fatalf("UA cloaking must redirect non-crawlers: %+v", direct.Status)
	}
	crawler := f.web.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: CrawlerUA})
	if crawler.Status != 200 {
		t.Fatal("crawler must get content")
	}
}

func TestStoreSiteLandingAndCookies(t *testing.T) {
	f := buildFixture(t)
	st, dom := f.mountStore(t, "MSVALIDATE")
	resp := f.web.Fetch(Request{URL: "http://" + dom + "/", UserAgent: BrowserUA})
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	low := strings.ToLower(resp.Body)
	if !strings.Contains(low, "cart") || !strings.Contains(low, "checkout") {
		t.Fatal("store landing page lacks cart/checkout")
	}
	var hasPlatform, hasProcessor bool
	for _, c := range resp.Cookies {
		if strings.HasPrefix(c, "zenid=") || strings.HasPrefix(c, "frontend=") {
			hasPlatform = true
		}
		if strings.Contains(c, st.Processor.Name+"_session=") {
			hasProcessor = true
		}
	}
	if !hasPlatform || !hasProcessor {
		t.Fatalf("detection cookies missing: %v", resp.Cookies)
	}
}

func TestStoreOrderEndpointMonotone(t *testing.T) {
	f := buildFixture(t)
	_, dom := f.mountStore(t, "VERA")
	extract := func() int64 {
		resp := f.web.Fetch(Request{URL: "http://" + dom + "/order/new", UserAgent: BrowserUA})
		var n int64
		idx := strings.Index(resp.Body, "Order No. ")
		if idx < 0 {
			t.Fatalf("no order number in %q", resp.Body)
		}
		rest := resp.Body[idx+len("Order No. "):]
		for _, c := range rest {
			if c < '0' || c > '9' {
				break
			}
			n = n*10 + int64(c-'0')
		}
		return n
	}
	a, b := extract(), extract()
	if b != a+1 {
		t.Fatalf("order numbers not sequential: %d then %d", a, b)
	}
}

func TestAWStatsExposure(t *testing.T) {
	f := buildFixture(t)
	st, dom := f.mountStore(t, "BIGLOVE")
	st.RecordDay(0, 50, 280, 2, map[string]int{"door.com": 30})
	resp := f.web.Fetch(Request{URL: "http://" + dom + "/awstats/awstats.pl?config=" + dom,
		UserAgent: BrowserUA})
	if st.AWStatsPublic {
		if resp.Status != 200 || !strings.Contains(resp.Body, "AWStats") {
			t.Fatalf("public AWStats not served: %d", resp.Status)
		}
	} else if resp.Status != 403 {
		t.Fatalf("private AWStats must 403, got %d", resp.Status)
	}
}

func TestSeizureNoticeTakeover(t *testing.T) {
	f := buildFixture(t)
	_, dom := f.mountStore(t, "PHP?P=")
	f.web.Register(dom, &SeizureNoticeSite{
		Firm: "Greer, Burns & Crain", CaseID: "14-cv-00099",
		Domains: []string{dom}, Gen: f.gen,
	})
	resp := f.web.Fetch(Request{URL: "http://" + dom + "/any/path", UserAgent: BrowserUA})
	if !strings.Contains(resp.Body, "14-cv-00099") {
		t.Fatal("seized domain must serve the notice on every path")
	}
}

func TestFetchFollowChain(t *testing.T) {
	f := buildFixture(t)
	_, storeDom := f.mountStore(t, "KEY")
	_, doorDom := f.mountDoorway(t, "KEY", false, "http://"+storeDom+"/")
	resp, finalURL := f.web.FetchFollow(Request{
		URL: "http://" + doorDom + "/?key=cheap+goods", UserAgent: BrowserUA,
		Referrer: SearchReferrer}, 5)
	if resp.Status != 200 {
		t.Fatalf("final status = %d", resp.Status)
	}
	if !strings.Contains(finalURL, storeDom) {
		t.Fatalf("final URL = %q, want store", finalURL)
	}
	if !strings.Contains(strings.ToLower(resp.Body), "checkout") {
		t.Fatal("landing page must be the store")
	}
}

func TestUnknownHost404(t *testing.T) {
	f := buildFixture(t)
	if resp := f.web.Fetch(Request{URL: "http://nosuch.example/"}); resp.Status != 404 {
		t.Fatalf("status = %d", resp.Status)
	}
	if resp := f.web.Fetch(Request{URL: "::bad::"}); resp.Status != 400 {
		t.Fatalf("bad URL status = %d", resp.Status)
	}
}

func TestServeHTTPOverRealSocket(t *testing.T) {
	f := buildFixture(t)
	_, storeDom := f.mountStore(t, "KEY")
	_, doorDom := f.mountDoorway(t, "KEY", false, "http://"+storeDom+"/")

	srv := httptest.NewServer(f.web)
	defer srv.Close()

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	// Crawler fetch via simhost query routing.
	req, _ := http.NewRequest("GET", srv.URL+"/?simhost="+doorDom+"&u=/", nil)
	req.Header.Set("User-Agent", CrawlerUA)
	req.Header.Set(DayHeader, "3")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "cheap brand goods") {
		t.Fatalf("crawler over HTTP: %d %q", resp.StatusCode, body[:60])
	}

	// Search user gets a 302 with Location.
	req2, _ := http.NewRequest("GET", srv.URL+"/?simhost="+doorDom+"&u=/", nil)
	req2.Header.Set("User-Agent", BrowserUA)
	req2.Header.Set("Referer", SearchReferrer)
	resp2, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 302 {
		t.Fatalf("user over HTTP: %d", resp2.StatusCode)
	}
	if loc := resp2.Header.Get("Location"); !strings.Contains(loc, storeDom) {
		t.Fatalf("Location = %q", loc)
	}

	// Store fetch sets cookies over real HTTP.
	req3, _ := http.NewRequest("GET", srv.URL+"/?simhost="+storeDom+"&u=/", nil)
	req3.Header.Set("User-Agent", BrowserUA)
	resp3, err := client.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if len(resp3.Header.Values("Set-Cookie")) == 0 {
		t.Fatal("no cookies over HTTP")
	}
}

func TestRegisterReplaces(t *testing.T) {
	w := NewWeb()
	w.Register("a.com", &StaticSite{Body: "one"})
	w.Register("a.com", &StaticSite{Body: "two"})
	if resp := w.Fetch(Request{URL: "http://a.com/"}); resp.Body != "two" {
		t.Fatalf("body = %q", resp.Body)
	}
	if w.Domains() != 1 {
		t.Fatalf("domains = %d", w.Domains())
	}
}

// TestDomainNamesSorted pins the enumeration contract the service plane's
// /domains endpoint relies on: every registered domain, sorted, regardless
// of registration order.
func TestDomainNamesSorted(t *testing.T) {
	w := NewWeb()
	for _, d := range []string{"c.com", "a.com", "b.com"} {
		w.Register(d, &StaticSite{Body: d})
	}
	got := w.DomainNames()
	want := []string{"a.com", "b.com", "c.com"}
	if len(got) != len(want) {
		t.Fatalf("DomainNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DomainNames = %v, want %v", got, want)
		}
	}
	// Re-registration must not duplicate.
	w.Register("a.com", &StaticSite{Body: "again"})
	if n := len(w.DomainNames()); n != 3 {
		t.Fatalf("after re-register, %d names", n)
	}
}

func TestResolveURLRelative(t *testing.T) {
	if got := ResolveURL("http://a.com/x/y", "/z"); got != "http://a.com/z" {
		t.Fatalf("resolve = %q", got)
	}
	if got := ResolveURL("http://a.com/", "http://b.com/q"); got != "http://b.com/q" {
		t.Fatalf("absolute resolve = %q", got)
	}
}

func TestDoorwayWithNoTargetFailsOpen(t *testing.T) {
	// A doorway whose campaign has gone dark must not 500; users see the
	// original site.
	f := buildFixture(t)
	_, doorDom := f.mountDoorway(t, "KEY", false, "")
	resp := f.web.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: BrowserUA,
		Referrer: SearchReferrer})
	if resp.Status != 200 {
		t.Fatalf("dark doorway status = %d", resp.Status)
	}
}

func TestStoreOrderEndpointUnderPaymentOutage(t *testing.T) {
	f := buildFixture(t)
	st, dom := f.mountStore(t, "JSUS")
	st.DisableProcessor(100)
	// Before the outage the checkout works.
	before := f.web.Fetch(Request{URL: "http://" + dom + "/order/new",
		UserAgent: BrowserUA, Day: 50})
	if before.Status != 200 || !strings.Contains(before.Body, "Order No.") {
		t.Fatalf("pre-outage order failed: %d", before.Status)
	}
	// After the outage the site stays up but checkout fails softly.
	after := f.web.Fetch(Request{URL: "http://" + dom + "/order/new",
		UserAgent: BrowserUA, Day: 150})
	if after.Status != 200 || strings.Contains(after.Body, "Order No.") {
		t.Fatalf("post-outage order should fail softly: %d %q", after.Status, after.Body)
	}
	if !strings.Contains(after.Body, "Payment error") {
		t.Fatal("payment error page missing")
	}
	// The landing page itself is unaffected.
	landing := f.web.Fetch(Request{URL: "http://" + dom + "/",
		UserAgent: BrowserUA, Day: 150})
	if landing.Status != 200 || !strings.Contains(strings.ToLower(landing.Body), "cart") {
		t.Fatal("landing page must survive a payment outage")
	}
}
