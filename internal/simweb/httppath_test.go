package simweb

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// hopSite serves a redirect maze for the wire tests: "/" 302s to a relative
// path, "/landing" answers, "/loop" redirects forever, "/nowhere" sends a
// 302 with no Location.
type hopSite struct{}

func (hopSite) Serve(req Request) Response {
	switch {
	case strings.HasSuffix(req.URL, "/landing"):
		return Response{Status: 200, Body: "landed"}
	case strings.HasSuffix(req.URL, "/loop"):
		return Response{Status: 302, Location: "/loop"}
	case strings.HasSuffix(req.URL, "/nowhere"):
		return Response{Status: 302}
	default:
		return Response{Status: 302, Location: "/landing"}
	}
}

// TestHTTPMalformedURLs: bad URLs must come back as determinate 400s on
// both sides of the wire, never as transport errors or panics.
func TestHTTPMalformedURLs(t *testing.T) {
	web := NewWeb()
	srv := httptest.NewServer(web)
	defer srv.Close()
	hf := NewHTTPFetcher(srv.URL)

	for _, raw := range []string{"::bad::", "http://%zz/", "not a url", ""} {
		if resp := hf.Fetch(Request{URL: raw}); resp.Status != 400 {
			t.Errorf("Fetch(%q) status = %d, want 400", raw, resp.Status)
		}
	}
	// Server side: a request whose reconstructed URL has no registered host
	// (the listener's own IP) is a 404, served — not a dropped connection.
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown host over wire: %d, want 404", resp.StatusCode)
	}
	// And a malformed simhost (spaces) still yields an HTTP answer.
	resp2, err := http.Get(srv.URL + "/?simhost=" + "bad%20host")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 && resp2.StatusCode != 404 {
		t.Fatalf("malformed simhost over wire: %d, want 400/404", resp2.StatusCode)
	}
}

// TestHTTPFallbackDomains: unregistered domains reach the lazy fallback
// factory through the real net/http handler, are materialised exactly once,
// and factory refusals surface as 404s.
func TestHTTPFallbackDomains(t *testing.T) {
	web := NewWeb()
	web.SetFallback(func(domain string) Site {
		if !strings.HasSuffix(domain, ".tail.example") {
			return nil
		}
		return staticSite{body: "tail page for " + domain}
	})
	srv := httptest.NewServer(web)
	defer srv.Close()
	hf := NewHTTPFetcher(srv.URL)

	resp := hf.Fetch(Request{URL: "http://blog42.tail.example/post"})
	if resp.Status != 200 || !strings.Contains(resp.Body, "blog42.tail.example") {
		t.Fatalf("fallback domain over wire: %d %q", resp.Status, resp.Body)
	}
	if n := web.Domains(); n != 1 {
		t.Fatalf("fallback site not cached after first hit: %d domains", n)
	}
	// Second hit serves the cached site (still one registration).
	hf.Fetch(Request{URL: "http://blog42.tail.example/post"})
	if n := web.Domains(); n != 1 {
		t.Fatalf("fallback re-materialised: %d domains", n)
	}
	if resp := hf.Fetch(Request{URL: "http://other.example/"}); resp.Status != 404 {
		t.Fatalf("refused fallback over wire: %d, want 404", resp.Status)
	}
}

// staticSite answers every request with a fixed body.
type staticSite struct{ body string }

func (s staticSite) Serve(Request) Response { return Response{Status: 200, Body: s.body} }

// TestHTTPRedirectSemantics: 3xx handling through the real handler — the
// Location header crosses the wire verbatim, the client never auto-follows
// (redirect policy belongs to FetchFollow), relative Locations resolve
// against the simulated URL, redirect loops stop at the hop budget, and a
// 3xx without Location is returned as-is.
func TestHTTPRedirectSemantics(t *testing.T) {
	web := NewWeb()
	web.Register("maze.example", hopSite{})
	srv := httptest.NewServer(web)
	defer srv.Close()
	hf := NewHTTPFetcher(srv.URL)

	// Fetch does not follow; the relative Location arrives untouched.
	resp := hf.Fetch(Request{URL: "http://maze.example/"})
	if resp.Status != 302 || resp.Location != "/landing" {
		t.Fatalf("redirect over wire: %d %q", resp.Status, resp.Location)
	}
	// FetchFollow resolves it against the simulated host — not against the
	// real listener's address.
	final, finalURL := hf.FetchFollow(Request{URL: "http://maze.example/"}, 5)
	if final.Status != 200 || final.Body != "landed" {
		t.Fatalf("follow over wire: %d %q", final.Status, final.Body)
	}
	if finalURL != "http://maze.example/landing" {
		t.Fatalf("finalURL = %q, want the simulated landing URL", finalURL)
	}
	// A loop exhausts the hop budget and returns the last 302.
	looped, _ := hf.FetchFollow(Request{URL: "http://maze.example/loop"}, 4)
	if looped.Status != 302 {
		t.Fatalf("loop over wire: %d, want 302 after hop budget", looped.Status)
	}
	// A 302 with no Location is a final answer.
	dead, deadURL := hf.FetchFollow(Request{URL: "http://maze.example/nowhere"}, 4)
	if dead.Status != 302 || dead.Location != "" || deadURL != "http://maze.example/nowhere" {
		t.Fatalf("locationless 302 over wire: %d %q %q", dead.Status, dead.Location, deadURL)
	}
}

// TestHTTPRawBodyOnErrorStatuses: error statuses still deliver their bodies
// over the wire (the crawler reads 404 pages to confirm dead URLs).
func TestHTTPRawBodyOnErrorStatuses(t *testing.T) {
	web := NewWeb()
	srv := httptest.NewServer(web)
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL+"/?simhost=ghost.example", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 404 || !strings.Contains(string(b), "no such host") {
		t.Fatalf("404 body lost over wire: %d %q", resp.StatusCode, b)
	}
}
