package simweb

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/simclock"
)

// dayEchoSite proves the simulation day crosses the wire.
type dayEchoSite struct{}

func (dayEchoSite) Serve(req Request) Response {
	return Response{Status: 200, Body: "day=" + strings.Repeat("x", int(req.Day))}
}

func TestHTTPFetcherRoundTrip(t *testing.T) {
	f := buildFixture(t)
	st, storeDom := f.mountStore(t, "KEY")
	_, doorDom := f.mountDoorway(t, "KEY", false, "http://"+storeDom+"/")
	_ = st

	srv := httptest.NewServer(f.web)
	defer srv.Close()
	hf := NewHTTPFetcher(srv.URL)

	// Crawler view over the wire.
	crawler := hf.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: CrawlerUA})
	if crawler.Status != 200 || !strings.Contains(crawler.Body, "cheap brand goods") {
		t.Fatalf("crawler over wire: %d", crawler.Status)
	}

	// User view: 302 with Location (not auto-followed).
	user := hf.Fetch(Request{URL: "http://" + doorDom + "/", UserAgent: BrowserUA,
		Referrer: SearchReferrer})
	if user.Status != 302 || !strings.Contains(user.Location, storeDom) {
		t.Fatalf("user over wire: %d %q", user.Status, user.Location)
	}

	// FetchFollow lands on the store and carries cookies.
	final, finalURL := hf.FetchFollow(Request{URL: "http://" + doorDom + "/",
		UserAgent: BrowserUA, Referrer: SearchReferrer}, 5)
	if final.Status != 200 || !strings.Contains(finalURL, storeDom) {
		t.Fatalf("follow over wire: %d %q", final.Status, finalURL)
	}
	if len(final.Cookies) == 0 {
		t.Fatal("cookies lost over the wire")
	}
	if !strings.Contains(strings.ToLower(final.Body), "checkout") {
		t.Fatal("store body lost over the wire")
	}
}

func TestHTTPFetcherCarriesDay(t *testing.T) {
	web := NewWeb()
	web.Register("echo.example", dayEchoSite{})
	srv := httptest.NewServer(web)
	defer srv.Close()
	hf := NewHTTPFetcher(srv.URL)
	resp := hf.Fetch(Request{URL: "http://echo.example/", Day: simclock.Day(7)})
	if resp.Body != "day="+strings.Repeat("x", 7) {
		t.Fatalf("day not carried: %q", resp.Body)
	}
}

func TestHTTPFetcherPreservesQuery(t *testing.T) {
	f := buildFixture(t)
	st, storeDom := f.mountStore(t, "VERA")
	_ = st
	srv := httptest.NewServer(f.web)
	defer srv.Close()
	hf := NewHTTPFetcher(srv.URL)
	resp := hf.Fetch(Request{URL: "http://" + storeDom + "/order/new?x=1", UserAgent: BrowserUA})
	if resp.Status != 200 || !strings.Contains(resp.Body, "Order No.") {
		t.Fatalf("order over wire: %d", resp.Status)
	}
}

func TestHTTPFetcherBadInputs(t *testing.T) {
	hf := NewHTTPFetcher("http://127.0.0.1:1") // nothing listening
	if resp := hf.Fetch(Request{URL: "::bad::"}); resp.Status != 400 {
		t.Fatalf("bad url status = %d", resp.Status)
	}
	if resp := hf.Fetch(Request{URL: "http://x.example/"}); resp.Err == nil || !resp.Failed() {
		t.Fatalf("dead server must fail via the error channel: %+v", resp)
	}
}
