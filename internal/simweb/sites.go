package simweb

import (
	"fmt"
	"net/url"
	"strings"
	"sync"

	"repro/internal/analytics"
	"repro/internal/campaign"
	"repro/internal/htmlgen"
	"repro/internal/simclock"
	"repro/internal/store"
)

// DoorwaySite is a compromised legitimate site hosting a campaign's cloaked
// doorway pages. Its Resolve hook maps a day to the absolute URL of the
// storefront the campaign currently forwards this doorway's traffic to; the
// world wires it so that seizure reactions and proactive rotation change
// where doorways send users, with the campaign's reaction delay applied.
type DoorwaySite struct {
	Doorway *campaign.Doorway
	Gen     *htmlgen.Generator
	Terms   []string // the vertical's monitored terms (keyword corpus)
	// Resolve returns the current store URL for this doorway's campaign and
	// vertical.
	Resolve func(d simclock.Day) string
	// JSRedirect selects the JavaScript redirect variant over HTTP 302 for
	// redirect-cloaking doorways.
	JSRedirect bool
}

// Serve implements Site with the cloaking semantics of §3.1.1.
func (s *DoorwaySite) Serve(req Request) Response {
	isCrawler := strings.Contains(req.UserAgent, "Googlebot")
	fromSearch := strings.Contains(req.Referrer, "google.") ||
		strings.Contains(req.Referrer, "/search")
	target := s.Resolve(req.Day)

	switch s.Doorway.Campaign.Cloaking {
	case campaign.IframeCloaking:
		// Everyone receives the same document; only a rendering visitor
		// discovers the full-page iframe.
		base := s.Gen.DoorwayCrawlerPage(s.Doorway, s.Terms)
		if target == "" {
			return Response{Status: 200, Body: base}
		}
		return Response{Status: 200,
			Body: s.Gen.CloakedDoorwayUserPage(base, s.Doorway.ID, target)}
	case campaign.UserAgentCloaking:
		if isCrawler {
			return Response{Status: 200, Body: s.Gen.DoorwayCrawlerPage(s.Doorway, s.Terms)}
		}
		if target == "" {
			return Response{Status: 200, Body: s.Gen.CompromisedOriginalPage(s.Doorway.Domain)}
		}
		return Response{Status: 302, Location: target, Body: "redirecting"}
	default: // RedirectCloaking
		if isCrawler {
			return Response{Status: 200, Body: s.Gen.DoorwayCrawlerPage(s.Doorway, s.Terms)}
		}
		if !fromSearch || target == "" {
			// Direct visitors see the original site, keeping the
			// compromise invisible to its owner.
			return Response{Status: 200, Body: s.Gen.CompromisedOriginalPage(s.Doorway.Domain)}
		}
		if s.JSRedirect {
			base := s.Gen.CompromisedOriginalPage(s.Doorway.Domain)
			return Response{Status: 200,
				Body: s.Gen.InjectRedirect(base, s.Doorway.ID, target)}
		}
		return Response{Status: 302, Location: target, Body: "redirecting"}
	}
}

// StoreSite serves a counterfeit storefront. One StoreSite may be
// registered under several domains over its lifetime; seized domains are
// re-registered to a SeizureNoticeSite by the intervention engine, so this
// site only ever sees traffic for domains the store still controls.
type StoreSite struct {
	Store *store.Store
	Gen   *htmlgen.Generator
	// Window is needed to render analytics reports with civil dates.
	Window simclock.Window

	// cookieOnce guards the lazily built detection cookies; they depend
	// only on the store's immutable identity, and the store is fetched on
	// every observe pass, so rebuilding them per request was a steady
	// allocation tax.
	cookieOnce sync.Once
	cookieVals []string
	// checkoutOnce guards the cart/checkout body, equally static per store.
	checkoutOnce sync.Once
	checkoutBody string
}

// Serve implements Site: the landing page with detection-relevant cookies,
// cart/checkout pages, an order-creation endpoint, and (for stores that
// left them public) the AWStats report.
func (s *StoreSite) Serve(req Request) Response {
	u, err := url.Parse(req.URL)
	if err != nil {
		return Response{Status: 400, Body: "bad url"}
	}
	dep := s.Store.Dep
	switch {
	case strings.HasPrefix(u.Path, analytics.DefaultPath):
		if !s.Store.AWStatsPublic {
			return Response{Status: 403, Body: "forbidden"}
		}
		snap := s.Store.Snapshot()
		return Response{Status: 200, Body: analytics.Render(
			u.Hostname(), s.Window, snap.Visits, snap.PageViews, snap.Referrers)}
	case strings.HasPrefix(u.Path, "/order/new"):
		// Stores belonging to a collapsed campaign stop processing orders
		// (the paper observed KEY's stores doing exactly this after its
		// PSR collapse).
		if dep.Campaign.OrdersHalted(req.Day) {
			return Response{Status: 503, Body: "store closed"}
		}
		// A payment-level intervention leaves the site up but checkout
		// broken.
		if s.Store.PaymentHalted(req.Day) {
			return Response{Status: 200, Body: "<html><body><h1>Payment error</h1><p>Your card could not be processed. Please try again later.</p></body></html>"}
		}
		// Creating an order allocates the next order number before any
		// payment details are taken — the property purchase-pair exploits.
		n := s.Store.PlaceOrder()
		body := fmt.Sprintf(
			"<html><head><title>Order Confirmation</title></head><body><h1>Thank you</h1><div class=\"order-number\">Order No. %d</div><p>Proceed to payment processing.</p></body></html>", n)
		return Response{Status: 200, Body: body, Cookies: s.cookies()}
	case strings.Contains(u.Path, "cart") || strings.HasPrefix(u.Path, "/checkout"):
		s.checkoutOnce.Do(func() {
			s.checkoutBody = fmt.Sprintf(
				"<html><head><title>Checkout - %s</title></head><body><h1>Shopping Cart</h1><a href=\"/order/new\">Place order</a><div class=\"processor\" data-bin=\"%s\">%s</div></body></html>",
				dep.Brand, s.Store.Processor.BIN, s.Store.Processor.Name)
		})
		return Response{Status: 200, Body: s.checkoutBody, Cookies: s.cookies()}
	default:
		return Response{Status: 200,
			Body:    s.Gen.StorePage(dep, u.Hostname()),
			Cookies: s.cookies(),
		}
	}
}

// cookies returns the Set-Cookie values the store detection heuristic keys
// on: the e-commerce platform session, the payment processor session, and
// the analytics cookie (§4.1.3).
func (s *StoreSite) cookies() []string {
	s.cookieOnce.Do(func() {
		plat := s.Gen.PlatformFor(s.Store.Dep)
		out := []string{
			fmt.Sprintf("%s=%s; path=/", plat.Cookie, sessionToken(s.Store.ID())),
			fmt.Sprintf("%s_session=%s; path=/", s.Store.Processor.Name, sessionToken(s.Store.ID()+"p")),
		}
		if id := s.Store.Dep.Campaign.Signature.AnalyticsID; strings.HasPrefix(id, "cnzz-") {
			out = append(out, fmt.Sprintf("CNZZDATA%s=1; path=/", id[5:]))
		}
		s.cookieVals = out
	})
	return s.cookieVals
}

func sessionToken(seed string) string {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(seed); i++ {
		h ^= uint64(seed[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// BenignSite serves legitimate search results.
type BenignSite struct {
	Domain string
	Term   string
	Gen    *htmlgen.Generator
}

// Serve implements Site.
func (s *BenignSite) Serve(Request) Response {
	return Response{Status: 200, Body: s.Gen.BenignResultPage(s.Domain, s.Term)}
}

// SeizureNoticeSite replaces a seized domain: every path serves the serving
// notice with the court case identifier and co-seized domains.
type SeizureNoticeSite struct {
	Firm    string
	CaseID  string
	Domains []string
	Gen     *htmlgen.Generator
}

// Serve implements Site.
func (s *SeizureNoticeSite) Serve(Request) Response {
	return Response{Status: 200, Body: s.Gen.SeizureNotice(s.Firm, s.CaseID, s.Domains)}
}

// StaticSite serves one fixed body for every path (used for C&C hosts and
// miscellaneous infrastructure).
type StaticSite struct{ Body string }

// Serve implements Site.
func (s *StaticSite) Serve(Request) Response {
	return Response{Status: 200, Body: s.Body}
}
