package simweb

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// HTTPFetcher is the socket-side counterpart of (*Web).ServeHTTP: it
// implements Fetcher by issuing real HTTP requests to a server exposing a
// simulated web, carrying the simulated host in the simhost query parameter
// and the simulation day in DayHeader. It lets the identical crawler code
// run in-process or across a network.
type HTTPFetcher struct {
	// Base is the real server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Client defaults to a non-redirect-following client: redirect
	// semantics belong to FetchFollow, exactly as in-process.
	Client *http.Client
}

// NewHTTPFetcher returns a fetcher for a server at base.
func NewHTTPFetcher(base string) *HTTPFetcher {
	return &HTTPFetcher{
		Base: base,
		Client: &http.Client{
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}
}

// Fetch implements Fetcher over the wire.
func (f *HTTPFetcher) Fetch(req Request) Response {
	u, err := url.Parse(req.URL)
	if err != nil || u.Host == "" {
		return Response{Status: 400, Body: "bad request"}
	}
	q := url.Values{}
	q.Set("simhost", u.Hostname())
	path := u.Path
	if path == "" {
		path = "/"
	}
	if u.RawQuery != "" {
		path += "?" + u.RawQuery
	}
	q.Set("u", path)
	hreq, err := http.NewRequest("GET", f.Base+"/?"+q.Encode(), nil)
	if err != nil {
		return Response{Status: 400, Body: err.Error()}
	}
	hreq.Header.Set("User-Agent", req.UserAgent)
	if req.Referrer != "" {
		hreq.Header.Set("Referer", req.Referrer)
	}
	hreq.Header.Set(DayHeader, strconv.Itoa(int(req.Day)))
	if req.Attempt > 0 {
		hreq.Header.Set(AttemptHeader, strconv.Itoa(req.Attempt))
	}
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		// Transport failure (refused, reset, timeout): no HTTP exchange —
		// surface it on the error channel so retry layers can see it.
		return Response{Status: 0, Err: fmt.Errorf("fetch error: %w", err)}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		// The body was cut off mid-transfer (Content-Length mismatch /
		// unexpected EOF): a truncated document, not a usable one.
		return Response{
			Status:    resp.StatusCode,
			Body:      string(body),
			Truncated: true,
			Err:       fmt.Errorf("read error: %w", err),
		}
	}
	out := Response{
		Status:   resp.StatusCode,
		Body:     string(body),
		Location: resp.Header.Get("Location"),
		Cookies:  resp.Header.Values("Set-Cookie"),
	}
	return out
}

// FetchFollow implements Fetcher, following up to maxHops redirects while
// preserving the original referrer, mirroring (*Web).FetchFollow.
func (f *HTTPFetcher) FetchFollow(req Request, maxHops int) (Response, string) {
	cur := req
	for hop := 0; ; hop++ {
		resp := f.Fetch(cur)
		if resp.Status < 300 || resp.Status >= 400 || resp.Location == "" || hop >= maxHops {
			return resp, cur.URL
		}
		cur = Request{
			URL:       ResolveURL(cur.URL, resp.Location),
			UserAgent: cur.UserAgent,
			Referrer:  cur.Referrer,
			Day:       cur.Day,
		}
	}
}

var _ Fetcher = (*HTTPFetcher)(nil)
