// Package simweb implements the synthetic web the study crawls: doorway
// pages on compromised sites (with redirect-, user-agent- and
// iframe-cloaking), counterfeit storefronts with order endpoints and
// analytics pages, benign results, and seizure notice pages. The web is
// reachable two ways: an in-process Fetcher for the large-scale daily
// crawls, and a net/http handler so the identical content can be served and
// crawled over a real network socket.
package simweb

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/simclock"
)

// User-agent strings that select the visitor class, after the paper's
// observation that cloaking kits key on the self-identified crawler UA.
const (
	CrawlerUA = "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"
	BrowserUA = "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 Chrome/33.0 Safari/537.36"
)

// SearchReferrer is the referrer a click-through from a Google SERP carries.
const SearchReferrer = "http://www.google.com/search"

// Request is one fetch of a URL by some visitor class on a simulation day.
type Request struct {
	URL       string
	UserAgent string
	Referrer  string
	Day       simclock.Day
	// Attempt numbers retries of the same logical fetch (0 = first try).
	// Retry layers increment it so deterministic fault injection re-rolls
	// each attempt independently.
	Attempt int
}

// Response is the served result. A redirect is expressed via Status 302 and
// Location; bodies carry Set-Cookie values out of band for simplicity.
type Response struct {
	Status   int
	Body     string
	Location string   // redirect target for 3xx
	Cookies  []string // Set-Cookie payloads
	// Err is the fetch's error channel: transport-level failures (timeouts,
	// DNS failures, truncated transfers) that produced no usable document.
	// A response with Err set must be treated as failed regardless of
	// Status.
	Err error
	// Truncated marks a body that arrived incomplete (detected the way real
	// crawlers do, via Content-Length mismatch or connection reset). A
	// truncated document must not be semantically diffed.
	Truncated bool
}

// Failed reports whether the fetch produced no usable document: a transport
// error, a truncated body, no HTTP exchange at all (Status 0), or a server
// error. Client errors (4xx) are usable answers — a 404 is a determinate
// "nothing here", not a failure.
func (r Response) Failed() bool {
	return r.Err != nil || r.Truncated || r.Status == 0 || r.Status >= 500
}

// Site serves requests for one domain.
type Site interface {
	Serve(req Request) Response
}

// Web is the domain registry. The zero value is not usable; use NewWeb.
type Web struct {
	mu       sync.RWMutex
	sites    map[string]Site
	fallback func(domain string) Site
}

// NewWeb returns an empty web.
func NewWeb() *Web {
	return &Web{sites: make(map[string]Site)}
}

// SetFallback installs a factory consulted for domains with no explicit
// registration. The returned site is cached. This lets the long tail of
// benign result domains be materialised lazily instead of up front.
func (w *Web) SetFallback(f func(domain string) Site) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fallback = f
}

// Register routes a domain to a site, replacing any previous registration
// (which is exactly what a domain seizure does).
func (w *Web) Register(domain string, s Site) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sites[domain] = s
}

// Lookup returns the site currently serving a domain, consulting the
// fallback factory for unregistered domains.
func (w *Web) Lookup(domain string) (Site, bool) {
	w.mu.RLock()
	s, ok := w.sites[domain]
	fb := w.fallback
	w.mu.RUnlock()
	if ok {
		return s, true
	}
	if fb == nil {
		return nil, false
	}
	site := fb(domain)
	if site == nil {
		return nil, false
	}
	w.mu.Lock()
	// Another goroutine may have won the race; keep the first registration.
	if cur, dup := w.sites[domain]; dup {
		w.mu.Unlock()
		return cur, true
	}
	w.sites[domain] = site
	w.mu.Unlock()
	return site, true
}

// Domains returns the number of registered domains.
func (w *Web) Domains() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.sites)
}

// DomainNames returns the registered domain names in sorted order, so
// external drivers can enumerate the web deterministically. Lazily
// materialised fallback domains appear only once fetched.
func (w *Web) DomainNames() []string {
	w.mu.RLock()
	names := make([]string, 0, len(w.sites))
	for d := range w.sites {
		names = append(names, d)
	}
	w.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Fetch resolves and serves a request in process. Unknown hosts return 404;
// malformed URLs return 400.
func (w *Web) Fetch(req Request) Response {
	u, err := url.Parse(req.URL)
	if err != nil || u.Host == "" {
		return Response{Status: 400, Body: "bad request"}
	}
	site, ok := w.Lookup(u.Hostname())
	if !ok {
		return Response{Status: 404, Body: "no such host"}
	}
	return site.Serve(req)
}

// FetchFollow fetches and follows up to maxHops HTTP redirects, preserving
// the original referrer (as browsers do on cross-site redirects). It
// returns the final response and the final URL.
func (w *Web) FetchFollow(req Request, maxHops int) (Response, string) {
	cur := req
	for hop := 0; ; hop++ {
		resp := w.Fetch(cur)
		if resp.Status < 300 || resp.Status >= 400 || resp.Location == "" || hop >= maxHops {
			return resp, cur.URL
		}
		cur = Request{
			URL:       ResolveURL(cur.URL, resp.Location),
			UserAgent: cur.UserAgent,
			Referrer:  cur.Referrer,
			Day:       cur.Day,
			Attempt:   cur.Attempt,
		}
	}
}

// ResolveURL resolves a possibly relative location against a base URL.
func ResolveURL(base, loc string) string {
	b, err := url.Parse(base)
	if err != nil {
		return loc
	}
	l, err := url.Parse(loc)
	if err != nil {
		return loc
	}
	return b.ResolveReference(l).String()
}

// DayHeader carries the simulation day over real HTTP.
const DayHeader = "X-Sim-Day"

// AttemptHeader carries the retry attempt number over real HTTP, so
// server-side fault injection re-rolls per attempt exactly like the
// in-process path.
const AttemptHeader = "X-Sim-Attempt"

// ServeHTTP exposes the web over a real socket: the Host header selects the
// site, the standard User-Agent/Referer headers select the visitor class,
// and DayHeader (default 0) selects the simulation day.
func (w *Web) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	day := 0
	if v := r.Header.Get(DayHeader); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			day = n
		}
	}
	host := r.Host
	if h, _, ok := strings.Cut(host, ":"); ok {
		host = h
	}
	// Allow the domain to ride in a query parameter when the client cannot
	// set Host (e.g. plain http://127.0.0.1:port/?simhost=door.com&u=/path).
	if sh := r.URL.Query().Get("simhost"); sh != "" {
		host = sh
	}
	path := r.URL.Path
	if up := r.URL.Query().Get("u"); up != "" {
		path = up
	}
	resp := w.Fetch(Request{
		URL:       "http://" + host + path,
		UserAgent: r.Header.Get("User-Agent"),
		Referrer:  r.Header.Get("Referer"),
		Day:       simclock.Day(day),
	})
	for _, c := range resp.Cookies {
		rw.Header().Add("Set-Cookie", c)
	}
	if resp.Status >= 300 && resp.Status < 400 && resp.Location != "" {
		rw.Header().Set("Location", resp.Location)
	}
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	rw.WriteHeader(resp.Status)
	fmt.Fprint(rw, resp.Body)
}

// Fetcher is the read side of the web, implemented by *Web in process and
// by an HTTP client adapter for socket-based crawling.
type Fetcher interface {
	Fetch(req Request) Response
	FetchFollow(req Request, maxHops int) (Response, string)
}

var _ Fetcher = (*Web)(nil)
