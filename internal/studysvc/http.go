package studysvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	searchseizure "repro"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// Error codes carried in the {"error":{...}} envelope, stable for clients.
const (
	ErrCodeBadJSON       = "bad_json"
	ErrCodeInvalidSpec   = "invalid_spec"
	ErrCodeNotFound      = "not_found"
	ErrCodeNotFinished   = "not_finished"
	ErrCodeUnknownExp    = "unknown_experiment"
	ErrCodeShutdown      = "shutting_down"
	ErrCodeBodyTooLarge  = "body_too_large"
	ErrCodeInternalError = "internal"
)

// maxSpecBytes bounds a POST /v1/studies body; a launch spec is tiny.
const maxSpecBytes = 1 << 16

// apiError is the wire form of one API failure.
type apiError struct {
	Code    string                     `json:"code"`
	Message string                     `json:"message"`
	Fields  []searchseizure.FieldError `json:"fields,omitempty"`
}

// errorEnvelope wraps every non-2xx body: {"error": {code, message, fields}}.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// LatencyBuckets are the API latency histogram bounds in microseconds:
// fine enough under 1ms to resolve cached JSON serving, wide enough past
// 100ms to catch day-boundary stalls.
func LatencyBuckets() []float64 {
	return []float64{50, 100, 250, 500, 1000, 2500, 5000, 10000,
		25000, 50000, 100000, 250000, 1e6, 2.5e6, 5e6}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//sslint:ignore errflow the status line is already on the wire; an encode failure means the client hung up
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string, fields []searchseizure.FieldError) {
	writeJSON(w, status, errorEnvelope{Error: apiError{Code: code, Message: msg, Fields: fields}})
}

// instrument wraps a route with the service registry's per-route counter,
// latency histogram and the shared in-flight gauge. Metric names follow
// api_req_<route>_total / api_req_<route>_us so the loadtest and benchjson
// can find them without new machinery.
func instrument(reg *telemetry.Registry, route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reg.Gauge("api_inflight").Add(1)
		h.ServeHTTP(w, r)
		reg.Gauge("api_inflight").Add(-1)
		reg.Counter("api_req_" + route + "_total").Inc()
		reg.Histogram("api_req_"+route+"_us", LatencyBuckets()).
			Observe(float64(time.Since(start).Microseconds()))
	})
}

// Handler returns the versioned study API. Routes:
//
//	POST   /v1/studies                          launch (validated spec)
//	GET    /v1/studies                          list (includes recovered)
//	GET    /v1/studies/{id}                     status + resume cursor
//	DELETE /v1/studies/{id}                     graceful cancel at day boundary
//	GET    /v1/studies/{id}/events              NDJSON (or SSE) progress stream
//	GET    /v1/studies/{id}/experiments         experiment registry
//	GET    /v1/studies/{id}/experiments/{expID} one table as {id,title,text}
//	GET    /v1/studies/{id}/domains             simulated domains (for drivers)
//	GET    /v1/studies/{id}/web/                the study's simulated web,
//	                                            behind its own fault plan
//
// Everything except the web route is outside fault injection: a 5xx from
// /v1 is always a real failure.
func (m *Manager) Handler() http.Handler {
	reg := m.opts.Telemetry
	mux := http.NewServeMux()
	mux.Handle("POST /v1/studies", instrument(reg, "launch", http.HandlerFunc(m.handleLaunch)))
	mux.Handle("GET /v1/studies", instrument(reg, "list", http.HandlerFunc(m.handleList)))
	mux.Handle("GET /v1/studies/{id}", instrument(reg, "get", m.withStudy(m.handleGet)))
	mux.Handle("DELETE /v1/studies/{id}", instrument(reg, "delete", http.HandlerFunc(m.handleDelete)))
	mux.Handle("GET /v1/studies/{id}/events", instrument(reg, "events", m.withStudy(m.handleEvents)))
	mux.Handle("GET /v1/studies/{id}/experiments", instrument(reg, "experiments", m.withStudy(m.handleExperimentList)))
	mux.Handle("GET /v1/studies/{id}/experiments/{expID}", instrument(reg, "experiment", m.withStudy(m.handleExperiment)))
	mux.Handle("GET /v1/studies/{id}/domains", instrument(reg, "domains", m.withStudy(m.handleDomains)))
	mux.Handle("/v1/studies/{id}/web/", instrument(reg, "serp", http.HandlerFunc(m.handleWeb)))
	mux.Handle("/v1/", instrument(reg, "other", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "no such route", nil)
	})))
	return mux
}

// withStudy resolves {id} or answers a typed 404.
func (m *Manager) withStudy(fn func(http.ResponseWriter, *http.Request, *Handle)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, ErrCodeNotFound,
				fmt.Sprintf("no study %q", r.PathValue("id")), nil)
			return
		}
		fn(w, r, h)
	})
}

func (m *Manager) handleLaunch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadJSON, "reading body: "+err.Error(), nil)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, ErrCodeBodyTooLarge,
			fmt.Sprintf("spec exceeds %d bytes", maxSpecBytes), nil)
		return
	}
	var spec searchseizure.StudySpec
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadJSON, err.Error(), nil)
		return
	}
	h, err := m.Launch(spec)
	if err != nil {
		var verr *searchseizure.ValidationError
		switch {
		case errors.As(err, &verr):
			writeError(w, http.StatusBadRequest, ErrCodeInvalidSpec,
				"invalid study spec", verr.Fields)
		case strings.Contains(err.Error(), "shut down"):
			writeError(w, http.StatusServiceUnavailable, ErrCodeShutdown, err.Error(), nil)
		default:
			writeError(w, http.StatusInternalServerError, ErrCodeInternalError, err.Error(), nil)
		}
		return
	}
	w.Header().Set("Location", "/v1/studies/"+h.ID)
	writeJSON(w, http.StatusCreated, h.Status())
}

func (m *Manager) handleList(w http.ResponseWriter, _ *http.Request) {
	handles := m.List()
	out := struct {
		Studies []Status `json:"studies"`
	}{Studies: make([]Status, 0, len(handles))}
	for _, h := range handles {
		out.Studies = append(out.Studies, h.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Manager) handleGet(w http.ResponseWriter, _ *http.Request, h *Handle) {
	writeJSON(w, http.StatusOK, h.Status())
}

func (m *Manager) handleDelete(w http.ResponseWriter, r *http.Request) {
	h, ok := m.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			fmt.Sprintf("no study %q", r.PathValue("id")), nil)
		return
	}
	writeJSON(w, http.StatusAccepted, h.Status())
}

// handleEvents streams the study's progress log. Default framing is NDJSON
// (one Event per line); an Accept: text/event-stream request gets SSE
// ("data: <event-json>\n\n"). ?from=N skips already-seen events. The
// stream ends when the study is terminal and fully delivered, or when the
// client goes away.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request, h *Handle) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	next := 0
	if from := r.URL.Query().Get("from"); from != "" {
		if n, err := strconv.Atoi(from); err == nil && n > 0 {
			next = n
		}
	}
	enc := json.NewEncoder(w)
	for {
		evs, notify := h.EventsSince(next)
		for _, e := range evs {
			// A write failure means the client hung up mid-stream; the
			// request context will cancel momentarily, so just stop here.
			if sse {
				if _, err := io.WriteString(w, "data: "); err != nil {
					return
				}
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if sse {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return
				}
			}
		}
		next += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if len(evs) == 0 && terminal(h.State()) {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-h.done:
			// Terminal: loop once more to drain trailing events.
		}
	}
}

func (m *Manager) handleExperimentList(w http.ResponseWriter, _ *http.Request, h *Handle) {
	type expInfo struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out struct {
		Experiments []expInfo `json:"experiments"`
	}
	for _, e := range searchseizure.Experiments() {
		out.Experiments = append(out.Experiments, expInfo{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleExperiment computes one table over the study's finalized dataset.
// Cancelled studies work too — their partial dataset is finalized at the
// day boundary where they stopped — but a still-running study answers 409:
// its dataset is mid-mutation and must not be read.
func (m *Manager) handleExperiment(w http.ResponseWriter, r *http.Request, h *Handle) {
	expID := r.PathValue("expID")
	e, ok := experiments.ByID(expID)
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeUnknownExp,
			fmt.Sprintf("no experiment %q (see /v1/studies/%s/experiments)", expID, h.ID), nil)
		return
	}
	data, ok := h.Dataset()
	if !ok {
		writeError(w, http.StatusConflict, ErrCodeNotFinished,
			fmt.Sprintf("study %s is %s; experiments need a finished run", h.ID, h.State()), nil)
		return
	}
	tbl := export.Table{ID: e.ID, Title: e.Title, Result: e.Run(data)}
	writeJSON(w, http.StatusOK, tbl)
}

// handleDomains lists the study's registered simulated domains so external
// drivers (the loadtest) can fetch real pages through the web route.
func (m *Manager) handleDomains(w http.ResponseWriter, r *http.Request, h *Handle) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		if n, err := strconv.Atoi(q); err == nil {
			limit = n
		}
	}
	names := h.study.World.Web.DomainNames()
	if limit > 0 && limit < len(names) {
		names = names[:limit]
	}
	writeJSON(w, http.StatusOK, struct {
		Domains []string `json:"domains"`
	}{Domains: names})
}

// handleWeb serves the study's simulated web under its own fault plan —
// the only fault-injected surface of the API. Injected 502s carry the
// "(injected)" body marker, so load drivers can tell them from real
// failures.
func (m *Manager) handleWeb(w http.ResponseWriter, r *http.Request) {
	h, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			fmt.Sprintf("no study %q", r.PathValue("id")), nil)
		return
	}
	var web http.Handler = h.study.World.Web
	web = http.TimeoutHandler(web, 5*time.Second, "simulated web: render timeout")
	web = faults.Handler(h.study.World.Faults, web)
	http.StripPrefix("/v1/studies/"+h.ID+"/web", web).ServeHTTP(w, r)
}
