package studysvc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func newTestServer(t *testing.T, budget, maxActive int) (*Manager, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.New()
	m, err := NewManager(Options{
		BaseDir: t.TempDir(), Budget: budget, MaxActive: maxActive, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv, reg
}

func decodeErr(t *testing.T, resp *http.Response) apiError {
	t.Helper()
	defer resp.Body.Close()
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not the envelope: %v", err)
	}
	return env.Error
}

// TestLaunchValidation400s is the typed-rejection contract: every bad
// field comes back as a 400 with a stable machine-readable code at a named
// field, and garbage that isn't a spec at all gets its own code.
func TestLaunchValidation400s(t *testing.T) {
	_, srv, _ := newTestServer(t, 1, 1)
	cases := []struct {
		name      string
		body      string
		wantCode  string
		wantField string // field+code of the first field error, for invalid_spec
		fieldCode string
	}{
		{"negative seed", `{"seed": -4}`, ErrCodeInvalidSpec, "seed", "negative"},
		{"unknown fault profile", `{"faults": "volcanic"}`, ErrCodeInvalidSpec, "faults", "unknown_profile"},
		{"negative days", `{"days": -1}`, ErrCodeInvalidSpec, "days", "negative"},
		{"unknown preset", `{"preset": "galactic"}`, ErrCodeInvalidSpec, "preset", "unknown_preset"},
		{"negative scale", `{"scale": -1.5}`, ErrCodeInvalidSpec, "scale", "out_of_range"},
		{"not json", `{"seed": `, ErrCodeBadJSON, "", ""},
		{"unknown field", `{"sed": 1}`, ErrCodeBadJSON, "", ""},
		{"wrong type", `{"seed": "one"}`, ErrCodeBadJSON, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/v1/studies", "application/json",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			apiErr := decodeErr(t, resp)
			if apiErr.Code != tc.wantCode {
				t.Fatalf("code %q, want %q", apiErr.Code, tc.wantCode)
			}
			if tc.wantField == "" {
				return
			}
			if len(apiErr.Fields) == 0 {
				t.Fatal("invalid_spec carried no field errors")
			}
			if f := apiErr.Fields[0]; f.Field != tc.wantField || f.Code != tc.fieldCode {
				t.Fatalf("field error {%s %s}, want {%s %s}",
					f.Field, f.Code, tc.wantField, tc.fieldCode)
			}
		})
	}
}

// TestHTTPStudyLifecycle drives the full happy path over the wire:
// launch, stream events, poll status, list experiments, fetch a table.
func TestHTTPStudyLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, srv, reg := newTestServer(t, 4, 2)

	spec := tinySpec(1)
	spec.Days = 3
	raw, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/studies", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("launch status %d, want 201", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" || st.Days != 3 {
		t.Fatalf("launch status %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/studies/"+st.ID {
		t.Fatalf("Location %q", loc)
	}

	// Stream NDJSON events until the stream closes at the terminal state.
	eresp, err := http.Get(srv.URL + "/v1/studies/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	eresp.Body.Close()
	days, sawComplete := 0, false
	for _, e := range events {
		if e.Type == "day" {
			days++
		}
		if e.Type == "state" && e.State == StateComplete {
			sawComplete = true
		}
	}
	if days != 3 || !sawComplete {
		t.Fatalf("stream carried %d day events (complete=%v): %+v", days, sawComplete, events)
	}

	// Status now reports the finished run and its fingerprint.
	gresp, err := http.Get(srv.URL + "/v1/studies/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(gresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if st.State != StateComplete || st.NextDay != 3 || st.DayFingerprint == "" {
		t.Fatalf("final status %+v", st)
	}

	// The listing shows the same study.
	lresp, err := http.Get(srv.URL + "/v1/studies")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Studies []Status `json:"studies"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(listing.Studies) != 1 || listing.Studies[0].ID != st.ID {
		t.Fatalf("listing %+v", listing)
	}

	// Experiment registry and one computed table.
	xresp, err := http.Get(srv.URL + "/v1/studies/" + st.ID + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var exps struct {
		Experiments []struct{ ID, Title string } `json:"experiments"`
	}
	if err := json.NewDecoder(xresp.Body).Decode(&exps); err != nil {
		t.Fatal(err)
	}
	xresp.Body.Close()
	if len(exps.Experiments) == 0 {
		t.Fatal("no experiments listed")
	}
	tresp, err := http.Get(srv.URL + "/v1/studies/" + st.ID + "/experiments/table1")
	if err != nil {
		t.Fatal(err)
	}
	var tbl struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Text  string `json:"text"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&tbl); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tbl.ID != "table1" || tbl.Text == "" {
		t.Fatalf("table %+v", tbl)
	}

	// The instrument layer recorded every route it served.
	snap := reg.Snapshot()
	for _, c := range []string{"api_req_launch_total", "api_req_events_total",
		"api_req_get_total", "api_req_list_total", "api_req_experiment_total"} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s never incremented", c)
		}
	}
	if snap.Histograms["api_req_get_us"].Count == 0 {
		t.Error("no get latency recorded")
	}
	_ = m
}

// TestHTTPCancelAndConflict: DELETE cancels at a day boundary (202), a
// running study's experiments answer 409 not_finished, unknown ids 404.
func TestHTTPCancelAndConflict(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, srv, _ := newTestServer(t, 2, 1)
	h, err := m.Launch(tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitForDay(t, h, 1)

	// Mid-run, the dataset is off limits.
	resp, err := http.Get(srv.URL + "/v1/studies/" + h.ID + "/experiments/table1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mid-run experiment status %d, want 409", resp.StatusCode)
	}
	if e := decodeErr(t, resp); e.Code != ErrCodeNotFinished {
		t.Fatalf("code %q, want %q", e.Code, ErrCodeNotFinished)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/studies/"+h.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("delete status %d, want 202", dresp.StatusCode)
	}
	dresp.Body.Close()
	waitDone(t, h)
	if h.State() != StateCancelled {
		t.Fatalf("state %s, want cancelled", h.State())
	}

	// A cancelled study's partial dataset is finalized: experiments work.
	presp, err := http.Get(srv.URL + "/v1/studies/" + h.ID + "/experiments/table1")
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel experiment status %d, want 200", presp.StatusCode)
	}
	presp.Body.Close()

	// Unknown experiment and unknown study are typed 404s.
	u404, err := http.Get(srv.URL + "/v1/studies/" + h.ID + "/experiments/table99")
	if err != nil {
		t.Fatal(err)
	}
	if u404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment status %d, want 404", u404.StatusCode)
	}
	if e := decodeErr(t, u404); e.Code != ErrCodeUnknownExp {
		t.Fatalf("code %q, want %q", e.Code, ErrCodeUnknownExp)
	}
	s404, err := http.Get(srv.URL + "/v1/studies/s-999999")
	if err != nil {
		t.Fatal(err)
	}
	if s404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown study status %d, want 404", s404.StatusCode)
	}
	if e := decodeErr(t, s404); e.Code != ErrCodeNotFound {
		t.Fatalf("code %q, want %q", e.Code, ErrCodeNotFound)
	}
}

// TestHTTPWebAndDomains: the study's simulated web is reachable through
// the API under its own fault plan, and the domains endpoint enumerates
// real fetchable pages.
func TestHTTPWebAndDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, srv, reg := newTestServer(t, 2, 1)
	spec := tinySpec(1)
	spec.Days = 1
	h, err := m.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, h)

	dresp, err := http.Get(srv.URL + "/v1/studies/" + h.ID + "/domains?limit=5")
	if err != nil {
		t.Fatal(err)
	}
	var doms struct {
		Domains []string `json:"domains"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&doms); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if len(doms.Domains) == 0 || len(doms.Domains) > 5 {
		t.Fatalf("domains %v", doms.Domains)
	}

	url := fmt.Sprintf("%s/v1/studies/%s/web/?simhost=%s&u=/", srv.URL, h.ID, doms.Domains[0])
	wresp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode >= 500 {
		t.Fatalf("faults-off web served %d", wresp.StatusCode)
	}
	if reg.Snapshot().Counters["api_req_serp_total"] == 0 {
		t.Error("serp route not instrumented")
	}
}

// TestEventsSSEFraming: Accept: text/event-stream switches framing.
func TestEventsSSEFraming(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, srv, _ := newTestServer(t, 2, 1)
	spec := tinySpec(1)
	spec.Days = 1
	h, err := m.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, h)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/studies/"+h.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("SSE line without data prefix: %q", line)
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE payload: %v", err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("SSE stream carried no events")
	}

	// ?from resumes mid-log.
	all, _ := h.EventsSince(0)
	fresp, err := http.Get(srv.URL + "/v1/studies/" + h.ID + "/events?from=" +
		fmt.Sprint(len(all)-1))
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	fsc := bufio.NewScanner(fresp.Body)
	rest := 0
	for fsc.Scan() {
		rest++
	}
	if rest != 1 {
		t.Fatalf("from=%d returned %d events, want 1", len(all)-1, rest)
	}
}

// TestCatchAll404Envelope pins the fallthrough route: an unknown /v1 path
// is instrumented like every real route and rejects with the structured
// envelope, not net/http's plain-text 404.
func TestCatchAll404Envelope(t *testing.T) {
	_, srv, reg := newTestServer(t, 1, 1)
	resp, err := http.Get(srv.URL + "/v1/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	apiErr := decodeErr(t, resp)
	if apiErr.Code != ErrCodeNotFound {
		t.Fatalf("code %q, want %q", apiErr.Code, ErrCodeNotFound)
	}
	if apiErr.Message == "" {
		t.Fatal("envelope carried no message")
	}
	snap := reg.Snapshot()
	if snap.Counters["api_req_other_total"] == 0 {
		t.Fatal("catch-all requests are not counted under api_req_other_total")
	}
}
