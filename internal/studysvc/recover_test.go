package studysvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestRecoverAllSameProcess: launch, cancel mid-run, rebuild a Manager over
// the same data dir, and the recovered fleet resumes to the golden
// fingerprint — the in-process half of the crash story.
func TestRecoverAllSameProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := t.TempDir()
	m1, err := NewManager(Options{BaseDir: base, Budget: 4, MaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := m1.Launch(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitForDay(t, h1, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if h1.State() != StateCancelled {
		t.Fatalf("state after shutdown %s, want cancelled", h1.State())
	}

	m2, err := NewManager(Options{BaseDir: base, Budget: 4, MaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := m2.RecoverAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].ID != h1.ID {
		t.Fatalf("recovered %v, want [%s]", recovered, h1.ID)
	}
	h2 := recovered[0]
	waitDone(t, h2)
	if h2.State() != StateComplete {
		t.Fatalf("recovered study ended %s: %v", h2.State(), h2.Err())
	}
	if got := handleFingerprint(t, h2); got != goldenTinyFingerprint {
		t.Fatalf("recovered fingerprint %#x != golden %#x", got, uint64(goldenTinyFingerprint))
	}
	// The recovered handle resumed rather than restarting: its event log
	// starts with a "recovered" cursor past day 0.
	evs, _ := h2.EventsSince(0)
	resumed := false
	for _, e := range evs {
		if e.Type == "recovered" && e.Day >= 2 {
			resumed = true
		}
	}
	if !resumed {
		t.Fatalf("no recovered event past day 2 in %+v", evs)
	}
	// A fresh id allocated after recovery must not collide.
	h3, err := m2.Launch(tinySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if h3.ID == h2.ID {
		t.Fatalf("id collision after recovery: %s", h3.ID)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	m2.Shutdown(ctx2)
}

// TestServiceSurvivesKill9 is the acceptance crash story over the real
// wire: a child process boots the service, a study is launched via POST
// /v1/studies, the process dies by SIGKILL mid-study, and a fresh manager
// over the same data dir recovers it on boot (visible via GET /v1/studies)
// and resumes to the golden faults-off fingerprint.
func TestServiceSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if os.Getenv("SSSVC_CHILD") != "" {
		t.Skip("child guard")
	}
	base := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=^TestServiceKill9Child$", "-test.v")
	cmd.Env = append(os.Environ(), "SSSVC_CHILD=1", "SSSVC_DIR="+base)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The child launches s-000001 over HTTP; wait until its study has
	// committed at least two snapshots, then kill -9.
	ckptGlob := filepath.Join(base, "s-000001", "ckpt-*.ckpt")
	deadline := time.Now().Add(3 * time.Minute)
	for {
		if n, _ := filepath.Glob(ckptGlob); len(n) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child produced no checkpoints within the deadline")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Boot a fresh service over the same dir: the study must appear in the
	// listing, resume, and converge to golden.
	m, err := NewManager(Options{BaseDir: base, Budget: 4, MaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RecoverAll(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		m.Shutdown(ctx)
	}()

	// The recovered-on-boot listing is served over the API.
	req, _ := http.NewRequest(http.MethodGet, "/v1/studies", nil)
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, req)
	var listing struct {
		Studies []Status `json:"studies"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing: %v", err)
	}
	if len(listing.Studies) != 1 || listing.Studies[0].ID != "s-000001" {
		t.Fatalf("recovered listing %+v", listing)
	}

	h, ok := m.Get("s-000001")
	if !ok {
		t.Fatal("recovered study missing from manager")
	}
	waitDone(t, h)
	if h.State() != StateComplete {
		t.Fatalf("recovered study ended %s: %v", h.State(), h.Err())
	}
	if got := handleFingerprint(t, h); got != goldenTinyFingerprint {
		t.Fatalf("post-kill fingerprint %#x != golden %#x", got, uint64(goldenTinyFingerprint))
	}
}

// TestServiceKill9Child is the sacrificial process: it boots the service
// on a loopback socket, launches the golden study through a real POST, and
// waits to be killed.
func TestServiceKill9Child(t *testing.T) {
	if os.Getenv("SSSVC_CHILD") == "" {
		t.Skip("only runs as the kill -9 child")
	}
	m, err := NewManager(Options{BaseDir: os.Getenv("SSSVC_DIR"), Budget: 4, MaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: m.Handler()}
	go srv.Serve(ln)

	spec := tinySpec(1)
	spec.CheckpointEvery = 1
	raw, _ := json.Marshal(spec)
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/studies",
		"application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("launch status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Run until the parent kills us.
	select {}
}
