package studysvc

import (
	"context"
	"testing"
	"time"

	searchseizure "repro"
)

// goldenTinyFingerprint is the faults-off fingerprint of the miniature
// study (TestConfig + 3 terms x 20 slots, no tail, seed 1) — the same
// constant the root checkpoint tests pin. Every service-plane path must
// converge to it: the manager schedules *when* days run, never *what* they
// compute.
const goldenTinyFingerprint = 0xf6f361ae7ec6499d

// tinySpec is the golden spec: seed 1 reproduces goldenTinyFingerprint.
func tinySpec(seed int64) searchseizure.StudySpec {
	f := false
	return searchseizure.StudySpec{
		Seed:             seed,
		TermsPerVertical: 3,
		SlotsPerTerm:     20,
		ExtendedTail:     &f,
	}
}

func newTestManager(t *testing.T, budget, maxActive int) *Manager {
	t.Helper()
	m, err := NewManager(Options{BaseDir: t.TempDir(), Budget: budget, MaxActive: maxActive})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

func waitDone(t *testing.T, h *Handle) {
	t.Helper()
	select {
	case <-h.Done():
	case <-time.After(3 * time.Minute):
		t.Fatalf("study %s did not finish (state %s)", h.ID, h.State())
	}
}

// soloFingerprint runs a spec outside the manager.
func soloFingerprint(t *testing.T, spec searchseizure.StudySpec) uint64 {
	t.Helper()
	s, err := searchseizure.NewFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return uint64(data.Fingerprint())
}

func handleFingerprint(t *testing.T, h *Handle) uint64 {
	t.Helper()
	data, ok := h.Dataset()
	if !ok {
		t.Fatalf("study %s has no finalized dataset (state %s)", h.ID, h.State())
	}
	return uint64(data.Fingerprint())
}

// TestMultiTenantIsolation: two concurrent studies with different seeds
// and fault profiles produce exactly the fingerprints their specs produce
// solo. The shared worker budget and the day-slot semaphore are driving
// machinery only.
func TestMultiTenantIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specA := tinySpec(1)
	specB := tinySpec(2)
	specB.Faults = "moderate"

	m := newTestManager(t, 4, 2)
	ha, err := m.Launch(specA)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := m.Launch(specB)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ha)
	waitDone(t, hb)
	if ha.State() != StateComplete || hb.State() != StateComplete {
		t.Fatalf("states %s/%s, want complete/complete", ha.State(), hb.State())
	}

	if got := handleFingerprint(t, ha); got != goldenTinyFingerprint {
		t.Errorf("tenant A fingerprint %#x != golden %#x", got, uint64(goldenTinyFingerprint))
	}
	wantB := soloFingerprint(t, specB)
	if got := handleFingerprint(t, hb); got != wantB {
		t.Errorf("tenant B fingerprint %#x != solo %#x", got, wantB)
	}
}

// TestBudgetDoesNotChangeFingerprints: the same spec through managers with
// radically different worker budgets and concurrency caps lands on the
// same bits.
func TestBudgetDoesNotChangeFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, shape := range []struct{ budget, active int }{{1, 1}, {8, 4}} {
		m := newTestManager(t, shape.budget, shape.active)
		h, err := m.Launch(tinySpec(1))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, h)
		if got := handleFingerprint(t, h); got != goldenTinyFingerprint {
			t.Errorf("budget=%d active=%d: fingerprint %#x != golden %#x",
				shape.budget, shape.active, got, uint64(goldenTinyFingerprint))
		}
	}
}

// TestCancellationDoesNotPerturbNeighbour: cancelling one tenant must not
// move a single bit of the tenant still running.
func TestCancellationDoesNotPerturbNeighbour(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := newTestManager(t, 4, 2)
	keeper, err := m.Launch(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m.Launch(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the victim as soon as it has made some progress.
	waitForDay(t, victim, 1)
	if _, ok := m.Cancel(victim.ID); !ok {
		t.Fatal("Cancel lost the victim")
	}
	waitDone(t, victim)
	if st := victim.State(); st != StateCancelled {
		t.Fatalf("victim state %s, want cancelled", st)
	}

	waitDone(t, keeper)
	if got := handleFingerprint(t, keeper); got != goldenTinyFingerprint {
		t.Errorf("neighbour fingerprint %#x != golden %#x after cancel",
			got, uint64(goldenTinyFingerprint))
	}

	// The cancelled study stopped on a day boundary with a coherent,
	// finalized partial dataset.
	data, ok := victim.Dataset()
	if !ok {
		t.Fatal("cancelled study has no dataset")
	}
	st := victim.Status()
	if data.DaysRun != st.NextDay {
		t.Fatalf("DaysRun %d != resume cursor %d", data.DaysRun, st.NextDay)
	}
}

// waitForDay blocks until the study has completed at least n days.
func waitForDay(t *testing.T, h *Handle, n int) {
	t.Helper()
	deadline := time.After(2 * time.Minute)
	seq := 0
	for {
		evs, notify := h.EventsSince(seq)
		for _, e := range evs {
			if e.Type == "day" && e.Day+1 >= n {
				return
			}
		}
		seq += len(evs)
		select {
		case <-notify:
		case <-h.Done():
			return
		case <-deadline:
			t.Fatalf("study %s never reached day %d", h.ID, n)
		}
	}
}

// TestDayCapAndEvents: a day-capped study completes at the cap, its event
// log carries one "day" event per day with monotonically growing seq, and
// the status reports the cap as the target.
func TestDayCapAndEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := tinySpec(1)
	spec.Days = 4
	m := newTestManager(t, 2, 1)
	h, err := m.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, h)
	if h.State() != StateComplete {
		t.Fatalf("state %s, want complete", h.State())
	}
	st := h.Status()
	if st.NextDay != 4 || st.Days != 4 {
		t.Fatalf("cursor %d/%d, want 4/4", st.NextDay, st.Days)
	}
	evs, _ := h.EventsSince(0)
	days := 0
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Type == "day" {
			if e.Day != days {
				t.Fatalf("day event out of order: got day %d, want %d", e.Day, days)
			}
			days++
			if e.Fingerprint == "" {
				t.Fatal("day event missing fingerprint")
			}
		}
	}
	if days != 4 {
		t.Fatalf("saw %d day events, want 4", days)
	}
}

// TestLaunchRejectsInvalidSpec: the manager front door enforces the same
// typed validation as the HTTP layer.
func TestLaunchRejectsInvalidSpec(t *testing.T) {
	m := newTestManager(t, 1, 1)
	_, err := m.Launch(searchseizure.StudySpec{Seed: -1})
	verr, ok := err.(*searchseizure.ValidationError)
	if !ok {
		t.Fatalf("Launch error %T, want *ValidationError", err)
	}
	if len(verr.Fields) != 1 || verr.Fields[0].Field != "seed" {
		t.Fatalf("fields %v", verr.Fields)
	}
}
