// Package studysvc is the study-service plane: a Manager that runs many
// concurrent studies — each with its own tenant seed, fault profile,
// checkpoint directory and telemetry registry — over one shared worker
// budget, plus a versioned JSON/HTTP API (see http.go) that launches,
// observes, exports and cancels them.
//
// The package sits strictly above the simulation: it schedules *when* each
// study's days execute (a day-slot semaphore caps how many studies burn
// CPU at once) but can never change *what* a day computes, so every study
// the service runs is bit-identical to the same spec run solo. Each study
// persists its spec and day-boundary checkpoints under its own directory;
// RecoverAll rebuilds the whole fleet from disk after a crash and resumes
// every study from its newest good snapshot.
package studysvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	searchseizure "repro"
	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Study lifecycle states. A study moves pending → running →
// (complete | cancelled | failed); cancelling is the window between a
// cancel request and the day boundary where the run actually stops.
const (
	StatePending    = "pending"
	StateRunning    = "running"
	StateCancelling = "cancelling"
	StateComplete   = "complete"
	StateCancelled  = "cancelled"
	StateFailed     = "failed"
)

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateComplete || state == StateCancelled || state == StateFailed
}

// Options configures a Manager.
type Options struct {
	// BaseDir is the service's data directory: each study gets
	// BaseDir/<id>/ holding its spec.json and checkpoint snapshots.
	// Required.
	BaseDir string
	// Budget is the total simulation worker budget shared by all studies;
	// each study runs with Budget/MaxActive workers (min 1). <= 0 means
	// GOMAXPROCS. Worker counts are driving knobs: they change wall time,
	// never fingerprints.
	Budget int
	// MaxActive caps how many studies execute a simulation day at the same
	// moment; the rest queue at their next day boundary. <= 0 means 2.
	MaxActive int
	// Telemetry receives service-plane metrics (API request counters and
	// latency histograms). Each study additionally gets its own private
	// registry. nil is the no-op sink.
	Telemetry *telemetry.Registry
	// Logger receives lifecycle logging; nil logs nothing.
	Logger *log.Logger
}

// Manager owns the study fleet.
type Manager struct {
	opts Options
	sem  chan struct{} // day slots; cap == MaxActive

	mu      sync.Mutex
	studies map[string]*Handle
	order   []string // launch order, for stable listings
	nextID  int
	closed  bool

	wg sync.WaitGroup
}

// NewManager validates opts, creates BaseDir, and returns an empty manager.
// Call RecoverAll to resurrect studies a previous process left on disk.
func NewManager(opts Options) (*Manager, error) {
	if opts.BaseDir == "" {
		return nil, errors.New("studysvc: BaseDir is required")
	}
	if opts.Budget <= 0 {
		opts.Budget = runtime.GOMAXPROCS(0)
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = 2
	}
	if err := os.MkdirAll(opts.BaseDir, 0o755); err != nil {
		return nil, fmt.Errorf("studysvc: %w", err)
	}
	return &Manager{
		opts:    opts,
		sem:     make(chan struct{}, opts.MaxActive),
		studies: make(map[string]*Handle),
	}, nil
}

// workersPerStudy splits the budget across the active-study cap.
func (m *Manager) workersPerStudy() int {
	w := m.opts.Budget / m.opts.MaxActive
	if w < 1 {
		w = 1
	}
	return w
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logger != nil {
		m.opts.Logger.Printf(format, args...)
	}
}

// The event types of the progress log, as a declared const set so every
// dispatch over them is checkable for exhaustiveness.
const (
	EventLaunched  = "launched"
	EventRecovered = "recovered"
	EventDay       = "day"
	EventState     = "state"
)

// Event is one entry in a study's append-only progress log, streamed by
// the events endpoint. Type is EventLaunched, EventRecovered, EventDay or
// EventState.
type Event struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"`
	State string `json:"state,omitempty"`
	// Day is the simulation day that just finished (Type "day") or the
	// resume cursor (Type "recovered").
	Day  int `json:"day,omitempty"`
	Days int `json:"days,omitempty"`
	// Fingerprint is the running day-order fingerprint after Day, as hex.
	Fingerprint string `json:"fingerprint,omitempty"`
	Error       string `json:"error,omitempty"`
}

// Status is the JSON shape of one study, served by GET /v1/studies/{id}.
type Status struct {
	ID    string                  `json:"id"`
	State string                  `json:"state"`
	Spec  searchseizure.StudySpec `json:"spec"`
	// NextDay is the resume cursor: the first simulation day that has not
	// run. Days is the target the study runs to (the spec's cap, or the
	// full window).
	NextDay int `json:"next_day"`
	Days    int `json:"days"`
	// DayFingerprint is the running fingerprint over completed days;
	// Fingerprint is the full-dataset fingerprint, set once terminal.
	DayFingerprint string `json:"day_fingerprint,omitempty"`
	Fingerprint    string `json:"fingerprint,omitempty"`
	CheckpointDir  string `json:"checkpoint_dir"`
	Events         int    `json:"events"`
	Error          string `json:"error,omitempty"`
}

// Handle is one managed study.
type Handle struct {
	ID  string
	Dir string

	m   *Manager
	reg *telemetry.Registry // per-tenant registry

	mu     sync.Mutex
	spec   searchseizure.StudySpec
	state  string
	study  *searchseizure.Study
	cancel context.CancelFunc
	err    error
	// progress mirrors of the world, updated at day boundaries only (the
	// world itself must not be read while a day is executing).
	nextDay int
	days    int
	dayFP   uint64
	fullFP  uint64
	events  []Event
	notify  chan struct{} // closed and replaced on every append
	done    chan struct{} // closed when the run goroutine exits
	slot    bool          // currently holding a day slot
}

// Spec returns the study's (defaulted) launch spec.
func (h *Handle) Spec() searchseizure.StudySpec {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.spec
}

// Telemetry returns the study's private registry.
func (h *Handle) Telemetry() *telemetry.Registry { return h.reg }

// Done is closed when the study reaches a terminal state.
func (h *Handle) Done() <-chan struct{} { return h.done }

// State returns the current lifecycle state.
func (h *Handle) State() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Err returns the terminal error, if any ("failed" state).
func (h *Handle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Status snapshots the study for JSON serving.
func (h *Handle) Status() Status {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Status{
		ID:            h.ID,
		State:         h.state,
		Spec:          h.spec,
		NextDay:       h.nextDay,
		Days:          h.days,
		CheckpointDir: h.Dir,
		Events:        len(h.events),
	}
	if h.nextDay > 0 {
		st.DayFingerprint = fmt.Sprintf("%#x", h.dayFP)
	}
	if h.state == StateComplete {
		st.Fingerprint = fmt.Sprintf("%#x", h.fullFP)
	}
	if h.err != nil {
		st.Error = h.err.Error()
	}
	return st
}

// Dataset returns the study's dataset and whether the run has reached a
// terminal state (only then is the dataset finalized and safe to read).
func (h *Handle) Dataset() (*core.Dataset, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !terminal(h.state) || h.study == nil {
		return nil, false
	}
	return h.study.World.Data, true
}

// EventsSince returns a copy of the events from seq onward plus a channel
// that is closed when a new event is appended.
func (h *Handle) EventsSince(seq int) ([]Event, <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Event
	if seq < len(h.events) {
		out = append(out, h.events[seq:]...)
	}
	return out, h.notify
}

// appendEvent appends under lock and wakes every events stream.
func (h *Handle) appendEvent(e Event) {
	h.mu.Lock()
	e.Seq = len(h.events)
	h.events = append(h.events, e)
	close(h.notify)
	h.notify = make(chan struct{})
	h.mu.Unlock()
}

// setState transitions the study and logs an Event for streams.
func (h *Handle) setState(state string, err error) {
	h.mu.Lock()
	h.state = state
	if err != nil {
		h.err = err
	}
	h.mu.Unlock()
	ev := Event{Type: EventState, State: state}
	if err != nil {
		ev.Error = err.Error()
	}
	h.appendEvent(ev)
}

// specFile is the on-disk name of the persisted launch spec.
const specFile = "spec.json"

// writeSpec persists the defaulted spec atomically (temp + rename) so a
// crash can never leave a half-written spec for RecoverAll to choke on.
func writeSpec(dir string, spec searchseizure.StudySpec) error {
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".spec-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(append(raw, '\n'))
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		//sslint:ignore errflow best-effort cleanup of a temp file already being reported as a write failure
		os.Remove(name)
		return werr
	}
	return os.Rename(name, filepath.Join(dir, specFile))
}

// Launch validates spec, assigns an id and directory, persists the spec,
// and starts the study. An invalid spec returns the
// *searchseizure.ValidationError unwrapped so the HTTP layer can render
// field-level diagnostics.
func (m *Manager) Launch(spec searchseizure.StudySpec) (*Handle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errors.New("studysvc: manager is shut down")
	}
	m.nextID++
	id := fmt.Sprintf("s-%06d", m.nextID)
	m.mu.Unlock()
	return m.launch(id, spec.WithDefaults(), true)
}

// launch builds and starts one study under an assigned id. persist writes
// spec.json (recovery passes false: the spec came from disk).
func (m *Manager) launch(id string, spec searchseizure.StudySpec, persist bool) (*Handle, error) {
	dir := filepath.Join(m.opts.BaseDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("studysvc: %w", err)
	}
	if persist {
		if err := writeSpec(dir, spec); err != nil {
			return nil, fmt.Errorf("studysvc: persist spec: %w", err)
		}
	}

	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	// Split the shared budget. Driving knobs only: excluded from
	// ConfigHash, so checkpoints stay portable across budget changes.
	cfg.CrawlWorkers = m.workersPerStudy()
	cfg.ObserveWorkers = m.workersPerStudy()

	reg := telemetry.New()
	study, err := searchseizure.New(cfg,
		searchseizure.WithTelemetry(reg),
		searchseizure.WithCheckpoint(dir, spec.CheckpointEvery),
	)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	h := &Handle{
		ID:     id,
		Dir:    dir,
		m:      m,
		reg:    reg,
		spec:   spec,
		state:  StatePending,
		study:  study,
		cancel: cancel,
		days:   study.World.TargetDays(),
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}

	// Gate day execution on the shared slot semaphore. The hooks run with
	// the world quiescent (between days), so the progress mirrors they
	// update are the only world state the API ever reads mid-run.
	w := study.World
	w.OnDayStart = func(simclock.Day) {
		select {
		case m.sem <- struct{}{}:
			h.mu.Lock()
			h.slot = true
			h.mu.Unlock()
		case <-ctx.Done():
			// Cancelled while queued: run this one day without a slot
			// (correctness is untouched; the run stops at the boundary).
		}
	}
	w.OnDayEnd = func(d simclock.Day) {
		h.mu.Lock()
		if h.slot {
			h.slot = false
			<-m.sem
		}
		h.nextDay = int(d) + 1
		h.dayFP = uint64(w.Data.DayFingerprint())
		fp := h.dayFP
		h.mu.Unlock()
		h.appendEvent(Event{
			Type: EventDay, Day: int(d), Days: h.days,
			Fingerprint: fmt.Sprintf("%#x", fp),
		})
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return nil, errors.New("studysvc: manager is shut down")
	}
	m.studies[id] = h
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	h.appendEvent(Event{Type: EventLaunched, Days: h.days})
	m.logf("studysvc: %s launched (seed=%d faults=%s days=%d)", id, spec.Seed, spec.Faults, h.days)
	go h.run(ctx)
	return h, nil
}

// run drives one study to a terminal state.
func (h *Handle) run(ctx context.Context) {
	defer h.m.wg.Done()
	defer close(h.done)
	defer h.cancel()

	s := h.study
	// Recover before declaring the study running: hooks are already
	// installed, so attachCheckpoints chains them ahead of snapshot saves.
	if err := s.Recover(); err != nil {
		h.m.logf("studysvc: %s recovery failed: %v", h.ID, err)
		h.setState(StateFailed, err)
		return
	}
	if from := s.World.NextDay(); from > 0 {
		h.mu.Lock()
		h.nextDay = from
		h.dayFP = uint64(s.World.Data.DayFingerprint())
		h.mu.Unlock()
		h.appendEvent(Event{Type: EventRecovered, Day: from, Days: h.days})
		h.m.logf("studysvc: %s resumed from day %d/%d", h.ID, from, h.days)
	}
	// pending → running, unless a cancel already raced in.
	h.mu.Lock()
	if h.state == StatePending {
		h.state = StateRunning
		h.mu.Unlock()
		h.appendEvent(Event{Type: EventState, State: StateRunning})
	} else {
		h.mu.Unlock()
	}

	data, err := s.RunContext(ctx)
	switch {
	case err == nil:
		h.mu.Lock()
		h.fullFP = uint64(data.Fingerprint())
		h.mu.Unlock()
		h.setState(StateComplete, nil)
		h.m.logf("studysvc: %s complete (%d days, fingerprint %#x)",
			h.ID, data.DaysRun, uint64(data.Fingerprint()))
	case errors.Is(err, context.Canceled):
		// Graceful cancel: the run stopped at a day boundary; persist a
		// final checkpoint so the next boot resumes exactly here.
		if cerr := s.Checkpoint(); cerr != nil {
			h.m.logf("studysvc: %s final checkpoint failed: %v", h.ID, cerr)
		}
		h.setState(StateCancelled, nil)
		h.m.logf("studysvc: %s cancelled after day %d/%d", h.ID, data.DaysRun, h.days)
	default:
		h.setState(StateFailed, err)
		h.m.logf("studysvc: %s failed: %v", h.ID, err)
	}
}

// Get returns a study by id.
func (m *Manager) Get(id string) (*Handle, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.studies[id]
	return h, ok
}

// List returns every study in launch order.
func (m *Manager) List() []*Handle {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Handle, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.studies[id])
	}
	return out
}

// Cancel requests a graceful stop at the next day boundary. Idempotent;
// cancelling an already-terminal study is a no-op.
func (m *Manager) Cancel(id string) (*Handle, bool) {
	h, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	h.mu.Lock()
	already := terminal(h.state)
	if !already && h.state != StateCancelling {
		h.state = StateCancelling
	}
	h.mu.Unlock()
	if !already {
		h.appendEvent(Event{Type: EventState, State: StateCancelling})
		h.cancel()
	}
	return h, true
}

// RecoverAll scans BaseDir for studies a previous process persisted and
// relaunches each from its spec.json; checkpoint auto-recovery then
// resumes every study from its newest good snapshot. Returns the recovered
// handles. Directories without a readable spec are skipped (logged), never
// fatal: one corrupt tenant must not block the fleet.
func (m *Manager) RecoverAll() ([]*Handle, error) {
	entries, err := os.ReadDir(m.opts.BaseDir)
	if err != nil {
		return nil, fmt.Errorf("studysvc: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "s-") {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	var out []*Handle
	for _, id := range ids {
		raw, err := os.ReadFile(filepath.Join(m.opts.BaseDir, id, specFile))
		if err != nil {
			m.logf("studysvc: skip %s: %v", id, err)
			continue
		}
		var spec searchseizure.StudySpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			m.logf("studysvc: skip %s: bad spec.json: %v", id, err)
			continue
		}
		var n int
		if _, err := fmt.Sscanf(id, "s-%06d", &n); err == nil {
			m.mu.Lock()
			if n > m.nextID {
				m.nextID = n
			}
			m.mu.Unlock()
		}
		h, err := m.launch(id, spec, false)
		if err != nil {
			m.logf("studysvc: recover %s: %v", id, err)
			continue
		}
		out = append(out, h)
	}
	return out, nil
}

// Shutdown cancels every study and waits (bounded by ctx) for each to stop
// at its day boundary and write its final checkpoint.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, id := range ids {
		m.Cancel(id)
	}
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("studysvc: shutdown: %w", ctx.Err())
	}
}
