package traffic

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestCTRMonotoneOnFirstPage(t *testing.T) {
	for r := 1; r < 10; r++ {
		if CTR(r) >= CTR(r-1) {
			t.Fatalf("CTR not decreasing at rank %d", r)
		}
	}
}

func TestCTRTopPageDominates(t *testing.T) {
	var top10, tail float64
	for r := 0; r < 10; r++ {
		top10 += CTR(r)
	}
	for r := 10; r < 100; r++ {
		tail += CTR(r)
	}
	if top10 <= tail {
		t.Fatalf("first page CTR (%v) must dominate tail (%v)", top10, tail)
	}
	if tail <= 0 {
		t.Fatal("tail CTR must be non-zero (MOONKIS effect)")
	}
}

func TestCTRBounds(t *testing.T) {
	if CTR(-1) != 0 || CTR(100) != 0 || CTR(500) != 0 {
		t.Fatal("out-of-range ranks must have zero CTR")
	}
	var sum float64
	for r := 0; r < 100; r++ {
		sum += CTR(r)
	}
	if sum > 1 {
		t.Fatalf("total CTR = %v > 1", sum)
	}
}

func TestTermWeightSumsToOne(t *testing.T) {
	var sum float64
	for i := 0; i < 100; i++ {
		sum += TermWeight(i, 100)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("term weights sum to %v", sum)
	}
	if TermWeight(0, 100) <= TermWeight(50, 100) {
		t.Fatal("head terms must outweigh tail terms")
	}
	if TermWeight(-1, 100) != 0 || TermWeight(100, 100) != 0 {
		t.Fatal("out-of-range weights must be 0")
	}
}

func TestLabelDeterrence(t *testing.T) {
	m := Default()
	plain := m.SlotClicks(1000, 0, false)
	labeled := m.SlotClicks(1000, 0, true)
	if labeled >= plain {
		t.Fatal("label must deter clicks")
	}
	want := plain * (1 - m.LabelDeterrence)
	if math.Abs(labeled-want) > 1e-9 {
		t.Fatalf("labeled clicks = %v, want %v", labeled, want)
	}
}

func TestOrdersConversionRate(t *testing.T) {
	m := Default()
	r := rng.New(1)
	var totalOrders float64
	const visitsPerDay, days = 5000, 400
	for i := 0; i < days; i++ {
		totalOrders += m.Orders(r, visitsPerDay)
	}
	rate := totalOrders / (visitsPerDay * days)
	if math.Abs(rate-m.ConversionRate) > m.ConversionRate*0.1 {
		t.Fatalf("empirical conversion = %v, want ~%v", rate, m.ConversionRate)
	}
	// The paper's headline: roughly a sale every 151 visits.
	if perSale := 1 / m.ConversionRate; perSale < 120 || perSale > 180 {
		t.Fatalf("visits per sale = %v, want ~151", perSale)
	}
}

func TestOrdersZeroVisits(t *testing.T) {
	m := Default()
	if m.Orders(rng.New(1), 0) != 0 || m.Orders(rng.New(1), -5) != 0 {
		t.Fatal("no visits, no orders")
	}
}

func TestPages(t *testing.T) {
	m := Default()
	if got := m.Pages(100); math.Abs(got-560) > 1e-9 {
		t.Fatalf("pages = %v, want 560 (5.6/visit)", got)
	}
}
