// Package traffic models the demand side: users issuing queries in each
// vertical, clicking results with a rank-position bias, being deterred (or
// not) by "hacked" warning labels, and converting store visits into orders.
// Its constants are anchored to the paper's measurements: a ~0.7% visit to
// order conversion rate, ~5.6 HTML pages fetched per visit, and ~60% of
// visits carrying an HTTP referrer.
package traffic

import (
	"repro/internal/rng"
)

// Model holds the click/conversion parameters.
type Model struct {
	// ConversionRate is the probability a store visit creates an order
	// (§5.2.3 estimates 0.7%, "roughly a sale every 151 visits"). Order
	// counters advance for created orders, not completed payments.
	ConversionRate float64
	// PagesPerVisit is the mean HTML fetches per store visit (§5.2.3: 5.6).
	PagesPerVisit float64
	// LabelDeterrence is the fraction of users who skip a result labeled
	// "This site may be hacked".
	LabelDeterrence float64
	// ReferrerRate is the fraction of visits that carry an HTTP referrer
	// (§5.2.3: 60%).
	ReferrerRate float64
	// DirectVisitShare is extra store traffic from non-search channels
	// (bookmarks, emailed links), as a fraction of search traffic.
	DirectVisitShare float64
}

// Default returns the model calibrated to the paper.
func Default() Model {
	return Model{
		ConversionRate:   0.0066,
		PagesPerVisit:    5.6,
		LabelDeterrence:  0.55,
		ReferrerRate:     0.60,
		DirectVisitShare: 0.08,
	}
}

// CTR returns the click-through rate of a search result at the given rank
// (0-based). It follows the standard steep position bias: the first page
// (ranks 0-9) receives the overwhelming share, with a long thin tail across
// the top 100 — which is why the paper asks whether top-10 or top-100
// placement drives order volume.
func CTR(rank int) float64 {
	switch {
	case rank < 0:
		return 0
	case rank < 10:
		// First page: ~28% for rank 0 decaying to ~1.6% for rank 9.
		first := [...]float64{0.28, 0.14, 0.09, 0.06, 0.045, 0.035, 0.028, 0.022, 0.018, 0.016}
		return first[rank]
	case rank < 100:
		// Later pages: a thin but non-zero tail. The MOONKIS episode shows
		// top-100-only placement still sustains order volume.
		return 0.0035 * 10 / float64(rank)
	default:
		return 0
	}
}

// TermWeight spreads a vertical's query volume across its monitored terms
// with a Zipf-like popularity curve; weights over nTerms sum to ~1.
func TermWeight(termIdx, nTerms int) float64 {
	if termIdx < 0 || termIdx >= nTerms {
		return 0
	}
	var total float64
	for i := 1; i <= nTerms; i++ {
		total += 1 / float64(i)
	}
	return 1 / float64(termIdx+1) / total
}

// SlotClicks returns the expected clicks a result at rank receives on a day
// when termVolume users issue its term, given whether the result carries a
// warning label.
func (m Model) SlotClicks(termVolume float64, rank int, labeled bool) float64 {
	c := termVolume * CTR(rank)
	if labeled {
		c *= 1 - m.LabelDeterrence
	}
	return c
}

// Orders converts a day's visits at a store into created orders, with
// Poisson noise around the expected conversion.
func (m Model) Orders(r *rng.Source, visits float64) float64 {
	if visits <= 0 {
		return 0
	}
	return float64(r.Poisson(visits * m.ConversionRate))
}

// Pages converts visits into HTML page fetches.
func (m Model) Pages(visits float64) float64 { return visits * m.PagesPerVisit }
