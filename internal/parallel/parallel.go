// Package parallel provides the bounded worker pool the measurement
// pipeline fans out on: the per-vertical daily observation, the crawler's
// domain checks, and per-class classifier training all share it instead of
// rolling ad-hoc goroutine pools.
//
// The pool is deliberately minimal: work items are identified by index, the
// pool size is clamped to the item count (never spawn idle goroutines), and
// a single-worker pool degenerates to an inline loop with zero goroutine or
// channel overhead — important because determinism tests run the whole
// study at workers=1 and compare bit-for-bit against parallel runs.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a configured worker count: values <= 0 select
// GOMAXPROCS, so a zero Config field means "use the machine".
func Workers(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}

// PoolObserver receives one aggregate accounting record per pool run.
// telemetry.PoolMetrics implements it structurally; the pool stays free of
// any telemetry dependency. Implementations must tolerate concurrent calls
// (several pools can drain at once).
type PoolObserver interface {
	// PoolRun reports that workers goroutines drained jobs items in wall
	// time; busy is the summed worker lifetimes, so workers×wall − busy is
	// the straggler-tail idle time (the queue-stall signal).
	PoolRun(workers, jobs int, wall, busy time.Duration)
}

// ForEach invokes fn(i) for every i in [0, n), distributing calls over at
// most workers goroutines (clamped to n; workers <= 0 means GOMAXPROCS).
// fn must be safe for concurrent invocation; ForEach returns only after
// every call has completed. Indices are handed out in order, but callers
// must not rely on completion order — any cross-item reduction has to
// happen after ForEach returns, in a deterministic order of the caller's
// choosing.
func ForEach(workers, n int, fn func(i int)) {
	ForEachObserved(workers, n, fn, nil)
}

// ForEachObserved is ForEach with pool accounting: when obs is non-nil it
// receives one PoolRun record after the last job completes. A nil obs runs
// the exact unobserved hot path — no clock reads, no extra atomics — which
// is what keeps telemetry-off studies free.
func ForEachObserved(workers, n int, fn func(i int), obs PoolObserver) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		if obs == nil {
			for i := 0; i < n; i++ {
				fn(i)
			}
			return
		}
		t0 := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		wall := time.Since(t0)
		// One worker is never idle: busy == wall by construction.
		obs.PoolRun(1, n, wall, wall)
		return
	}
	var t0 time.Time
	var busy atomic.Int64
	if obs != nil {
		t0 = time.Now()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var w0 time.Time
			if obs != nil {
				w0 = time.Now()
			}
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					break
				}
				fn(int(i))
			}
			if obs != nil {
				busy.Add(int64(time.Since(w0)))
			}
		}()
	}
	wg.Wait()
	if obs != nil {
		obs.PoolRun(workers, n, time.Since(t0), time.Duration(busy.Load()))
	}
}

// Map applies fn to every element of in on a ForEach pool and returns the
// results in input order. Each slot of the result is written by exactly one
// worker, so no locking is needed and the output is independent of
// scheduling.
func Map[T, R any](workers int, in []T, fn func(i int, item T) R) []R {
	out := make([]R, len(in))
	ForEach(workers, len(in), func(i int) {
		out[i] = fn(i, in[i])
	})
	return out
}
