package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			var hits = make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestForEachClampsPoolToJobs asserts no more goroutines run concurrently
// than there are items, even when the pool is configured far larger.
func TestForEachClampsPoolToJobs(t *testing.T) {
	const jobs = 3
	var cur, peak int32
	var mu sync.Mutex
	ForEach(64, jobs, func(int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > jobs {
		t.Fatalf("peak concurrency %d exceeds job count %d", peak, jobs)
	}
}

// TestForEachSingleWorkerIsInline asserts the workers=1 path runs on the
// calling goroutine in index order (the determinism baseline).
func TestForEachSingleWorkerIsInline(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v", order)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 200)
	for i := range in {
		in[i] = i
	}
	out := Map(8, in, func(_ int, v int) int { return v * v })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// recordObserver captures PoolRun records for assertions.
type recordObserver struct {
	mu      sync.Mutex
	workers []int
	jobs    []int
	wall    []time.Duration
	busy    []time.Duration
}

func (r *recordObserver) PoolRun(workers, jobs int, wall, busy time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers = append(r.workers, workers)
	r.jobs = append(r.jobs, jobs)
	r.wall = append(r.wall, wall)
	r.busy = append(r.busy, busy)
}

// TestForEachObservedAccounting: one record per run, with the clamped
// worker count, the job count, and busy within [0, workers*wall].
func TestForEachObservedAccounting(t *testing.T) {
	obs := &recordObserver{}
	for _, tc := range []struct{ workers, n, wantWorkers int }{
		{1, 7, 1},  // inline path
		{4, 7, 4},  // fan-out
		{64, 3, 3}, // clamped to jobs
		{2, 0, 0},  // empty: no record at all
	} {
		before := len(obs.jobs)
		ForEachObserved(tc.workers, tc.n, func(int) { time.Sleep(time.Microsecond) }, obs)
		if tc.n == 0 {
			if len(obs.jobs) != before {
				t.Fatalf("empty run produced a record")
			}
			continue
		}
		i := len(obs.jobs) - 1
		if i < before {
			t.Fatalf("workers=%d n=%d: no record", tc.workers, tc.n)
		}
		if obs.workers[i] != tc.wantWorkers || obs.jobs[i] != tc.n {
			t.Fatalf("record = workers %d jobs %d, want %d/%d", obs.workers[i], obs.jobs[i], tc.wantWorkers, tc.n)
		}
		if obs.busy[i] <= 0 || obs.busy[i] > time.Duration(obs.workers[i])*obs.wall[i]+time.Millisecond {
			t.Fatalf("busy %v out of range for workers=%d wall=%v", obs.busy[i], obs.workers[i], obs.wall[i])
		}
	}
}

// TestForEachObservedNilObserverMatchesForEach: the nil-observer path must
// still cover every index (it is the exact ForEach hot path).
func TestForEachObservedNilObserverMatchesForEach(t *testing.T) {
	var hits = make([]int32, 50)
	ForEachObserved(4, len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) }, nil)
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}
