package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			var hits = make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestForEachClampsPoolToJobs asserts no more goroutines run concurrently
// than there are items, even when the pool is configured far larger.
func TestForEachClampsPoolToJobs(t *testing.T) {
	const jobs = 3
	var cur, peak int32
	var mu sync.Mutex
	ForEach(64, jobs, func(int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > jobs {
		t.Fatalf("peak concurrency %d exceeds job count %d", peak, jobs)
	}
}

// TestForEachSingleWorkerIsInline asserts the workers=1 path runs on the
// calling goroutine in index order (the determinism baseline).
func TestForEachSingleWorkerIsInline(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v", order)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 200)
	for i := range in {
		in[i] = i
	}
	out := Map(8, in, func(_ int, v int) int { return v * v })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}
