package parallel

import "sync"

// Scratch is a typed free-list of per-worker scratch objects. Observe-phase
// workers Get a scratch, build into its reused buffers, and Put it back, so
// steady-state page generation and feature extraction run without per-call
// allocation. It is a thin wrapper over sync.Pool: objects may be dropped
// under memory pressure and are re-created by the alloc hook, so scratch
// state must never carry semantic meaning across Get/Put pairs — only
// capacity.
type Scratch[T any] struct {
	pool sync.Pool
}

// NewScratch returns a pool whose objects are created by alloc. alloc must
// return a ready-to-use object; it may size internal buffers from live
// statistics (e.g. the largest page generated so far) so fresh objects start
// at steady-state capacity instead of growing through reallocation.
func NewScratch[T any](alloc func() *T) *Scratch[T] {
	s := &Scratch[T]{}
	s.pool.New = func() any { return alloc() }
	return s
}

// Get fetches a scratch object, creating one if the pool is empty.
func (s *Scratch[T]) Get() *T { return s.pool.Get().(*T) }

// Put returns a scratch object for reuse. The caller must not use t after
// Put.
func (s *Scratch[T]) Put(t *T) { s.pool.Put(t) }
