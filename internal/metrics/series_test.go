package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesAddAt(t *testing.T) {
	s := NewSeries(5)
	s.Add(2, 3)
	s.Add(2, 1)
	s.Add(-1, 99) // out of range: ignored
	s.Add(5, 99)  // out of range: ignored
	if s.At(2) != 4 {
		t.Fatalf("At(2) = %v, want 4", s.At(2))
	}
	if s.At(-1) != 0 || s.At(5) != 0 {
		t.Fatal("out-of-range At must return 0")
	}
	if s.Sum() != 4 {
		t.Fatalf("Sum = %v, want 4", s.Sum())
	}
}

func TestMinMaxMean(t *testing.T) {
	s := Series{3, -1, 4, 0}
	if s.Min() != -1 || s.Max() != 4 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 1.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	var empty Series
	if empty.Min() != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series stats must be 0")
	}
}

func TestCumulative(t *testing.T) {
	s := Series{1, 2, 3}
	c := s.Cumulative()
	want := Series{1, 3, 6}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("cumulative = %v", c)
		}
	}
}

func TestDivideBy(t *testing.T) {
	s := Series{2, 4, 6}
	d := Series{2, 0, 3}
	q := s.DivideBy(d)
	if q[0] != 1 || q[1] != 0 || q[2] != 2 {
		t.Fatalf("divide = %v", q)
	}
}

func TestMovingAverageConstant(t *testing.T) {
	s := Series{5, 5, 5, 5, 5}
	m := s.MovingAverage(3)
	for i, v := range m {
		if v != 5 {
			t.Fatalf("moving average of constant changed at %d: %v", i, v)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	s := Series{0, 0, 10, 0, 0}
	m := s.MovingAverage(3)
	if m[2] >= 10 || m[2] <= 0 {
		t.Fatalf("m[2] = %v", m[2])
	}
	if m[1] <= 0 || m[3] <= 0 {
		t.Fatal("spike must bleed into neighbors")
	}
}

func TestPeakRangeConcentrated(t *testing.T) {
	// 100 days, all mass in days 40..49.
	s := NewSeries(100)
	for d := 40; d < 50; d++ {
		s[d] = 10
	}
	start, end, days := s.PeakRange(0.6)
	if days > 7 {
		t.Fatalf("peak range %d days, want <= 7 (60%% of 10 concentrated days)", days)
	}
	if start < 40 || end > 49 {
		t.Fatalf("peak range [%d,%d] outside mass", start, end)
	}
}

func TestPeakRangeUniform(t *testing.T) {
	s := NewSeries(100)
	for d := range s {
		s[d] = 1
	}
	_, _, days := s.PeakRange(0.6)
	if days != 60 {
		t.Fatalf("uniform peak range = %d days, want 60", days)
	}
}

func TestPeakRangeEmpty(t *testing.T) {
	s := NewSeries(10)
	if _, _, days := s.PeakRange(0.6); days != 0 {
		t.Fatalf("all-zero series peak range = %d, want 0", days)
	}
}

func TestPeakRangeProperty(t *testing.T) {
	// The chosen window must actually contain >= frac of the total.
	check := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		s := make(Series, len(vals))
		var total float64
		for i, v := range vals {
			s[i] = float64(v)
			total += float64(v)
		}
		start, end, days := s.PeakRange(0.6)
		if total == 0 {
			return days == 0
		}
		var sum float64
		for i := start; i <= end; i++ {
			sum += s[i]
		}
		return sum >= 0.6*total-1e-9 && days == end-start+1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpark(t *testing.T) {
	s := Series{0, 1, 2, 3, 4, 5, 6, 7}
	sl := Spark(s, 8)
	if sl.Min != 0 || sl.Max != 7 {
		t.Fatalf("spark min/max = %v/%v", sl.Min, sl.Max)
	}
	runes := []rune(sl.Glyphs)
	if len(runes) != 8 {
		t.Fatalf("glyph count = %d", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("glyphs = %q", sl.Glyphs)
	}
}

func TestSparkEmptyAndFlat(t *testing.T) {
	if sl := Spark(nil, 10); sl.Glyphs != "" {
		t.Fatal("empty series should render no glyphs")
	}
	flat := Series{2, 2, 2}
	sl := Spark(flat, 3)
	for _, r := range sl.Glyphs {
		if r != '▁' {
			t.Fatalf("flat series rendered %q", sl.Glyphs)
		}
	}
}

func TestStackedLayers(t *testing.T) {
	st := NewStacked(3)
	st.Layer("a").Add(0, 5)
	st.Layer("b").Add(1, 1)
	st.Layer("a").Add(2, 5) // same layer again
	if len(st.Labels) != 2 {
		t.Fatalf("labels = %v", st.Labels)
	}
	if st.Layers["a"].Sum() != 10 {
		t.Fatalf("layer a sum = %v", st.Layers["a"].Sum())
	}
}

func TestStackedTopLayers(t *testing.T) {
	st := NewStacked(2)
	st.Layer("big").Add(0, 100)
	st.Layer("mid").Add(0, 10)
	st.Layer("s1").Add(0, 1)
	st.Layer("s2").Add(0, 2)
	top := st.TopLayers(2, "misc")
	if len(top.Labels) != 3 {
		t.Fatalf("labels = %v", top.Labels)
	}
	if top.Layers["misc"].Sum() != 3 {
		t.Fatalf("misc sum = %v", top.Layers["misc"].Sum())
	}
	if top.Layers["big"].Sum() != 100 || top.Layers["mid"].Sum() != 10 {
		t.Fatal("top layers must be preserved")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 9, 100, -5}, 0, 10, 5)
	var total int
	for _, c := range h.Counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("histogram lost values: %d", total)
	}
	if h.Counts[0] != 3 { // 0, 1, and clamped -5
		t.Fatalf("bucket 0 = %d, want 3 (0, 1, clamped -5)", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9 and clamped 100
		t.Fatalf("bucket 4 = %d", h.Counts[4])
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if q := Quantile(v, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(v, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(v, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(v, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestMeanStddev(t *testing.T) {
	mean, sd := MeanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(sd-2) > 1e-12 {
		t.Fatalf("stddev = %v", sd)
	}
	if m, s := MeanStddev(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStddev must be 0,0")
	}
}

func TestScale(t *testing.T) {
	s := Series{1, 2}.Scale(2.5)
	if s[0] != 2.5 || s[1] != 5 {
		t.Fatalf("scale = %v", s)
	}
}
