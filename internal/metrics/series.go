// Package metrics provides the time-series and summary-statistics
// machinery the analyses are built on: daily series, stacked-area
// aggregation, sparkline summaries, peak-range computation and simple
// histograms. All series are indexed by simulation day.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is a daily time series of float64 values indexed by day number.
type Series []float64

// NewSeries returns a zero-filled series with n days.
func NewSeries(n int) Series { return make(Series, n) }

// Add adds v to the value at day d, ignoring out-of-range days so callers
// can record events that spill past the observation window.
func (s Series) Add(d int, v float64) {
	if d >= 0 && d < len(s) {
		s[d] += v
	}
}

// At returns the value at day d, or 0 outside the range.
func (s Series) At(d int) float64 {
	if d < 0 || d >= len(s) {
		return 0
	}
	return s[d]
}

// Min returns the minimum value, or 0 for an empty series.
func (s Series) Min() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum value, or 0 for an empty series.
func (s Series) Max() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all values.
func (s Series) Sum() float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s))
}

// Scale returns a new series with every value multiplied by k.
func (s Series) Scale(k float64) Series {
	out := make(Series, len(s))
	for i, v := range s {
		out[i] = v * k
	}
	return out
}

// DivideBy returns s[i]/d[i] elementwise (0 where d[i]==0). The result has
// the length of s.
func (s Series) DivideBy(d Series) Series {
	out := make(Series, len(s))
	for i, v := range s {
		if dv := d.At(i); dv != 0 {
			out[i] = v / dv
		}
	}
	return out
}

// Cumulative returns the running sum of s.
func (s Series) Cumulative() Series {
	out := make(Series, len(s))
	var c float64
	for i, v := range s {
		c += v
		out[i] = c
	}
	return out
}

// MovingAverage returns the centered moving average of s with the given
// window width (clamped at the series boundaries).
func (s Series) MovingAverage(width int) Series {
	if width < 1 {
		width = 1
	}
	out := make(Series, len(s))
	half := width / 2
	for i := range s {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(s) {
			hi = len(s) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += s[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// PeakRange returns the shortest contiguous day span [start, end] that
// contains at least frac of the series total, along with the span length in
// days. This is the paper's "peak range" metric with frac = 0.6. For an
// all-zero series it returns (0, 0, 0).
func (s Series) PeakRange(frac float64) (start, end, days int) {
	total := s.Sum()
	if total <= 0 || len(s) == 0 {
		return 0, 0, 0
	}
	target := total * frac
	bestLen := len(s) + 1
	var sum float64
	lo := 0
	for hi := 0; hi < len(s); hi++ {
		sum += s[hi]
		for sum-s[lo] >= target && lo < hi {
			sum -= s[lo]
			lo++
		}
		if sum >= target && hi-lo+1 < bestLen {
			bestLen = hi - lo + 1
			start, end = lo, hi
		}
	}
	if bestLen > len(s) {
		return 0, len(s) - 1, len(s)
	}
	return start, end, bestLen
}

// Sparkline summarises a series as the paper's Figure 3 sparklines do:
// minimum, maximum, and a compact unicode rendering of the shape.
type Sparkline struct {
	Min, Max float64
	Glyphs   string
}

var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Spark renders a sparkline with at most width glyphs by averaging the
// series into width buckets.
func Spark(s Series, width int) Sparkline {
	sl := Sparkline{Min: s.Min(), Max: s.Max()}
	if len(s) == 0 || width <= 0 {
		return sl
	}
	if width > len(s) {
		width = len(s)
	}
	var b strings.Builder
	span := sl.Max - sl.Min
	for i := 0; i < width; i++ {
		lo := i * len(s) / width
		hi := (i + 1) * len(s) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for j := lo; j < hi; j++ {
			sum += s[j]
		}
		v := sum / float64(hi-lo)
		idx := 0
		if span > 0 {
			idx = int((v - sl.Min) / span * float64(len(sparkGlyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkGlyphs) {
				idx = len(sparkGlyphs) - 1
			}
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	sl.Glyphs = b.String()
	return sl
}

// String renders the sparkline in the paper's "min <shape> max" style.
func (sl Sparkline) String() string {
	return fmt.Sprintf("%6.2f %s %6.2f", sl.Min, sl.Glyphs, sl.Max)
}

// Stacked is a set of named series sharing a day axis, used for the
// stacked-area attribution plots of Figure 2.
type Stacked struct {
	Days   int
	Labels []string
	Layers map[string]Series
}

// NewStacked returns an empty stacked set over n days.
func NewStacked(n int) *Stacked {
	return &Stacked{Days: n, Layers: make(map[string]Series)}
}

// Layer returns the series for label, creating it on first use and
// preserving insertion order for rendering.
func (st *Stacked) Layer(label string) Series {
	if s, ok := st.Layers[label]; ok {
		return s
	}
	s := NewSeries(st.Days)
	st.Layers[label] = s
	st.Labels = append(st.Labels, label)
	return s
}

// TopLayers returns the n labels with the largest series totals, with all
// remaining labels collapsed under collapse (if any remain). This mirrors
// the paper's use of a "misc" bucket to reduce clutter.
func (st *Stacked) TopLayers(n int, collapse string) *Stacked {
	type lt struct {
		label string
		total float64
	}
	all := make([]lt, 0, len(st.Labels))
	for _, l := range st.Labels {
		all = append(all, lt{l, st.Layers[l].Sum()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].total != all[j].total {
			return all[i].total > all[j].total
		}
		return all[i].label < all[j].label
	})
	out := NewStacked(st.Days)
	for i, e := range all {
		if i < n {
			copy(out.Layer(e.label), st.Layers[e.label])
			continue
		}
		misc := out.Layer(collapse)
		for d, v := range st.Layers[e.label] {
			misc[d] += v
		}
	}
	return out
}

// Histogram bins values into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram of values with the given bucket count.
// Values outside [min, max] are clamped into the edge buckets.
func NewHistogram(values []float64, min, max float64, buckets int) Histogram {
	h := Histogram{Min: min, Max: max, Counts: make([]int, buckets)}
	if buckets == 0 || max <= min {
		return h
	}
	w := (max - min) / float64(buckets)
	for _, v := range values {
		i := int((v - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		h.Counts[i]++
	}
	return h
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation; it returns 0 for an empty slice.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return v[lo]
	}
	frac := pos - float64(lo)
	return v[lo]*(1-frac) + v[hi]*frac
}

// MeanStddev returns the mean and population standard deviation of values.
func MeanStddev(values []float64) (mean, stddev float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(values)))
}
