// Package shard provides the sharded string-keyed maps the observe phase's
// shared read-mostly state lives in: memoised documents, crawler verdicts,
// detector feature caches. A Map spreads keys over fixed shards by fnv-1a
// hash, each guarded by its own RWMutex, so parallel observe workers stop
// contending on one lock. Reads by []byte key are allocation-free (the
// map-index string conversion does not escape), which is what lets callers
// build lookup keys in reused scratch buffers.
//
// Determinism contract: a Map never exposes iteration order. The only
// enumeration primitive is Keys, which returns a sorted snapshot, so sharded
// state can feed fingerprints and reports without map-order leaks.
package shard

import (
	"sort"
	"sync"
)

const shardCount = 64 // power of two; indexing masks the key hash

// Map is a sharded map from string keys to V values.
type Map[V any] struct {
	shards [shardCount]mapShard[V]
}

type mapShard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
	// Pad each shard to its own cache line so neighbouring shard locks do
	// not false-share under parallel observe traffic.
	_ [32]byte
}

// Hash exposes the fnv-1a shard hash so structures outside this package
// (fixed shard arrays with richer per-shard state, e.g. the crawler's
// verdict cache with its singleflight table) select shards consistently.
func Hash(key string) uint64 { return hashString(key) }

func hashString(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func hashBytes(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// Get returns the value stored under key.
func (m *Map[V]) Get(key string) (V, bool) {
	sh := &m.shards[hashString(key)&(shardCount-1)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// GetBytes returns the value stored under string(key) without allocating:
// the conversion happens inside the map index expression, which the runtime
// special-cases. This is the hot memo-hit path — callers assemble keys in a
// reused scratch buffer and look them up for free.
func (m *Map[V]) GetBytes(key []byte) (V, bool) {
	sh := &m.shards[hashBytes(key)&(shardCount-1)]
	sh.mu.RLock()
	v, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	return v, ok
}

// Set stores v under key, replacing any existing value.
func (m *Map[V]) Set(key string, v V) {
	sh := &m.shards[hashString(key)&(shardCount-1)]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]V)
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

// LoadOrStore returns the existing value for key if present; otherwise it
// stores and returns v. loaded is true if the value was already present.
// Racing stores of the same key keep the first value, matching
// sync.Map.LoadOrStore — callers rely on builds being deterministic per key,
// so either copy is byte-identical.
func (m *Map[V]) LoadOrStore(key string, v V) (actual V, loaded bool) {
	sh := &m.shards[hashString(key)&(shardCount-1)]
	sh.mu.Lock()
	if old, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return old, true
	}
	if sh.m == nil {
		sh.m = make(map[string]V)
	}
	sh.m[key] = v
	sh.mu.Unlock()
	return v, false
}

// Delete removes key.
func (m *Map[V]) Delete(key string) {
	sh := &m.shards[hashString(key)&(shardCount-1)]
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// Len returns the total number of entries across all shards.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Clear drops every entry, retaining shard maps for reuse.
func (m *Map[V]) Clear() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		clear(sh.m)
		sh.mu.Unlock()
	}
}

// Keys returns every key in sorted order. This is the only iteration
// primitive: shard layout and map order never leak to callers, so sharded
// state can feed hashes and reports deterministically.
func (m *Map[V]) Keys() []string {
	out := make([]string, 0, m.Len())
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		//sslint:ignore maporder all shards drain into out, which is sorted below before it escapes
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
