package shard

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

func TestMapBasics(t *testing.T) {
	var m Map[string]
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty map claims a key")
	}
	m.Set("a", "1")
	m.Set("b", "2")
	if v, ok := m.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if v, ok := m.GetBytes([]byte("b")); !ok || v != "2" {
		t.Fatalf("GetBytes(b) = %q, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	m.Delete("a")
	if _, ok := m.Get("a"); ok {
		t.Fatal("Delete left the key behind")
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Clear left %d entries", m.Len())
	}
}

func TestLoadOrStoreKeepsFirst(t *testing.T) {
	var m Map[int]
	if v, loaded := m.LoadOrStore("k", 1); loaded || v != 1 {
		t.Fatalf("first LoadOrStore = %d, %v", v, loaded)
	}
	if v, loaded := m.LoadOrStore("k", 2); !loaded || v != 1 {
		t.Fatalf("second LoadOrStore = %d, %v", v, loaded)
	}
}

func TestKeysSortedAcrossShards(t *testing.T) {
	var m Map[int]
	want := make([]string, 0, 500)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%03d", i)
		m.Set(k, i)
		want = append(want, k)
	}
	sort.Strings(want)
	got := m.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	var m Map[int]
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("k%d", i)
				m.LoadOrStore(k, i)
				if v, ok := m.Get(k); !ok || v != i {
					t.Errorf("worker %d: Get(%s) = %d, %v", w, k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", m.Len())
	}
}

func TestGetBytesAllocFree(t *testing.T) {
	var m Map[string]
	m.Set("door/abc|term one|term two", "page")
	key := []byte("door/abc|term one|term two")
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := m.GetBytes(key); !ok {
			t.Fatal("key missing")
		}
	})
	if allocs != 0 {
		t.Fatalf("GetBytes allocates %v/op, want 0", allocs)
	}
}
