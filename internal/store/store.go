// Package store implements counterfeit-storefront runtime state: the
// monotonically increasing order counters the purchase-pair technique
// samples, the store's payment-processing identity, its domain history
// under seizures and rotation, and its per-day analytics.
package store

import (
	"fmt"
	"sync"

	"repro/internal/campaign"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// Processor is a payment processing bank identity. The paper's transaction
// probes resolved to three acquiring banks: two in China, one in Korea.
type Processor struct {
	Name    string
	BIN     string // bank identification number prefix
	Country string
}

// Processors returns the acquiring banks available to storefronts.
func Processors() []Processor {
	return []Processor{
		{Name: "realypay", BIN: "622848", Country: "CN"},
		{Name: "mallpayment", BIN: "356895", Country: "CN"},
		{Name: "globalbill", BIN: "940012", Country: "KR"},
	}
}

// Epoch is one span of a store's life on a particular domain.
type Epoch struct {
	Domain string
	From   simclock.Day // first day live on this domain
}

// Store is the runtime state of one storefront.
type Store struct {
	Dep       *campaign.StoreDeployment
	Processor Processor
	// AWStatsPublic marks stores that left their analytics pages publicly
	// readable (the §4.4 data source).
	AWStatsPublic bool

	// processorDownFrom, when >= 0, is the day the store's acquiring bank
	// stopped serving it (the payment-level intervention of §4.3.2's
	// discussion); orders cannot complete from then on.
	processorDownFrom simclock.Day

	mu        sync.Mutex
	nextOrder int64
	epochs    []Epoch
	seized    map[string]simclock.Day // domain -> seizure day
	// analytics, indexed by study day.
	visits    []float64
	pageViews []float64
	orders    []float64 // orders created per day (ground truth)
	referrers map[string]int
}

// New creates a store live on its first domain from day 0, with an
// arbitrary starting order number (stores allocate order numbers
// independently, §3.1.2).
func New(dep *campaign.StoreDeployment, r *rng.Source, days int) *Store {
	procs := Processors()
	sr := r.Sub("store/" + dep.ID)
	return &Store{
		Dep:               dep,
		Processor:         procs[sr.Intn(len(procs))],
		AWStatsPublic:     sr.Bool(0.1),
		processorDownFrom: -1,
		nextOrder:         int64(1000 + sr.Intn(8000)),
		epochs:            []Epoch{{Domain: dep.Domains[0], From: 0}},
		seized:            make(map[string]simclock.Day),
		visits:            make([]float64, days),
		pageViews:         make([]float64, days),
		orders:            make([]float64, days),
		referrers:         make(map[string]int),
	}
}

// DisableProcessor marks the store's acquiring bank as unavailable from
// day d onward.
func (s *Store) DisableProcessor(d simclock.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.processorDownFrom = d
}

// PaymentHalted reports whether the store cannot process payments on day d.
func (s *Store) PaymentHalted(d simclock.Day) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processorDownFrom >= 0 && d >= s.processorDownFrom
}

// PlaceOrder allocates the next order number. Order numbers are handed out
// before payment details are collected, so the counter upper-bounds actual
// purchases — exactly the bias the paper notes for purchase-pair estimates.
func (s *Store) PlaceOrder() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nextOrder
	s.nextOrder++
	return n
}

// RecordDay adds one simulated day of customer activity: visits, page
// views, created orders, and referrer attribution. It advances the order
// counter by the day's order count.
func (s *Store) RecordDay(d simclock.Day, visits, pages, orders float64, refs map[string]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(d) >= 0 && int(d) < len(s.visits) {
		s.visits[d] += visits
		s.pageViews[d] += pages
		s.orders[d] += orders
	}
	s.nextOrder += int64(orders)
	for dom, n := range refs {
		s.referrers[dom] += n
	}
}

// NextOrderNumber returns the current counter without consuming a number.
func (s *Store) NextOrderNumber() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextOrder
}

// CurrentDomain returns the domain the store serves from on day d.
func (s *Store) CurrentDomain(d simclock.Day) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.currentDomainLocked(d)
}

func (s *Store) currentDomainLocked(d simclock.Day) string {
	cur := s.epochs[0].Domain
	for _, e := range s.epochs {
		if e.From <= d {
			cur = e.Domain
		}
	}
	return cur
}

// Epochs returns a copy of the store's domain history.
func (s *Store) Epochs() []Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Epoch(nil), s.epochs...)
}

// MoveToNextDomain advances the store to its next unseized backup domain,
// effective on day d. It returns the new domain, or "" if the store has
// exhausted its domain pool (and goes dark).
func (s *Store) MoveToNextDomain(d simclock.Day) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.currentDomainLocked(d)
	idx := -1
	for i, dom := range s.Dep.Domains {
		if dom == cur {
			idx = i
			break
		}
	}
	for j := idx + 1; j < len(s.Dep.Domains); j++ {
		dom := s.Dep.Domains[j]
		if _, gone := s.seized[dom]; !gone {
			s.epochs = append(s.epochs, Epoch{Domain: dom, From: d})
			return dom
		}
	}
	return ""
}

// MarkSeized records that a domain of this store was seized on day d.
func (s *Store) MarkSeized(domain string, d simclock.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.seized[domain]; !dup {
		s.seized[domain] = d
	}
}

// SeizedOn returns the seizure day for a domain, if seized.
func (s *Store) SeizedOn(domain string) (simclock.Day, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.seized[domain]
	return d, ok
}

// Dark reports whether the store has no live domain left on day d: its
// then-current domain is seized (by that day) and no backup remains.
// Seizures recorded for later days do not count — a post-run query about an
// earlier day must see the store as it was.
func (s *Store) Dark(d simclock.Day) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.currentDomainLocked(d)
	if !s.seizedByLocked(cur, d) {
		return false
	}
	for i, dom := range s.Dep.Domains {
		if dom == cur {
			for j := i + 1; j < len(s.Dep.Domains); j++ {
				if !s.seizedByLocked(s.Dep.Domains[j], d) {
					return false
				}
			}
		}
	}
	return true
}

// SeizedBy reports whether the domain had been seized on or before day d.
func (s *Store) SeizedBy(domain string, d simclock.Day) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seizedByLocked(domain, d)
}

func (s *Store) seizedByLocked(domain string, d simclock.Day) bool {
	sd, ok := s.seized[domain]
	return ok && sd <= d
}

// Stats is a read-only snapshot of the store's analytics.
type Stats struct {
	Visits    []float64
	PageViews []float64
	Orders    []float64
	Referrers map[string]int
}

// Snapshot copies the analytics series.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Visits:    append([]float64(nil), s.visits...),
		PageViews: append([]float64(nil), s.pageViews...),
		Orders:    append([]float64(nil), s.orders...),
		Referrers: make(map[string]int, len(s.referrers)),
	}
	for k, v := range s.referrers {
		st.Referrers[k] = v
	}
	return st
}

// OrderSeries returns a copy of the per-day created-order ground truth.
func (s *Store) OrderSeries() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.orders...)
}

// ID returns the store's deployment identifier.
func (s *Store) ID() string { return s.Dep.ID }

// String implements fmt.Stringer.
func (s *Store) String() string {
	return fmt.Sprintf("store %s (%s, %s)", s.Dep.ID, s.Dep.Label(), s.Dep.Campaign.Name)
}
