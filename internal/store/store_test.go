package store

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/campaign"
	"repro/internal/rng"
	"repro/internal/simclock"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(rng.New(1), specs, 0.01)
	for _, d := range deps {
		if d.Spec.Name == "PHP?P=" {
			return New(d.Stores[0], rng.New(2), 245)
		}
	}
	t.Fatal("php?p= deployment missing")
	return nil
}

func TestOrderNumbersMonotone(t *testing.T) {
	s := testStore(t)
	prev := s.PlaceOrder()
	for i := 0; i < 100; i++ {
		n := s.PlaceOrder()
		if n <= prev {
			t.Fatalf("order numbers not monotone: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestOrderNumbersMonotoneUnderConcurrency(t *testing.T) {
	s := testStore(t)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	results := make([][]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				results[g] = append(results[g], s.PlaceOrder())
			}
		}(g)
	}
	wg.Wait()
	seen := map[int64]bool{}
	for _, rs := range results {
		for _, n := range rs {
			if seen[n] {
				t.Fatalf("duplicate order number %d", n)
			}
			seen[n] = true
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("lost order numbers: %d", len(seen))
	}
}

func TestRecordDayAdvancesCounter(t *testing.T) {
	s := testStore(t)
	before := s.NextOrderNumber()
	s.RecordDay(3, 100, 560, 7, map[string]int{"door1.com": 60})
	if got := s.NextOrderNumber(); got != before+7 {
		t.Fatalf("counter = %d, want %d", got, before+7)
	}
	snap := s.Snapshot()
	if snap.Visits[3] != 100 || snap.PageViews[3] != 560 || snap.Orders[3] != 7 {
		t.Fatalf("day stats = %+v", snap)
	}
	if snap.Referrers["door1.com"] != 60 {
		t.Fatalf("referrers = %v", snap.Referrers)
	}
}

func TestRecordDayOutOfRangeIgnoredButCounterAdvances(t *testing.T) {
	s := testStore(t)
	before := s.NextOrderNumber()
	s.RecordDay(9999, 10, 56, 2, nil)
	if s.NextOrderNumber() != before+2 {
		t.Fatal("orders outside window must still advance the counter")
	}
}

func TestDomainLifecycle(t *testing.T) {
	s := testStore(t)
	d0 := s.CurrentDomain(0)
	if d0 != s.Dep.Domains[0] {
		t.Fatalf("initial domain = %q", d0)
	}
	s.MarkSeized(d0, 88)
	next := s.MoveToNextDomain(89)
	if next != s.Dep.Domains[1] {
		t.Fatalf("next domain = %q, want %q", next, s.Dep.Domains[1])
	}
	if s.CurrentDomain(88) != d0 {
		t.Fatal("domain history must be day-indexed (before move)")
	}
	if s.CurrentDomain(90) != next {
		t.Fatal("domain history must be day-indexed (after move)")
	}
}

func TestMoveSkipsSeizedBackups(t *testing.T) {
	s := testStore(t)
	s.MarkSeized(s.Dep.Domains[0], 10)
	s.MarkSeized(s.Dep.Domains[1], 5) // backup already seized in an earlier sweep
	next := s.MoveToNextDomain(11)
	if next != s.Dep.Domains[2] {
		t.Fatalf("move must skip seized backups: got %q", next)
	}
}

func TestDark(t *testing.T) {
	s := testStore(t)
	for i, dom := range s.Dep.Domains {
		s.MarkSeized(dom, simclock.Day(10+i))
		if i < len(s.Dep.Domains)-1 {
			s.MoveToNextDomain(simclock.Day(10 + i))
		}
	}
	if !s.Dark(100) {
		t.Fatal("store with all domains seized must be dark")
	}
	if s.MoveToNextDomain(101) != "" {
		t.Fatal("exhausted store must not find a domain")
	}
	fresh := testStore(t)
	if fresh.Dark(0) {
		t.Fatal("fresh store must not be dark")
	}
}

func TestSeizedOn(t *testing.T) {
	s := testStore(t)
	if _, ok := s.SeizedOn(s.Dep.Domains[0]); ok {
		t.Fatal("unseized domain reported seized")
	}
	s.MarkSeized(s.Dep.Domains[0], 42)
	d, ok := s.SeizedOn(s.Dep.Domains[0])
	if !ok || d != 42 {
		t.Fatalf("seized on = %d, %v", d, ok)
	}
	// Re-marking must not overwrite the original day.
	s.MarkSeized(s.Dep.Domains[0], 99)
	if d, _ := s.SeizedOn(s.Dep.Domains[0]); d != 42 {
		t.Fatal("duplicate MarkSeized must keep the first day")
	}
}

func TestProcessorsThreeBanks(t *testing.T) {
	ps := Processors()
	if len(ps) != 3 {
		t.Fatalf("processors = %d, want 3", len(ps))
	}
	countries := map[string]int{}
	for _, p := range ps {
		countries[p.Country]++
		if p.BIN == "" || p.Name == "" {
			t.Fatalf("incomplete processor %+v", p)
		}
	}
	if countries["CN"] != 2 || countries["KR"] != 1 {
		t.Fatalf("bank countries = %v, want 2 CN + 1 KR", countries)
	}
}

func TestStartingOrderNumbersVary(t *testing.T) {
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(rng.New(1), specs, 0.02)
	seen := map[int64]int{}
	r := rng.New(7)
	var n int
	for _, dep := range deps {
		for _, sd := range dep.Stores {
			s := New(sd, r, 245)
			seen[s.NextOrderNumber()]++
			n++
		}
	}
	if len(seen) < n/2 {
		t.Fatalf("starting order numbers too clustered: %d distinct of %d", len(seen), n)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := testStore(t)
	s.RecordDay(0, 1, 5, 1, map[string]int{"a": 1})
	snap := s.Snapshot()
	snap.Visits[0] = 999
	snap.Referrers["a"] = 999
	if s.Snapshot().Visits[0] == 999 || s.Snapshot().Referrers["a"] == 999 {
		t.Fatal("Snapshot must deep-copy")
	}
}

func TestCounterNeverDecreasesProperty(t *testing.T) {
	s := testStore(t)
	last := s.NextOrderNumber()
	check := func(orders uint8) bool {
		s.RecordDay(1, 0, 0, float64(orders%50), nil)
		now := s.NextOrderNumber()
		ok := now >= last
		last = now
		return ok
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
