package store

import (
	"fmt"
	"sort"

	"repro/internal/simclock"
)

// This file exports and restores a store's mutable runtime state for
// durable checkpoints. The deployment wiring and processor identity are
// rebuilt deterministically from the study seed; everything the run mutates
// — order counter, domain epochs, seizures, analytics — is captured here.

// SeizedDomain records one seized domain and the day it fell.
type SeizedDomain struct {
	Domain string
	Day    simclock.Day
}

// Referrer is one referrer-attribution tally.
type Referrer struct {
	Domain string
	Count  int
}

// State is a store's complete mutable state.
type State struct {
	ID                string
	ProcessorDownFrom simclock.Day
	NextOrder         int64
	Epochs            []Epoch
	Seized            []SeizedDomain // sorted by Domain
	Visits            []float64
	PageViews         []float64
	Orders            []float64
	Referrers         []Referrer // sorted by Domain
}

// ExportState captures the store's mutable state.
func (s *Store) ExportState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{
		ID:                s.Dep.ID,
		ProcessorDownFrom: s.processorDownFrom,
		NextOrder:         s.nextOrder,
		Epochs:            append([]Epoch(nil), s.epochs...),
		Visits:            append([]float64(nil), s.visits...),
		PageViews:         append([]float64(nil), s.pageViews...),
		Orders:            append([]float64(nil), s.orders...),
	}
	for dom, d := range s.seized {
		st.Seized = append(st.Seized, SeizedDomain{Domain: dom, Day: d})
	}
	sort.Slice(st.Seized, func(i, j int) bool { return st.Seized[i].Domain < st.Seized[j].Domain })
	for dom, n := range s.referrers {
		st.Referrers = append(st.Referrers, Referrer{Domain: dom, Count: n})
	}
	sort.Slice(st.Referrers, func(i, j int) bool { return st.Referrers[i].Domain < st.Referrers[j].Domain })
	return st
}

// RestoreState overwrites the store's mutable state with a previously
// exported snapshot. The snapshot must belong to this store and match the
// study's day count.
func (s *Store) RestoreState(st State) error {
	if st.ID != s.Dep.ID {
		return fmt.Errorf("store: snapshot for %q applied to %q", st.ID, s.Dep.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(st.Visits) != len(s.visits) || len(st.PageViews) != len(s.pageViews) || len(st.Orders) != len(s.orders) {
		return fmt.Errorf("store %s: snapshot analytics span %d/%d/%d days, store has %d",
			st.ID, len(st.Visits), len(st.PageViews), len(st.Orders), len(s.visits))
	}
	if len(st.Epochs) == 0 {
		return fmt.Errorf("store %s: snapshot has no domain epochs", st.ID)
	}
	s.processorDownFrom = st.ProcessorDownFrom
	s.nextOrder = st.NextOrder
	s.epochs = append([]Epoch(nil), st.Epochs...)
	s.seized = make(map[string]simclock.Day, len(st.Seized))
	for _, sd := range st.Seized {
		s.seized[sd.Domain] = sd.Day
	}
	copy(s.visits, st.Visits)
	copy(s.pageViews, st.PageViews)
	copy(s.orders, st.Orders)
	s.referrers = make(map[string]int, len(st.Referrers))
	for _, ref := range st.Referrers {
		s.referrers[ref.Domain] = ref.Count
	}
	return nil
}
