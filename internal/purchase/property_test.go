package purchase

import (
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

// TestRatesConserveDeltaProperty: the interpolated daily rates must sum to
// the total order-number growth across the sampled span (no orders
// invented or lost by interpolation), for any monotone sample sequence.
func TestRatesConserveDeltaProperty(t *testing.T) {
	check := func(gaps []uint8, increments []uint16) bool {
		if len(gaps) == 0 || len(increments) == 0 {
			return true
		}
		n := len(gaps)
		if len(increments) < n {
			n = len(increments)
		}
		s := &Series{}
		day := simclock.Day(0)
		var orderNo int64 = 1000
		s.Append(day, orderNo)
		for i := 0; i < n; i++ {
			day += simclock.Day(int(gaps[i]%14) + 1)
			orderNo += int64(increments[i] % 500)
			s.Append(day, orderNo)
		}
		days := int(day) + 5
		sum := s.Rates(days).Sum()
		delta := float64(s.TotalDelta())
		return sum > delta-1e-6 && sum < delta+1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVolumeMonotoneProperty: cumulative volume never decreases.
func TestVolumeMonotoneProperty(t *testing.T) {
	check := func(gaps []uint8, increments []uint16) bool {
		s := &Series{}
		day := simclock.Day(0)
		var orderNo int64 = 1
		s.Append(day, orderNo)
		n := len(gaps)
		if len(increments) < n {
			n = len(increments)
		}
		for i := 0; i < n; i++ {
			day += simclock.Day(int(gaps[i]%10) + 1)
			orderNo += int64(increments[i] % 100)
			s.Append(day, orderNo)
		}
		vol := s.Volume(int(day) + 2)
		for i := 1; i < len(vol); i++ {
			if vol[i] < vol[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
