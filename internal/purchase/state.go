package purchase

import (
	"sort"

	"repro/internal/simclock"
)

// This file exports and restores the sampler's mutable state for durable
// checkpoints: the per-store order-number samples, the visit cadence
// cursors, and the per-campaign daily caps.

// SeriesState is one store's serialized sample series.
type SeriesState struct {
	StoreID string
	Samples []Sample
}

// StoreDay pairs a store ID with its last visit day.
type StoreDay struct {
	StoreID string
	Day     simclock.Day
}

// CampaignCount pairs a campaign key with its orders placed today.
type CampaignCount struct {
	Key   string
	Count int
}

// SamplerState is the sampler's complete mutable state.
type SamplerState struct {
	Series    []SeriesState // sorted by StoreID
	LastVisit []StoreDay    // sorted by StoreID
	Today     []CampaignCount
	TodayDay  simclock.Day
	Created   int
	Failed    int
}

// ExportState captures the sampler's mutable state.
func (sm *Sampler) ExportState() SamplerState {
	st := SamplerState{TodayDay: sm.todayDay, Created: sm.Created, Failed: sm.Failed}
	for id, s := range sm.series {
		st.Series = append(st.Series, SeriesState{StoreID: id, Samples: append([]Sample(nil), s.Samples...)})
	}
	sort.Slice(st.Series, func(i, j int) bool { return st.Series[i].StoreID < st.Series[j].StoreID })
	for id, d := range sm.lastVisit {
		st.LastVisit = append(st.LastVisit, StoreDay{StoreID: id, Day: d})
	}
	sort.Slice(st.LastVisit, func(i, j int) bool { return st.LastVisit[i].StoreID < st.LastVisit[j].StoreID })
	for k, n := range sm.today {
		st.Today = append(st.Today, CampaignCount{Key: k, Count: n})
	}
	sort.Slice(st.Today, func(i, j int) bool { return st.Today[i].Key < st.Today[j].Key })
	return st
}

// RestoreState overwrites the sampler's mutable state. Cadence
// configuration (IntervalDays, MaxPerCampaignPerDay) and the fetcher are
// wiring, not state, and are left untouched.
func (sm *Sampler) RestoreState(st SamplerState) {
	sm.series = make(map[string]*Series, len(st.Series))
	for _, ss := range st.Series {
		sm.series[ss.StoreID] = &Series{StoreID: ss.StoreID, Samples: append([]Sample(nil), ss.Samples...)}
	}
	sm.lastVisit = make(map[string]simclock.Day, len(st.LastVisit))
	for _, sd := range st.LastVisit {
		sm.lastVisit[sd.StoreID] = sd.Day
	}
	sm.today = make(map[string]int, len(st.Today))
	for _, cc := range st.Today {
		sm.today[cc.Key] = cc.Count
	}
	sm.todayDay = st.TodayDay
	sm.Created = st.Created
	sm.Failed = st.Failed
}
