package purchase

import (
	"errors"
	"math"
	"testing"

	"repro/internal/campaign"
	"repro/internal/htmlgen"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/store"
)

func buildStore(t *testing.T) (*simweb.Web, *store.Store, string) {
	t.Helper()
	r := rng.New(41)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.01)
	var dep *campaign.Deployment
	for _, d := range deps {
		if d.Spec.Name == "VERA" {
			dep = d
		}
	}
	gen := htmlgen.New(r)
	st := store.New(dep.Stores[0], r.Sub("stores"), 245)
	web := simweb.NewWeb()
	dom := dep.Stores[0].Domains[0]
	web.Register(dom, &simweb.StoreSite{Store: st, Gen: gen, Window: simclock.StudyWindow()})
	return web, st, dom
}

func TestCreateOrderReadsCounter(t *testing.T) {
	web, st, dom := buildStore(t)
	before := st.NextOrderNumber()
	n, err := CreateOrder(web, dom, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != before {
		t.Fatalf("order no = %d, want %d", n, before)
	}
	n2, err := CreateOrder(web, dom, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n+1 {
		t.Fatalf("second order = %d, want %d", n2, n+1)
	}
}

func TestCreateOrderDeadStore(t *testing.T) {
	web, _, _ := buildStore(t)
	if _, err := CreateOrder(web, "gone.example.com", 0); !errors.Is(err, ErrNoOrderNumber) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateOrderSeizedStore(t *testing.T) {
	web, _, dom := buildStore(t)
	web.Register(dom, &simweb.SeizureNoticeSite{
		Firm: "GBC", CaseID: "14-cv-1", Domains: []string{dom},
		Gen: htmlgen.New(rng.New(1)),
	})
	if _, err := CreateOrder(web, dom, 0); !errors.Is(err, ErrNoOrderNumber) {
		t.Fatalf("seized store must fail purchase-pair: %v", err)
	}
}

func TestSeriesRatesInterpolation(t *testing.T) {
	s := &Series{StoreID: "x"}
	s.Append(0, 1000)
	s.Append(10, 1100) // 10/day for days 0..9
	s.Append(20, 1100) // 0/day for days 10..19
	rates := s.Rates(30)
	if math.Abs(rates.At(5)-10) > 1e-9 {
		t.Fatalf("rate day 5 = %v, want 10", rates.At(5))
	}
	if rates.At(15) != 0 {
		t.Fatalf("rate day 15 = %v, want 0", rates.At(15))
	}
	if rates.At(25) != 0 {
		t.Fatal("rates outside sample span must be 0")
	}
	if got := s.TotalDelta(); got != 100 {
		t.Fatalf("total delta = %d", got)
	}
	vol := s.Volume(30)
	if math.Abs(vol.At(29)-100) > 1e-9 {
		t.Fatalf("final volume = %v, want 100", vol.At(29))
	}
}

func TestSeriesClampNegativeDeltas(t *testing.T) {
	s := &Series{}
	s.Append(0, 5000)
	s.Append(7, 1000) // counter reset
	rates := s.Rates(10)
	for d := 0; d < 10; d++ {
		if rates.At(d) < 0 {
			t.Fatal("negative rate")
		}
	}
}

func TestSeriesTooFewSamples(t *testing.T) {
	s := &Series{}
	if s.TotalDelta() != 0 {
		t.Fatal("empty series delta")
	}
	s.Append(3, 10)
	if s.TotalDelta() != 0 || s.Rates(10).Sum() != 0 {
		t.Fatal("single sample must yield no estimates")
	}
}

func TestSamplerWeeklyCadence(t *testing.T) {
	web, _, dom := buildStore(t)
	sm := NewSampler(web)
	targets := []Target{{
		StoreID: "vera-s000", CampaignKey: "vera",
		Domain: func(simclock.Day) string { return dom },
	}}
	for d := simclock.Day(0); d < 30; d++ {
		sm.Visit(d, targets)
	}
	s := sm.Series("vera-s000")
	if s == nil {
		t.Fatal("no samples")
	}
	// 30 days at a 7-day interval: samples on days 0,7,14,21,28.
	if len(s.Samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(s.Samples))
	}
	for i := 1; i < len(s.Samples); i++ {
		if gap := int(s.Samples[i].Day - s.Samples[i-1].Day); gap != 7 {
			t.Fatalf("gap = %d days", gap)
		}
		if s.Samples[i].OrderNo <= s.Samples[i-1].OrderNo {
			t.Fatal("sampled numbers must increase (our own orders count)")
		}
	}
}

func TestSamplerPerCampaignDailyCap(t *testing.T) {
	web, _, dom := buildStore(t)
	sm := NewSampler(web)
	var targets []Target
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i))
		targets = append(targets, Target{
			StoreID: id, CampaignKey: "vera",
			Domain: func(simclock.Day) string { return dom },
		})
	}
	created := sm.Visit(0, targets)
	if created != 3 {
		t.Fatalf("created %d orders on day 0, cap is 3", created)
	}
	// Next day the cap resets and the remaining stores get their turn.
	if got := sm.Visit(1, targets); got != 3 {
		t.Fatalf("day 1 created %d", got)
	}
}

func TestSamplerSkipsDarkStores(t *testing.T) {
	web, _, _ := buildStore(t)
	sm := NewSampler(web)
	targets := []Target{{
		StoreID: "dead", CampaignKey: "x",
		Domain: func(simclock.Day) string { return "" },
	}}
	if sm.Visit(0, targets) != 0 {
		t.Fatal("dark store must not be sampled")
	}
	if sm.Failed != 0 {
		t.Fatal("dark store should be skipped, not counted as failure")
	}
}

func TestSamplerCountsFailures(t *testing.T) {
	web, _, _ := buildStore(t)
	sm := NewSampler(web)
	targets := []Target{{
		StoreID: "gone", CampaignKey: "x",
		Domain: func(simclock.Day) string { return "gone.example.com" },
	}}
	sm.Visit(0, targets)
	if sm.Failed != 1 || sm.Created != 0 {
		t.Fatalf("failed=%d created=%d", sm.Failed, sm.Created)
	}
}

func TestPurchasePairEstimatesCustomerRate(t *testing.T) {
	// End to end: customers create orders between our weekly samples; the
	// estimated rate must track the customer rate plus our own probes.
	web, st, dom := buildStore(t)
	sm := NewSampler(web)
	targets := []Target{{
		StoreID: st.ID(), CampaignKey: "vera",
		Domain: func(simclock.Day) string { return dom },
	}}
	const customerPerDay = 12
	for d := simclock.Day(0); d < 43; d++ {
		sm.Visit(d, targets)
		st.RecordDay(d, 1800, 10000, customerPerDay, nil)
	}
	s := sm.Series(st.ID())
	rates := s.Rates(43)
	// Average estimated rate over the sampled span.
	var sum float64
	var n int
	for d := 0; d < 42; d++ {
		if rates.At(d) > 0 {
			sum += rates.At(d)
			n++
		}
	}
	avg := sum / float64(n)
	if avg < customerPerDay || avg > customerPerDay+2 {
		t.Fatalf("estimated rate = %v, want ~%d (upper bound incl. probes)", avg, customerPerDay)
	}
}
