// Package purchase implements the §4.3 order-volume measurement: the
// purchase-pair technique of creating test orders on live storefronts at
// intervals and reading the monotonically increasing order numbers, whose
// deltas upper-bound the orders created in between; plus the §4.3.2
// transaction probes that reveal payment-processing banks.
package purchase

import (
	"fmt"
	"regexp"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/simweb"
)

// Sample is one observed order number at a store on a day.
type Sample struct {
	Day     simclock.Day
	OrderNo int64
}

// Series holds the samples collected for one store.
type Series struct {
	StoreID string
	Samples []Sample
}

// Append records a sample, keeping day order.
func (s *Series) Append(d simclock.Day, n int64) {
	s.Samples = append(s.Samples, Sample{Day: d, OrderNo: n})
}

// TotalDelta returns the total order-number growth across the sampled span
// — the cumulative "volume" number of Figure 4.
func (s *Series) TotalDelta() int64 {
	if len(s.Samples) < 2 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].OrderNo - s.Samples[0].OrderNo
}

// Rates converts the samples into an estimated per-day order creation rate
// over a window of the given length, linearly interpolating between
// samples (the Figure 4 "rate" histograms). Days outside the sampled span
// are zero. Negative deltas (a store resetting its counter) are clamped.
func (s *Series) Rates(days int) metrics.Series {
	out := metrics.NewSeries(days)
	for i := 1; i < len(s.Samples); i++ {
		a, b := s.Samples[i-1], s.Samples[i]
		span := int(b.Day - a.Day)
		if span <= 0 {
			continue
		}
		delta := float64(b.OrderNo - a.OrderNo)
		if delta < 0 {
			delta = 0
		}
		perDay := delta / float64(span)
		for d := a.Day; d < b.Day; d++ {
			out.Add(int(d), perDay)
		}
	}
	return out
}

// Volume returns the cumulative interpolated order count, starting at zero
// on the first sample day (the Figure 4 "volume" curves).
func (s *Series) Volume(days int) metrics.Series {
	return s.Rates(days).Cumulative()
}

// orderNoRe extracts the order number from a confirmation page.
var orderNoRe = regexp.MustCompile(`Order No\. (\d+)`)

// ErrNoOrderNumber is returned when a store's checkout flow yields no order
// number (store dark, seized, or serving an unexpected page).
var ErrNoOrderNumber = fmt.Errorf("purchase: no order number on confirmation page")

// CreateOrder drives a store's checkout to obtain a fresh order number:
// the operational core of the purchase-pair technique. Orders are taken to
// the payment page and then abandoned, so the store's counter advances by
// exactly one.
func CreateOrder(f simweb.Fetcher, storeDomain string, day simclock.Day) (int64, error) {
	resp := f.Fetch(simweb.Request{
		URL:       "http://" + storeDomain + "/order/new",
		UserAgent: simweb.BrowserUA,
		Referrer:  "", // orders are placed via TOR with a clean session
		Day:       day,
	})
	if resp.Status != 200 {
		return 0, fmt.Errorf("purchase: status %d from %s: %w", resp.Status, storeDomain, ErrNoOrderNumber)
	}
	m := orderNoRe.FindStringSubmatch(resp.Body)
	if m == nil {
		return 0, ErrNoOrderNumber
	}
	n, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("purchase: bad order number %q: %v", m[1], err)
	}
	return n, nil
}

// Sampler schedules order sampling across stores: weekly per store, capped
// at three orders per day per campaign to stay under the stores' fraud
// radar (§4.3.1).
type Sampler struct {
	F simweb.Fetcher
	// IntervalDays is the per-store sampling period (the paper used weekly
	// visits).
	IntervalDays int
	// MaxPerCampaignPerDay caps daily orders per campaign.
	MaxPerCampaignPerDay int

	series    map[string]*Series
	lastVisit map[string]simclock.Day
	today     map[string]int // campaign key -> orders placed today
	todayDay  simclock.Day
	// Created/Failed count sampling attempts for reporting.
	Created int
	Failed  int
}

// NewSampler returns a sampler with the study's cadence.
func NewSampler(f simweb.Fetcher) *Sampler {
	return &Sampler{
		F:                    f,
		IntervalDays:         7,
		MaxPerCampaignPerDay: 3,
		series:               make(map[string]*Series),
		lastVisit:            make(map[string]simclock.Day),
		today:                make(map[string]int),
	}
}

// Target identifies a store the sampler tracks.
type Target struct {
	StoreID     string
	CampaignKey string
	// Domain returns the store's domain as of a day (follows rotation).
	Domain func(simclock.Day) string
}

// Visit samples every due target for the day, respecting the per-campaign
// cap; targets not yet due are skipped. It returns how many orders were
// created.
func (sm *Sampler) Visit(day simclock.Day, targets []Target) int {
	if day != sm.todayDay {
		sm.todayDay = day
		sm.today = make(map[string]int)
	}
	var created int
	for _, t := range targets {
		last, seen := sm.lastVisit[t.StoreID]
		if seen && int(day-last) < sm.IntervalDays {
			continue
		}
		if sm.today[t.CampaignKey] >= sm.MaxPerCampaignPerDay {
			continue
		}
		dom := t.Domain(day)
		if dom == "" {
			continue
		}
		sm.lastVisit[t.StoreID] = day
		n, err := CreateOrder(sm.F, dom, day)
		if err != nil {
			sm.Failed++
			continue
		}
		sm.today[t.CampaignKey]++
		sm.Created++
		created++
		s := sm.series[t.StoreID]
		if s == nil {
			s = &Series{StoreID: t.StoreID}
			sm.series[t.StoreID] = s
		}
		s.Append(day, n)
	}
	return created
}

// Series returns the collected samples for a store (nil if never sampled).
func (sm *Sampler) Series(storeID string) *Series { return sm.series[storeID] }

// AllSeries returns every store's sample series.
func (sm *Sampler) AllSeries() map[string]*Series { return sm.series }
