package brands

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestSixteenVerticals(t *testing.T) {
	if len(All()) != 16 {
		t.Fatalf("got %d verticals, want 16", len(All()))
	}
}

func TestVerticalNames(t *testing.T) {
	if LouisVuitton.String() != "Louis Vuitton" {
		t.Fatalf("name = %q", LouisVuitton.String())
	}
	if Vertical(99).String() != "Vertical(99)" {
		t.Fatalf("out-of-range name = %q", Vertical(99).String())
	}
}

func TestStarredVerticalsUseSuggest(t *testing.T) {
	// Table 1 stars Ed Hardy, Louis Vuitton and Uggs: the KEY campaign does
	// not target them, so their terms come from the Suggest methodology.
	for _, v := range All() {
		want := v == EdHardy || v == LouisVuitton || v == Uggs
		if got := v.SuggestSeeded(); got != want {
			t.Errorf("%s SuggestSeeded = %v, want %v", v, got, want)
		}
	}
}

func TestComposites(t *testing.T) {
	for _, v := range All() {
		want := v == Golf || v == Sunglasses || v == Watches
		if got := v.Composite(); got != want {
			t.Errorf("%s Composite = %v, want %v", v, got, want)
		}
		if got := len(v.MemberBrands()); (got > 1) != want {
			t.Errorf("%s has %d member brands, composite=%v", v, got, want)
		}
	}
}

func TestTermsCountAndUniqueness(t *testing.T) {
	r := rng.New(1)
	for _, v := range All() {
		ts := Terms(r, v, 100)
		if len(ts.Terms) != 100 {
			t.Fatalf("%s: got %d terms, want 100", v, len(ts.Terms))
		}
		seen := make(map[string]bool)
		for _, term := range ts.Terms {
			if seen[term] {
				t.Fatalf("%s: duplicate term %q", v, term)
			}
			seen[term] = true
			if term != strings.ToLower(term) {
				t.Fatalf("%s: term %q not lowercase", v, term)
			}
		}
	}
}

func TestTermsDeterministic(t *testing.T) {
	a := Terms(rng.New(5), BeatsByDre, 100)
	b := Terms(rng.New(5), BeatsByDre, 100)
	if len(a.Terms) != len(b.Terms) {
		t.Fatal("nondeterministic term count")
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			t.Fatalf("term %d differs: %q vs %q", i, a.Terms[i], b.Terms[i])
		}
	}
}

func TestTermsMentionBrand(t *testing.T) {
	r := rng.New(2)
	ts := Terms(r, Moncler, 50)
	for _, term := range ts.Terms {
		if !strings.Contains(term, "moncler") {
			t.Fatalf("term %q does not mention the brand", term)
		}
	}
}

func TestMethodologiesHaveLowOverlap(t *testing.T) {
	// §4.1.1: across ten verticals only 4 of 1000 terms overlapped. Require
	// the overlap between the two methodologies to stay small.
	r := rng.New(3)
	var overlap, total int
	for _, v := range All() {
		if v.Composite() {
			continue
		}
		a := TermsByMethod(r, v, MethodKeyDoorways, 100)
		b := TermsByMethod(r, v, MethodSuggest, 100)
		overlap += Overlap(a, b)
		total += 100
	}
	if overlap*100 > total*5 { // under 5%
		t.Fatalf("methodology overlap %d/%d too high", overlap, total)
	}
}

func TestOverlapSymmetric(t *testing.T) {
	r := rng.New(4)
	a := TermsByMethod(r, Nike, MethodKeyDoorways, 80)
	b := TermsByMethod(r, Nike, MethodSuggest, 80)
	if Overlap(a, b) != Overlap(b, a) {
		t.Fatal("overlap not symmetric")
	}
	if Overlap(a, a) != len(a.Terms) {
		t.Fatal("self overlap must equal set size")
	}
}

func TestDailyQueryVolumeOrdering(t *testing.T) {
	// The heavy verticals of the paper must dominate the light ones.
	if LouisVuitton.DailyQueryVolume() <= Clarisonic.DailyQueryVolume() {
		t.Fatal("Louis Vuitton must out-demand Clarisonic")
	}
	for _, v := range All() {
		if v.DailyQueryVolume() <= 0 {
			t.Fatalf("%s volume must be positive", v)
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodKeyDoorways.String() != "key-doorways" || MethodSuggest.String() != "google-suggest" {
		t.Fatal("method names changed")
	}
}
