// Package brands defines the sixteen counterfeit-luxury verticals the study
// monitors and the two search-term selection methodologies of §4.1.1: terms
// extracted from KEY-campaign doorway URLs, and terms expanded from a
// Google-Suggest-style autocomplete service.
package brands

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rng"
)

// Vertical identifies one monitored brand vertical.
type Vertical int

// The sixteen verticals of Table 1, in the paper's order.
const (
	Abercrombie Vertical = iota
	Adidas
	BeatsByDre
	Clarisonic
	EdHardy
	Golf
	IsabelMarant
	LouisVuitton
	Moncler
	Nike
	RalphLauren
	Sunglasses
	Tiffany
	Uggs
	Watches
	Woolrich
	NumVerticals // sentinel: number of verticals
)

var verticalNames = [...]string{
	"Abercrombie", "Adidas", "Beats By Dre", "Clarisonic", "Ed Hardy",
	"Golf", "Isabel Marant", "Louis Vuitton", "Moncler", "Nike",
	"Ralph Lauren", "Sunglasses", "Tiffany", "Uggs", "Watches", "Woolrich",
}

// String implements fmt.Stringer.
func (v Vertical) String() string {
	if v < 0 || v >= NumVerticals {
		return fmt.Sprintf("Vertical(%d)", int(v))
	}
	return verticalNames[v]
}

// All returns the sixteen verticals in Table 1 order.
func All() []Vertical {
	vs := make([]Vertical, NumVerticals)
	for i := range vs {
		vs[i] = Vertical(i)
	}
	return vs
}

// Composite reports whether the vertical is a category composite of several
// brands (Golf, Sunglasses, Watches) rather than a single brand.
func (v Vertical) Composite() bool {
	switch v {
	case Golf, Sunglasses, Watches:
		return true
	}
	return false
}

// SuggestSeeded reports whether the vertical's terms were selected with the
// Google-Suggest methodology rather than extracted from KEY doorways. These
// are the three verticals the KEY campaign does not target (starred in
// Table 1: Ed Hardy, Louis Vuitton, Uggs).
func (v Vertical) SuggestSeeded() bool {
	switch v {
	case EdHardy, LouisVuitton, Uggs:
		return true
	}
	return false
}

// MemberBrands returns the brand names a vertical covers: one for single
// brand verticals, several for composites.
func (v Vertical) MemberBrands() []string {
	switch v {
	case Golf:
		return []string{"Titleist", "Callaway", "TaylorMade", "Ping"}
	case Sunglasses:
		return []string{"Oakley", "Ray-Ban", "Christian Dior", "Prada Eyewear"}
	case Watches:
		return []string{"Rolex", "Omega", "Breitling", "Cartier"}
	default:
		return []string{v.String()}
	}
}

// adjectives are the qualifier words counterfeit shoppers combine with
// brand names; the Suggest methodology prepends them to seed queries.
var adjectives = []string{
	"cheap", "new", "online", "outlet", "sale", "store", "discount",
	"replica", "free shipping", "clearance", "wholesale", "authentic",
}

// products are generic product nouns appended to brand names to form
// long-tail terms.
var products = []string{
	"handbags", "wallet", "shoes", "boots", "jacket", "headphones",
	"sunglasses", "watch", "belt", "scarf", "sneakers", "hoodie", "polo",
	"earbuds", "tote", "backpack", "coat", "slippers", "bracelet", "ring",
}

// TermSet is a fixed set of search terms monitored for one vertical,
// together with the methodology that produced it.
type TermSet struct {
	Vertical Vertical
	Method   Method
	Terms    []string
}

// Method identifies a term-selection methodology.
type Method int

// The two methodologies of §4.1.1.
const (
	// MethodKeyDoorways extracts keywords from the URL paths of KEY
	// campaign doorway pages found via site: queries.
	MethodKeyDoorways Method = iota
	// MethodSuggest recursively expands autocomplete suggestions seeded
	// with the brand name and adjective+brand concatenations.
	MethodSuggest
)

// String implements fmt.Stringer.
func (m Method) String() string {
	if m == MethodKeyDoorways {
		return "key-doorways"
	}
	return "google-suggest"
}

// Terms generates the monitored term set for a vertical using the
// methodology the paper used for it (KEY-derived for the original 13,
// Suggest-derived for the starred three), drawing n unique terms.
func Terms(r *rng.Source, v Vertical, n int) TermSet {
	m := MethodKeyDoorways
	if v.SuggestSeeded() {
		m = MethodSuggest
	}
	return TermsByMethod(r, v, m, n)
}

// TermsByMethod generates a term set with an explicit methodology; the §4.1.1
// bias experiment generates both sets for the same vertical and compares the
// campaigns each discovers.
func TermsByMethod(r *rng.Source, v Vertical, m Method, n int) TermSet {
	sub := r.Sub(fmt.Sprintf("terms/%s/%d", v, m))
	pool := candidatePool(sub, v, m)
	sub.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if n > len(pool) {
		n = len(pool)
	}
	terms := append([]string(nil), pool[:n]...)
	sort.Strings(terms)
	return TermSet{Vertical: v, Method: m, Terms: terms}
}

// candidatePool synthesises the universe of candidate terms a methodology
// can surface. Both methodologies draw on the same underlying shopper
// vocabulary — which is why the paper found the same campaigns either way —
// but combine the pieces differently, which is why the literal term overlap
// between the two sets is tiny.
func candidatePool(r *rng.Source, v Vertical, m Method) []string {
	brandsIn := v.MemberBrands()
	seen := make(map[string]bool)
	var pool []string
	add := func(t string) {
		t = strings.ToLower(strings.Join(strings.Fields(t), " "))
		if t != "" && !seen[t] {
			seen[t] = true
			pool = append(pool, t)
		}
	}
	switch m {
	case MethodKeyDoorways:
		// KEY doorway URL paths favour adjective+brand+product keyword
		// stuffing with occasional year/model suffixes.
		for _, b := range brandsIn {
			for _, adj := range adjectives {
				for _, p := range products {
					if r.Bool(0.5) {
						add(fmt.Sprintf("%s %s %s", adj, b, p))
					}
					if r.Bool(0.15) {
						add(fmt.Sprintf("%s %s %s 2014", adj, b, p))
					}
				}
				if r.Bool(0.5) {
					add(fmt.Sprintf("%s %s", adj, b))
				}
			}
			for _, p := range products {
				if r.Bool(0.4) {
					add(fmt.Sprintf("%s %s 2014", b, p))
				}
				if r.Bool(0.3) {
					add(fmt.Sprintf("buy %s %s", b, p))
				}
			}
		}
	case MethodSuggest:
		// Suggest expansions look like what shoppers actually type:
		// brand-first phrases, localisations, and question forms.
		suffixes := []string{"", " for sale", " uk", " usa", " online",
			" reviews", " price", " on sale", " free shipping", " 2014"}
		for _, b := range brandsIn {
			for _, p := range products {
				for _, sfx := range suffixes {
					if r.Bool(0.45) {
						add(fmt.Sprintf("%s %s%s", b, p, sfx))
					}
				}
			}
			for _, adj := range adjectives {
				if r.Bool(0.6) {
					add(fmt.Sprintf("%s %s", adj, b))
				}
				for _, p := range products {
					if r.Bool(0.12) {
						add(fmt.Sprintf("%s %s %s online", adj, b, p))
					}
				}
			}
			add(fmt.Sprintf("where to buy %s", b))
			add(fmt.Sprintf("%s official site", b))
			add(fmt.Sprintf("is %s legit", b))
		}
	}
	return pool
}

// Overlap returns the number of terms the two sets share. The paper found
// four overlapping terms out of a thousand across ten verticals.
func Overlap(a, b TermSet) int {
	in := make(map[string]bool, len(a.Terms))
	for _, t := range a.Terms {
		in[t] = true
	}
	var n int
	for _, t := range b.Terms {
		if in[t] {
			n++
		}
	}
	return n
}

// DailyQueryVolume returns the simulated number of users issuing queries in
// this vertical per day — the demand side that PSR traffic is drawn from.
// Values are scaled relative to each other following the verticals'
// popularity in the paper (Louis Vuitton, Uggs, Beats By Dre and Moncler
// are the heavy hitters).
func (v Vertical) DailyQueryVolume() float64 {
	switch v {
	case LouisVuitton:
		return 52000
	case Uggs:
		return 44000
	case BeatsByDre:
		return 38000
	case Moncler:
		return 30000
	case Nike:
		return 26000
	case IsabelMarant:
		return 17000
	case Abercrombie:
		return 15000
	case Adidas:
		return 14000
	case Watches:
		return 13000
	case Sunglasses:
		return 12000
	case EdHardy:
		return 10000
	case RalphLauren:
		return 9000
	case Woolrich:
		return 8000
	case Tiffany:
		return 7000
	case Golf:
		return 4000
	case Clarisonic:
		return 2500
	default:
		return 1000
	}
}
