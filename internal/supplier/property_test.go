package supplier

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simweb"
)

// TestScrapeLosslessProperty: for arbitrary dataset sizes, scraping through
// the bulk-lookup interface recovers exactly the generated records.
func TestScrapeLosslessProperty(t *testing.T) {
	check := func(seed uint64, sizeRaw uint16) bool {
		size := int(sizeRaw%300) + 1
		ds := Generate(rng.New(seed), size)
		web := simweb.NewWeb()
		web.Register("s.example", NewSite(ds))
		recs, err := Scrape(web, "s.example")
		if err != nil || len(recs) != size {
			return false
		}
		want := make(map[int]Record, size)
		for _, r := range ds.Records {
			want[r.OrderID] = r
		}
		for _, r := range recs {
			w, ok := want[r.OrderID]
			if !ok || r.Status != w.Status || r.Country != w.Country {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStatusCountsSumProperty: the per-status tallies always partition the
// dataset.
func TestStatusCountsSumProperty(t *testing.T) {
	check := func(seed uint64, sizeRaw uint16) bool {
		size := int(sizeRaw%2000) + 1
		ds := Generate(rng.New(seed), size)
		var sum int
		for _, n := range ds.ByStatus() {
			sum += n
		}
		return sum == size
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
