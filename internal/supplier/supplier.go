// Package supplier reproduces the §4.5 supply-side dataset: a fulfilment
// partner's order-tracking site exposing a scrolling list of fulfilled
// orders and a bulk lookup interface (20 orders at a time), from which the
// study scraped nine months of shipping records — delivery outcomes and
// destination countries for over a quarter million counterfeit shipments.
package supplier

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/rng"
	"repro/internal/simweb"
)

// Status is a shipment's disposition.
type Status int

// Shipment dispositions observed in the tracking records.
const (
	InTransit Status = iota
	Delivered
	SeizedAtSource      // seized by customs at origin (China)
	SeizedAtDestination // seized by customs at the destination country
	Returned            // delivered, then returned by the customer
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case InTransit:
		return "in-transit"
	case Delivered:
		return "delivered"
	case SeizedAtSource:
		return "seized-at-source"
	case SeizedAtDestination:
		return "seized-at-destination"
	case Returned:
		return "returned"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ParseStatus inverts String.
func ParseStatus(s string) (Status, bool) {
	for st := InTransit; st <= Returned; st++ {
		if st.String() == s {
			return st, true
		}
	}
	return 0, false
}

// Record is one shipping record.
type Record struct {
	OrderID int
	Placed  time.Time
	Status  Status
	Country string
}

// Dataset is the supplier's full tracking database.
type Dataset struct {
	Records []Record
}

// Window is the nine months of orders the paper scraped: July 5, 2013
// through March 28, 2014.
func Window() (start, end time.Time) {
	return time.Date(2013, time.July, 5, 0, 0, 0, 0, time.UTC),
		time.Date(2014, time.March, 28, 0, 0, 0, 0, time.UTC)
}

// countryDist reproduces the destination mix: US, Japan and Australia are
// the top three (90K/57K/39K of 279K) and Western Europe adds 41K, so the
// four regions cover over 81% of orders.
var countryDist = []struct {
	country string
	weight  float64
}{
	{"US", 0.3226}, {"JP", 0.2043}, {"AU", 0.1398},
	{"DE", 0.0490}, {"GB", 0.0441}, {"FR", 0.0294}, {"IT", 0.0147},
	{"NL", 0.0098}, // Western Europe sums to ≈ 14.7%
	{"CA", 0.0500}, {"BR", 0.0300}, {"RU", 0.0250}, {"KR", 0.0200},
	{"MX", 0.0150}, {"SG", 0.0463},
}

// WesternEurope lists the countries the paper's 41K figure aggregates.
var WesternEurope = map[string]bool{
	"DE": true, "GB": true, "FR": true, "IT": true, "NL": true,
	"ES": true, "BE": true, "AT": true, "CH": true,
}

// statusDist reproduces the disposition mix: of 279K records, 256K
// delivered, 4K seized at the source, 15K seized at the destination; 1,319
// of the delivered were returned; a small remainder still in transit.
var statusDist = []struct {
	status Status
	weight float64
}{
	{Delivered, 0.9129},
	{SeizedAtDestination, 0.0538},
	{SeizedAtSource, 0.0143},
	{Returned, 0.0047},
	{InTransit, 0.0143},
}

// Generate synthesises n records across the scrape window.
func Generate(r *rng.Source, n int) *Dataset {
	sr := r.Sub("supplier")
	start, end := Window()
	span := int(end.Sub(start).Hours() / 24)
	cw := make([]float64, len(countryDist))
	for i, c := range countryDist {
		cw[i] = c.weight
	}
	sw := make([]float64, len(statusDist))
	for i, s := range statusDist {
		sw[i] = s.weight
	}
	ds := &Dataset{Records: make([]Record, 0, n)}
	for i := 0; i < n; i++ {
		// Order volume grows over the window (business is brisk).
		dayFrac := sr.Float64()
		dayFrac = dayFrac * dayFrac // skew toward the end
		day := int(dayFrac * float64(span))
		ds.Records = append(ds.Records, Record{
			OrderID: 500000 + i,
			Placed:  start.AddDate(0, 0, day),
			Status:  statusDist[sr.WeightedPick(sw)].status,
			Country: countryDist[sr.WeightedPick(cw)].country,
		})
	}
	return ds
}

// ByStatus tallies records per disposition.
func (ds *Dataset) ByStatus() map[Status]int {
	out := make(map[Status]int)
	for _, r := range ds.Records {
		out[r.Status]++
	}
	return out
}

// ByCountry tallies records per destination.
func (ds *Dataset) ByCountry() map[string]int {
	out := make(map[string]int)
	for _, r := range ds.Records {
		out[r.Country]++
	}
	return out
}

// TopRegionsShare returns the fraction of orders destined for the US,
// Japan, Australia and Western Europe — the paper's 81% headline.
func (ds *Dataset) TopRegionsShare() float64 {
	if len(ds.Records) == 0 {
		return 0
	}
	var n int
	for _, r := range ds.Records {
		if r.Country == "US" || r.Country == "JP" || r.Country == "AU" || WesternEurope[r.Country] {
			n++
		}
	}
	return float64(n) / float64(len(ds.Records))
}

// DeliveredSuccessfully counts orders that reached their destination and
// stayed there.
func (ds *Dataset) DeliveredSuccessfully() int {
	return ds.ByStatus()[Delivered]
}

// Site serves the tracking records the way the real supplier did: a
// scrolling list page advertising the order-id range, and a bulk lookup
// endpoint returning up to BulkLimit records per request.
type Site struct {
	Data *Dataset
	byID map[int]*Record
}

// BulkLimit is the supplier's lookup batch size (§4.5: 20 at a time).
const BulkLimit = 20

// NewSite indexes a dataset for serving.
func NewSite(ds *Dataset) *Site {
	s := &Site{Data: ds, byID: make(map[int]*Record, len(ds.Records))}
	for i := range ds.Records {
		s.byID[ds.Records[i].OrderID] = &ds.Records[i]
	}
	return s
}

// Serve implements simweb.Site.
func (s *Site) Serve(req simweb.Request) simweb.Response {
	u, err := url.Parse(req.URL)
	if err != nil {
		return simweb.Response{Status: 400, Body: "bad url"}
	}
	switch {
	case strings.HasPrefix(u.Path, "/track"):
		return s.serveTrack(u)
	default:
		return s.serveIndex()
	}
}

// serveIndex renders the scrolling list of recently fulfilled orders with
// the id range embedded (the hook the scraper bootstraps from).
func (s *Site) serveIndex() simweb.Response {
	minID, maxID := s.idRange()
	var b strings.Builder
	b.WriteString("<html><head><title>Order Tracking</title></head><body><h1>Fulfilled orders</h1>\n")
	fmt.Fprintf(&b, "<div id=\"range\" data-min=\"%d\" data-max=\"%d\"></div>\n", minID, maxID)
	b.WriteString("<ul class=\"scroll\">\n")
	n := len(s.Data.Records)
	for i := n - 1; i >= 0 && i >= n-25; i-- {
		r := s.Data.Records[i]
		fmt.Fprintf(&b, "<li>order %d %s</li>\n", r.OrderID, r.Status)
	}
	b.WriteString("</ul></body></html>")
	return simweb.Response{Status: 200, Body: b.String()}
}

func (s *Site) idRange() (minID, maxID int) {
	first := true
	for id := range s.byID {
		if first || id < minID {
			minID = id
		}
		if first || id > maxID {
			maxID = id
		}
		first = false
	}
	return minID, maxID
}

// serveTrack answers bulk lookups: /track?ids=1,2,3 (at most BulkLimit).
func (s *Site) serveTrack(u *url.URL) simweb.Response {
	idsParam := u.Query().Get("ids")
	if idsParam == "" {
		return simweb.Response{Status: 400, Body: "missing ids"}
	}
	parts := strings.Split(idsParam, ",")
	if len(parts) > BulkLimit {
		return simweb.Response{Status: 400, Body: "too many ids"}
	}
	var b strings.Builder
	b.WriteString("<html><body><table class=\"track\">\n")
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			continue
		}
		r, ok := s.byID[id]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "<tr class=\"rec\"><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			r.OrderID, r.Placed.Format("2006-01-02"), r.Status, r.Country)
	}
	b.WriteString("</table></body></html>")
	return simweb.Response{Status: 200, Body: b.String()}
}

// Scrape pulls every record from a mounted supplier site through the bulk
// lookup interface, exactly as the study's collection scripts did. It
// returns the records sorted by order id.
func Scrape(f simweb.Fetcher, domain string) ([]Record, error) {
	idx := f.Fetch(simweb.Request{URL: "http://" + domain + "/", UserAgent: simweb.BrowserUA})
	if idx.Status != 200 {
		return nil, fmt.Errorf("supplier: index fetch status %d", idx.Status)
	}
	minID, maxID, err := parseRange(idx.Body)
	if err != nil {
		return nil, err
	}
	var out []Record
	for lo := minID; lo <= maxID; lo += BulkLimit {
		ids := make([]string, 0, BulkLimit)
		for id := lo; id < lo+BulkLimit && id <= maxID; id++ {
			ids = append(ids, strconv.Itoa(id))
		}
		resp := f.Fetch(simweb.Request{
			URL:       "http://" + domain + "/track?ids=" + strings.Join(ids, ","),
			UserAgent: simweb.BrowserUA,
		})
		if resp.Status != 200 {
			return nil, fmt.Errorf("supplier: track fetch status %d", resp.Status)
		}
		recs, err := parseTrack(resp.Body)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OrderID < out[j].OrderID })
	return out, nil
}

func parseRange(body string) (minID, maxID int, err error) {
	minID, err = extractIntAttr(body, `data-min="`)
	if err != nil {
		return 0, 0, err
	}
	maxID, err = extractIntAttr(body, `data-max="`)
	return minID, maxID, err
}

func extractIntAttr(body, marker string) (int, error) {
	i := strings.Index(body, marker)
	if i < 0 {
		return 0, fmt.Errorf("supplier: marker %q not found", marker)
	}
	rest := body[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, fmt.Errorf("supplier: unterminated attribute")
	}
	return strconv.Atoi(rest[:j])
}

func parseTrack(body string) ([]Record, error) {
	var out []Record
	for _, row := range strings.Split(body, "<tr class=\"rec\">") {
		if !strings.Contains(row, "<td>") {
			continue
		}
		var cells []string
		for _, c := range strings.Split(row, "<td>") {
			if end := strings.Index(c, "</td>"); end >= 0 {
				cells = append(cells, c[:end])
			}
		}
		if len(cells) != 4 {
			continue
		}
		id, err := strconv.Atoi(cells[0])
		if err != nil {
			continue
		}
		placed, err := time.Parse("2006-01-02", cells[1])
		if err != nil {
			continue
		}
		status, ok := ParseStatus(cells[2])
		if !ok {
			continue
		}
		out = append(out, Record{OrderID: id, Placed: placed, Status: status, Country: cells[3]})
	}
	return out, nil
}
