package supplier

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/simweb"
)

func TestGenerateProportions(t *testing.T) {
	ds := Generate(rng.New(1), 50000)
	if len(ds.Records) != 50000 {
		t.Fatalf("records = %d", len(ds.Records))
	}
	by := ds.ByStatus()
	frac := func(s Status) float64 { return float64(by[s]) / 50000 }
	// §4.5 proportions: ~91.8% delivered, ~1.4% seized at source, ~5.4% at
	// destination, ~0.5% returned.
	if math.Abs(frac(Delivered)-0.9129) > 0.01 {
		t.Fatalf("delivered frac = %v", frac(Delivered))
	}
	if math.Abs(frac(SeizedAtDestination)-0.0538) > 0.01 {
		t.Fatalf("seized-at-dest frac = %v", frac(SeizedAtDestination))
	}
	if frac(SeizedAtSource) >= frac(SeizedAtDestination) {
		t.Fatal("destination seizures must dominate source seizures")
	}
}

func TestTopRegionsShare(t *testing.T) {
	ds := Generate(rng.New(2), 50000)
	share := ds.TopRegionsShare()
	if share < 0.78 || share > 0.87 {
		t.Fatalf("top regions share = %v, want ≈0.81", share)
	}
	by := ds.ByCountry()
	if by["US"] <= by["JP"] || by["JP"] <= by["AU"] {
		t.Fatalf("country ordering US>JP>AU violated: %v/%v/%v", by["US"], by["JP"], by["AU"])
	}
}

func TestRecordsInsideWindow(t *testing.T) {
	ds := Generate(rng.New(3), 2000)
	start, end := Window()
	for _, r := range ds.Records {
		if r.Placed.Before(start) || r.Placed.After(end) {
			t.Fatalf("record placed %v outside window", r.Placed)
		}
	}
}

func TestStatusRoundTrip(t *testing.T) {
	for s := InTransit; s <= Returned; s++ {
		got, ok := ParseStatus(s.String())
		if !ok || got != s {
			t.Fatalf("round trip failed for %v", s)
		}
	}
	if _, ok := ParseStatus("bogus"); ok {
		t.Fatal("bogus status parsed")
	}
}

func TestSiteBulkLookup(t *testing.T) {
	ds := Generate(rng.New(4), 100)
	site := NewSite(ds)
	resp := site.Serve(simweb.Request{URL: "http://supplier.example/track?ids=500000,500001,500002"})
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	recs, err := parseTrack(resp.Body)
	if err != nil || len(recs) != 3 {
		t.Fatalf("recs = %d, err = %v", len(recs), err)
	}
	// Over-limit requests are refused.
	ids := "500000"
	for i := 1; i <= BulkLimit; i++ {
		ids += ",500001"
	}
	if resp := site.Serve(simweb.Request{URL: "http://supplier.example/track?ids=" + ids}); resp.Status != 400 {
		t.Fatalf("over-limit status = %d", resp.Status)
	}
	if resp := site.Serve(simweb.Request{URL: "http://supplier.example/track"}); resp.Status != 400 {
		t.Fatal("missing ids must 400")
	}
}

func TestScrapeRecoversEverything(t *testing.T) {
	ds := Generate(rng.New(5), 500)
	web := simweb.NewWeb()
	web.Register("supplier.example", NewSite(ds))
	recs, err := Scrape(web, "supplier.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ds.Records) {
		t.Fatalf("scraped %d of %d records", len(recs), len(ds.Records))
	}
	// Spot-check fidelity.
	want := map[int]Record{}
	for _, r := range ds.Records {
		want[r.OrderID] = r
	}
	for _, r := range recs {
		w := want[r.OrderID]
		if r.Status != w.Status || r.Country != w.Country ||
			r.Placed.Format("2006-01-02") != w.Placed.Format("2006-01-02") {
			t.Fatalf("record %d mismatch: %+v vs %+v", r.OrderID, r, w)
		}
	}
}

func TestScrapeUnknownHost(t *testing.T) {
	web := simweb.NewWeb()
	if _, err := Scrape(web, "gone.example"); err == nil {
		t.Fatal("scrape of missing site must fail")
	}
}

func TestIndexPageAdvertisesRange(t *testing.T) {
	ds := Generate(rng.New(6), 50)
	site := NewSite(ds)
	resp := site.Serve(simweb.Request{URL: "http://supplier.example/"})
	minID, maxID, err := parseRange(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if minID != 500000 || maxID != 500049 {
		t.Fatalf("range = %d..%d", minID, maxID)
	}
}

func TestDeliveredSuccessfully(t *testing.T) {
	ds := &Dataset{Records: []Record{
		{Status: Delivered}, {Status: Delivered}, {Status: Returned}, {Status: InTransit},
	}}
	if ds.DeliveredSuccessfully() != 2 {
		t.Fatal("delivered count wrong")
	}
}
