package htmlparse

import (
	"sort"
	"strings"
	"testing"
)

// referenceTriplets is the straightforward map-based extractor Triplets
// used before the allocation-trimming rewrite; the optimized version must
// match it feature-for-feature on every document.
func referenceTriplets(src string) []string {
	set := make(map[string]struct{})
	for _, tok := range Tokenize(src) {
		if tok.Type != StartTagToken && tok.Type != SelfClosingToken {
			continue
		}
		set["tag:"+tok.Data] = struct{}{}
		for _, a := range tok.Attrs {
			set["attr:"+tok.Data+"."+a.Name] = struct{}{}
			v := a.Value
			if len(v) > 48 {
				v = v[:48]
			}
			set["trip:"+tok.Data+"."+a.Name+"="+v] = struct{}{}
			if i := strings.LastIndexByte(v, '='); i >= 0 {
				set["pfx:"+tok.Data+"."+a.Name+"="+v[:i+1]] = struct{}{}
			}
			if h := urlHost(a.Value); h != "" {
				set["host:"+tok.Data+"."+a.Name+"="+h] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

var tripletDocs = []string{
	``,
	`plain text only`,
	`<div class="shop"><a href="/cart">Cart</a></div>`,
	`<a href="/php?p=cheap+uggs">x</a><script src="https://s4.cnzz.com/stat.php?id=99"></script>`,
	`<div a="1" b="2" a="1"><span c="3"></span><span c="3"></span></div>`,
	`<img src=/x.png><br/><input type="text" value="q=v=w">`,
	`<div data-blob="` + strings.Repeat("x", 500) + `">tail</div>`,
	`<!doctype html><!-- c --><html><body onload="go()"><p id=a class=b>t</p></body></html>`,
	`<script>var s = "<div fake='1'>";</script><div real="1"></div>`,
	`<a href="http://h.com/a/b#frag">l</a><a href="ftp://nope.com/">m</a>`,
}

// TestTripletsMatchesReference pins the buffer-reusing Triplets to the
// naive map-based extraction on a spread of documents, including duplicate
// features, raw-text scripts, malformed tags, and long values.
func TestTripletsMatchesReference(t *testing.T) {
	// A synthetic storefront-ish page exercises repeated tags at volume.
	var big strings.Builder
	big.WriteString(`<html><head><script src="https://cdn.kit.com/seo.js?v=`)
	big.WriteString(`7"></script></head><body>`)
	for i := 0; i < 200; i++ {
		big.WriteString(`<div class="item"><a href="/php?p=item">buy</a></div>`)
	}
	big.WriteString(`</body></html>`)
	docs := append(append([]string(nil), tripletDocs...), big.String())

	for di, doc := range docs {
		got := Triplets(doc)
		want := referenceTriplets(doc)
		if len(got) != len(want) {
			t.Fatalf("doc %d: %d features, reference has %d\ngot  %v\nwant %v",
				di, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("doc %d feature %d: got %q want %q", di, i, got[i], want[i])
			}
		}
	}
}

func benchDoc() string {
	var b strings.Builder
	b.WriteString(`<html><head><title>cheap deals</title>`)
	b.WriteString(`<script src="https://s4.cnzz.com/stat.php?id=99"></script></head><body>`)
	for i := 0; i < 120; i++ {
		b.WriteString(`<div class="product" data-sku="a=b"><a href="/php?p=cheap+uggs">`)
		b.WriteString(`<img src="http://img.example.com/p.png" alt="p"></a></div>`)
	}
	b.WriteString(`</body></html>`)
	return b.String()
}

// BenchmarkTripletsStorefront tracks the feature-extraction hot path on a
// storefront-shaped page (URL-heavy attributes, so the pfx:/host: branches
// run); the allocation count is what the buffer-reuse work targets.
func BenchmarkTripletsStorefront(b *testing.B) {
	doc := benchDoc()
	b.ReportAllocs()
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		Triplets(doc)
	}
}

// BenchmarkTripletsReference is the pre-rewrite map-based extractor, kept
// as the baseline the optimized numbers are read against.
func BenchmarkTripletsReference(b *testing.B) {
	doc := benchDoc()
	b.ReportAllocs()
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		referenceTriplets(doc)
	}
}

// BenchmarkEachToken measures the streaming tokenizer alone (no feature
// assembly), the floor for any extraction built on it.
func BenchmarkEachToken(b *testing.B) {
	doc := benchDoc()
	b.ReportAllocs()
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		n := 0
		EachToken(doc, func(tok Token) bool { n++; return true })
	}
}
