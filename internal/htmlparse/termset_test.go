package htmlparse

import (
	"strings"
	"testing"
)

// termSetTree is the original tree-based definition of TermSet, kept as the
// oracle for the streaming implementation.
func termSetTree(src string) map[string]struct{} {
	text := Parse(src).InnerText()
	set := make(map[string]struct{})
	for _, w := range strings.Fields(strings.ToLower(text)) {
		w = strings.Trim(w, ".,!?;:\"'()[]")
		if len(w) >= 2 {
			set[w] = struct{}{}
		}
	}
	return set
}

var termSetCorpus = []string{
	"",
	"plain words only",
	"<html><body><p>Cheap UGGS, boots! (Sale)</p></body></html>",
	"<div>punct 'edges' [boxed] \"quoted\" end.</div>",
	"<script>var hidden = \"not a term\";</script><p>visible term</p>",
	"<style>.cls { color: red }</style><span>styled text</span>",
	"<script>unterminated raw content with words",
	"</script>stray end tag then words",
	"<p>unicode 日本公式オンラインストア Straße İstanbul</p>",
	"<p>a I x</p>", // single-byte words are dropped
	"<b>bold</b>mid<script>skip()</script>tail",
	"<p>broken < markup <notatag ></p>",
	"<!-- comment words --><!DOCTYPE html><p>real words</p>",
	"<ul><li>item one</li>\n\t<li>item two</li></ul>",
	"<a href=\"http://x.example/?q=a+b\">link text here</a>",
	"MiXeD CaSe WORDS lower",
	"<p>tab\tand\nnewline   runs</p>",
	"<script type=\"text/javascript\">document.write('<p>written</p>');</script>after",
}

func TestTermSetMatchesTreeOracle(t *testing.T) {
	for i, src := range termSetCorpus {
		got := TermSet(src)
		want := termSetTree(src)
		if len(got) != len(want) {
			t.Errorf("corpus[%d]: streaming has %d terms, tree has %d\ngot:  %v\nwant: %v",
				i, len(got), len(want), got, want)
			continue
		}
		for w := range want {
			if _, ok := got[w]; !ok {
				t.Errorf("corpus[%d]: streaming missing term %q", i, w)
			}
		}
	}
}

func BenchmarkTermSet(b *testing.B) {
	src := termSetCorpus[2] + termSetCorpus[4] + termSetCorpus[8] + termSetCorpus[14]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TermSet(src)
	}
}
