package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeSimple(t *testing.T) {
	toks := Tokenize(`<html><body class="x">hi</body></html>`)
	want := []TokenType{StartTagToken, StartTagToken, TextToken, EndTagToken, EndTagToken}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	for i, w := range want {
		if toks[i].Type != w {
			t.Fatalf("token %d type = %v, want %v", i, toks[i].Type, w)
		}
	}
	if v, ok := toks[1].Attr("class"); !ok || v != "x" {
		t.Fatalf("body class = %q, %v", v, ok)
	}
}

func TestTokenizeAttrVariants(t *testing.T) {
	toks := Tokenize(`<input type=text disabled value='a b' DATA-X="1">`)
	if len(toks) != 1 {
		t.Fatalf("tokens: %+v", toks)
	}
	tok := toks[0]
	if v, _ := tok.Attr("type"); v != "text" {
		t.Errorf("unquoted attr = %q", v)
	}
	if _, ok := tok.Attr("disabled"); !ok {
		t.Error("bare attribute missing")
	}
	if v, _ := tok.Attr("value"); v != "a b" {
		t.Errorf("single-quoted attr = %q", v)
	}
	if v, ok := tok.Attr("data-x"); !ok || v != "1" {
		t.Errorf("attr names must be lowercased: %q %v", v, ok)
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	src := `<script>if (a < b) { x = "<div>"; }</script><p>after</p>`
	toks := Tokenize(src)
	// script start, script text, script end, p, text, /p
	if toks[0].Data != "script" || toks[1].Type != TextToken {
		t.Fatalf("tokens: %+v", toks)
	}
	if !strings.Contains(toks[1].Data, `a < b`) {
		t.Fatalf("script body mangled: %q", toks[1].Data)
	}
	var sawP bool
	for _, tok := range toks {
		if tok.Type == StartTagToken && tok.Data == "p" {
			sawP = true
		}
	}
	if !sawP {
		t.Fatal("content after script lost")
	}
}

func TestTokenizeComment(t *testing.T) {
	toks := Tokenize(`a<!-- hidden <b> -->z`)
	if len(toks) != 3 || toks[1].Type != CommentToken {
		t.Fatalf("tokens: %+v", toks)
	}
	if !strings.Contains(toks[1].Data, "hidden <b>") {
		t.Fatalf("comment body = %q", toks[1].Data)
	}
}

func TestTokenizeDoctype(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><html></html>`)
	if toks[0].Type != DoctypeToken {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestTokenizeMalformed(t *testing.T) {
	cases := []string{
		"<", "< notatag", "<>", "a < b and > c", "<div", "<div class=",
		"</", "<!--unterminated", "<div class='unterminated",
	}
	for _, src := range cases {
		toks := Tokenize(src) // must not panic
		_ = toks
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := Tokenize(`<br/><img src="x"/>`)
	if toks[0].Type != SelfClosingToken || toks[1].Type != SelfClosingToken {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestParseTree(t *testing.T) {
	root := Parse(`<html><body><div id="a"><p>one</p><p>two</p></div></body></html>`)
	ps := root.FindAll("p")
	if len(ps) != 2 {
		t.Fatalf("found %d <p>, want 2", len(ps))
	}
	div := root.Find("div")
	if div == nil {
		t.Fatal("no div")
	}
	if id, _ := div.Attr("id"); id != "a" {
		t.Fatalf("div id = %q", id)
	}
	if len(div.Children) != 2 {
		t.Fatalf("div has %d children", len(div.Children))
	}
}

func TestParseVoidElements(t *testing.T) {
	root := Parse(`<div><img src="a"><br><span>x</span></div>`)
	span := root.Find("span")
	if span == nil || span.Parent.Tag != "div" {
		t.Fatal("void elements must not capture following siblings as children")
	}
}

func TestParseUnclosedAndMismatched(t *testing.T) {
	root := Parse(`<div><p>one<p>two</div></b>`)
	if root.Find("div") == nil {
		t.Fatal("unclosed children must still parse")
	}
	// Must not panic and text must be reachable.
	if !strings.Contains(root.InnerText(), "two") {
		t.Fatalf("text = %q", root.InnerText())
	}
}

func TestInnerTextExcludesScripts(t *testing.T) {
	root := Parse(`<body>visible<script>var hidden = "secret";</script> tail</body>`)
	text := root.InnerText()
	if strings.Contains(text, "secret") {
		t.Fatalf("script leaked into text: %q", text)
	}
	if !strings.Contains(text, "visible") || !strings.Contains(text, "tail") {
		t.Fatalf("text = %q", text)
	}
}

func TestScripts(t *testing.T) {
	root := Parse(`<script>one()</script><div></div><script>two()</script>`)
	s := root.Scripts()
	if len(s) != 2 || !strings.Contains(s[0], "one") || !strings.Contains(s[1], "two") {
		t.Fatalf("scripts = %q", s)
	}
}

func TestTriplets(t *testing.T) {
	tr := Triplets(`<div class="shop"><a href="/cart">Cart</a></div>`)
	want := []string{
		"attr:a.href", "attr:div.class", "tag:a", "tag:div",
		"trip:a.href=/cart", "trip:div.class=shop",
	}
	if len(tr) != len(want) {
		t.Fatalf("triplets = %v", tr)
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("triplets = %v, want %v", tr, want)
		}
	}
}

func TestTripletsPrefixAndHostFeatures(t *testing.T) {
	tr := Triplets(`<a href="/php?p=cheap+uggs">x</a><script src="https://s4.cnzz.com/stat.php?id=99"></script>`)
	wantSome := []string{
		"pfx:a.href=/php?p=",
		"host:script.src=s4.cnzz.com",
		"pfx:script.src=https://s4.cnzz.com/stat.php?id=",
	}
	have := map[string]bool{}
	for _, f := range tr {
		have[f] = true
	}
	for _, w := range wantSome {
		if !have[w] {
			t.Errorf("missing feature %q in %v", w, tr)
		}
	}
}

func TestURLHost(t *testing.T) {
	cases := map[string]string{
		"http://bit.ly/abc":     "bit.ly",
		"https://x.com?q=1":     "x.com",
		"https://y.com":         "y.com",
		"/relative/path":        "",
		"ftp://nope.com/":       "",
		"http://h.com/a/b#frag": "h.com",
	}
	for in, want := range cases {
		if got := urlHost(in); got != want {
			t.Errorf("urlHost(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTripletsTruncateLongValues(t *testing.T) {
	long := strings.Repeat("x", 500)
	tr := Triplets(`<div data-blob="` + long + `">`)
	for _, f := range tr {
		if len(f) > 100 {
			t.Fatalf("feature too long: %d bytes", len(f))
		}
	}
}

func TestTripletsDeterministicAndSorted(t *testing.T) {
	src := `<div a="1" b="2"><span c="3"></span></div>`
	a, b := Triplets(src), Triplets(src)
	if len(a) != len(b) {
		t.Fatal("nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic order")
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestTermSet(t *testing.T) {
	set := TermSet(`<p>Cheap Louis Vuitton, bags!</p>`)
	for _, w := range []string{"cheap", "louis", "vuitton", "bags"} {
		if _, ok := set[w]; !ok {
			t.Errorf("missing term %q in %v", w, set)
		}
	}
}

func TestJaccard(t *testing.T) {
	a := map[string]struct{}{"x": {}, "y": {}}
	b := map[string]struct{}{"y": {}, "z": {}}
	if j := Jaccard(a, b); j != 1.0/3.0 {
		t.Fatalf("jaccard = %v", j)
	}
	if j := Jaccard(a, a); j != 1 {
		t.Fatalf("self jaccard = %v", j)
	}
	if j := Jaccard(nil, nil); j != 1 {
		t.Fatalf("empty jaccard = %v", j)
	}
	if j := Jaccard(a, nil); j != 0 {
		t.Fatalf("disjoint jaccard = %v", j)
	}
}

func TestJaccardSymmetryProperty(t *testing.T) {
	mk := func(words []string) map[string]struct{} {
		m := make(map[string]struct{})
		for _, w := range words {
			m[w] = struct{}{}
		}
		return m
	}
	check := func(xs, ys []string) bool {
		a, b := mk(xs), mk(ys)
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeNeverPanicsProperty(t *testing.T) {
	check := func(src string) bool {
		Tokenize(src)
		Parse(src)
		Triplets(src)
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRoundTripStructure(t *testing.T) {
	// Every start tag emitted by Tokenize for well-formed input must appear
	// in the parse tree.
	src := `<html><head><title>t</title></head><body><div><ul><li>a</li><li>b</li></ul></div></body></html>`
	root := Parse(src)
	for _, tag := range []string{"html", "head", "title", "body", "div", "ul", "li"} {
		if root.Find(tag) == nil {
			t.Fatalf("tag %q lost in parse", tag)
		}
	}
	if len(root.FindAll("li")) != 2 {
		t.Fatal("li count wrong")
	}
}

func BenchmarkTokenize(b *testing.B) {
	src := strings.Repeat(`<div class="product"><a href="/item?id=1">Buy <b>now</b></a></div>`, 100)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Tokenize(src)
	}
}

func BenchmarkTriplets(b *testing.B) {
	src := strings.Repeat(`<div class="product"><a href="/item?id=1">Buy</a></div>`, 100)
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Triplets(src)
	}
}
