package crawler

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/htmlgen"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/store"
)

type fixture struct {
	web *simweb.Web
	gen *htmlgen.Generator
	det *Detector
	// mounted stores/doorways by campaign name
	storeDom map[string]string
	doorURL  map[string]string
	doorDom  map[string]string
}

func build(t *testing.T) *fixture {
	t.Helper()
	r := rng.New(21)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.01)
	gen := htmlgen.New(r)
	f := &fixture{
		web: simweb.NewWeb(), gen: gen,
		storeDom: map[string]string{}, doorURL: map[string]string{}, doorDom: map[string]string{},
	}
	mount := func(name string, js bool) {
		var dep *campaign.Deployment
		for _, d := range deps {
			if d.Spec.Name == name {
				dep = d
			}
		}
		if dep == nil {
			t.Fatalf("no deployment %s", name)
		}
		st := store.New(dep.Stores[0], r.Sub("store"), 245)
		sd := dep.Stores[0].Domains[0]
		f.web.Register(sd, &simweb.StoreSite{Store: st, Gen: gen, Window: simclock.StudyWindow()})
		f.storeDom[name] = sd
		dw := dep.Doorways[0]
		f.web.Register(dw.Domain, &simweb.DoorwaySite{
			Doorway: dw, Gen: gen,
			Terms:      []string{"cheap goods", "outlet online"},
			Resolve:    func(simclock.Day) string { return "http://" + sd + "/" },
			JSRedirect: js,
		})
		f.doorDom[name] = dw.Domain
		f.doorURL[name] = "http://" + dw.Domain + htmlgen.DoorwayPath(dep.Spec.Signature, "cheap goods")
	}
	mount("KEY", false)        // redirect cloaking, HTTP 302
	mount("NEWSORG", true)     // redirect cloaking, JS variant
	mount("MOONKIS", false)    // iframe cloaking
	mount("NORTHFACEC", false) // user-agent cloaking
	f.web.Register("benign-reviews.org", &simweb.BenignSite{
		Domain: "benign-reviews.org", Term: "cheap goods", Gen: gen})
	f.det = NewDetector(f.web)
	return f
}

func TestDaggerDetectsHTTPRedirectCloaking(t *testing.T) {
	f := build(t)
	v := f.det.CheckURL(f.doorURL["KEY"], 0)
	if !v.Cloaked || v.Detector != "dagger-redirect" {
		t.Fatalf("verdict = %+v", v)
	}
	if !v.IsStore || v.StoreDomain != f.storeDom["KEY"] {
		t.Fatalf("landing = %+v", v)
	}
}

func TestDaggerDetectsJSRedirectCloaking(t *testing.T) {
	f := build(t)
	v := f.det.CheckURL(f.doorURL["NEWSORG"], 0)
	if !v.Cloaked {
		t.Fatalf("JS redirect missed: %+v", v)
	}
	if v.Detector != "dagger-js" {
		t.Fatalf("detector = %q", v.Detector)
	}
	if v.StoreDomain != f.storeDom["NEWSORG"] || !v.IsStore {
		t.Fatalf("landing = %+v", v)
	}
}

func TestDaggerDetectsUserAgentCloaking(t *testing.T) {
	f := build(t)
	v := f.det.CheckURL(f.doorURL["NORTHFACEC"], 0)
	if !v.Cloaked || v.Detector != "dagger-redirect" {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestVanGoghCatchesIframeCloakingDaggerMisses(t *testing.T) {
	f := build(t)
	// With VanGogh: caught.
	v := f.det.CheckURL(f.doorURL["MOONKIS"], 0)
	if !v.Cloaked || v.Detector != "vangogh" {
		t.Fatalf("verdict = %+v", v)
	}
	if v.StoreDomain != f.storeDom["MOONKIS"] || !v.IsStore {
		t.Fatalf("landing = %+v", v)
	}
	// Without VanGogh (the ablation): missed — this is the paper's point
	// about detection requiring full rendering.
	blind := &Detector{F: f.web, Opts: DefaultOptions()}
	blind.Opts.EnableVanGogh = false
	bv := blind.CheckURL(f.doorURL["MOONKIS"], 0)
	if bv.Cloaked {
		t.Fatalf("diff-only detector should miss iframe cloaking: %+v", bv)
	}
}

func TestBenignSiteClean(t *testing.T) {
	f := build(t)
	v := f.det.CheckURL("http://benign-reviews.org/", 0)
	if v.Cloaked {
		t.Fatalf("benign flagged: %+v", v)
	}
}

func TestStoreItselfClean(t *testing.T) {
	// Legitimate (non-cloaking) resellers and the storefronts themselves
	// serve everyone the same document: no cloaking verdict.
	f := build(t)
	v := f.det.CheckURL("http://"+f.storeDom["KEY"]+"/", 0)
	if v.Cloaked {
		t.Fatalf("store flagged as cloaked: %+v", v)
	}
}

func TestDeadURLClean(t *testing.T) {
	f := build(t)
	v := f.det.CheckURL("http://gone.example.com/", 0)
	if v.Cloaked {
		t.Fatal("404 must be clean")
	}
}

func TestLooksLikeStore(t *testing.T) {
	cases := []struct {
		body    string
		cookies []string
		want    bool
	}{
		{"<a href='/cart'>Cart</a>", nil, true},
		{"<a href='/checkout'>Buy</a>", nil, true},
		{"plain page", []string{"zenid=abc; path=/"}, true},
		{"plain page", []string{"frontend=x"}, true},
		{"plain page", []string{"realypay_session=x"}, true},
		{"plain page", []string{"CNZZDATA12345=1"}, true},
		{"plain page", []string{"unrelated=1"}, false},
		{"an article about gardens", nil, false},
	}
	for i, c := range cases {
		if got := LooksLikeStore(c.body, c.cookies); got != c.want {
			t.Errorf("case %d: got %v", i, got)
		}
	}
}

func TestRenderStaticIframe(t *testing.T) {
	rr := Render(`<html><body><iframe src="http://x/" width="100%" height="100%"></iframe></body></html>`, "http://d/", "")
	if len(rr.Iframes) != 1 || !rr.Iframes[0].fullPage() {
		t.Fatalf("iframes = %+v", rr.Iframes)
	}
}

// TestRenderStyleSizedIframe covers the absent-vs-empty attribute
// distinction: an iframe with no width/height attributes takes its
// dimensions from the inline style and is full-page, while explicit empty
// attributes are the author's (degenerate) values and suppress the style
// fallback.
func TestRenderStyleSizedIframe(t *testing.T) {
	rr := Render(`<html><body><iframe src="http://x/" style="border:0;width:100%;height:100%"></iframe></body></html>`, "http://d/", "")
	if len(rr.Iframes) != 1 {
		t.Fatalf("iframes = %+v", rr.Iframes)
	}
	if f := rr.Iframes[0]; !f.fullPage() {
		t.Fatalf("style-sized iframe not full-page: %+v", f)
	}

	rr = Render(`<html><body><iframe src="http://x/" width="" height="" style="width:100%;height:100%"></iframe></body></html>`, "http://d/", "")
	if len(rr.Iframes) != 1 {
		t.Fatalf("iframes = %+v", rr.Iframes)
	}
	if f := rr.Iframes[0]; f.fullPage() {
		t.Fatalf("explicit empty attributes must not fall back to style: %+v", f)
	}
}

func TestStyleDim(t *testing.T) {
	cases := []struct {
		style, prop, want string
	}{
		{"width:100%;height:100%", "width", "100%"},
		{"border:0; width : 900px ;height:100%", "width", "900px"},
		{"max-width:100%", "width", ""},
		{"HEIGHT:100%", "height", "100%"},
		{"", "width", ""},
	}
	for i, c := range cases {
		if got := styleDim(c.style, c.prop); got != c.want {
			t.Errorf("case %d styleDim(%q, %q) = %q, want %q", i, c.style, c.prop, got, c.want)
		}
	}
}

func TestFullPageRule(t *testing.T) {
	cases := []struct {
		w, h string
		want bool
	}{
		{"100%", "100%", true},
		{"900", "850", true},
		{"801px", "900px", true},
		{"100%", "400", false},
		{"300", "100%", false},
		{"", "", false},
		{"800", "900", false}, // strictly greater than 800
	}
	for i, c := range cases {
		f := Iframe{Width: c.w, Height: c.h}
		if got := f.fullPage(); got != c.want {
			t.Errorf("case %d (%q,%q): got %v", i, c.w, c.h, got)
		}
	}
}

func TestRenderScriptErrorsNonFatal(t *testing.T) {
	rr := Render(`<html><body><script>this is not javascript at all</script><iframe src="http://x/" width="100%" height="100%"></iframe></body></html>`, "http://d/", "")
	if len(rr.Errors) == 0 {
		t.Fatal("expected a script error")
	}
	if len(rr.Iframes) != 1 {
		t.Fatal("static iframes must survive script errors")
	}
}

func TestCrawlerCacheSkipsCleanDomains(t *testing.T) {
	f := build(t)
	c := New(f.det)
	c.CheckDomain("benign-reviews.org", "http://benign-reviews.org/", 0)
	n := c.Fetches()
	for d := simclock.Day(1); d < 30; d++ {
		c.CheckDomain("benign-reviews.org", "http://benign-reviews.org/", d)
	}
	if c.Fetches() != n {
		t.Fatalf("clean domain re-fetched: %d -> %d", n, c.Fetches())
	}
}

func TestCrawlerRechecksPoisonedDomains(t *testing.T) {
	f := build(t)
	c := New(f.det)
	c.RecheckDays = 4
	dom := f.doorDom["KEY"]
	c.CheckDomain(dom, f.doorURL["KEY"], 0)
	n := c.Fetches()
	c.CheckDomain(dom, f.doorURL["KEY"], 2) // within recheck window
	if c.Fetches() != n {
		t.Fatal("poisoned domain re-fetched too early")
	}
	c.CheckDomain(dom, f.doorURL["KEY"], 5) // past recheck window
	if c.Fetches() != n+1 {
		t.Fatal("poisoned domain not re-verified after RecheckDays")
	}
}

func TestCrawlerKeepsCloakedVerdictWhenCampaignGoesDark(t *testing.T) {
	f := build(t)
	// A resolver that goes dark after day 10.
	var dep *campaign.Deployment
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(rng.New(3), specs, 0.01)
	for _, d := range deps {
		if d.Spec.Name == "JSUS" {
			dep = d
		}
	}
	st := store.New(dep.Stores[0], rng.New(5), 245)
	sd := dep.Stores[0].Domains[0]
	f.web.Register(sd, &simweb.StoreSite{Store: st, Gen: f.gen, Window: simclock.StudyWindow()})
	dw := dep.Doorways[0]
	f.web.Register(dw.Domain, &simweb.DoorwaySite{
		Doorway: dw, Gen: f.gen, Terms: []string{"cheap goods"},
		Resolve: func(d simclock.Day) string {
			if d > 10 {
				return ""
			}
			return "http://" + sd + "/"
		},
	})
	c := New(f.det)
	c.RecheckDays = 1
	u := "http://" + dw.Domain + "/"
	v0 := c.CheckDomain(dw.Domain, u, 0)
	if !v0.Cloaked {
		t.Fatalf("initial check must flag: %+v", v0)
	}
	v20 := c.CheckDomain(dw.Domain, u, 20)
	if !v20.Cloaked {
		t.Fatal("verdict must not flip to clean when the campaign goes dark")
	}
}

func TestCheckDomainsParallelMatchesSerial(t *testing.T) {
	f := build(t)
	urls := map[string]string{
		f.doorDom["KEY"]:     f.doorURL["KEY"],
		f.doorDom["NEWSORG"]: f.doorURL["NEWSORG"],
		f.doorDom["MOONKIS"]: f.doorURL["MOONKIS"],
		"benign-reviews.org": "http://benign-reviews.org/",
	}
	par := New(f.det)
	par.Workers = 4
	got := par.CheckDomains(urls, 0)
	ser := New(f.det)
	ser.Workers = 1
	want := ser.CheckDomains(urls, 0)
	for dom := range urls {
		if got[dom].Cloaked != want[dom].Cloaked || got[dom].Detector != want[dom].Detector {
			t.Fatalf("%s: parallel %+v vs serial %+v", dom, got[dom], want[dom])
		}
	}
}

func TestInvalidate(t *testing.T) {
	f := build(t)
	c := New(f.det)
	c.CheckDomain("benign-reviews.org", "http://benign-reviews.org/", 0)
	if _, ok := c.Cached("benign-reviews.org"); !ok {
		t.Fatal("not cached")
	}
	c.Invalidate("benign-reviews.org")
	if _, ok := c.Cached("benign-reviews.org"); ok {
		t.Fatal("still cached")
	}
}

func TestVerdictString(t *testing.T) {
	if (Verdict{}).String() != "clean" {
		t.Fatal("clean verdict string")
	}
	v := Verdict{Cloaked: true, Detector: "vangogh", StoreDomain: "s.com", IsStore: true}
	if v.String() == "" {
		t.Fatal("empty string")
	}
}

func BenchmarkCheckURLRedirect(b *testing.B) {
	f := build(&testing.T{})
	for i := 0; i < b.N; i++ {
		f.det.CheckURL(f.doorURL["KEY"], 0)
	}
}

func BenchmarkCheckURLIframe(b *testing.B) {
	f := build(&testing.T{})
	for i := 0; i < b.N; i++ {
		f.det.CheckURL(f.doorURL["MOONKIS"], 0)
	}
}
