package crawler

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simweb"
)

// countingFetcher wraps a Fetcher and tracks the peak number of concurrent
// fetches, with a small sleep so overlapping workers actually overlap.
type countingFetcher struct {
	inner     simweb.Fetcher
	cur, peak atomic.Int64
}

func (c *countingFetcher) enter() {
	cur := c.cur.Add(1)
	for {
		p := c.peak.Load()
		if cur <= p || c.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

func (c *countingFetcher) Fetch(req simweb.Request) simweb.Response {
	c.enter()
	defer c.cur.Add(-1)
	time.Sleep(time.Millisecond)
	return c.inner.Fetch(req)
}

func (c *countingFetcher) FetchFollow(req simweb.Request, maxHops int) (simweb.Response, string) {
	c.enter()
	defer c.cur.Add(-1)
	time.Sleep(time.Millisecond)
	return c.inner.FetchFollow(req, maxHops)
}

// TestCheckDomainsClampsPool pins the satellite fix: a crawler configured
// with far more workers than jobs must never run more concurrent fetch
// chains than it has domains to check.
func TestCheckDomainsClampsPool(t *testing.T) {
	f := build(t)
	cf := &countingFetcher{inner: f.web}
	c := New(NewDetector(cf))
	c.Workers = 64

	urls := map[string]string{
		f.doorDom["KEY"]:     f.doorURL["KEY"],
		f.doorDom["NEWSORG"]: f.doorURL["NEWSORG"],
	}
	c.CheckDomains(urls, 0)
	if peak := cf.peak.Load(); peak > int64(len(urls)) {
		t.Fatalf("peak concurrent fetches = %d with only %d jobs", peak, len(urls))
	}
}

// TestCheckDomainSharesInflightRun asserts that concurrent callers asking
// about the same domain collapse onto a single detector run — the fetch
// count must match what a lone caller would have produced.
func TestCheckDomainSharesInflightRun(t *testing.T) {
	f := build(t)
	c := New(f.det)
	dom, url := f.doorDom["KEY"], f.doorURL["KEY"]

	const callers = 8
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	verdicts := make([]Verdict, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			verdicts[i] = c.CheckDomain(dom, url, 0)
		}(i)
	}
	start.Done()
	done.Wait()

	if got := c.Fetches(); got != 1 {
		t.Fatalf("detector ran %d times for one domain", got)
	}
	for i, v := range verdicts {
		if !v.Cloaked || v.StoreDomain != verdicts[0].StoreDomain {
			t.Fatalf("caller %d saw verdict %+v, caller 0 saw %+v", i, v, verdicts[0])
		}
	}
}

// TestCheckDomainsFetchCountsMatchSerial runs the same batch on one worker
// and on many and requires identical verdicts and — thanks to the in-flight
// dedup — identical detector workloads.
func TestCheckDomainsFetchCountsMatchSerial(t *testing.T) {
	f := build(t)
	urls := map[string]string{
		f.doorDom["KEY"]:        f.doorURL["KEY"],
		f.doorDom["NEWSORG"]:    f.doorURL["NEWSORG"],
		f.doorDom["MOONKIS"]:    f.doorURL["MOONKIS"],
		f.doorDom["NORTHFACEC"]: f.doorURL["NORTHFACEC"],
		"benign-reviews.org":    "http://benign-reviews.org/",
	}

	serial := New(NewDetector(f.web))
	serial.Workers = 1
	sv := serial.CheckDomains(urls, 0)

	par := New(NewDetector(f.web))
	par.Workers = 8
	pv := par.CheckDomains(urls, 0)

	if len(sv) != len(pv) {
		t.Fatalf("verdict counts differ: %d vs %d", len(sv), len(pv))
	}
	for dom, v := range sv {
		p := pv[dom]
		if v.Cloaked != p.Cloaked || v.StoreDomain != p.StoreDomain || v.Detector != p.Detector {
			t.Fatalf("%s: serial %+v vs parallel %+v", dom, v, p)
		}
	}
	if serial.Fetches() != par.Fetches() {
		t.Fatalf("fetch counts differ: serial=%d parallel=%d", serial.Fetches(), par.Fetches())
	}
}
