package crawler

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/telemetry"
)

// ErrCircuitOpen is carried on responses the resilient fetcher short-
// circuits because the target domain's breaker is open: the domain has
// failed every fetch for TripAfterDays consecutive crawl days and is not
// yet due a half-open probe.
var ErrCircuitOpen = errors.New("crawler: circuit breaker open")

// Resilience tunes the retry and circuit-breaker behaviour of a
// ResilientFetcher.
type Resilience struct {
	// MaxAttempts bounds fetch attempts per request (1 = no retries).
	MaxAttempts int
	// BaseBackoffMS is the first retry's simulated backoff; each further
	// retry doubles it. Backoff is sim-clock time: no real sleeping happens,
	// the delay is accounted in Stats so a study can report how much crawl
	// time faults cost.
	BaseBackoffMS int
	// MaxBackoffMS caps a single backoff step.
	MaxBackoffMS int
	// TripAfterDays is how many consecutive crawl days a domain must fail
	// every fetch before its breaker opens.
	TripAfterDays int
	// CooldownDays is how many days an open breaker waits before going
	// half-open and letting probes through again.
	CooldownDays int
}

// DefaultResilience returns the retry/breaker configuration the study uses
// under fault injection.
func DefaultResilience() Resilience {
	return Resilience{
		MaxAttempts:   3,
		BaseBackoffMS: 500,
		MaxBackoffMS:  8000,
		TripAfterDays: 2,
		CooldownDays:  3,
	}
}

// FetchStats is the resilient fetcher's workload accounting.
type FetchStats struct {
	Attempts     int   // total fetch attempts, including retries
	Retries      int   // attempts beyond the first
	Failures     int   // fetch chains that failed after all retries
	ShortCircuit int   // requests answered by an open breaker
	SimBackoffMS int64 // total simulated backoff time spent
}

// breaker is one domain's circuit-breaker state. Outcomes are aggregated
// per crawl day and folded only when a *later* day first touches the
// domain, so the trip decision for day d depends exclusively on completed
// days — aggregate counts are order-independent, which keeps the breaker
// (and therefore every verdict) deterministic at any GOMAXPROCS.
type breaker struct {
	curDay   simclock.Day // day the live tallies belong to
	dayFail  int          // failed chains on curDay
	daySucc  int          // successful chains on curDay
	failDays int          // consecutive fully-failed days folded so far
	open     bool
	openedOn simclock.Day
}

// ResilientFetcher wraps a Fetcher with bounded retries, deterministic
// sim-clock exponential backoff with jitter, and per-domain circuit
// breakers. It is mounted between the fault-injection layer and the
// detector when a study runs with faults enabled; with faults disabled the
// pipeline bypasses it entirely, so the faults-off hot path is untouched.
type ResilientFetcher struct {
	Inner simweb.Fetcher
	Cfg   Resilience

	// jitterSeed decorrelates backoff jitter across studies; it is derived
	// from the study RNG. Jitter itself is a pure hash of (domain, day,
	// attempt), never a sequential draw, so retry timing is identical at
	// any scheduling.
	jitterSeed uint64

	mu       sync.Mutex
	breakers map[string]*breaker
	stats    FetchStats

	// Telemetry handles (nil until Instrument; nil handles are no-ops).
	// Counters mirror FetchStats live so /metrics shows the crawl moving;
	// they never feed back into retry or breaker decisions.
	cAttempts *telemetry.Counter
	cRetries  *telemetry.Counter
	cFailures *telemetry.Counter
	cShort    *telemetry.Counter
	cTrips    *telemetry.Counter
	cBackoff  *telemetry.Counter
	hAttempts *telemetry.Histogram
}

// Instrument registers the fetcher's runtime metrics on reg (a nil reg
// leaves the fetcher uninstrumented). Exposed metrics:
// crawler_fetch_attempts_total, crawler_fetch_retries_total,
// crawler_fetch_failures_total, crawler_breaker_short_circuit_total,
// crawler_breaker_trips_total, crawler_backoff_sim_ms_total and the
// crawler_attempts_per_chain histogram (retry amplification).
func (rf *ResilientFetcher) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	rf.cAttempts = reg.Counter("crawler_fetch_attempts_total")
	rf.cRetries = reg.Counter("crawler_fetch_retries_total")
	rf.cFailures = reg.Counter("crawler_fetch_failures_total")
	rf.cShort = reg.Counter("crawler_breaker_short_circuit_total")
	rf.cTrips = reg.Counter("crawler_breaker_trips_total")
	rf.cBackoff = reg.Counter("crawler_backoff_sim_ms_total")
	rf.hAttempts = reg.Histogram("crawler_attempts_per_chain", telemetry.CountBuckets())
}

// NewResilientFetcher wraps inner with the given policy. jitterSeed should
// come from the study RNG (e.g. r.Sub("crawler/backoff").Uint64()).
func NewResilientFetcher(inner simweb.Fetcher, cfg Resilience, jitterSeed uint64) *ResilientFetcher {
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	return &ResilientFetcher{
		Inner:      inner,
		Cfg:        cfg,
		jitterSeed: jitterSeed,
		breakers:   make(map[string]*breaker),
	}
}

// Stats returns a snapshot of the workload accounting.
func (rf *ResilientFetcher) Stats() FetchStats {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	return rf.stats
}

// Fetch implements simweb.Fetcher: consult the domain's breaker, then try
// the inner fetcher up to MaxAttempts times, backing off (in simulated
// time) between attempts. The chain's outcome — not each attempt — feeds
// the breaker, so one flaky-but-recovering fetch counts as a success.
func (rf *ResilientFetcher) Fetch(req simweb.Request) simweb.Response {
	domain := hostOf(req.URL)
	if !rf.admit(domain, req.Day) {
		rf.mu.Lock()
		rf.stats.ShortCircuit++
		rf.mu.Unlock()
		rf.cShort.Inc()
		return simweb.Response{Status: 0, Err: ErrCircuitOpen}
	}
	var resp simweb.Response
	var backoff int64
	attempts := 0
	for a := 0; a < rf.Cfg.MaxAttempts; a++ {
		req.Attempt = a
		resp = rf.Inner.Fetch(req)
		attempts++
		if !retryable(resp) {
			break
		}
		if a < rf.Cfg.MaxAttempts-1 {
			backoff += rf.backoffMS(domain, req.Day, a)
		}
	}
	failed := resp.Failed()
	rf.mu.Lock()
	rf.stats.Attempts += attempts
	rf.stats.Retries += attempts - 1
	rf.stats.SimBackoffMS += backoff
	if failed {
		rf.stats.Failures++
	}
	br := rf.breakerFor(domain, req.Day)
	if failed {
		br.dayFail++
	} else {
		br.daySucc++
	}
	rf.mu.Unlock()
	rf.cAttempts.Add(int64(attempts))
	rf.cRetries.Add(int64(attempts - 1))
	rf.cBackoff.Add(backoff)
	if failed {
		rf.cFailures.Inc()
	}
	rf.hAttempts.Observe(float64(attempts))
	return resp
}

// FetchFollow implements simweb.Fetcher: each hop of the redirect chain
// gets its own retry budget and breaker consultation (hops usually cross
// domains).
func (rf *ResilientFetcher) FetchFollow(req simweb.Request, maxHops int) (simweb.Response, string) {
	cur := req
	for hop := 0; ; hop++ {
		resp := rf.Fetch(cur)
		if resp.Status < 300 || resp.Status >= 400 || resp.Location == "" || hop >= maxHops {
			return resp, cur.URL
		}
		cur = simweb.Request{
			URL:       simweb.ResolveURL(cur.URL, resp.Location),
			UserAgent: cur.UserAgent,
			Referrer:  cur.Referrer,
			Day:       cur.Day,
		}
	}
}

// retryable reports whether a response is worth another attempt: transport
// errors, truncated bodies, 5xx and 429 are transient; 2xx/3xx/4xx are
// answers.
func retryable(resp simweb.Response) bool {
	return resp.Failed() || resp.Status == 429
}

// backoffMS returns the simulated backoff after attempt a: exponential in
// the attempt number, capped, plus up to 50% deterministic jitter keyed by
// (domain, day, attempt).
func (rf *ResilientFetcher) backoffMS(domain string, day simclock.Day, attempt int) int64 {
	base := int64(rf.Cfg.BaseBackoffMS) << uint(attempt)
	if max := int64(rf.Cfg.MaxBackoffMS); max > 0 && base > max {
		base = max
	}
	if base <= 0 {
		return 0
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%x/%s/%d/%d", rf.jitterSeed, domain, day, attempt)
	// splitmix64 finalizer: FNV-1a alone barely diffuses the trailing
	// attempt digit, which would correlate successive retries' jitter.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := float64(x>>11) / (1 << 53)
	return base + int64(frac*0.5*float64(base))
}

// admit consults (and lazily folds) the domain's breaker for day d. It
// returns false when the breaker is open and the cooldown has not elapsed;
// during a half-open day every probe is admitted — deterministically, where
// admitting "the first" probe would depend on scheduling — and the day's
// aggregate outcome decides whether the breaker closes or re-opens.
func (rf *ResilientFetcher) admit(domain string, d simclock.Day) bool {
	if rf.Cfg.TripAfterDays <= 0 {
		return true
	}
	rf.mu.Lock()
	defer rf.mu.Unlock()
	br := rf.breakerFor(domain, d)
	if !br.open {
		return true
	}
	// Half-open: past the cooldown, probes flow again.
	return int(d-br.openedOn) >= rf.Cfg.CooldownDays
}

// breakerFor returns the domain's breaker with all days before d folded.
// Callers hold rf.mu. Folding is monotone: the study clock only moves
// forward, and all of day d-1's fetches complete before day d starts (the
// day pipeline is sequential across days), so the fold sees final tallies.
func (rf *ResilientFetcher) breakerFor(domain string, d simclock.Day) *breaker {
	br := rf.breakers[domain]
	if br == nil {
		br = &breaker{curDay: d}
		rf.breakers[domain] = br
	}
	if d > br.curDay {
		rf.fold(br)
		br.curDay = d
	}
	return br
}

// fold finalises the live day's tallies into the breaker state.
func (rf *ResilientFetcher) fold(br *breaker) {
	switch {
	case br.daySucc > 0:
		// Any success resets the streak and closes an open breaker (the
		// half-open probes got through).
		br.failDays = 0
		br.open = false
	case br.dayFail > 0:
		br.failDays++
		if br.open {
			// Half-open probes all failed: stay open, restart the cooldown.
			br.openedOn = br.curDay
		} else if br.failDays >= rf.Cfg.TripAfterDays {
			br.open = true
			br.openedOn = br.curDay
			rf.cTrips.Inc()
		}
	}
	br.dayFail, br.daySucc = 0, 0
}

// BreakerOpen reports whether a domain's breaker is open as of day d
// (after folding any completed days). Exposed for tests and for studies
// that report degraded-domain counts.
func (rf *ResilientFetcher) BreakerOpen(domain string, d simclock.Day) bool {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	br := rf.breakerFor(domain, d)
	return br.open && int(d-br.openedOn) < rf.Cfg.CooldownDays
}

var _ simweb.Fetcher = (*ResilientFetcher)(nil)
