package crawler

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simweb"
)

// waitParkedInCheckDomain blocks until `want` goroutines are parked inside
// CheckDomain waiting on the inflight call (their stacks show CheckDomain
// but not the gated fetcher the runner is blocked in). The rendezvous makes
// the race deterministic: every waiter is provably in flight-adoption
// position before the gate opens.
func waitParkedInCheckDomain(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	buf := make([]byte, 1<<20)
	for time.Now().Before(deadline) {
		n := runtime.Stack(buf, true)
		cnt := 0
		for _, s := range strings.Split(string(buf[:n]), "\n\n") {
			if strings.Contains(s, "CheckDomain") && !strings.Contains(s, "gatedFetcher") {
				cnt++
			}
		}
		if cnt >= want {
			return
		}
		runtime.Gosched()
	}
	t.Fatal("waiters never parked on the inflight call")
}

// gatedFetcher blocks every fetch until release is closed, signalling
// started exactly once. It lets a test hold a detector run in flight while
// racing waiters pile up on the same domain.
type gatedFetcher struct {
	resp    simweb.Response
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGated(resp simweb.Response) *gatedFetcher {
	return &gatedFetcher{resp: resp, started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedFetcher) Fetch(req simweb.Request) simweb.Response {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return g.resp
}

func (g *gatedFetcher) FetchFollow(req simweb.Request, maxHops int) (simweb.Response, string) {
	resp := g.Fetch(req)
	if resp.Status >= 300 && resp.Status < 400 && resp.Location != "" {
		// Follow the one scripted hop to a storefront landing page.
		return simweb.Response{Status: 200, Body: "luxury store cart checkout"}, resp.Location
	}
	return resp, req.URL
}

// TestInflightWaitersAdoptWeakerVerdict is the regression test for the old
// re-consult loop: when the racing run comes back with a weaker verdict that
// is NOT cached (Unknown — the fetches all failed), waiters used to loop
// back to the cache, miss, and start detector runs of their own; with enough
// churn the wait was unbounded. Waiters must instead adopt the inflight
// run's verdict directly: one detector run total, identical verdicts for
// every caller, nothing cached.
func TestInflightWaitersAdoptWeakerVerdict(t *testing.T) {
	// Every fetch 502s, so the shared run's verdict is Unknown — exactly the
	// verdict CheckDomain refuses to cache.
	gate := newGated(simweb.Response{Status: 502, Body: "bad gateway"})
	c := New(NewDetector(gate))

	const waiters = 8
	verdicts := make([]Verdict, 1+waiters)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the runner
		defer wg.Done()
		verdicts[0] = c.CheckDomain("racy.example.com", "http://racy.example.com/", 3)
	}()
	<-gate.started // detector run is now in flight
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts[i] = c.CheckDomain("racy.example.com", "http://racy.example.com/", 3)
		}(i)
	}
	waitParkedInCheckDomain(t, waiters)
	close(gate.release)
	wg.Wait()

	if !verdicts[0].Unknown || verdicts[0].Cloaked {
		t.Fatalf("runner verdict = %+v, want Unknown", verdicts[0])
	}
	for i, v := range verdicts {
		if v != verdicts[0] {
			t.Fatalf("caller %d verdict %+v differs from runner's %+v", i, v, verdicts[0])
		}
	}
	if n := c.Fetches(); n != 1 {
		t.Fatalf("%d detector runs for one racing domain, want 1", n)
	}
	if _, cached := c.Cached("racy.example.com"); cached {
		t.Fatal("weak verdict was cached")
	}
	// The uncached Unknown must be re-queried next time (re-crawl policy).
	c.Det.F = &scriptedFetcher{fn: func(simweb.Request) simweb.Response { return okResp() }}
	c.CheckDomain("racy.example.com", "http://racy.example.com/", 4)
	if n := c.Fetches(); n != 2 {
		t.Fatalf("healed domain not re-queried: %d detector runs", n)
	}
}

// TestInflightWaitersShareStrongVerdict: the common case — racing callers on
// a cloaked domain share one run and one cache entry.
func TestInflightWaitersShareStrongVerdict(t *testing.T) {
	// A 302 off-host is the cheapest cloaked verdict to script.
	gate := newGated(simweb.Response{Status: 302, Location: "http://store.example.net/buy"})
	c := New(NewDetector(gate))

	const callers = 6
	verdicts := make([]Verdict, callers)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		verdicts[0] = c.CheckDomain("door.example.com", "http://door.example.com/", 2)
	}()
	<-gate.started
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts[i] = c.CheckDomain("door.example.com", "http://door.example.com/", 2)
		}(i)
	}
	waitParkedInCheckDomain(t, callers-1)
	close(gate.release)
	wg.Wait()

	if !verdicts[0].Cloaked || verdicts[0].Detector != "dagger-redirect" {
		t.Fatalf("verdict = %+v, want dagger-redirect", verdicts[0])
	}
	for i, v := range verdicts {
		if v != verdicts[0] {
			t.Fatalf("caller %d verdict %+v differs", i, v)
		}
	}
	if n := c.Fetches(); n != 1 {
		t.Fatalf("%d detector runs, want 1", n)
	}
	if _, cached := c.Cached("door.example.com"); !cached {
		t.Fatal("strong verdict not cached")
	}
}
