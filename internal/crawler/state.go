package crawler

import (
	"sort"

	"repro/internal/simclock"
)

// This file exports and restores the crawler's mutable state for durable
// checkpoints. The verdict cache is state, not memoisation: whether a
// domain is re-fetched depends on when it was last checked, so a resumed
// run must see exactly the cache the interrupted run had. Likewise the
// circuit breakers — an open breaker short-circuits fetches, and losing it
// would change which requests reach the fault layer.

// CachedVerdict is one serialized verdict-cache entry.
type CachedVerdict struct {
	Domain  string
	Verdict Verdict
}

// CrawlerState is the crawler's complete mutable state.
type CrawlerState struct {
	Entries []CachedVerdict // sorted by Domain
	Fetches int64
}

// ExportCache captures the verdict cache across all shards. Safe to call
// when no checks are in flight (the day pipeline is quiescent between
// days).
func (c *Crawler) ExportCache() CrawlerState {
	st := CrawlerState{Fetches: c.fetches.Load()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		doms := make([]string, 0, len(sh.cache))
		for dom := range sh.cache {
			doms = append(doms, dom)
		}
		sort.Strings(doms)
		for _, dom := range doms {
			st.Entries = append(st.Entries, CachedVerdict{Domain: dom, Verdict: sh.cache[dom]})
		}
		sh.mu.Unlock()
	}
	// Shards partition by hash, so per-shard order is not global order.
	sort.Slice(st.Entries, func(i, j int) bool { return st.Entries[i].Domain < st.Entries[j].Domain })
	return st
}

// RestoreCache overwrites the verdict cache with a previously exported
// snapshot.
func (c *Crawler) RestoreCache(st CrawlerState) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.cache = nil
		sh.mu.Unlock()
	}
	for _, e := range st.Entries {
		sh := c.shard(e.Domain)
		sh.mu.Lock()
		if sh.cache == nil {
			sh.cache = make(map[string]Verdict)
		}
		sh.cache[e.Domain] = e.Verdict
		sh.mu.Unlock()
	}
	c.fetches.Store(st.Fetches)
}

// BreakerState is one domain's serialized circuit-breaker state.
type BreakerState struct {
	Domain   string
	CurDay   simclock.Day
	DayFail  int
	DaySucc  int
	FailDays int
	Open     bool
	OpenedOn simclock.Day
}

// ResilientState is the resilient fetcher's complete mutable state.
type ResilientState struct {
	Breakers []BreakerState // sorted by Domain
	Stats    FetchStats
}

// ExportState captures the fetcher's breakers and workload accounting.
func (rf *ResilientFetcher) ExportState() ResilientState {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	st := ResilientState{Stats: rf.stats}
	for dom, br := range rf.breakers {
		st.Breakers = append(st.Breakers, BreakerState{
			Domain:   dom,
			CurDay:   br.curDay,
			DayFail:  br.dayFail,
			DaySucc:  br.daySucc,
			FailDays: br.failDays,
			Open:     br.open,
			OpenedOn: br.openedOn,
		})
	}
	sort.Slice(st.Breakers, func(i, j int) bool { return st.Breakers[i].Domain < st.Breakers[j].Domain })
	return st
}

// RestoreState overwrites the fetcher's breakers and accounting. The retry
// policy and jitter seed are wiring rebuilt from config and study seed.
func (rf *ResilientFetcher) RestoreState(st ResilientState) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	rf.stats = st.Stats
	rf.breakers = make(map[string]*breaker, len(st.Breakers))
	for _, bs := range st.Breakers {
		rf.breakers[bs.Domain] = &breaker{
			curDay:   bs.CurDay,
			dayFail:  bs.DayFail,
			daySucc:  bs.DaySucc,
			failDays: bs.FailDays,
			open:     bs.Open,
			openedOn: bs.OpenedOn,
		}
	}
}
