package crawler

import (
	"sort"
	"sync"

	"repro/internal/parallel"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Crawler wraps a Detector with the §4.1.2 workload reductions: domains
// previously seen and not detected as poisoned are not re-crawled, and
// poisoned domains are re-verified on a short period rather than daily
// (the paper notes its own crawler can lag campaigns' redirect changes,
// footnote 7). A bounded worker pool fans fetches out, and concurrent
// checks of the same domain are collapsed into a single detector run so
// parallel callers (the per-vertical observe phase) never duplicate work.
type Crawler struct {
	Det *Detector
	// RecheckDays is how often a poisoned domain is re-verified so that
	// store-domain rotation is observed.
	RecheckDays int
	// Workers bounds concurrent fetch chains; the pool is always clamped
	// to the number of jobs, and <= 0 selects GOMAXPROCS.
	Workers int

	mu    sync.Mutex
	cache map[string]Verdict
	// inflight tracks domains a detector run is currently checking; the
	// call's done channel closes once its verdict is published.
	inflight map[string]*inflightCall
	// fetches counts detector invocations (for workload accounting).
	fetches int

	// Telemetry handles (nil until Instrument; nil handles are no-ops).
	cDetector *telemetry.Counter
	cCacheHit *telemetry.Counter
	cShared   *telemetry.Counter
	poolObs   parallel.PoolObserver
}

// Instrument registers the crawler's runtime metrics on reg (nil reg is a
// no-op): crawler_detector_runs_total, crawler_cache_hits_total,
// crawler_inflight_shared_total, and the pool_crawl_* family describing
// the domain-check worker pool.
func (c *Crawler) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.cDetector = reg.Counter("crawler_detector_runs_total")
	c.cCacheHit = reg.Counter("crawler_cache_hits_total")
	c.cShared = reg.Counter("crawler_inflight_shared_total")
	c.poolObs = reg.Pool("crawl")
}

// inflightCall is one in-progress detector run. The runner stores its raw
// verdict in v before closing done; waiters read v only after <-done (the
// close establishes the happens-before edge).
type inflightCall struct {
	done chan struct{}
	v    Verdict
}

// New returns a Crawler over the given detector.
func New(det *Detector) *Crawler {
	return &Crawler{Det: det, RecheckDays: 4, Workers: 8,
		cache:    make(map[string]Verdict),
		inflight: make(map[string]*inflightCall)}
}

// CheckDomain returns the verdict for a domain, fetching only when the
// cache does not already answer: clean domains are never re-fetched,
// poisoned domains are re-verified every RecheckDays. Safe for concurrent
// use; concurrent callers for the same domain share one detector run.
//
// A caller that finds another goroutine's run in flight adopts that run's
// verdict directly (merged against the same cache snapshot the runner saw)
// instead of looping back to re-consult the cache. This bounds the wait to
// a single re-consult even when the racing run returns a weaker,
// uncacheable verdict — the old retry loop could spin for as long as other
// callers kept the domain in flight — and guarantees every concurrent
// caller for a (domain, day) pair returns the identical verdict, which the
// deterministic day pipeline depends on.
func (c *Crawler) CheckDomain(domain, sampleURL string, day simclock.Day) Verdict {
	c.mu.Lock()
	v, seen := c.cache[domain]
	if seen && (!v.Cloaked || int(day-v.CheckedDay) < c.RecheckDays) {
		c.mu.Unlock()
		c.cCacheHit.Inc()
		return v
	}
	if call, busy := c.inflight[domain]; busy {
		// Another goroutine is already running the detector for this
		// domain. The cache entry cannot change until that run publishes
		// (only the runner writes it, under the same lock that removes the
		// inflight entry), so the (v, seen) snapshot taken above is exactly
		// the snapshot the runner started from — applying the same merge
		// rule to the runner's verdict yields the same result the runner
		// returns, with no re-consult loop.
		c.mu.Unlock()
		c.cShared.Inc()
		<-call.done
		return mergeVerdict(v, seen, call.v, day)
	}
	call := &inflightCall{done: make(chan struct{})}
	if c.inflight == nil {
		c.inflight = make(map[string]*inflightCall)
	}
	c.inflight[domain] = call
	c.mu.Unlock()

	nv := c.Det.CheckURL(sampleURL, day)
	c.cDetector.Inc()

	c.mu.Lock()
	c.fetches++
	delete(c.inflight, domain)
	call.v = nv
	close(call.done)
	out := mergeVerdict(v, seen, nv, day)
	// Unknown checks (transient fetch failures) are not cached: the next
	// query retries them rather than freezing a "clean" verdict. (A stale
	// cloaked verdict that absorbed a failed recheck is still cached — the
	// merge kept the stronger verdict.)
	if !(out.Unknown && !out.Cloaked) {
		c.cache[domain] = out
	}
	c.mu.Unlock()
	return out
}

// mergeVerdict folds a fresh detector verdict into the cache snapshot the
// run started from. A domain once seen cloaking stays attributed even if a
// later check finds it dark (e.g. its campaign stopped): the stronger
// verdict is kept with a refreshed check day.
func mergeVerdict(old Verdict, seen bool, nv Verdict, day simclock.Day) Verdict {
	if seen && old.Cloaked && !nv.Cloaked {
		old.CheckedDay = day
		return old
	}
	return nv
}

// CheckDomains fans CheckDomain over many domains with the shared worker
// pool and returns the verdicts keyed by domain. The pool never exceeds the
// job count, and each verdict slot is written by exactly one worker, so the
// result is independent of scheduling.
func (c *Crawler) CheckDomains(urls map[string]string, day simclock.Day) map[string]Verdict {
	type job struct{ domain, url string }
	jobs := make([]job, 0, len(urls))
	for dom, u := range urls {
		jobs = append(jobs, job{dom, u})
	}
	// Deterministic order keeps the fetch sequence stable across runs.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].domain < jobs[j].domain })

	verdicts := make([]Verdict, len(jobs))
	parallel.ForEachObserved(c.Workers, len(jobs), func(i int) {
		verdicts[i] = c.CheckDomain(jobs[i].domain, jobs[i].url, day)
	}, c.poolObs)
	out := make(map[string]Verdict, len(jobs))
	for i, j := range jobs {
		out[j.domain] = verdicts[i]
	}
	return out
}

// Fetches reports how many detector invocations the cache allowed through.
func (c *Crawler) Fetches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fetches
}

// Cached returns the cached verdict for a domain, if any.
func (c *Crawler) Cached(domain string) (Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.cache[domain]
	return v, ok
}

// Invalidate drops a domain from the cache (used when the world knows the
// domain changed hands, e.g. after a seizure is served).
func (c *Crawler) Invalidate(domain string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cache, domain)
}
