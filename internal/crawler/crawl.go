package crawler

import (
	"sort"
	"sync"

	"repro/internal/simclock"
)

// Crawler wraps a Detector with the §4.1.2 workload reductions: domains
// previously seen and not detected as poisoned are not re-crawled, and
// poisoned domains are re-verified on a short period rather than daily
// (the paper notes its own crawler can lag campaigns' redirect changes,
// footnote 7). A bounded worker pool fans fetches out.
type Crawler struct {
	Det *Detector
	// RecheckDays is how often a poisoned domain is re-verified so that
	// store-domain rotation is observed.
	RecheckDays int
	// Workers bounds concurrent fetch chains.
	Workers int

	mu    sync.Mutex
	cache map[string]Verdict
	// fetches counts detector invocations (for workload accounting).
	fetches int
}

// New returns a Crawler over the given detector.
func New(det *Detector) *Crawler {
	return &Crawler{Det: det, RecheckDays: 4, Workers: 8,
		cache: make(map[string]Verdict)}
}

// CheckDomain returns the verdict for a domain, fetching only when the
// cache does not already answer: clean domains are never re-fetched,
// poisoned domains are re-verified every RecheckDays.
func (c *Crawler) CheckDomain(domain, sampleURL string, day simclock.Day) Verdict {
	c.mu.Lock()
	v, seen := c.cache[domain]
	c.mu.Unlock()
	if seen {
		if !v.Cloaked {
			return v
		}
		if int(day-v.CheckedDay) < c.RecheckDays {
			return v
		}
	}
	nv := c.Det.CheckURL(sampleURL, day)
	c.mu.Lock()
	c.fetches++
	// A domain once seen cloaking stays attributed even if a later check
	// finds it dark (e.g. its campaign stopped): keep the stronger verdict
	// but refresh the landing store when the recheck still sees cloaking.
	if seen && v.Cloaked && !nv.Cloaked {
		v.CheckedDay = day
		c.cache[domain] = v
		c.mu.Unlock()
		return v
	}
	// Indeterminate checks (transient fetch failures) are not cached:
	// the next query retries them rather than freezing a "clean" verdict.
	if nv.Indeterminate && !nv.Cloaked {
		c.mu.Unlock()
		return nv
	}
	c.cache[domain] = nv
	c.mu.Unlock()
	return nv
}

// CheckDomains fans CheckDomain over many domains with the worker pool and
// returns the verdicts keyed by domain.
func (c *Crawler) CheckDomains(urls map[string]string, day simclock.Day) map[string]Verdict {
	type job struct{ domain, url string }
	jobs := make([]job, 0, len(urls))
	for dom, u := range urls {
		jobs = append(jobs, job{dom, u})
	}
	// Deterministic order keeps the fetch sequence stable across runs.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].domain < jobs[j].domain })

	out := make(map[string]Verdict, len(jobs))
	var outMu sync.Mutex
	ch := make(chan job)
	var wg sync.WaitGroup
	workers := c.Workers
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				v := c.CheckDomain(j.domain, j.url, day)
				outMu.Lock()
				out[j.domain] = v
				outMu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return out
}

// Fetches reports how many detector invocations the cache allowed through.
func (c *Crawler) Fetches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fetches
}

// Cached returns the cached verdict for a domain, if any.
func (c *Crawler) Cached(domain string) (Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.cache[domain]
	return v, ok
}

// Invalidate drops a domain from the cache (used when the world knows the
// domain changed hands, e.g. after a seizure is served).
func (c *Crawler) Invalidate(domain string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cache, domain)
}
