package crawler

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/shard"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// crawlShards is the number of verdict-cache shards. Domain checks are the
// observe phase's dominant shared-state traffic; sharding the cache and its
// singleflight table by domain removes the single global mutex every worker
// used to queue on.
const crawlShards = 64 // power of two

// crawlShard is one shard of the crawler's per-domain state: the verdict
// cache and the in-flight detector runs for the domains hashing here. All
// per-domain transitions (consult, adopt in-flight, publish) happen under
// one shard's lock, preserving the exact single-mutex semantics per domain.
type crawlShard struct {
	mu       sync.Mutex
	cache    map[string]Verdict
	inflight map[string]*inflightCall
}

// Crawler wraps a Detector with the §4.1.2 workload reductions: domains
// previously seen and not detected as poisoned are not re-crawled, and
// poisoned domains are re-verified on a short period rather than daily
// (the paper notes its own crawler can lag campaigns' redirect changes,
// footnote 7). A bounded worker pool fans fetches out, and concurrent
// checks of the same domain are collapsed into a single detector run so
// parallel callers (the per-vertical observe phase) never duplicate work.
type Crawler struct {
	Det *Detector
	// RecheckDays is how often a poisoned domain is re-verified so that
	// store-domain rotation is observed.
	RecheckDays int
	// Workers bounds concurrent fetch chains; the pool is always clamped
	// to the number of jobs, and <= 0 selects GOMAXPROCS.
	Workers int

	shards [crawlShards]crawlShard
	// fetches counts detector invocations (for workload accounting).
	fetches atomic.Int64

	// Telemetry handles (nil until Instrument; nil handles are no-ops).
	cDetector *telemetry.Counter
	cCacheHit *telemetry.Counter
	cShared   *telemetry.Counter
	poolObs   parallel.PoolObserver
}

func (c *Crawler) shard(domain string) *crawlShard {
	return &c.shards[shard.Hash(domain)&(crawlShards-1)]
}

// Instrument registers the crawler's runtime metrics on reg (nil reg is a
// no-op): crawler_detector_runs_total, crawler_cache_hits_total,
// crawler_inflight_shared_total, and the pool_crawl_* family describing
// the domain-check worker pool.
func (c *Crawler) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.cDetector = reg.Counter("crawler_detector_runs_total")
	c.cCacheHit = reg.Counter("crawler_cache_hits_total")
	c.cShared = reg.Counter("crawler_inflight_shared_total")
	c.poolObs = reg.Pool("crawl")
}

// inflightCall is one in-progress detector run. The runner stores its raw
// verdict in v before closing done; waiters read v only after <-done (the
// close establishes the happens-before edge).
type inflightCall struct {
	done chan struct{}
	v    Verdict
}

// New returns a Crawler over the given detector.
func New(det *Detector) *Crawler {
	return &Crawler{Det: det, RecheckDays: 4, Workers: 8}
}

// CheckDomain returns the verdict for a domain, fetching only when the
// cache does not already answer: clean domains are never re-fetched,
// poisoned domains are re-verified every RecheckDays. Safe for concurrent
// use; concurrent callers for the same domain share one detector run.
//
// A caller that finds another goroutine's run in flight adopts that run's
// verdict directly (merged against the same cache snapshot the runner saw)
// instead of looping back to re-consult the cache. This bounds the wait to
// a single re-consult even when the racing run returns a weaker,
// uncacheable verdict — the old retry loop could spin for as long as other
// callers kept the domain in flight — and guarantees every concurrent
// caller for a (domain, day) pair returns the identical verdict, which the
// deterministic day pipeline depends on.
func (c *Crawler) CheckDomain(domain, sampleURL string, day simclock.Day) Verdict {
	sh := c.shard(domain)
	sh.mu.Lock()
	v, seen := sh.cache[domain]
	if seen && (!v.Cloaked || int(day-v.CheckedDay) < c.RecheckDays) {
		sh.mu.Unlock()
		c.cCacheHit.Inc()
		return v
	}
	if call, busy := sh.inflight[domain]; busy {
		// Another goroutine is already running the detector for this
		// domain. The cache entry cannot change until that run publishes
		// (only the runner writes it, under the same shard lock that
		// removes the inflight entry), so the (v, seen) snapshot taken
		// above is exactly the snapshot the runner started from — applying
		// the same merge rule to the runner's verdict yields the same
		// result the runner returns, with no re-consult loop.
		sh.mu.Unlock()
		c.cShared.Inc()
		<-call.done
		return mergeVerdict(v, seen, call.v, day)
	}
	call := &inflightCall{done: make(chan struct{})}
	if sh.inflight == nil {
		sh.inflight = make(map[string]*inflightCall)
	}
	sh.inflight[domain] = call
	sh.mu.Unlock()

	nv := c.Det.CheckURL(sampleURL, day)
	c.cDetector.Inc()

	sh.mu.Lock()
	c.fetches.Add(1)
	delete(sh.inflight, domain)
	call.v = nv
	close(call.done)
	out := mergeVerdict(v, seen, nv, day)
	// Unknown checks (transient fetch failures) are not cached: the next
	// query retries them rather than freezing a "clean" verdict. (A stale
	// cloaked verdict that absorbed a failed recheck is still cached — the
	// merge kept the stronger verdict.)
	if !(out.Unknown && !out.Cloaked) {
		if sh.cache == nil {
			sh.cache = make(map[string]Verdict)
		}
		sh.cache[domain] = out
	}
	sh.mu.Unlock()
	return out
}

// mergeVerdict folds a fresh detector verdict into the cache snapshot the
// run started from. A domain once seen cloaking stays attributed even if a
// later check finds it dark (e.g. its campaign stopped): the stronger
// verdict is kept with a refreshed check day.
func mergeVerdict(old Verdict, seen bool, nv Verdict, day simclock.Day) Verdict {
	if seen && old.Cloaked && !nv.Cloaked {
		old.CheckedDay = day
		return old
	}
	return nv
}

// CheckDomains fans CheckDomain over many domains with the shared worker
// pool and returns the verdicts keyed by domain. The pool never exceeds the
// job count, and each verdict slot is written by exactly one worker, so the
// result is independent of scheduling.
func (c *Crawler) CheckDomains(urls map[string]string, day simclock.Day) map[string]Verdict {
	type job struct{ domain, url string }
	jobs := make([]job, 0, len(urls))
	for dom, u := range urls {
		jobs = append(jobs, job{dom, u})
	}
	// Deterministic order keeps the fetch sequence stable across runs.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].domain < jobs[j].domain })

	verdicts := make([]Verdict, len(jobs))
	parallel.ForEachObserved(c.Workers, len(jobs), func(i int) {
		verdicts[i] = c.CheckDomain(jobs[i].domain, jobs[i].url, day)
	}, c.poolObs)
	out := make(map[string]Verdict, len(jobs))
	for i, j := range jobs {
		out[j.domain] = verdicts[i]
	}
	return out
}

// Fetches reports how many detector invocations the cache allowed through.
func (c *Crawler) Fetches() int {
	return int(c.fetches.Load())
}

// Cached returns the cached verdict for a domain, if any.
func (c *Crawler) Cached(domain string) (Verdict, bool) {
	sh := c.shard(domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.cache[domain]
	return v, ok
}

// Invalidate drops a domain from the cache (used when the world knows the
// domain changed hands, e.g. after a seizure is served).
func (c *Crawler) Invalidate(domain string) {
	sh := c.shard(domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.cache, domain)
}
