// Package crawler implements the measurement crawlers of §4.1: Dagger,
// which detects cloaking by fetching each URL as a user and as a search
// engine crawler and comparing the responses semantically, and VanGogh,
// which renders pages (executing their JavaScript) to detect full-page
// iframe cloaking that serves identical documents to both visitor classes.
// It also implements the §4.1.3 storefront detector and a caching daily
// crawl scheduler.
package crawler

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/htmlparse"
	"repro/internal/jsmini"
	"repro/internal/shard"
	"repro/internal/simclock"
	"repro/internal/simweb"
)

// Options tunes detection.
type Options struct {
	// SimilarityThreshold is the Jaccard term-set similarity below which
	// Dagger considers the user and crawler views semantically different.
	SimilarityThreshold float64
	// EnableVanGogh turns on rendered iframe-cloaking detection. Disabling
	// it reproduces the pre-VanGogh blind spot (the abl-render ablation).
	EnableVanGogh bool
	// RenderOnDagger renders pages Dagger flags, to follow JavaScript
	// redirects to the landing store (the paper's HtmlUnit extension).
	RenderOnDagger bool
	// MaxRedirects bounds HTTP redirect chains.
	MaxRedirects int
}

// DefaultOptions returns the configuration used by the study.
func DefaultOptions() Options {
	return Options{
		SimilarityThreshold: 0.35,
		EnableVanGogh:       true,
		RenderOnDagger:      true,
		MaxRedirects:        5,
	}
}

// Verdict is the outcome of checking one URL or domain.
type Verdict struct {
	Cloaked     bool
	Detector    string // "dagger-redirect", "dagger-semantic", "dagger-js", "vangogh"
	IsStore     bool   // landing site looks like a counterfeit storefront
	StoreDomain string // domain of the landing storefront
	CheckedDay  simclock.Day
	// Unknown marks a check spoiled by fetch failures (timeouts, 5xx, DNS
	// failures, truncated bodies, an open circuit breaker): the URL is
	// neither confirmed clean nor cloaked. Unknown verdicts are never
	// cached, so the domain is re-queued the next time it surfaces — the
	// §4.1.2 re-crawl policy — instead of being mis-classified as clean.
	Unknown bool
}

// Iframe is an iframe observed after rendering.
type Iframe struct {
	Src    string
	Width  string
	Height string
}

// fullPage reports whether the iframe visually occupies the page under the
// paper's VanGogh rule: width and height both either 100% or above 800px.
func (f Iframe) fullPage() bool {
	big := func(s string) bool {
		s = strings.TrimSpace(s)
		if s == "100%" {
			return true
		}
		n, err := strconv.Atoi(strings.TrimSuffix(s, "px"))
		return err == nil && n > 800
	}
	return big(f.Width) && big(f.Height)
}

// RenderResult is what a headless render of a document observes.
type RenderResult struct {
	Redirect string   // JavaScript navigation, if any
	Iframes  []Iframe // static and script-created iframes
	Errors   []error  // non-fatal script errors
}

// Render parses a document, executes its scripts with the jsmini
// interpreter, and reports JS navigations and the iframes present after
// execution (both static markup and DOM-created, including those written
// via document.write).
func Render(body, pageURL, referrer string) RenderResult {
	var res RenderResult
	root := htmlparse.Parse(body)
	collectIframes(root, &res)
	pg := &jsmini.Page{URL: pageURL, Referrer: referrer}
	for _, script := range root.Scripts() {
		if err := jsmini.Exec(script, pg); err != nil {
			res.Errors = append(res.Errors, err)
		}
	}
	res.Redirect = pg.Redirect
	for _, e := range pg.AppendedElements() {
		if e.Tag != "iframe" {
			continue
		}
		// Same absent-vs-empty distinction as collectIframes: only an attribute
		// the script never set falls back to the style-set dimension.
		w, wok := e.Attrs["width"]
		if !wok {
			w = e.Attrs["style:width"]
		}
		h, hok := e.Attrs["height"]
		if !hok {
			h = e.Attrs["style:height"]
		}
		res.Iframes = append(res.Iframes, Iframe{Src: e.Attrs["src"], Width: w, Height: h})
	}
	for _, written := range pg.Writes {
		collectIframes(htmlparse.Parse(written), &res)
	}
	return res
}

func collectIframes(root *htmlparse.Node, res *RenderResult) {
	for _, n := range root.FindAll("iframe") {
		src, _ := n.Attr("src")
		// Absent and present-but-empty attributes are different signals: an
		// absent width falls back to the inline style (cloakers size
		// full-page iframes with style="width:100%;height:100%" as often as
		// with attributes), while width="" is an explicit author value and
		// gets no fallback.
		w, wok := n.Attr("width")
		h, hok := n.Attr("height")
		if !wok || !hok {
			style, _ := n.Attr("style")
			if !wok {
				w = styleDim(style, "width")
			}
			if !hok {
				h = styleDim(style, "height")
			}
		}
		res.Iframes = append(res.Iframes, Iframe{Src: src, Width: w, Height: h})
	}
}

// styleDim extracts one dimension declaration ("width" or "height") from
// an inline style attribute; nested declarations like max-width do not
// match. Returns "" when the property is not declared.
func styleDim(style, prop string) string {
	for _, decl := range strings.Split(style, ";") {
		name, val, ok := strings.Cut(decl, ":")
		if ok && strings.TrimSpace(strings.ToLower(name)) == prop {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// storeCookieMarkers are Set-Cookie name prefixes associated with the
// counterfeit e-commerce stack (§4.1.3: payment processing, e-commerce
// platforms, web analytics).
var storeCookieMarkers = []string{
	"zenid", "frontend", "realypay", "mallpayment", "globalbill",
	"CNZZDATA", "ajstat", "magento",
}

// LooksLikeStore applies the §4.1.3 storefront heuristics to a landing
// page: detection-relevant cookies, or "cart"/"checkout" substrings in the
// body.
//
// Matching is ASCII case folding, not strings.ToLower: the old full-body
// ToLower copy was one allocation per landing inspection for a needle set
// that is pure ASCII. The two differ only on exotic case mappings (Kelvin
// sign U+212A folding to 'k'), which no simulated document contains.
func LooksLikeStore(body string, cookies []string) bool {
	for _, c := range cookies {
		name, _, _ := strings.Cut(c, "=")
		name = strings.TrimSpace(name)
		for _, marker := range storeCookieMarkers {
			if hasPrefixFoldASCII(name, marker) {
				return true
			}
		}
	}
	return containsFoldASCII(body, "cart") || containsFoldASCII(body, "checkout")
}

func lowerASCII(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		c += 'a' - 'A'
	}
	return c
}

// hasPrefixFoldASCII reports whether s starts with prefix under ASCII case
// folding. prefix may be mixed case (cookie markers include CNZZDATA).
func hasPrefixFoldASCII(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		if lowerASCII(s[i]) != lowerASCII(prefix[i]) {
			return false
		}
	}
	return true
}

// containsFoldASCII reports whether s contains lower under ASCII case
// folding; lower must already be lowercase ASCII. UTF-8 continuation bytes
// are all >= 0x80, so byte-wise scanning never matches inside a multi-byte
// rune.
func containsFoldASCII(s, lower string) bool {
	if len(lower) == 0 {
		return true
	}
	first := lower[0]
	for i := 0; i+len(lower) <= len(s); i++ {
		if lowerASCII(s[i]) != first {
			continue
		}
		j := 1
		for ; j < len(lower); j++ {
			if lowerASCII(s[i+j]) != lower[j] {
				break
			}
		}
		if j == len(lower) {
			return true
		}
	}
	return false
}

// Detector runs Dagger and VanGogh against a Fetcher. Term sets and render
// results are memoised per document in sharded maps — the crawler
// re-fetches stable pages daily from many observe workers at once and must
// neither re-tokenise them nor serialise on one memo mutex.
type Detector struct {
	F    simweb.Fetcher
	Opts Options

	termSets  shard.Map[map[string]struct{}]
	renders   shard.Map[RenderResult]
	termCount atomic.Int64
	rendCount atomic.Int64
	cacheHits atomic.Int64
}

// NewDetector returns a detector with the study's defaults.
func NewDetector(f simweb.Fetcher) *Detector {
	return &Detector{F: f, Opts: DefaultOptions()}
}

// cacheLimit bounds both memo tables; beyond it the tables reset (simple
// generational eviction — the working set is the current day's documents).
const cacheLimit = 200000

func (d *Detector) termSet(body string) map[string]struct{} {
	if ts, ok := d.termSets.Get(body); ok {
		d.cacheHits.Add(1)
		return ts
	}
	ts := htmlparse.TermSet(body)
	if d.termCount.Load() > cacheLimit {
		d.termSets.Clear()
		d.termCount.Store(0)
	}
	// Racing misses for the same body keep the first computed set; TermSet
	// is a pure function of body, so either copy is identical.
	actual, loaded := d.termSets.LoadOrStore(body, ts)
	if !loaded {
		d.termCount.Add(1)
	}
	return actual
}

func (d *Detector) render(body, pageURL, referrer string) RenderResult {
	key := pageURL + "\x00" + referrer + "\x00" + body
	if rr, ok := d.renders.Get(key); ok {
		d.cacheHits.Add(1)
		return rr
	}
	rr := Render(body, pageURL, referrer)
	if d.rendCount.Load() > cacheLimit {
		d.renders.Clear()
		d.rendCount.Store(0)
	}
	actual, loaded := d.renders.LoadOrStore(key, rr)
	if !loaded {
		d.rendCount.Add(1)
	}
	return actual
}

// CheckURL runs the full §4.1 pipeline on one search-result URL: Dagger's
// dual fetch, rendering as needed, VanGogh's iframe pass, and storefront
// detection on the landing site.
func (d *Detector) CheckURL(rawurl string, day simclock.Day) Verdict {
	v := Verdict{CheckedDay: day}
	userReq := simweb.Request{
		URL:       rawurl,
		UserAgent: simweb.BrowserUA,
		Referrer:  simweb.SearchReferrer + "?q=click",
		Day:       day,
	}
	userResp, finalURL := d.F.FetchFollow(userReq, d.Opts.MaxRedirects)
	crawlerResp := d.F.Fetch(simweb.Request{
		URL: rawurl, UserAgent: simweb.CrawlerUA, Day: day,
	})
	sameHost := hostOf(finalURL) == hostOf(rawurl)
	switch {
	case !sameHost:
		// The user fetch left the doorway: redirect cloaking (the landing
		// status does not change the fact that the doorway redirected).
		v.Cloaked = true
		v.Detector = "dagger-redirect"
		v.IsStore = userResp.Status < 400 && LooksLikeStore(userResp.Body, userResp.Cookies)
		v.StoreDomain = hostOf(finalURL)
		return v
	case userResp.Failed() || crawlerResp.Failed() ||
		userResp.Status >= 400 || crawlerResp.Status >= 400:
		// A failed fetch on either side would make the semantic diff
		// meaningless — one transient 5xx, timeout or truncated body must
		// not manufacture a cloaking verdict. Only a double 404 confirms a
		// dead URL; anything else is unknown and re-queued rather than
		// cached as clean.
		v.Unknown = !(userResp.Status == 404 && crawlerResp.Status == 404)
		return v
	default:
		sim := htmlparse.Jaccard(
			d.termSet(userResp.Body), d.termSet(crawlerResp.Body))
		if sim < d.Opts.SimilarityThreshold {
			// Semantically different views: cloaking, but the user was not
			// HTTP-redirected. Render to chase a JavaScript redirect.
			v.Cloaked = true
			v.Detector = "dagger-semantic"
			if d.Opts.RenderOnDagger {
				rr := d.render(userResp.Body, rawurl, userReq.Referrer)
				if rr.Redirect != "" {
					v.Detector = "dagger-js"
					d.inspectLanding(&v, rr.Redirect, day)
					return v
				}
			}
			v.IsStore = LooksLikeStore(userResp.Body, userResp.Cookies)
			v.StoreDomain = hostOf(finalURL)
			return v
		}
	}

	// Dagger saw nothing. VanGogh: render and look for a full-page iframe.
	if d.Opts.EnableVanGogh {
		rr := d.render(userResp.Body, rawurl, userReq.Referrer)
		if rr.Redirect != "" {
			// JS redirect cloaking that survived the semantic diff (e.g.
			// injected into an otherwise identical page).
			v.Cloaked = true
			v.Detector = "dagger-js"
			d.inspectLanding(&v, rr.Redirect, day)
			return v
		}
		for _, f := range rr.Iframes {
			if f.fullPage() && f.Src != "" {
				v.Cloaked = true
				v.Detector = "vangogh"
				d.inspectLanding(&v, f.Src, day)
				return v
			}
		}
	}
	return v
}

// inspectLanding fetches the landing URL as a user and applies storefront
// detection.
func (d *Detector) inspectLanding(v *Verdict, landing string, day simclock.Day) {
	resp, finalURL := d.F.FetchFollow(simweb.Request{
		URL: landing, UserAgent: simweb.BrowserUA,
		Referrer: simweb.SearchReferrer, Day: day,
	}, d.Opts.MaxRedirects)
	v.IsStore = LooksLikeStore(resp.Body, resp.Cookies)
	v.StoreDomain = hostOf(finalURL)
}

func hostOf(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Hostname()
}

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if !v.Cloaked {
		return "clean"
	}
	return fmt.Sprintf("cloaked(%s)->%s store=%v", v.Detector, v.StoreDomain, v.IsStore)
}
