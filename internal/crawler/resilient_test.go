package crawler

import (
	"errors"
	"testing"

	"repro/internal/simclock"
	"repro/internal/simweb"
)

// scriptedFetcher answers each fetch via fn (which sees the full request,
// including the resilient fetcher's attempt counter).
type scriptedFetcher struct {
	fn    func(simweb.Request) simweb.Response
	calls int
}

func (s *scriptedFetcher) Fetch(req simweb.Request) simweb.Response {
	s.calls++
	return s.fn(req)
}

func (s *scriptedFetcher) FetchFollow(req simweb.Request, maxHops int) (simweb.Response, string) {
	return s.Fetch(req), req.URL
}

func okResp() simweb.Response { return simweb.Response{Status: 200, Body: "ok"} }

func TestRetryRecoversTransientFault(t *testing.T) {
	// Fail attempts 0 and 1, succeed on attempt 2: one logical fetch must
	// come back clean, with the retries visible in the stats.
	inner := &scriptedFetcher{fn: func(req simweb.Request) simweb.Response {
		if req.Attempt < 2 {
			return simweb.Response{Status: 502}
		}
		return okResp()
	}}
	rf := NewResilientFetcher(inner, DefaultResilience(), 42)
	resp := rf.Fetch(simweb.Request{URL: "http://flaky.example.com/", Day: 1})
	if resp.Failed() || resp.Status != 200 {
		t.Fatalf("retry chain did not recover: %+v", resp)
	}
	st := rf.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries / 0 failures", st)
	}
	if st.SimBackoffMS <= 0 {
		t.Fatal("no simulated backoff accounted")
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	inner := &scriptedFetcher{fn: func(simweb.Request) simweb.Response {
		return simweb.Response{Status: 502}
	}}
	rf := NewResilientFetcher(inner, DefaultResilience(), 42)
	resp := rf.Fetch(simweb.Request{URL: "http://down.example.com/", Day: 1})
	if !resp.Failed() {
		t.Fatalf("dead host fetch reported success: %+v", resp)
	}
	if inner.calls != DefaultResilience().MaxAttempts {
		t.Fatalf("inner called %d times, want MaxAttempts=%d", inner.calls, DefaultResilience().MaxAttempts)
	}
	if st := rf.Stats(); st.Failures != 1 {
		t.Fatalf("stats = %+v, want 1 failed chain", st)
	}
}

func TestNonRetryableStatusesAreAnswers(t *testing.T) {
	for _, status := range []int{200, 301, 404} {
		inner := &scriptedFetcher{fn: func(simweb.Request) simweb.Response {
			return simweb.Response{Status: status}
		}}
		rf := NewResilientFetcher(inner, DefaultResilience(), 42)
		rf.Fetch(simweb.Request{URL: "http://a.example.com/", Day: 1})
		if inner.calls != 1 {
			t.Fatalf("status %d retried (%d calls)", status, inner.calls)
		}
	}
}

// TestBreakerLifecycle walks one domain through the full circuit: trip after
// TripAfterDays fully-failed days, short-circuit during the cooldown,
// half-open probes after it, close again on success.
func TestBreakerLifecycle(t *testing.T) {
	healthy := false
	inner := &scriptedFetcher{fn: func(simweb.Request) simweb.Response {
		if healthy {
			return okResp()
		}
		return simweb.Response{Status: 502}
	}}
	cfg := DefaultResilience() // TripAfterDays=2, CooldownDays=3
	rf := NewResilientFetcher(inner, cfg, 42)
	req := func(d simclock.Day) simweb.Request {
		return simweb.Request{URL: "http://dying.example.com/x", Day: d}
	}

	// Days 0 and 1 fail every fetch; the trip is decided when day 2 folds
	// them, so days 0-1 still reach the inner fetcher.
	rf.Fetch(req(0))
	rf.Fetch(req(1))
	if rf.BreakerOpen("dying.example.com", 1) {
		t.Fatal("breaker open before TripAfterDays folded")
	}

	// Day 2: folding day 1 completes the 2-day streak -> open. The fetch is
	// short-circuited without touching the inner fetcher.
	before := inner.calls
	resp := rf.Fetch(req(2))
	if !errors.Is(resp.Err, ErrCircuitOpen) || resp.Status != 0 {
		t.Fatalf("want ErrCircuitOpen, got %+v", resp)
	}
	if inner.calls != before {
		t.Fatal("open breaker still reached the inner fetcher")
	}
	if st := rf.Stats(); st.ShortCircuit != 1 {
		t.Fatalf("stats = %+v, want 1 short circuit", st)
	}
	if !rf.BreakerOpen("dying.example.com", 2) {
		t.Fatal("BreakerOpen false while short-circuiting")
	}

	// Day 1+CooldownDays = 4: half-open, probes flow; the domain healed, so
	// the probe succeeds and the next day's fold closes the breaker.
	healthy = true
	if resp := rf.Fetch(req(4)); resp.Failed() {
		t.Fatalf("half-open probe failed against healed host: %+v", resp)
	}
	if rf.BreakerOpen("dying.example.com", 5) {
		t.Fatal("breaker still open after successful half-open day")
	}
	if resp := rf.Fetch(req(5)); resp.Failed() {
		t.Fatalf("closed-breaker fetch failed: %+v", resp)
	}
}

// TestHalfOpenFailureRestartsCooldown: if the half-open probes all fail the
// breaker stays open and the cooldown starts over.
func TestHalfOpenFailureRestartsCooldown(t *testing.T) {
	inner := &scriptedFetcher{fn: func(simweb.Request) simweb.Response {
		return simweb.Response{Status: 502}
	}}
	rf := NewResilientFetcher(inner, DefaultResilience(), 42)
	req := func(d simclock.Day) simweb.Request {
		return simweb.Request{URL: "http://gone.example.com/", Day: d}
	}
	rf.Fetch(req(0))
	rf.Fetch(req(1))
	rf.Fetch(req(4)) // half-open probe, fails
	// Day 5 folds the failed probe day: cooldown restarts from day 4.
	resp := rf.Fetch(req(5))
	if !errors.Is(resp.Err, ErrCircuitOpen) {
		t.Fatalf("cooldown did not restart after failed half-open day: %+v", resp)
	}
	// Day 4+CooldownDays = 7: half-open again.
	if resp := rf.Fetch(req(7)); errors.Is(resp.Err, ErrCircuitOpen) {
		t.Fatal("probe blocked after restarted cooldown elapsed")
	}
}

// TestDaySuccessKeepsBreakerClosed: a day with even one successful chain
// resets the failure streak.
func TestDaySuccessKeepsBreakerClosed(t *testing.T) {
	day := simclock.Day(0)
	inner := &scriptedFetcher{fn: func(req simweb.Request) simweb.Response {
		if req.Attempt == 0 && int(req.Day)%2 == 0 {
			return simweb.Response{Status: 502} // transient: retry clears it
		}
		return okResp()
	}}
	rf := NewResilientFetcher(inner, DefaultResilience(), 42)
	for ; day < 10; day++ {
		resp := rf.Fetch(simweb.Request{URL: "http://flappy.example.com/", Day: day})
		if resp.Failed() {
			t.Fatalf("day %d chain failed: %+v", day, resp)
		}
	}
	if rf.BreakerOpen("flappy.example.com", 10) {
		t.Fatal("breaker opened despite every chain succeeding")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	rf := NewResilientFetcher(&scriptedFetcher{fn: func(simweb.Request) simweb.Response { return okResp() }},
		DefaultResilience(), 7)
	rf2 := NewResilientFetcher(&scriptedFetcher{fn: func(simweb.Request) simweb.Response { return okResp() }},
		DefaultResilience(), 7)
	for a := 0; a < 5; a++ {
		got := rf.backoffMS("d.example.com", 3, a)
		if got != rf2.backoffMS("d.example.com", 3, a) {
			t.Fatalf("attempt %d backoff not deterministic", a)
		}
		base := int64(rf.Cfg.BaseBackoffMS) << uint(a)
		if cap := int64(rf.Cfg.MaxBackoffMS); base > cap {
			base = cap
		}
		if got < base || got > base+base/2 {
			t.Fatalf("attempt %d backoff %d outside [%d, %d]", a, got, base, base+base/2)
		}
	}
	// Different attempts must draw different jitter (independent coins).
	if rf.backoffMS("d.example.com", 3, 1)*2 == rf.backoffMS("d.example.com", 3, 2) &&
		rf.backoffMS("d.example.com", 5, 1)*2 == rf.backoffMS("d.example.com", 5, 2) {
		t.Fatal("jitter identical across attempts: finalizer not mixing")
	}
}
