package crawler

import (
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simweb"
)

// flakyFetcher wraps a Fetcher, failing a deterministic fraction of fetches
// with 502s — the transient network errors any eight-month crawl eats.
type flakyFetcher struct {
	inner simweb.Fetcher
	rate  float64

	mu sync.Mutex
	r  *rng.Source
	// failures counts injected faults.
	failures int
}

func newFlaky(inner simweb.Fetcher, rate float64, seed uint64) *flakyFetcher {
	return &flakyFetcher{inner: inner, rate: rate, r: rng.New(seed)}
}

func (f *flakyFetcher) Fetch(req simweb.Request) simweb.Response {
	f.mu.Lock()
	fail := f.r.Bool(f.rate)
	if fail {
		f.failures++
	}
	f.mu.Unlock()
	if fail {
		return simweb.Response{Status: 502, Body: "bad gateway"}
	}
	return f.inner.Fetch(req)
}

func (f *flakyFetcher) FetchFollow(req simweb.Request, maxHops int) (simweb.Response, string) {
	cur := req
	for hop := 0; ; hop++ {
		resp := f.Fetch(cur)
		if resp.Status < 300 || resp.Status >= 400 || resp.Location == "" || hop >= maxHops {
			return resp, cur.URL
		}
		cur = simweb.Request{URL: resp.Location, UserAgent: cur.UserAgent,
			Referrer: cur.Referrer, Day: cur.Day}
	}
}

func TestFlakyFetchesNeverManufactureCloaking(t *testing.T) {
	f := build(t)
	flaky := newFlaky(f.web, 0.5, 99)
	det := NewDetector(flaky)
	// The benign site, checked through heavy fault injection, must never be
	// reported cloaked.
	for i := 0; i < 200; i++ {
		v := det.CheckURL("http://benign-reviews.org/", simclock.Day(i))
		if v.Cloaked && v.Detector == "dagger-semantic" {
			t.Fatalf("iteration %d: transient failure produced a cloaking verdict: %+v", i, v)
		}
	}
	if flaky.failures == 0 {
		t.Fatal("fault injection inactive")
	}
}

func TestUnknownVerdictsNotCachedAsClean(t *testing.T) {
	f := build(t)
	// Always-failing fetcher first: the verdict must be unknown.
	dead := newFlaky(f.web, 1.0, 7)
	c := New(NewDetector(dead))
	v := c.CheckDomain(f.doorDom["KEY"], f.doorURL["KEY"], 0)
	if v.Cloaked {
		t.Fatalf("dead fetcher produced cloaked verdict: %+v", v)
	}
	if !v.Unknown {
		t.Fatalf("dead fetcher verdict must be unknown: %+v", v)
	}
	if _, cached := c.Cached(f.doorDom["KEY"]); cached {
		t.Fatal("unknown verdict cached")
	}
	// Heal the fetcher: the same crawler must now find the doorway.
	c.Det.F = f.web
	v2 := c.CheckDomain(f.doorDom["KEY"], f.doorURL["KEY"], 1)
	if !v2.Cloaked {
		t.Fatalf("healed crawler missed the doorway: %+v", v2)
	}
}

func TestEventualDetectionUnderFaults(t *testing.T) {
	// With a 40% fault rate, repeated daily checks must still converge on
	// detecting every doorway in the fixture.
	f := build(t)
	flaky := newFlaky(f.web, 0.4, 21)
	c := New(NewDetector(flaky))
	c.RecheckDays = 1
	targets := map[string]string{
		f.doorDom["KEY"]:     f.doorURL["KEY"],
		f.doorDom["NEWSORG"]: f.doorURL["NEWSORG"],
		f.doorDom["MOONKIS"]: f.doorURL["MOONKIS"],
	}
	detected := map[string]bool{}
	for day := simclock.Day(0); day < 40; day++ {
		for dom, u := range targets {
			if c.CheckDomain(dom, u, day).Cloaked {
				detected[dom] = true
			}
		}
	}
	for dom := range targets {
		if !detected[dom] {
			t.Fatalf("doorway %s never detected under 40%% faults in 40 days", dom)
		}
	}
}

func TestDoubleNotFoundIsDeterminate(t *testing.T) {
	f := build(t)
	det := NewDetector(f.web)
	v := det.CheckURL("http://no-such-host.example/", 0)
	if v.Cloaked || v.Unknown {
		t.Fatalf("dead URL must be determinately clean: %+v", v)
	}
	// And therefore cacheable: the crawler should not refetch it.
	c := New(det)
	c.CheckDomain("no-such-host.example", "http://no-such-host.example/", 0)
	n := c.Fetches()
	c.CheckDomain("no-such-host.example", "http://no-such-host.example/", 10)
	if c.Fetches() != n {
		t.Fatal("dead domain refetched")
	}
}

func TestRedirectVerdictSurvivesDeadLanding(t *testing.T) {
	// A doorway that 302s to a seized/removed store is still cloaking, even
	// though the landing fetch fails.
	f := build(t)
	dep := f.doorDom["KEY"]
	// Re-point the KEY doorway at a dead host by re-registering its site
	// with a resolver that targets a host nobody serves.
	site, _ := f.web.Lookup(dep)
	door := site.(*simweb.DoorwaySite)
	f.web.Register(dep, &simweb.DoorwaySite{
		Doorway: door.Doorway,
		Gen:     f.gen,
		Terms:   door.Terms,
		Resolve: func(simclock.Day) string { return "http://dead-store.example/" },
	})
	det := NewDetector(f.web)
	v := det.CheckURL(f.doorURL["KEY"], 0)
	if !v.Cloaked || v.Detector != "dagger-redirect" {
		t.Fatalf("verdict = %+v", v)
	}
	if v.IsStore {
		t.Fatal("dead landing must not be a store")
	}
}
