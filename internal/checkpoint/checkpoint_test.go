package checkpoint

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// testCfg is a miniature study config (same shape as internal/core's
// smallConfig) so building snapshot fixtures stays fast.
func testCfg() core.Config {
	cfg := core.TestConfig()
	cfg.TermsPerVertical = 3
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	return cfg
}

// snapCache memoizes fixtures per cut day: building a world dominates this
// package's test time, and every caller treats snapshots as read-only
// (except TestRestoreSnapshotRejectsTamperedDataset-style mutation, which
// lives in internal/core and builds its own).
var snapCache = map[int]*core.StudySnapshot{}

// snapshotAfter runs a fresh world and captures its snapshot after `cut`
// days, using the day-boundary hook plus context cancellation so the run
// stops deterministically right at the boundary. cut == 0 snapshots the
// fresh world.
func snapshotAfter(t *testing.T, cut int) *core.StudySnapshot {
	t.Helper()
	if s, ok := snapCache[cut]; ok {
		return s
	}
	w := core.NewWorld(testCfg())
	if cut == 0 {
		s := w.Snapshot()
		snapCache[0] = s
		return s
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snap *core.StudySnapshot
	w.OnDayEnd = func(d simclock.Day) {
		if int(d)+1 == cut {
			snap = w.Snapshot()
			cancel()
		}
	}
	w.RunContext(ctx)
	if snap == nil {
		t.Fatalf("no snapshot captured at day %d", cut)
	}
	snapCache[cut] = snap
	return snap
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := snapshotAfter(t, 3)
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatal("decoded snapshot differs from original")
	}
	// Encoding is deterministic: the same snapshot re-encodes to the same
	// bytes, so checkpoint files are byte-comparable across runs.
	again, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding a decoded snapshot changed the bytes")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	snap := snapshotAfter(t, 2)
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 1, headerSize - 1, headerSize + 7, len(data) / 2, len(data) - 1} {
			if _, err := Decode(data[:n]); err == nil {
				t.Errorf("accepted a file truncated to %d bytes", n)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[0] ^= 0xFF
		if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
			t.Errorf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[7] = 99
		if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
			t.Errorf("got %v, want ErrVersion", err)
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		// A single flipped bit anywhere in the payload or checksum must be
		// detected. Sampling offsets keeps the test fast on large files.
		for off := headerSize; off < len(data); off += 101 {
			bad := bytes.Clone(data)
			bad[off] ^= 0x10
			if _, err := Decode(bad); err == nil {
				t.Fatalf("accepted a bit flip at offset %d", off)
			}
		}
	})
	t.Run("appended-garbage", func(t *testing.T) {
		if _, err := Decode(append(bytes.Clone(data), 0xAB)); err == nil {
			t.Error("accepted a file with trailing garbage")
		}
	})
}

// frame wraps a raw payload in the SSCKPT envelope with the given envelope
// version byte and a correct length and checksum, so tests can probe decode
// behaviour past the framing checks.
func frame(version byte, payload []byte) []byte {
	buf := make([]byte, 0, headerSize+len(payload)+8)
	buf = append(buf, magic[:]...)
	buf = append(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// TestDecodeForwardCompat pins the reader's behaviour on files written by a
// newer build: both a newer envelope and a newer snapshot schema yield
// their own typed errors — never ErrCorrupt, which is reserved for damage.
func TestDecodeForwardCompat(t *testing.T) {
	t.Run("newer-envelope", func(t *testing.T) {
		data := frame(envelopeVersion+1, []byte(`{}`))
		_, err := Decode(data)
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Fatal("a newer envelope must not be classed as corruption")
		}
	})
	t.Run("newer-snapshot-schema", func(t *testing.T) {
		payload := []byte(fmt.Sprintf(`{"Version":%d}`, core.SnapshotVersion+1))
		_, err := Decode(frame(envelopeVersion, payload))
		if !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("got %v, want ErrSnapshotVersion", err)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Fatal("a newer snapshot schema must not be classed as corruption")
		}
	})
	t.Run("older-snapshot-schema-loads", func(t *testing.T) {
		// A version-1 payload predates the Version field entirely and
		// decodes as 0; anything <= the current version must load.
		for _, v := range []string{`{}`, `{"Version":0}`, fmt.Sprintf(`{"Version":%d}`, core.SnapshotVersion)} {
			if _, err := Decode(frame(envelopeVersion, []byte(v))); err != nil {
				t.Fatalf("payload %s: %v", v, err)
			}
		}
	})
	t.Run("current-snapshot-declares-version", func(t *testing.T) {
		snap := snapshotAfter(t, 0)
		if snap.Version != core.SnapshotVersion {
			t.Fatalf("Snapshot() wrote Version %d, want %d", snap.Version, core.SnapshotVersion)
		}
	})
}

func TestManagerSaveLoadRotate(t *testing.T) {
	reg := telemetry.New()
	m, err := NewManager(Options{Dir: t.TempDir(), Keep: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := m.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}

	snaps := map[int]*core.StudySnapshot{}
	for _, cut := range []int{1, 2, 3} {
		snaps[cut] = snapshotAfter(t, cut)
		if err := m.Save(snaps[cut]); err != nil {
			t.Fatalf("save at day %d: %v", cut, err)
		}
	}

	// Keep=2: only the two newest snapshots survive rotation.
	if days := m.list(); !reflect.DeepEqual(days, []int{2, 3}) {
		t.Fatalf("after rotation have days %v, want [2 3]", days)
	}
	got, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snaps[3]) {
		t.Fatal("Load did not return the newest snapshot")
	}
	if v := reg.Counter("checkpoint_saves_total").Value(); v != 3 {
		t.Errorf("saves_total = %d, want 3", v)
	}
	if v := reg.Counter("checkpoint_loads_total").Value(); v != 1 {
		t.Errorf("loads_total = %d, want 1", v)
	}
	if c := reg.Histogram("checkpoint_save_ms", telemetry.DurationBuckets()).Count(); c != 3 {
		t.Errorf("save_ms histogram count = %d, want 3", c)
	}
}

// TestManagerFallsBackPastCorruption: damage to the newest snapshot —
// bit-flipped or truncated, as a torn write would leave — is detected and
// Load falls back to the previous good one, with the damage counted.
func TestManagerFallsBackPastCorruption(t *testing.T) {
	corrupt := func(t *testing.T, path string, mode string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch mode {
		case "bitflip":
			data[len(data)/2] ^= 0x01
		case "truncate":
			data = data[:len(data)/3]
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	for _, mode := range []string{"bitflip", "truncate"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			reg := telemetry.New()
			m, err := NewManager(Options{Dir: dir, Telemetry: reg})
			if err != nil {
				t.Fatal(err)
			}
			good := snapshotAfter(t, 1)
			if err := m.Save(good); err != nil {
				t.Fatal(err)
			}
			if err := m.Save(snapshotAfter(t, 2)); err != nil {
				t.Fatal(err)
			}
			corrupt(t, filepath.Join(dir, fileFor(2)), mode)

			got, err := m.Load()
			if err != nil {
				t.Fatalf("Load with damaged newest: %v", err)
			}
			if !reflect.DeepEqual(got, good) {
				t.Fatal("Load did not fall back to the previous good snapshot")
			}
			if v := reg.Counter("checkpoint_corrupt_total").Value(); v != 1 {
				t.Errorf("corrupt_total = %d, want 1", v)
			}
			if v := reg.Counter("checkpoint_fallbacks_total").Value(); v != 1 {
				t.Errorf("fallbacks_total = %d, want 1", v)
			}

			// Damage the survivor too: now Load must fail, and the error
			// must not read as "no checkpoint" (data was present, just bad).
			corrupt(t, filepath.Join(dir, fileFor(1)), mode)
			if _, err := m.Load(); err == nil || errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("all-corrupt dir: got %v, want a damage error", err)
			}
		})
	}
}

// TestCrashAtEveryKillPoint drives the atomic write protocol into a wall
// at each kill point in turn and checks the durability invariant: after
// any crash, the directory still loads — either the previous snapshot
// (crash before rename) or the new one (crash after).
func TestCrashAtEveryKillPoint(t *testing.T) {
	prev := snapshotAfter(t, 1)
	next := snapshotAfter(t, 2)
	for _, op := range []string{"create", "write", "fsync", "rename", "dirsync"} {
		t.Run(op, func(t *testing.T) {
			dir := t.TempDir()
			clean, err := NewManager(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := clean.Save(prev); err != nil {
				t.Fatal(err)
			}

			reg := telemetry.New()
			m, err := NewManager(Options{
				Dir:       dir,
				Telemetry: reg,
				Disk:      faults.NewDiskPlan(42, 1.0, op),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Save(next); !errors.Is(err, faults.ErrInjectedCrash) {
				t.Fatalf("save at kill point %q: got %v, want ErrInjectedCrash", op, err)
			}
			if v := reg.Counter("checkpoint_saves_total").Value(); v != 0 {
				t.Errorf("crashed save counted as success (saves_total = %d)", v)
			}

			got, err := m.Load()
			if err != nil {
				t.Fatalf("Load after crash at %q: %v", op, err)
			}
			switch op {
			case "dirsync":
				// The rename committed before the crash: the new snapshot
				// is already durable.
				if !reflect.DeepEqual(got, next) {
					t.Fatal("crash after rename lost the renamed snapshot")
				}
			default:
				if !reflect.DeepEqual(got, prev) {
					t.Fatalf("crash at %q damaged the previous snapshot", op)
				}
			}
		})
	}
}

// TestCrashedWriteLeavesNoFinalFile: the torn half-written file a "write"
// crash leaves behind is a .tmp the loader never confuses with a snapshot.
func TestCrashedWriteLeavesNoFinalFile(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(Options{Dir: dir, Disk: faults.NewDiskPlan(7, 1.0, "write")})
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshotAfter(t, 1)
	if err := m.Save(snap); !errors.Is(err, faults.ErrInjectedCrash) {
		t.Fatalf("got %v, want ErrInjectedCrash", err)
	}
	if _, err := os.Stat(filepath.Join(dir, fileFor(int(snap.NextDay)))); !os.IsNotExist(err) {
		t.Fatal("torn write produced a final-name file")
	}
	if _, err := m.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("got %v, want ErrNoCheckpoint (tmp files are not snapshots)", err)
	}
}

// TestDiskPlanDeterminism: crash decisions are a pure hash of (seed, op,
// key) — the same plan replays the same schedule, different seeds differ.
func TestDiskPlanDeterminism(t *testing.T) {
	a := faults.NewDiskPlan(1, 0.5)
	b := faults.NewDiskPlan(1, 0.5)
	c := faults.NewDiskPlan(2, 0.5)
	diff := 0
	for _, op := range []string{"create", "write", "fsync", "rename", "dirsync"} {
		for _, key := range []string{"ckpt-00000001.ckpt", "ckpt-00000002.ckpt", "x"} {
			if a.CrashAt(op, key) != b.CrashAt(op, key) {
				t.Fatalf("same seed disagrees at (%s,%s)", op, key)
			}
			if a.CrashAt(op, key) != c.CrashAt(op, key) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical crash schedules")
	}
	var nilPlan *faults.DiskPlan
	if nilPlan.CrashAt("write", "k") {
		t.Fatal("nil plan crashed")
	}
}
