package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// ErrNoCheckpoint is returned by Load when the directory holds no
// checkpoint files at all — a fresh study, not a failure.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// Options configures a Manager.
type Options struct {
	// Dir is the checkpoint directory, created if absent.
	Dir string
	// Every is the save cadence in days; a snapshot is written after each
	// day d with (d+1) % Every == 0. <= 0 means every day.
	Every int
	// Keep is how many rotated snapshots to retain (>= 1 so a torn write
	// of snapshot N never strands a study without N-1). <= 0 means 2.
	Keep int
	// Telemetry, when non-nil, receives save/load/fallback counters and
	// duration histograms.
	Telemetry *telemetry.Registry
	// Disk injects deterministic crashes into the write protocol
	// (tests only; nil never crashes).
	Disk *faults.DiskPlan
}

// Manager writes, rotates and recovers study snapshots in one directory.
type Manager struct {
	dir   string
	every int
	keep  int
	disk  *faults.DiskPlan

	cSaves     *telemetry.Counter
	cLoads     *telemetry.Counter
	cFallbacks *telemetry.Counter
	cCorrupt   *telemetry.Counter
	hSaveMS    *telemetry.Histogram
	hLoadMS    *telemetry.Histogram
}

// NewManager opens (creating if needed) a checkpoint directory.
func NewManager(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("checkpoint: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	m := &Manager{dir: opts.Dir, every: opts.Every, keep: opts.Keep, disk: opts.Disk}
	if m.every <= 0 {
		m.every = 1
	}
	if m.keep <= 0 {
		m.keep = 2
	}
	reg := opts.Telemetry
	m.cSaves = reg.Counter("checkpoint_saves_total")
	m.cLoads = reg.Counter("checkpoint_loads_total")
	m.cFallbacks = reg.Counter("checkpoint_fallbacks_total")
	m.cCorrupt = reg.Counter("checkpoint_corrupt_total")
	m.hSaveMS = reg.Histogram("checkpoint_save_ms", telemetry.DurationBuckets())
	m.hLoadMS = reg.Histogram("checkpoint_load_ms", telemetry.DurationBuckets())
	return m, nil
}

// Dir returns the checkpoint directory.
func (m *Manager) Dir() string { return m.dir }

// Due reports whether the cadence calls for a snapshot after day d.
func (m *Manager) Due(d int) bool { return (d+1)%m.every == 0 }

// fileFor names the snapshot whose resume cursor is day.
func fileFor(day int) string { return fmt.Sprintf("ckpt-%08d.ckpt", day) }

// dayOf parses a snapshot file name, returning -1 for foreign files.
func dayOf(name string) int {
	rest, ok := strings.CutPrefix(name, "ckpt-")
	if !ok {
		return -1
	}
	rest, ok = strings.CutSuffix(rest, ".ckpt")
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// Save atomically writes a snapshot and rotates old ones away. A failure —
// including an injected crash — leaves the previous snapshots untouched.
func (m *Manager) Save(snap *core.StudySnapshot) error {
	start := time.Now()
	data, err := Encode(snap)
	if err != nil {
		return err
	}
	name := fileFor(int(snap.NextDay))
	if err := m.writeAtomic(name, data); err != nil {
		return err
	}
	m.cSaves.Inc()
	m.hSaveMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	m.rotate()
	return nil
}

// writeAtomic runs the temp-write/fsync/rename/dirsync protocol, with a
// kill point before (or mid-) every step. Each injected crash leaves
// exactly the state a real kill -9 at that instant would: a missing,
// partial, or un-renamed temp file — never a damaged final file.
func (m *Manager) writeAtomic(name string, data []byte) error {
	tmp := filepath.Join(m.dir, name+".tmp")
	final := filepath.Join(m.dir, name)
	if m.disk.CrashAt(faults.OpCreate, name) {
		return faults.ErrInjectedCrash
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	werr := m.writeBody(f, name, data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return fmt.Errorf("checkpoint: %w", cerr)
	}
	if m.disk.CrashAt(faults.OpRename, name) {
		return faults.ErrInjectedCrash
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if m.disk.CrashAt(faults.OpDirsync, name) {
		// The rename happened; only the directory fsync is lost. On a real
		// crash the rename may or may not survive — both outcomes recover.
		return faults.ErrInjectedCrash
	}
	//sslint:ignore errflow directory-entry fsync is best-effort; Load's newest-good fallback covers a lost entry
	if d, err := os.Open(m.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// writeBody runs the payload write and its kill points against the open
// temp file. The caller closes the handle exactly once on every path, so
// a close failure after a clean write still surfaces instead of being
// swallowed by per-branch cleanup closes.
func (m *Manager) writeBody(f *os.File, name string, data []byte) error {
	if m.disk.CrashAt(faults.OpWrite, name) {
		// Torn write: half the bytes land, then the process dies.
		//sslint:ignore errflow a simulated kill -9 mid-write abandons the handle; there is no error path to report into
		f.Write(data[:len(data)/2])
		return faults.ErrInjectedCrash
	}
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if m.disk.CrashAt(faults.OpFsync, name) {
		return faults.ErrInjectedCrash
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// list returns the checkpoint days present, ascending.
func (m *Manager) list() []int {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil
	}
	var days []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if d := dayOf(e.Name()); d >= 0 {
			days = append(days, d)
		}
	}
	sort.Ints(days)
	return days
}

// rotate removes the oldest snapshots beyond Keep. Removal failures are
// ignored: stale files cost disk, never correctness (Load prefers newer).
func (m *Manager) rotate() {
	days := m.list()
	//sslint:ignore errflow removal failures cost disk, never correctness: Load prefers newer snapshots
	for len(days) > m.keep {
		os.Remove(filepath.Join(m.dir, fileFor(days[0])))
		os.Remove(filepath.Join(m.dir, fileFor(days[0])+".tmp"))
		days = days[1:]
	}
}

// Load returns the newest loadable snapshot. Corrupt or truncated files —
// the residue of a crash mid-write or of disk damage — are detected by
// the codec, counted in telemetry, and skipped in favour of the next-newest
// good snapshot. ErrNoCheckpoint means a fresh directory; any other error
// means every present file was damaged.
func (m *Manager) Load() (*core.StudySnapshot, error) {
	start := time.Now()
	days := m.list()
	if len(days) == 0 {
		return nil, ErrNoCheckpoint
	}
	var lastErr error
	for i := len(days) - 1; i >= 0; i-- {
		path := filepath.Join(m.dir, fileFor(days[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				lastErr = err
			}
			continue
		}
		snap, err := Decode(data)
		if err != nil {
			m.cCorrupt.Inc()
			m.cFallbacks.Inc()
			lastErr = fmt.Errorf("%s: %w", fileFor(days[i]), err)
			continue
		}
		m.cLoads.Inc()
		m.hLoadMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
		return snap, nil
	}
	if lastErr == nil {
		return nil, ErrNoCheckpoint
	}
	return nil, fmt.Errorf("checkpoint: no loadable snapshot: %w", lastErr)
}
