package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"testing"

	"repro/internal/core"
)

// FuzzDecode enforces the decoder's totality contract: arbitrary bytes
// produce either a typed error or a valid snapshot — never a panic, and
// never a "valid" result that fails to re-encode. The seed corpus covers
// the interesting boundaries: a genuine encoding, every framing field
// damaged one at a time, and pathological length claims.
func FuzzDecode(f *testing.F) {
	valid, err := Encode(core.NewWorld(testCfg()).Snapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-1])
	f.Add(append(bytes.Clone(valid), 0))

	badVersion := bytes.Clone(valid)
	badVersion[7] = 0xFF
	f.Add(badVersion)

	// A file from the "next" build: envelope one version ahead, correctly
	// framed and checksummed — must fail typed, not crash.
	f.Add(frame(envelopeVersion+1, []byte(`{}`)))
	// Intact framing around a payload declaring a snapshot schema newer
	// than this build reads.
	f.Add(frame(envelopeVersion, []byte(`{"Version":99}`)))

	// A framing that claims a payload far larger than the file.
	huge := bytes.Clone(valid[:headerSize])
	binary.LittleEndian.PutUint64(huge[8:16], 1<<60)
	f.Add(huge)

	// Valid framing and checksum around a payload that is not JSON: the
	// checksum passes, the payload decode must still fail cleanly.
	junk := append([]byte{}, magic[:]...)
	junk = append(junk, envelopeVersion)
	junk = binary.LittleEndian.AppendUint64(junk, 4)
	junk = append(junk, "}{!~"...)
	h := fnv.New64a()
	h.Write(junk)
	junk = binary.LittleEndian.AppendUint64(junk, h.Sum64())
	f.Add(junk)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatal("Decode returned both a snapshot and an error")
			}
			return
		}
		if snap == nil {
			t.Fatal("Decode returned neither a snapshot nor an error")
		}
		if _, err := Encode(snap); err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
	})
}
