// Package checkpoint persists day-boundary snapshots of a running study so
// a killed process can resume from the last good one and converge to the
// bit-identical complete-run fingerprint.
//
// On-disk format (all integers little-endian):
//
//	offset  size  field
//	0       7     magic "SSCKPT\x00"
//	7       1     envelope version (currently 1)
//	8       8     payload length N
//	16      N     payload: JSON-encoded core.StudySnapshot
//	16+N    8     FNV-1a checksum over bytes [0, 16+N)
//
// The checksum covers the header too, so a truncated, torn or bit-flipped
// file — the torn-write window of a crash mid-write — is detected rather
// than loaded. Decoding is total: arbitrary input yields a typed error or
// a structurally valid snapshot, never a panic (FuzzDecode enforces this);
// semantic validity against a particular study is the restorer's job
// (core.RestoreSnapshot checks the config hash and recomputes the dataset
// digest).
//
// Writes are atomic per the classic protocol: write to a temp file, fsync
// it, rename over the final name, fsync the directory. A crash at any
// point leaves either the previous snapshot or the complete new one — a
// property the crash-injection tests (via faults.DiskPlan kill points)
// exercise at every step.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
)

// envelopeVersion is the on-disk framing version. core.SnapshotVersion
// tracks the payload schema separately and is carried inside the payload's
// generation by the config hash discipline.
const envelopeVersion = 1

var magic = [7]byte{'S', 'S', 'C', 'K', 'P', 'T', 0}

// headerSize is magic + version byte + payload length.
const headerSize = len(magic) + 1 + 8

// Typed decode errors. Every way a file can fail to decode maps onto one
// of these (possibly wrapped with detail), so callers can distinguish
// corruption classes in telemetry and tests.
var (
	// ErrTruncated: the file is shorter than its framing promises.
	ErrTruncated = errors.New("checkpoint: file truncated")
	// ErrBadMagic: the file does not start with the checkpoint magic.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrVersion: the envelope version is unknown to this build.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrChecksum: the trailing checksum does not match the content.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
	// ErrCorrupt: the framing is intact but the payload does not decode.
	ErrCorrupt = errors.New("checkpoint: corrupt payload")
	// ErrSnapshotVersion: the payload decodes but declares a snapshot
	// schema newer than this build understands. Distinct from ErrCorrupt —
	// the file is intact, the reader is just too old for it.
	ErrSnapshotVersion = errors.New("checkpoint: snapshot schema too new")
)

// Encode serializes a snapshot into the framed, checksummed form.
func Encode(snap *core.StudySnapshot) ([]byte, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	buf := make([]byte, 0, headerSize+len(payload)+8)
	buf = append(buf, magic[:]...)
	buf = append(buf, envelopeVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	h := fnv.New64a()
	h.Write(buf)
	buf = binary.LittleEndian.AppendUint64(buf, h.Sum64())
	return buf, nil
}

// Decode parses a framed snapshot. It is safe on arbitrary input: every
// length is checked before use, the payload length must account for the
// file size exactly, and the checksum must match before the payload is
// even looked at.
func Decode(data []byte) (*core.StudySnapshot, error) {
	if len(data) < headerSize+8 {
		return nil, ErrTruncated
	}
	if [7]byte(data[:7]) != magic {
		return nil, ErrBadMagic
	}
	if data[7] != envelopeVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, data[7])
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n != uint64(len(data)-headerSize-8) {
		return nil, fmt.Errorf("%w: payload length %d in a %d-byte file", ErrTruncated, n, len(data))
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, ErrChecksum
	}
	snap := new(core.StudySnapshot)
	if err := json.Unmarshal(data[headerSize:len(data)-8], snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// Forward compatibility: a payload written by a newer build is rejected
	// with a typed error, never misread. Older payloads (including
	// version-1 files predating the field, which decode as 0) pass.
	if snap.Version > core.SnapshotVersion {
		return nil, fmt.Errorf("%w: payload version %d, this build reads <= %d", ErrSnapshotVersion, snap.Version, core.SnapshotVersion)
	}
	return snap, nil
}
