package faults

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/simclock"
	"repro/internal/simweb"
)

// Handler wraps a simulated-web handler with the plan's injections so the
// socket path degrades exactly like the in-process path: dead domains and
// timeouts drop the connection (the client sees a transport error), 5xx
// and rate limits answer with the matching status, and truncation writes a
// short body under a full-length Content-Length so the client's read fails
// with an unexpected EOF — the same signal real truncation produces.
//
// A disabled plan returns next unchanged.
func Handler(p *Plan, next http.Handler) http.Handler {
	if !p.Enabled() {
		return next
	}
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		req := requestOf(r)
		if p.DomainDead(hostOf(req.URL), req.Day) {
			hijackDrop(rw)
			return
		}
		key := reqKey(req)
		if p.cfg.TimeoutRate > 0 && p.roll("timeout", key) < p.cfg.TimeoutRate {
			hijackDrop(rw)
			return
		}
		if p.cfg.ErrorRate > 0 && p.roll("5xx", key) < p.cfg.ErrorRate {
			http.Error(rw, "bad gateway (injected)", http.StatusBadGateway)
			return
		}
		if p.cfg.TruncateRate > 0 && p.roll("trunc", key) < p.cfg.TruncateRate {
			rec := &truncatingWriter{inner: rw, roll: p.roll("cutpoint", key)}
			next.ServeHTTP(rec, r)
			rec.flush()
			return
		}
		next.ServeHTTP(rw, r)
	})
}

// requestOf reconstructs the simweb.Request key attributes from the HTTP
// request, mirroring (*simweb.Web).ServeHTTP's routing (Host header or
// simhost query parameter, DayHeader, u path override) so a given logical
// fetch faults identically in process and over the wire.
func requestOf(r *http.Request) simweb.Request {
	day := 0
	if v := r.Header.Get(simweb.DayHeader); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			day = n
		}
	}
	host := r.Host
	if h, _, ok := strings.Cut(host, ":"); ok {
		host = h
	}
	if sh := r.URL.Query().Get("simhost"); sh != "" {
		host = sh
	}
	path := r.URL.Path
	if up := r.URL.Query().Get("u"); up != "" {
		path = up
	}
	attempt := 0
	if v := r.Header.Get(simweb.AttemptHeader); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			attempt = n
		}
	}
	return simweb.Request{
		URL:       "http://" + host + path,
		UserAgent: r.Header.Get("User-Agent"),
		Day:       simclock.Day(day),
		Attempt:   attempt,
	}
}

// hijackDrop severs the underlying connection without writing a response,
// which the client observes as a transport error (connection reset) — the
// closest a real server comes to a timeout or dead host. Writers that
// cannot hijack (e.g. httptest.ResponseRecorder) get a 504 instead.
func hijackDrop(rw http.ResponseWriter) {
	if hj, ok := rw.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	rw.Header().Set("Connection", "close")
	http.Error(rw, "gateway timeout (injected)", http.StatusGatewayTimeout)
}

// truncatingWriter buffers the handler's response, then replays the status
// and headers — including the full Content-Length — but writes only a
// prefix of the body.
type truncatingWriter struct {
	inner  http.ResponseWriter
	roll   float64
	status int
	body   []byte
}

func (t *truncatingWriter) Header() http.Header { return t.inner.Header() }

func (t *truncatingWriter) WriteHeader(status int) { t.status = status }

func (t *truncatingWriter) Write(b []byte) (int, error) {
	t.body = append(t.body, b...)
	return len(b), nil
}

func (t *truncatingWriter) flush() {
	if t.status == 0 {
		t.status = http.StatusOK
	}
	cut := int(t.roll * float64(len(t.body)))
	t.inner.Header().Set("Content-Length", fmt.Sprint(len(t.body)+16))
	t.inner.WriteHeader(t.status)
	t.inner.Write(t.body[:cut])
	// The missing tail never arrives: flushing here and returning lets the
	// server close the stream short of the declared length.
	if f, ok := t.inner.(http.Flusher); ok {
		f.Flush()
	}
}
