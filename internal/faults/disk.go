package faults

import (
	"errors"
	"hash/fnv"
)

// Disk-fault injection for the checkpoint write protocol.
//
// The checkpoint layer's durability claim — a crash at ANY point of the
// write protocol leaves a loadable previous snapshot — is tested, not
// assumed. A DiskPlan injects deterministic "crashes" at the protocol's
// kill points (create, write, fsync, close, rename, dirsync): the writer
// consults CrashAt before each step and, on a hit, abandons the protocol
// mid-step exactly as a killed process would, leaving whatever partial
// state the real crash would leave.
//
// Decisions follow the package's determinism contract: a pure hash of the
// plan seed and the operation's own attributes, never a draw from shared
// state, so a crash schedule replays identically on every run.

// ErrInjectedCrash is returned by a checkpoint write the DiskPlan killed
// mid-protocol. The caller treats it like any other save failure: the
// previous snapshot remains the latest good one.
var ErrInjectedCrash = errors.New("faults: injected crash during checkpoint write")

// The kill points of the checkpoint write protocol, in protocol order.
// Writers pass these to CrashAt; declaring them as a const set (rather
// than scattering string literals) puts them under the exhaustive
// analyzer wherever code dispatches on them.
const (
	OpCreate  = "create"
	OpWrite   = "write"
	OpFsync   = "fsync"
	OpRename  = "rename"
	OpDirsync = "dirsync"
)

// DiskPlan schedules deterministic crashes for checkpoint writes. The zero
// value and a nil plan never crash.
type DiskPlan struct {
	seed uint64
	rate float64
	ops  map[string]bool // nil = every op eligible
}

// NewDiskPlan returns a plan that crashes each eligible (op, key) with the
// given probability. If ops are listed, only those operations are
// eligible; otherwise every kill point is.
func NewDiskPlan(seed uint64, rate float64, ops ...string) *DiskPlan {
	p := &DiskPlan{seed: seed, rate: rate}
	if len(ops) > 0 {
		p.ops = make(map[string]bool, len(ops))
		for _, op := range ops {
			p.ops[op] = true
		}
	}
	return p
}

// CrashAt reports whether the plan kills the process at kill point op for
// the given key (typically the checkpoint file name). Nil-safe.
func (p *DiskPlan) CrashAt(op, key string) bool {
	if p == nil || p.rate <= 0 {
		return false
	}
	if p.ops != nil && !p.ops[op] {
		return false
	}
	return diskRoll(p.seed, op, key) < p.rate
}

// diskRoll is Plan.roll for disk decisions: the same seeded pure-hash coin,
// finalized with mix64 for full avalanche.
func diskRoll(seed uint64, op, key string) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte("disk/" + op))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return float64(mix64(h.Sum64())>>11) / (1 << 53)
}
