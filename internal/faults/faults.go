// Package faults is the deterministic fault-injection layer for the crawl
// pipeline. The paper's eight-month measurement ran against a hostile,
// flaky substrate — compromised doorways die mid-study, fetches time out,
// the crawler loses whole days (the real dataset has coverage gaps) — and
// this package lets a study reproduce that substrate on demand so the
// robustness of the measured conclusions to data loss can itself be
// measured.
//
// Determinism contract: every injection decision is a pure function of the
// plan seed and the request's own attributes (URL, visitor class, day,
// attempt number) — never a draw from a shared sequential stream. Two runs
// with the same seed and Config therefore inject byte-identical faults at
// any GOMAXPROCS or worker count, and a retry (which increments the attempt
// number) re-rolls independently, so transient faults clear the way real
// ones do. A nil *Plan is fully inert and costs nothing on the hot path.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/telemetry"
)

// Config sets the per-class injection rates. The zero value disables
// injection entirely.
type Config struct {
	// TimeoutRate is the probability a fetch hangs past the client deadline
	// and yields no response at all (Status 0, ErrTimeout).
	TimeoutRate float64
	// ErrorRate is the probability a fetch returns a transient 5xx.
	ErrorRate float64
	// TruncateRate is the probability a response body arrives truncated and
	// garbled (connection reset mid-transfer). The response is flagged
	// Truncated — real crawlers detect this via Content-Length mismatch —
	// so detectors must not diff a partial document.
	TruncateRate float64
	// DeadDomainRate is the per-(domain, day) probability a domain fails to
	// resolve for the whole day (the compromised host was cleaned up, or its
	// DNS lapsed). Every fetch to the domain that day gets ErrDNS.
	DeadDomainRate float64
	// RateLimitRate is the per-(vertical, term, day) probability the search
	// engine rate-limits the crawler's query, losing that term's SERP for
	// the day (observed coverage shrinks; no fetches are attempted).
	RateLimitRate float64
	// OutageRate is the per-day probability the whole crawler is down — the
	// paper's lost-coverage days. The observe phase skips the day entirely.
	OutageRate float64
}

// Enabled reports whether any failure class can fire.
func (c Config) Enabled() bool {
	return c.TimeoutRate > 0 || c.ErrorRate > 0 || c.TruncateRate > 0 ||
		c.DeadDomainRate > 0 || c.RateLimitRate > 0 || c.OutageRate > 0
}

// Profiles returns the named rate presets used by the -faults flag and the
// CI fault matrix: "off", "moderate" (a realistically flaky crawl) and
// "severe" (a badly degraded one).
func Profiles() []string { return []string{"off", "moderate", "severe"} }

// Profile resolves a preset name to its Config.
func Profile(name string) (Config, error) {
	switch name {
	case "", "off", "none":
		return Config{}, nil
	case "moderate":
		return Config{
			TimeoutRate:    0.02,
			ErrorRate:      0.03,
			TruncateRate:   0.01,
			DeadDomainRate: 0.01,
			RateLimitRate:  0.01,
			OutageRate:     0.01,
		}, nil
	case "severe":
		return Config{
			TimeoutRate:    0.08,
			ErrorRate:      0.12,
			TruncateRate:   0.05,
			DeadDomainRate: 0.05,
			RateLimitRate:  0.05,
			OutageRate:     0.04,
		}, nil
	}
	return Config{}, fmt.Errorf("faults: unknown profile %q (have %v)", name, Profiles())
}

// Sentinel errors carried on injected Responses (and on the resilient
// fetcher's short circuits). Callers branch on these with errors.Is.
var (
	// ErrTimeout marks a fetch that exceeded its deadline.
	ErrTimeout = errors.New("faults: fetch timed out")
	// ErrDNS marks a domain that failed to resolve.
	ErrDNS = errors.New("faults: domain does not resolve")
	// ErrTruncated marks a body cut off mid-transfer.
	ErrTruncated = errors.New("faults: response body truncated")
)

// Plan is a fully deterministic fault schedule derived from the study RNG.
// All methods are safe for concurrent use (the plan is immutable) and all
// are nil-safe: a nil plan never injects anything.
type Plan struct {
	cfg  Config
	seed uint64

	// Injection tallies (nil until Instrument; nil handles are no-ops).
	// These observe decisions already made — the rolls above never consult
	// them — so instrumentation cannot change what is injected.
	cDNS      *telemetry.Counter
	cTimeout  *telemetry.Counter
	cServErr  *telemetry.Counter
	cTruncate *telemetry.Counter
	cOutage   *telemetry.Counter
	cSerpLost *telemetry.Counter
}

// Instrument registers per-class injection counters on reg (nil reg or nil
// plan is a no-op): faults_injected_{dns,timeout,5xx,truncate}_total count
// per-request injections, faults_outage_days_total whole-crawler outage
// days, faults_serp_lost_total rate-limited SERP queries. Call before the
// study starts; the handles are then read-only for the plan's lifetime, so
// the plan stays safe for concurrent use.
func (p *Plan) Instrument(reg *telemetry.Registry) {
	if p == nil || reg == nil {
		return
	}
	p.cDNS = reg.Counter("faults_injected_dns_total")
	p.cTimeout = reg.Counter("faults_injected_timeout_total")
	p.cServErr = reg.Counter("faults_injected_5xx_total")
	p.cTruncate = reg.Counter("faults_injected_truncate_total")
	p.cOutage = reg.Counter("faults_outage_days_total")
	p.cSerpLost = reg.Counter("faults_serp_lost_total")
}

// NewPlan derives a plan from the study RNG. Drawing the plan seed from a
// named substream means adding fault injection to a study never perturbs
// any other subsystem's randomness.
func NewPlan(r *rng.Source, cfg Config) *Plan {
	return &Plan{cfg: cfg, seed: r.Sub("faults/plan").Uint64()}
}

// Config returns the plan's rate configuration.
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// Enabled reports whether this plan can inject anything.
func (p *Plan) Enabled() bool { return p != nil && p.cfg.Enabled() }

// roll hashes a decision key into a uniform float64 in [0, 1). Each
// distinct key is an independent coin; the same key always lands the same
// side. The class tag keeps different failure classes independent even for
// identical request attributes.
func (p *Plan) roll(class string, key string) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(p.seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(key))
	// FNV-1a's final multiply barely diffuses the last few input bytes (two
	// keys differing only in a trailing attempt digit would land within 1e-7
	// of each other), so finalize with a splitmix64 mix for full avalanche,
	// then map to [0,1) with the same 53-bit mantissa construction rng uses.
	return float64(mix64(h.Sum64())>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer: a bijective mixer whose output bits all
// depend on all input bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// OutageDay reports whether the whole crawler is down on day d.
func (p *Plan) OutageDay(d simclock.Day) bool {
	if p == nil || p.cfg.OutageRate <= 0 {
		return false
	}
	if p.roll("outage", fmt.Sprintf("%d", d)) < p.cfg.OutageRate {
		p.cOutage.Inc()
		return true
	}
	return false
}

// DomainDead reports whether a domain fails to resolve for all of day d.
func (p *Plan) DomainDead(domain string, d simclock.Day) bool {
	if p == nil || p.cfg.DeadDomainRate <= 0 {
		return false
	}
	return p.roll("dns", fmt.Sprintf("%s/%d", domain, d)) < p.cfg.DeadDomainRate
}

// SerpRateLimited reports whether the search engine refused the crawler's
// query for (vertical, term) on day d.
func (p *Plan) SerpRateLimited(vertical, termIdx int, d simclock.Day) bool {
	if p == nil || p.cfg.RateLimitRate <= 0 {
		return false
	}
	if p.roll("serp", fmt.Sprintf("%d/%d/%d", vertical, termIdx, d)) < p.cfg.RateLimitRate {
		p.cSerpLost.Inc()
		return true
	}
	return false
}

// reqKey identifies one fetch attempt for per-request classes. The visitor
// class (user agent) is part of the key so Dagger's paired user/crawler
// fetches fault independently, as distinct TCP connections would.
func reqKey(req simweb.Request) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d", req.URL, req.UserAgent, req.Day, req.Attempt)
}

// Apply returns the faulted response for a request, or (resp, false) when
// no per-request fault fires and the inner response passes through.
// Dead-domain days are checked first (DNS failure precedes any connection);
// then timeout, 5xx, and truncation, each an independent deterministic
// coin on the request key.
func (p *Plan) Apply(req simweb.Request, fetch func(simweb.Request) simweb.Response) simweb.Response {
	if !p.Enabled() {
		return fetch(req)
	}
	if p.DomainDead(hostOf(req.URL), req.Day) {
		p.cDNS.Inc()
		return simweb.Response{Status: 0, Err: ErrDNS}
	}
	key := reqKey(req)
	if p.cfg.TimeoutRate > 0 && p.roll("timeout", key) < p.cfg.TimeoutRate {
		p.cTimeout.Inc()
		return simweb.Response{Status: 0, Err: ErrTimeout}
	}
	if p.cfg.ErrorRate > 0 && p.roll("5xx", key) < p.cfg.ErrorRate {
		p.cServErr.Inc()
		return simweb.Response{Status: 502, Body: "bad gateway (injected)"}
	}
	resp := fetch(req)
	if p.cfg.TruncateRate > 0 && resp.Status == 200 && len(resp.Body) > 0 &&
		p.roll("trunc", key) < p.cfg.TruncateRate {
		cut := int(p.roll("cutpoint", key) * float64(len(resp.Body)))
		resp.Body = resp.Body[:cut] + "\x00\x00<garbled"
		resp.Truncated = true
		resp.Err = ErrTruncated
		p.cTruncate.Inc()
	}
	return resp
}

// Fetcher wraps an inner simweb.Fetcher with the plan's per-request
// injections. It is what the in-process crawl path mounts; the net/http
// path mounts Handler instead.
type Fetcher struct {
	Plan  *Plan
	Inner simweb.Fetcher
}

// Wrap returns inner unchanged when the plan is disabled — the faults-off
// hot path keeps its exact pre-injection call chain — and a faulting
// Fetcher otherwise.
func Wrap(p *Plan, inner simweb.Fetcher) simweb.Fetcher {
	if !p.Enabled() {
		return inner
	}
	return &Fetcher{Plan: p, Inner: inner}
}

// Fetch implements simweb.Fetcher.
func (f *Fetcher) Fetch(req simweb.Request) simweb.Response {
	return f.Plan.Apply(req, f.Inner.Fetch)
}

// FetchFollow implements simweb.Fetcher, injecting independently at every
// hop of the redirect chain (each hop is its own request key).
func (f *Fetcher) FetchFollow(req simweb.Request, maxHops int) (simweb.Response, string) {
	cur := req
	for hop := 0; ; hop++ {
		resp := f.Fetch(cur)
		if resp.Status < 300 || resp.Status >= 400 || resp.Location == "" || hop >= maxHops {
			return resp, cur.URL
		}
		cur = simweb.Request{
			URL:       simweb.ResolveURL(cur.URL, resp.Location),
			UserAgent: cur.UserAgent,
			Referrer:  cur.Referrer,
			Day:       cur.Day,
			Attempt:   cur.Attempt,
		}
	}
}

var _ simweb.Fetcher = (*Fetcher)(nil)

func hostOf(raw string) string {
	// Cheap host extraction (scheme://host/...) — URLs in the simulation are
	// well-formed; fall back to the raw string so malformed inputs still key
	// deterministically.
	s := raw
	if i := indexAfterScheme(s); i > 0 {
		s = s[i:]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == ':' || s[i] == '?' {
			return s[:i]
		}
	}
	return s
}

func indexAfterScheme(s string) int {
	for i := 0; i+2 < len(s); i++ {
		if s[i] == ':' && s[i+1] == '/' && s[i+2] == '/' {
			return i + 3
		}
	}
	return 0
}
