package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simweb"
)

// echoFetcher returns a fixed 200 page for every request and counts calls.
type echoFetcher struct {
	body  string
	calls int
}

func (e *echoFetcher) Fetch(req simweb.Request) simweb.Response {
	e.calls++
	return simweb.Response{Status: 200, Body: e.body}
}

func (e *echoFetcher) FetchFollow(req simweb.Request, maxHops int) (simweb.Response, string) {
	return e.Fetch(req), req.URL
}

func planWith(seed uint64, cfg Config) *Plan {
	return NewPlan(rng.New(seed), cfg)
}

func TestProfile(t *testing.T) {
	for _, name := range Profiles() {
		cfg, err := Profile(name)
		if err != nil {
			t.Fatalf("Profile(%q): %v", name, err)
		}
		if (name == "off") == cfg.Enabled() {
			t.Fatalf("Profile(%q).Enabled() = %v", name, cfg.Enabled())
		}
	}
	if _, err := Profile("catastrophic"); err == nil {
		t.Fatal("unknown profile did not error")
	}
	if cfg, err := Profile(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty profile: cfg=%+v err=%v", cfg, err)
	}
}

func TestNilPlanInert(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Fatal("nil plan claims enabled")
	}
	if p.Config().Enabled() {
		t.Fatal("nil plan has live config")
	}
	if p.OutageDay(3) || p.DomainDead("x.com", 3) || p.SerpRateLimited(1, 2, 3) {
		t.Fatal("nil plan injected a fault")
	}
	inner := &echoFetcher{body: "ok"}
	if got := Wrap(p, inner); got != simweb.Fetcher(inner) {
		t.Fatal("Wrap(nil plan) did not return inner unchanged")
	}
}

func TestWrapDisabledIsIdentity(t *testing.T) {
	inner := &echoFetcher{body: "ok"}
	p := planWith(1, Config{})
	if got := Wrap(p, inner); got != simweb.Fetcher(inner) {
		t.Fatal("Wrap(disabled plan) did not return inner unchanged")
	}
	if got := Wrap(planWith(1, Config{TimeoutRate: 1}), inner); got == simweb.Fetcher(inner) {
		t.Fatal("Wrap(enabled plan) returned inner unchanged")
	}
}

// TestDeterministic proves the core contract: identical (seed, config) gives
// identical decisions for every class, regardless of evaluation order, and a
// different seed gives a different schedule.
func TestDeterministic(t *testing.T) {
	cfg, _ := Profile("severe")
	a := planWith(7, cfg)
	b := planWith(7, cfg)
	c := planWith(8, cfg)

	diff := 0
	for d := simclock.Day(0); d < 200; d++ {
		if a.OutageDay(d) != b.OutageDay(d) {
			t.Fatalf("OutageDay(%d) differs for identical plans", d)
		}
		dom := fmt.Sprintf("door%03d.example.com", int(d)%40)
		if a.DomainDead(dom, d) != b.DomainDead(dom, d) {
			t.Fatalf("DomainDead(%s, %d) differs for identical plans", dom, d)
		}
		if a.SerpRateLimited(int(d)%16, int(d)%10, d) != b.SerpRateLimited(int(d)%16, int(d)%10, d) {
			t.Fatalf("SerpRateLimited differs for identical plans on day %d", d)
		}
		req := simweb.Request{URL: "http://" + dom + "/p", UserAgent: "dagger", Day: d}
		inner := &echoFetcher{body: strings.Repeat("x", 64)}
		ra := a.Apply(req, inner.Fetch)
		rb := b.Apply(req, inner.Fetch)
		if ra.Status != rb.Status || ra.Body != rb.Body || ra.Truncated != rb.Truncated ||
			(ra.Err == nil) != (rb.Err == nil) {
			t.Fatalf("Apply differs for identical plans on day %d: %+v vs %+v", d, ra, rb)
		}
		rc := c.Apply(req, inner.Fetch)
		if ra.Status != rc.Status || ra.Body != rc.Body {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("a different seed produced an identical 200-day fault schedule")
	}
}

// TestRollRates sanity-checks that each class fires at roughly its configured
// rate over many independent keys.
func TestRollRates(t *testing.T) {
	p := planWith(3, Config{TimeoutRate: 0.1})
	fired := 0
	const n = 20000
	for i := 0; i < n; i++ {
		req := simweb.Request{URL: fmt.Sprintf("http://d%05d.com/", i), Day: 1}
		resp := p.Apply(req, (&echoFetcher{body: "ok"}).Fetch)
		if errors.Is(resp.Err, ErrTimeout) {
			fired++
		}
	}
	got := float64(fired) / n
	if got < 0.08 || got > 0.12 {
		t.Fatalf("timeout rate 0.1 fired at %.4f over %d keys", got, n)
	}
}

func TestApplyClasses(t *testing.T) {
	req := simweb.Request{URL: "http://shop.example.com/page", UserAgent: "user", Day: 5}
	body := strings.Repeat("the quick brown fox ", 20)

	t.Run("dead domain", func(t *testing.T) {
		p := planWith(1, Config{DeadDomainRate: 1})
		inner := &echoFetcher{body: body}
		resp := p.Apply(req, inner.Fetch)
		if !errors.Is(resp.Err, ErrDNS) || resp.Status != 0 {
			t.Fatalf("want ErrDNS/0, got %+v", resp)
		}
		if inner.calls != 0 {
			t.Fatal("dead domain still reached the inner fetcher")
		}
		if !resp.Failed() {
			t.Fatal("DNS failure not Failed()")
		}
	})
	t.Run("timeout", func(t *testing.T) {
		p := planWith(1, Config{TimeoutRate: 1})
		resp := p.Apply(req, (&echoFetcher{body: body}).Fetch)
		if !errors.Is(resp.Err, ErrTimeout) || resp.Status != 0 || !resp.Failed() {
			t.Fatalf("want ErrTimeout/0, got %+v", resp)
		}
	})
	t.Run("5xx", func(t *testing.T) {
		p := planWith(1, Config{ErrorRate: 1})
		resp := p.Apply(req, (&echoFetcher{body: body}).Fetch)
		if resp.Status != 502 || !resp.Failed() {
			t.Fatalf("want 502, got %+v", resp)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		p := planWith(1, Config{TruncateRate: 1})
		resp := p.Apply(req, (&echoFetcher{body: body}).Fetch)
		if !resp.Truncated || !errors.Is(resp.Err, ErrTruncated) || !resp.Failed() {
			t.Fatalf("want truncated, got %+v", resp)
		}
		if resp.Body == body || len(resp.Body) > len(body)+16 {
			t.Fatalf("truncated body not mangled: %q", resp.Body)
		}
		// Error responses pass through untruncated (nothing to cut).
		errResp := p.Apply(req, func(simweb.Request) simweb.Response {
			return simweb.Response{Status: 404, Body: "gone"}
		})
		if errResp.Truncated || errResp.Body != "gone" {
			t.Fatalf("non-200 response was truncated: %+v", errResp)
		}
	})
}

// TestRetryRerolls verifies a retry (attempt+1) is an independent coin: with
// a 50% timeout rate some request must fault on attempt 0 and clear on
// attempt 1 — the behaviour real transient faults have.
func TestRetryRerolls(t *testing.T) {
	p := planWith(11, Config{TimeoutRate: 0.5})
	inner := &echoFetcher{body: "ok"}
	cleared := false
	for i := 0; i < 200 && !cleared; i++ {
		req := simweb.Request{URL: fmt.Sprintf("http://r%03d.com/", i), Day: 2}
		first := p.Apply(req, inner.Fetch)
		req.Attempt = 1
		second := p.Apply(req, inner.Fetch)
		if first.Failed() && !second.Failed() {
			cleared = true
		}
	}
	if !cleared {
		t.Fatal("no request recovered on retry across 200 candidates at 50% fault rate")
	}
}

// TestVisitorClassesFaultIndependently: Dagger's paired user/crawler fetches
// of the same URL must not share a fault coin.
func TestVisitorClassesFaultIndependently(t *testing.T) {
	p := planWith(5, Config{TimeoutRate: 0.5})
	inner := &echoFetcher{body: "ok"}
	differs := false
	for i := 0; i < 200 && !differs; i++ {
		req := simweb.Request{URL: fmt.Sprintf("http://v%03d.com/", i), Day: 2, UserAgent: "user"}
		u := p.Apply(req, inner.Fetch)
		req.UserAgent = "crawler"
		c := p.Apply(req, inner.Fetch)
		differs = u.Failed() != c.Failed()
	}
	if !differs {
		t.Fatal("user and crawler fetches faulted identically across 200 URLs at 50% rate")
	}
}
