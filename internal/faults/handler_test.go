package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/simweb"
)

// pageHandler is a comparable http.Handler serving one fixed page.
type pageHandler struct{ body string }

func (h pageHandler) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	rw.WriteHeader(http.StatusOK)
	io.WriteString(rw, h.body)
}

func TestHandlerDisabledIsIdentity(t *testing.T) {
	next := pageHandler{body: "hello"}
	if got := Handler(nil, next); got != http.Handler(next) {
		t.Fatal("Handler(nil plan) did not return next unchanged")
	}
	if got := Handler(planWith(1, Config{}), next); got != http.Handler(next) {
		t.Fatal("Handler(disabled plan) did not return next unchanged")
	}
}

// serve spins up a real net/http server (hijacking needs a real conn) with
// the plan mounted in front of a fixed page.
func serve(t *testing.T, p *Plan, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler(p, pageHandler{body: body}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte, error) {
	t.Helper()
	req, err := http.NewRequest("GET", srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(simweb.DayHeader, "4")
	resp, err := srv.Client().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

func TestHandlerDeadDomainDropsConnection(t *testing.T) {
	srv := serve(t, planWith(1, Config{DeadDomainRate: 1}), "hello")
	if _, _, err := get(t, srv, "/?simhost=dead.example.com"); err == nil {
		t.Fatal("dead-domain day answered instead of dropping the connection")
	}
}

func TestHandlerTimeoutDropsConnection(t *testing.T) {
	srv := serve(t, planWith(1, Config{TimeoutRate: 1}), "hello")
	if _, _, err := get(t, srv, "/?simhost=shop.example.com"); err == nil {
		t.Fatal("timeout fault answered instead of dropping the connection")
	}
}

func TestHandlerInjects5xx(t *testing.T) {
	srv := serve(t, planWith(1, Config{ErrorRate: 1}), "hello")
	resp, _, err := get(t, srv, "/?simhost=shop.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("want 502, got %d", resp.StatusCode)
	}
}

// TestHandlerTruncation: the middleware declares the full Content-Length but
// writes only a prefix, so the client's body read fails with unexpected EOF —
// the exact signal real mid-transfer truncation produces on the wire.
func TestHandlerTruncation(t *testing.T) {
	body := strings.Repeat("the quick brown fox ", 200)
	srv := serve(t, planWith(1, Config{TruncateRate: 1}), body)
	resp, got, err := get(t, srv, "/?simhost=shop.example.com")
	if err == nil && len(got) >= len(body) {
		t.Fatalf("truncation fault delivered the full body (%d bytes, status %d)", len(got), resp.StatusCode)
	}
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "EOF") {
		t.Fatalf("want unexpected EOF, got %v", err)
	}
}

// TestHandlerPassThrough: an enabled plan whose coins miss must serve the
// page byte-for-byte.
func TestHandlerPassThrough(t *testing.T) {
	// Rates low enough that some key misses every class; scan for one.
	p := planWith(9, Config{ErrorRate: 0.2})
	srv := serve(t, p, "hello")
	for i := 0; i < 50; i++ {
		path := "/?simhost=clean" + strings.Repeat("x", i%5) + ".example.com"
		resp, b, err := get(t, srv, path)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if string(b) != "hello" {
				t.Fatalf("clean response corrupted: %q", b)
			}
			return
		}
	}
	t.Fatal("no clean response across 50 keys at 20% error rate")
}

// TestRequestOfMirrorsSimwebRouting: the handler must key its coins on the
// same logical request the in-process path sees, so a given fetch faults
// identically in process and over the wire.
func TestRequestOfMirrorsSimwebRouting(t *testing.T) {
	r := httptest.NewRequest("GET", "http://127.0.0.1:9999/serve?simhost=door7.example.com&u=/landing", nil)
	r.Header.Set(simweb.DayHeader, "12")
	r.Header.Set(simweb.AttemptHeader, "2")
	r.Header.Set("User-Agent", "dagger-crawler")
	req := requestOf(r)
	want := simweb.Request{URL: "http://door7.example.com/landing", UserAgent: "dagger-crawler", Day: 12, Attempt: 2}
	if req != want {
		t.Fatalf("requestOf = %+v, want %+v", req, want)
	}
}
