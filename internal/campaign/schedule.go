package campaign

import (
	"math"

	"repro/internal/brands"
	"repro/internal/simclock"
)

// Intensity returns the campaign's SEO pressure for a vertical on a study
// day, in [0, 1]. One unit means the campaign is at full strength: its
// doorways hold as many result slots as the SERP model allows it.
//
// The shape encodes the paper's observations: campaigns run a baseline
// presence across their active window, a pronounced peak lasting PeakDays
// (Table 2's "peak range"), ramps on either side of the peak, and a
// collapse to a residue after a mass demotion (the KEY event).
func (s *Spec) Intensity(v brands.Vertical, d simclock.Day) float64 {
	if !s.Targets(v) {
		return 0
	}
	if d < s.ActiveFrom {
		return 0
	}
	if s.ActiveTo != 0 && d > s.ActiveTo {
		return 0
	}
	base := 0.18 * s.verticalWeight(v)
	peak := 1.0 * s.verticalWeight(v)

	level := base
	ps, pe := s.PeakFrom, s.PeakFrom+simclock.Day(s.PeakDays)
	const ramp = 10 // days of ramp on either side of the peak
	switch {
	case d >= ps && d < pe:
		level = peak
	case d >= ps-ramp && d < ps:
		frac := float64(d-(ps-ramp)) / ramp
		level = base + (peak-base)*frac
	case d >= pe && d < pe+ramp:
		frac := float64(d-pe) / ramp
		level = peak - (peak-base)*frac
	}
	// Mild deterministic seasonality so series are not flat lines.
	level *= 1 + 0.12*math.Sin(float64(d)/9+float64(len(s.Name)))
	if s.DemotedOn != 0 && d >= s.DemotedOn {
		// Mass demotion: the campaign retains only a residue of its
		// placements (§5.2.1's KEY collapse).
		level *= 0.05
	}
	if level < 0 {
		level = 0
	}
	if level > 1 {
		level = 1
	}
	return level
}

// Targets reports whether the campaign targets the vertical.
func (s *Spec) Targets(v brands.Vertical) bool {
	for _, t := range s.Verticals {
		if t == v {
			return true
		}
	}
	return false
}

// verticalWeight spreads a campaign's effort across its verticals, with
// earlier-listed verticals (its flagship markets) receiving more of it.
func (s *Spec) verticalWeight(v brands.Vertical) float64 {
	for i, t := range s.Verticals {
		if t == v {
			return math.Pow(0.82, float64(i))
		}
	}
	return 0
}

// Top10Suppressed reports whether, on day d, the campaign's results are
// being demoted out of the top 10 while remaining in the top 100 (the
// MOONKIS pattern of §5.2.1).
func (s *Spec) Top10Suppressed(d simclock.Day) bool {
	return s.Top10SuppressedFrom != 0 &&
		d >= s.Top10SuppressedFrom && d <= s.Top10SuppressedTo
}

// OrdersHalted reports whether the campaign's stores have stopped
// processing orders on day d. The paper observed KEY's stores stop
// processing shortly after its PSR collapse.
func (s *Spec) OrdersHalted(d simclock.Day) bool {
	return s.DemotedOn != 0 && d >= s.DemotedOn+14
}
