package campaign

import (
	"testing"
	"time"

	"repro/internal/brands"
	"repro/internal/rng"
	"repro/internal/simclock"
)

func roster(t *testing.T) []*Spec {
	t.Helper()
	return Roster(simclock.StudyWindow())
}

func TestRosterHas52Campaigns(t *testing.T) {
	specs := roster(t)
	if len(specs) != 52 {
		t.Fatalf("roster has %d campaigns, want 52", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate campaign %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestTable2CountsPreserved(t *testing.T) {
	byName := ByName(roster(t))
	cases := []struct {
		name                            string
		doorways, stores, nbrands, peak int
	}{
		{"KEY", 1980, 97, 28, 65},
		{"MSVALIDATE", 530, 98, 6, 52},
		{"BIGLOVE", 767, 92, 30, 92},
		{"MOONKIS", 95, 7, 4, 99},
		{"VERA", 155, 38, 12, 156},
		{"PHP?P=", 255, 55, 24, 96},
		{"NEWSORG", 926, 7, 5, 24},
		{"TIFFANY.0", 26, 1, 1, 4},
	}
	for _, c := range cases {
		s, ok := byName[c.name]
		if !ok {
			t.Fatalf("campaign %q missing", c.name)
		}
		if s.Doorways != c.doorways || s.Stores != c.stores ||
			s.Brands != c.nbrands || s.PeakDays != c.peak {
			t.Errorf("%s = {%d %d %d %d}, want {%d %d %d %d}", c.name,
				s.Doorways, s.Stores, s.Brands, s.PeakDays,
				c.doorways, c.stores, c.nbrands, c.peak)
		}
	}
}

func TestKeyTargetsThirteenVerticals(t *testing.T) {
	key := ByName(roster(t))["KEY"]
	if len(key.Verticals) != 13 {
		t.Fatalf("KEY targets %d verticals, want 13", len(key.Verticals))
	}
	for _, v := range key.Verticals {
		if v.SuggestSeeded() {
			t.Errorf("KEY must not target starred vertical %s", v)
		}
	}
}

func TestEveryVerticalTargeted(t *testing.T) {
	specs := roster(t)
	for _, v := range brands.All() {
		n := 0
		for _, s := range specs {
			if s.Targets(v) {
				n++
			}
		}
		if n == 0 {
			t.Errorf("vertical %s targeted by no campaign", v)
		}
	}
}

func TestFigure2CampaignPresence(t *testing.T) {
	// The campaigns plotted per vertical in Figure 2 must target those
	// verticals.
	byName := ByName(roster(t))
	checks := map[string][]brands.Vertical{
		"KEY":        {brands.Abercrombie, brands.BeatsByDre},
		"PHP?P=":     {brands.Abercrombie},
		"MOONKIS":    {brands.BeatsByDre},
		"NEWSORG":    {brands.BeatsByDre},
		"JSUS":       {brands.BeatsByDre, brands.Uggs},
		"PAULSIMON":  {brands.BeatsByDre},
		"MOKLELE":    {brands.LouisVuitton},
		"NORTHFACEC": {brands.LouisVuitton},
		"LV.0":       {brands.LouisVuitton},
		"MSVALIDATE": {brands.LouisVuitton, brands.Uggs},
		"UGGS.0":     {brands.Uggs},
		"BIGLOVE":    {brands.LouisVuitton, brands.Uggs},
	}
	for name, vs := range checks {
		s := byName[name]
		if s == nil {
			t.Fatalf("campaign %q missing", name)
		}
		for _, v := range vs {
			if !s.Targets(v) {
				t.Errorf("%s must target %s", name, v)
			}
		}
	}
}

func TestKeys(t *testing.T) {
	cases := map[string]string{
		"KEY": "key", "PHP?P=": "php?p=", "SCHEMA.ORG": "schema.org",
		"LV.0": "lv.0", "MINOR.07": "minor.07",
	}
	for name, want := range cases {
		if got := keyOf(name); got != want {
			t.Errorf("keyOf(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestIntensityShape(t *testing.T) {
	w := simclock.StudyWindow()
	vera := ByName(Roster(w))["VERA"]
	v := vera.Verticals[0]
	peakMid := vera.PeakFrom + simclock.Day(vera.PeakDays/2)
	if pi := vera.Intensity(v, peakMid); pi < 0.5 {
		t.Fatalf("peak intensity = %v, want >= 0.5", pi)
	}
	before := vera.Intensity(v, vera.PeakFrom-30)
	if before >= vera.Intensity(v, peakMid) {
		t.Fatal("baseline must be below peak")
	}
	if vera.Intensity(brands.Clarisonic, peakMid) != 0 {
		t.Fatal("intensity for untargeted vertical must be 0")
	}
	for d := simclock.Day(0); int(d) < w.Days(); d++ {
		i := vera.Intensity(v, d)
		if i < 0 || i > 1 {
			t.Fatalf("intensity out of range on day %d: %v", d, i)
		}
	}
}

func TestKeyCollapseAfterDemotion(t *testing.T) {
	w := simclock.StudyWindow()
	key := ByName(Roster(w))["KEY"]
	before := key.Intensity(brands.BeatsByDre, key.DemotedOn-10)
	after := key.Intensity(brands.BeatsByDre, key.DemotedOn+10)
	if after >= before*0.2 {
		t.Fatalf("KEY after demotion = %v, before = %v; want collapse", after, before)
	}
	if !key.OrdersHalted(key.DemotedOn + 20) {
		t.Fatal("KEY orders must halt after demotion")
	}
	if key.OrdersHalted(key.DemotedOn - 1) {
		t.Fatal("KEY orders must not halt before demotion")
	}
}

func TestMoonkisSchedule(t *testing.T) {
	w := simclock.StudyWindow()
	mk := ByName(Roster(w))["MOONKIS"]
	// Inactive in 2013, active and suppressed-in-top10 during March 2014.
	nov := w.MustDay(2013, time.November, 20)
	if mk.Intensity(brands.BeatsByDre, nov) != 0 {
		t.Fatal("MOONKIS must be inactive before January")
	}
	march := w.MustDay(2014, time.March, 15)
	if mk.Intensity(brands.BeatsByDre, march) <= 0 {
		t.Fatal("MOONKIS must be active in March")
	}
	if !mk.Top10Suppressed(march) {
		t.Fatal("MOONKIS must be top-10 suppressed in March")
	}
	if mk.Top10Suppressed(w.MustDay(2014, time.February, 1)) {
		t.Fatal("MOONKIS must not be suppressed in February")
	}
}

func TestDeployCounts(t *testing.T) {
	w := simclock.StudyWindow()
	spec := ByName(Roster(w))["MSVALIDATE"]
	r := rng.New(1)
	used := map[string]bool{}
	d := Deploy(r, spec, 0.1, used)
	wantD, wantS := 53, 10
	if len(d.Doorways) != wantD {
		t.Fatalf("doorways = %d, want %d", len(d.Doorways), wantD)
	}
	if len(d.Stores) != wantS {
		t.Fatalf("stores = %d, want %d", len(d.Stores), wantS)
	}
}

func TestDeployDomainsUnique(t *testing.T) {
	w := simclock.StudyWindow()
	r := rng.New(2)
	deps := DeployAll(r, Roster(w), 0.05)
	seen := map[string]string{}
	for _, dep := range deps {
		for _, dw := range dep.Doorways {
			if owner, dup := seen[dw.Domain]; dup {
				t.Fatalf("domain %q used by %s and %s", dw.Domain, owner, dw.ID)
			}
			seen[dw.Domain] = dw.ID
		}
		for _, st := range dep.Stores {
			for _, dom := range st.Domains {
				if owner, dup := seen[dom]; dup {
					t.Fatalf("domain %q used by %s and %s", dom, owner, st.ID)
				}
				seen[dom] = st.ID
			}
		}
	}
}

func TestDeployDeterministic(t *testing.T) {
	w := simclock.StudyWindow()
	a := DeployAll(rng.New(9), Roster(w), 0.02)
	b := DeployAll(rng.New(9), Roster(w), 0.02)
	for i := range a {
		if len(a[i].Doorways) != len(b[i].Doorways) {
			t.Fatal("nondeterministic doorway count")
		}
		for j := range a[i].Doorways {
			if a[i].Doorways[j].Domain != b[i].Doorways[j].Domain {
				t.Fatal("nondeterministic doorway domains")
			}
		}
	}
}

func TestScriptedBigloveStore(t *testing.T) {
	w := simclock.StudyWindow()
	r := rng.New(3)
	spec := ByName(Roster(w))["BIGLOVE"]
	d := Deploy(r, spec, 0.01, map[string]bool{}) // tiny scale
	if len(d.Stores) == 0 {
		t.Fatal("no stores")
	}
	coco := d.Stores[0]
	if coco.Brand != "Chanel" {
		t.Fatalf("scripted coco store missing: %+v", coco)
	}
	// The paper observed the store on the coco*.com domains late in its
	// life (Jun-Aug 2014): three generated domains precede them, and a
	// generated tail follows.
	if coco.Domains[3] != "cocoviphandbags.com" ||
		coco.Domains[4] != "cocovipbags.com" || coco.Domains[5] != "cocolovebags.com" {
		t.Fatalf("coco rotation domains wrong: %v", coco.Domains)
	}
	if len(coco.Domains) < 8 {
		t.Fatalf("coco store needs lead and tail domains: %v", coco.Domains)
	}
}

func TestScriptedPhpStores(t *testing.T) {
	w := simclock.StudyWindow()
	r := rng.New(4)
	spec := ByName(Roster(w))["PHP?P="]
	d := Deploy(r, spec, 0.01, map[string]bool{})
	if len(d.Stores) < 4 {
		t.Fatalf("scripted php?p= stores missing, got %d", len(d.Stores))
	}
	labels := []string{d.Stores[0].Label(), d.Stores[1].Label(), d.Stores[2].Label(), d.Stores[3].Label()}
	want := []string{"abercrombie[uk]", "abercrombie[de]", "hollister[uk]", "woolrich[de]"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	if d.Stores[0].Campaign.ReactionDays != 1 {
		t.Fatal("php?p= must react to seizures within a day")
	}
}

func TestStoresHaveBackupDomains(t *testing.T) {
	w := simclock.StudyWindow()
	deps := DeployAll(rng.New(5), Roster(w), 0.02)
	for _, dep := range deps {
		for _, st := range dep.Stores {
			if len(st.Domains) < 2 {
				t.Fatalf("store %s has no backups: %v", st.ID, st.Domains)
			}
		}
	}
}

func TestCloakingModeString(t *testing.T) {
	if RedirectCloaking.String() != "redirect" || IframeCloaking.String() != "iframe" ||
		UserAgentCloaking.String() != "user-agent" {
		t.Fatal("cloaking mode names changed")
	}
}

func TestIframeCloakingPresent(t *testing.T) {
	// §3.1.1 found iframe cloaking pervasive; a healthy share of the
	// roster must use it.
	var n int
	for _, s := range roster(t) {
		if s.Cloaking == IframeCloaking {
			n++
		}
	}
	if n < 5 {
		t.Fatalf("only %d campaigns use iframe cloaking", n)
	}
}

func TestRotationConfigured(t *testing.T) {
	bl := ByName(roster(t))["BIGLOVE"]
	if bl.RotationDays == 0 {
		t.Fatal("BIGLOVE must rotate domains proactively")
	}
}
