package campaign

import (
	"fmt"

	"repro/internal/brands"
	"repro/internal/simclock"
)

// TailRoster generates the unclassified long tail of the ecosystem: SEO
// campaigns that poison results but were never hand-labeled, so the
// classifier has no class for them. In the paper these account for the
// ~42% of PSRs (and 89% of stores) left unattributed in Table 1. Tail
// campaigns use deliberately weak, stock-template signatures.
func TailRoster(w simclock.Window, n int) []*Spec {
	out := make([]*Spec, 0, n)
	days := w.Days()
	for i := 0; i < n; i++ {
		h := int(hash(fmt.Sprintf("tail/%d", i)))
		verts := tailVerticals(i)
		out = append(out, &Spec{
			Name:      fmt.Sprintf("TAIL.%02d", i),
			Doorways:  60 + h%520,
			Stores:    2 + h%14,
			Brands:    len(verts),
			PeakDays:  18 + (h/7)%80,
			Verticals: verts,
			Cloaking:  CloakingMode(h % 3),
			// Stock templates only: no kit markers for the model to latch
			// onto, which is what keeps these campaigns unclassifiable.
			Signature:    Signature{},
			PeakFrom:     simclock.Day((h / 13) % (days - 20)),
			ReactionDays: 6 + h%18,
		})
	}
	return out
}

// tailVerticals spreads the tail across all sixteen verticals so every
// vertical has an unclassified share.
func tailVerticals(i int) []brands.Vertical {
	all := brands.All()
	a := all[i%len(all)]
	b := all[(i*7+3)%len(all)]
	if a == b {
		return []brands.Vertical{a}
	}
	return []brands.Vertical{a, b}
}

// IsTail reports whether a spec belongs to the unlabeled tail.
func (s *Spec) IsTail() bool {
	return len(s.Name) > 5 && s.Name[:5] == "TAIL."
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h >> 1
}
