package campaign

import (
	"fmt"
	"strings"

	"repro/internal/brands"
	"repro/internal/rng"
)

// Doorway is one doorway domain operated by a campaign: a compromised
// legitimate site hosting injected, cloaked pages that rank for the
// campaign's targeted terms.
type Doorway struct {
	ID       string
	Domain   string
	Campaign *Spec
	// Vertical is the vertical this doorway is primarily SEO'ed for;
	// campaigns spread their fleet across all their verticals.
	Vertical brands.Vertical
}

// StoreDeployment is one storefront operated by a campaign, including the
// ordered list of domains it will use over its lifetime (the head is the
// launch domain; the tail are pre-registered backups used after seizures or
// proactive rotation).
type StoreDeployment struct {
	ID       string
	Campaign *Spec
	Vertical brands.Vertical
	Brand    string
	Locale   string // "" for the default market; "uk", "de", "jp", "it", ...
	Domains  []string
}

// Label renders the store the way the paper labels Figure 6's curves,
// e.g. "abercrombie[uk]".
func (sd *StoreDeployment) Label() string {
	b := strings.ToLower(strings.ReplaceAll(sd.Brand, " ", ""))
	if sd.Locale == "" {
		return b
	}
	return fmt.Sprintf("%s[%s]", b, sd.Locale)
}

// Deployment is the materialised infrastructure of one campaign.
type Deployment struct {
	Spec     *Spec
	Doorways []*Doorway
	Stores   []*StoreDeployment
}

// scaleCount scales a paper-scale count by scale, with a floor of 1.
func scaleCount(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

var (
	benignWords = []string{
		"garden", "bakery", "parish", "cycling", "alumni", "quartet",
		"pottery", "rotary", "archive", "birding", "chess", "violin",
		"kayak", "museum", "library", "orchard", "vintage", "harbor",
		"meadow", "summit", "prairie", "willow", "juniper", "copper",
	}
	benignSuffixes = []string{
		"club", "society", "blog", "studio", "press", "times", "journal",
		"collective", "workshop", "guild", "review", "notes",
	}
	storeAdjectives = []string{
		"cheap", "vip", "outlet", "best", "top", "luxe", "discount",
		"official", "super", "mall", "shop", "hot", "love", "coco",
	}
	storeNouns = []string{
		"bags", "handbags", "boots", "store", "shop", "sale", "online",
		"mart", "outlet", "deals", "zone", "market", "emporium",
	}
	tlds = []string{"com", "net", "org", "info", "biz", "us", "co.uk"}
)

// doorwayDomain synthesises a plausible compromised-site hostname.
func doorwayDomain(r *rng.Source, used map[string]bool) string {
	for {
		d := fmt.Sprintf("%s%s%d.%s",
			rng.Pick(r, benignWords), rng.Pick(r, benignSuffixes),
			r.Intn(1000), rng.Pick(r, tlds))
		if !used[d] {
			used[d] = true
			return d
		}
	}
}

// storeDomain synthesises a counterfeit-storefront hostname mentioning the
// brand.
func storeDomain(r *rng.Source, brand string, used map[string]bool) string {
	b := strings.ToLower(strings.ReplaceAll(brand, " ", ""))
	if len(b) > 12 {
		b = b[:12]
	}
	for {
		d := fmt.Sprintf("%s%s%s%d.%s",
			rng.Pick(r, storeAdjectives), b, rng.Pick(r, storeNouns),
			r.Intn(100), rng.Pick(r, tlds))
		if !used[d] {
			used[d] = true
			return d
		}
	}
}

// backupDomains is how many domains each store pre-registers (primary plus
// spares); the paper observes campaigns re-pointing doorways to backups
// repeatedly, some of which are then seized in turn.
const backupDomains = 6

// Deploy materialises one campaign's infrastructure at the given scale.
// used tracks domains already allocated across campaigns so the synthetic
// web has no collisions; pass a shared map when deploying a roster.
func Deploy(r *rng.Source, spec *Spec, scale float64, used map[string]bool) *Deployment {
	cr := r.Sub("deploy/" + spec.Key())
	d := &Deployment{Spec: spec}

	nDoorways := scaleCount(spec.Doorways, scale)
	for i := 0; i < nDoorways; i++ {
		d.Doorways = append(d.Doorways, &Doorway{
			ID:       fmt.Sprintf("%s-d%04d", spec.Key(), i),
			Domain:   doorwayDomain(cr, used),
			Campaign: spec,
			Vertical: spec.Verticals[i%len(spec.Verticals)],
		})
	}

	nStores := scaleCount(spec.Stores, scale)
	scripted := scriptedStores(spec)
	for i := 0; i < nStores || i < len(scripted); i++ {
		var sd *StoreDeployment
		if i < len(scripted) {
			sd = scripted[i]
		} else {
			v := spec.Verticals[i%len(spec.Verticals)]
			memberBrands := v.MemberBrands()
			sd = &StoreDeployment{
				Campaign: spec,
				Vertical: v,
				Brand:    memberBrands[i%len(memberBrands)],
				Locale:   pickLocale(cr, i),
			}
		}
		sd.ID = fmt.Sprintf("%s-s%03d", spec.Key(), i)
		sd.Campaign = spec
		if len(sd.Domains) == 0 {
			for j := 0; j < backupDomains; j++ {
				sd.Domains = append(sd.Domains, storeDomain(cr, sd.Brand, used))
			}
		} else {
			// Scripted domain lists name the domains the paper observed in
			// its case-study window; the store's earlier life runs on
			// generated domains, and a generated tail guards exhaustion.
			scriptedDoms := sd.Domains
			for _, dom := range scriptedDoms {
				used[dom] = true
			}
			lead := scriptedLead(spec)
			sd.Domains = nil
			for j := 0; j < lead; j++ {
				sd.Domains = append(sd.Domains, storeDomain(cr, sd.Brand, used))
			}
			sd.Domains = append(sd.Domains, scriptedDoms...)
			for len(sd.Domains) < lead+len(scriptedDoms)+2 {
				sd.Domains = append(sd.Domains, storeDomain(cr, sd.Brand, used))
			}
		}
		d.Stores = append(d.Stores, sd)
	}
	return d
}

// pickLocale localises roughly a fifth of stores for international markets,
// mirroring the paper's observation of UK/DE/JP variants.
func pickLocale(r *rng.Source, i int) string {
	if i%5 != 4 {
		return ""
	}
	return rng.Pick(r, []string{"uk", "de", "jp", "it", "fr", "au"})
}

// scriptedLead is how many generated domains a scripted store burns before
// reaching the domains the paper observed. The BIGLOVE coco*.com rotation
// was watched June-August 2014, late in the store's life.
func scriptedLead(spec *Spec) int {
	if spec.Name == "BIGLOVE" {
		return 3
	}
	return 0
}

// scriptedStores returns the stores whose identities the paper pins down,
// so the case-study experiments can reference them regardless of scale.
func scriptedStores(spec *Spec) []*StoreDeployment {
	switch spec.Name {
	case "BIGLOVE":
		// §5.2.3: the counterfeit Chanel store rotating across three
		// coco*.com domains, observed within Louis Vuitton search results.
		return []*StoreDeployment{{
			Vertical: brands.LouisVuitton,
			Brand:    "Chanel",
			Domains: []string{
				"cocoviphandbags.com", "cocovipbags.com", "cocolovebags.com",
			},
		}}
	case "PHP?P=":
		// Figure 6: four international stores; the Abercrombie UK domain
		// is seized on 2014-02-09 and doorways re-point within a day.
		return []*StoreDeployment{
			{Vertical: brands.Abercrombie, Brand: "Abercrombie", Locale: "uk"},
			{Vertical: brands.Abercrombie, Brand: "Abercrombie", Locale: "de"},
			{Vertical: brands.Abercrombie, Brand: "Hollister", Locale: "uk"},
			{Vertical: brands.Woolrich, Brand: "Woolrich", Locale: "de"},
		}
	}
	return nil
}

// DeployAll materialises the whole roster with a shared domain namespace.
func DeployAll(r *rng.Source, specs []*Spec, scale float64) []*Deployment {
	used := make(map[string]bool)
	out := make([]*Deployment, 0, len(specs))
	for _, s := range specs {
		out = append(out, Deploy(r, s, scale, used))
	}
	return out
}
