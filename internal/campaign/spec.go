// Package campaign encodes the SEO campaign ecosystem: the roster of 52
// distinct campaigns the paper identifies (Table 2), each campaign's
// HTML/infrastructure signature, the verticals it targets, its cloaking
// technique, its SEO scheduling (peak ranges), and its operational
// behaviour under intervention (backup domains, rotation, reaction time).
//
// The roster is scenario data: the paper's ground truth, used both to drive
// the synthetic web and as the labels the classifier must recover.
package campaign

import (
	"fmt"
	"time"

	"repro/internal/brands"
	"repro/internal/simclock"
)

// CloakingMode is the technique a campaign's doorways use to show search
// engines different content than users (§3.1.1).
type CloakingMode int

const (
	// RedirectCloaking serves crawlers a keyword-stuffed page while users
	// arriving from a search results page are redirected (HTTP or JS) to
	// the store.
	RedirectCloaking CloakingMode = iota
	// IframeCloaking serves the same document to everyone; client-side
	// JavaScript loads the store in a full-viewport iframe, so only a
	// rendering crawler observes the storefront.
	IframeCloaking
	// UserAgentCloaking keys entirely on the crawler User-Agent and
	// redirects all other visitors regardless of referrer.
	UserAgentCloaking
)

// String implements fmt.Stringer.
func (m CloakingMode) String() string {
	switch m {
	case RedirectCloaking:
		return "redirect"
	case IframeCloaking:
		return "iframe"
	case UserAgentCloaking:
		return "user-agent"
	}
	return fmt.Sprintf("CloakingMode(%d)", int(m))
}

// Signature is the set of idiosyncratic markers a campaign's in-house
// templates leave in generated HTML — the signal the classifier learns.
// Every field is optional; a campaign typically exhibits two to four.
type Signature struct {
	URLToken       string // token in doorway URL paths (e.g. "php?p=")
	MetaMarker     string // a meta tag name=content marker (e.g. msvalidate.01)
	AnalyticsID    string // web-analytics account id embedded in pages
	TemplatePrefix string // CSS class prefix used by store templates
	ChatWidget     string // live-chat widget include ("livezilla", ...)
	CommentMarker  string // distinctive HTML comment left by the kit
	Shortener      string // link-shortener domain used in backlinks
	ScriptLibrary  string // bundled JS library name (e.g. robertpenner tween)
}

// Spec is the static scenario description of one campaign.
type Spec struct {
	Name      string
	Doorways  int // doorway domains operated (Table 2)
	Stores    int // storefronts monetising its traffic (Table 2)
	Brands    int // brands whose trademarks it abuses (Table 2)
	PeakDays  int // duration of its peak-poisoning period (Table 2)
	Verticals []brands.Vertical
	Cloaking  CloakingMode
	Signature Signature

	// ActiveFrom/ActiveTo bound the campaign's SEO activity in study days;
	// ActiveTo == 0 means "through the end of the window".
	ActiveFrom simclock.Day
	ActiveTo   simclock.Day
	// PeakFrom positions the campaign's peak window (PeakDays long).
	PeakFrom simclock.Day
	// DemotedOn, if non-zero, is the day the search engine demoted the
	// campaign's doorways en masse (the KEY event of §5.2.1).
	DemotedOn simclock.Day
	// Top10SuppressedFrom/To mark a period when the campaign holds
	// top-100 positions but almost none in the top 10 (MOONKIS, §5.2.1).
	Top10SuppressedFrom simclock.Day
	Top10SuppressedTo   simclock.Day
	// ReactionDays is how long the campaign takes to re-point doorways at
	// a backup store domain after a seizure (§5.3.2; PHP?P= reacted in 1).
	ReactionDays int
	// RotationDays, if non-zero, proactively rotates store domains on this
	// period (the BIGLOVE coco*.com behaviour of §5.2.3).
	RotationDays int
}

// Key returns the campaign's stable lowercase identifier.
func (s *Spec) Key() string { return keyOf(s.Name) }

func keyOf(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c-'A'+'a')
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			out = append(out, c)
		case c == '?' || c == '=':
			out = append(out, c)
		case c == '.':
			out = append(out, '.')
		}
	}
	return string(out)
}

// day converts a civil date into a study-window day index, tolerating dates
// outside the window (campaigns can predate the crawl).
func day(w simclock.Window, y int, m time.Month, d int) simclock.Day {
	return w.DayOf(time.Date(y, m, d, 0, 0, 0, 0, time.UTC))
}

// Roster returns the 52-campaign scenario for the given study window.
// The 38 campaigns of Table 2 (25+ doorways) appear with the paper's
// counts; 14 minor campaigns round out the 52 the classifier identifies.
func Roster(w simclock.Window) []*Spec {
	B := func(vs ...brands.Vertical) []brands.Vertical { return vs }
	all13 := []brands.Vertical{ // every vertical except the starred three
		brands.Abercrombie, brands.Adidas, brands.BeatsByDre,
		brands.Clarisonic, brands.Golf, brands.IsabelMarant,
		brands.Moncler, brands.Nike, brands.RalphLauren,
		brands.Sunglasses, brands.Tiffany, brands.Watches, brands.Woolrich,
	}
	specs := []*Spec{
		{
			Name: "KEY", Doorways: 1980, Stores: 97, Brands: 28, PeakDays: 65,
			Verticals: all13, Cloaking: RedirectCloaking,
			Signature: Signature{URLToken: "key=", TemplatePrefix: "ky",
				CommentMarker: "kit:key-v3", AnalyticsID: "cnzz-3301127"},
			PeakFrom: 0, DemotedOn: day(w, 2013, time.December, 15),
			ReactionDays: 9,
		},
		{
			Name: "NEWSORG", Doorways: 926, Stores: 7, Brands: 5, PeakDays: 24,
			Verticals: B(brands.BeatsByDre, brands.Moncler, brands.Nike),
			Cloaking:  RedirectCloaking,
			Signature: Signature{URLToken: "news.php", CommentMarker: "newsorg",
				TemplatePrefix: "nws"},
			PeakFrom: day(w, 2013, time.November, 23), ReactionDays: 12,
		},
		{
			Name: "MOONKIS", Doorways: 95, Stores: 7, Brands: 4, PeakDays: 99,
			Verticals: B(brands.BeatsByDre, brands.Adidas),
			Cloaking:  IframeCloaking,
			Signature: Signature{TemplatePrefix: "mk", AnalyticsID: "51la-880204",
				CommentMarker: "moonkis"},
			ActiveFrom:          day(w, 2014, time.January, 1),
			PeakFrom:            day(w, 2014, time.January, 5),
			Top10SuppressedFrom: day(w, 2014, time.March, 1),
			Top10SuppressedTo:   day(w, 2014, time.March, 28),
			ReactionDays:        8,
		},
		{
			Name: "JSUS", Doorways: 439, Stores: 59, Brands: 27, PeakDays: 68,
			Verticals: B(brands.BeatsByDre, brands.Uggs, brands.Moncler,
				brands.Nike, brands.Sunglasses, brands.Watches),
			Cloaking: RedirectCloaking,
			Signature: Signature{URLToken: "jsus", ScriptLibrary: "jsus.js",
				TemplatePrefix: "js-shop"},
			PeakFrom: day(w, 2013, time.December, 10), ReactionDays: 10,
		},
		{
			Name: "PAULSIMON", Doorways: 328, Stores: 33, Brands: 12, PeakDays: 128,
			Verticals: B(brands.BeatsByDre, brands.Uggs, brands.Adidas,
				brands.Nike),
			Cloaking: RedirectCloaking,
			Signature: Signature{CommentMarker: "paulsimon", TemplatePrefix: "ps",
				AnalyticsID: "cnzz-5512908"},
			PeakFrom: day(w, 2014, time.January, 20), ReactionDays: 14,
		},
		{
			Name: "MSVALIDATE", Doorways: 530, Stores: 98, Brands: 6, PeakDays: 52,
			Verticals: B(brands.LouisVuitton, brands.Uggs, brands.Moncler),
			Cloaking:  IframeCloaking,
			Signature: Signature{MetaMarker: "msvalidate.01",
				TemplatePrefix: "msv", AnalyticsID: "cnzz-1180522"},
			PeakFrom: day(w, 2014, time.February, 10), ReactionDays: 7,
		},
		{
			Name: "BIGLOVE", Doorways: 767, Stores: 92, Brands: 30, PeakDays: 92,
			Verticals: B(brands.LouisVuitton, brands.Uggs, brands.IsabelMarant,
				brands.Moncler, brands.Tiffany, brands.Watches),
			Cloaking: RedirectCloaking,
			Signature: Signature{CommentMarker: "biglove-kit",
				TemplatePrefix: "bl", AnalyticsID: "51la-201877"},
			// Peak mid-May through mid-August: the Figure 5 coco*.com case
			// study plays out in this window, with proactive 45-day domain
			// rotation staying ahead of the July seizure sweep.
			PeakFrom: day(w, 2014, time.May, 15), ReactionDays: 5,
			RotationDays: 45,
		},
		{
			Name: "MOKLELE", Doorways: 982, Stores: 15, Brands: 4, PeakDays: 36,
			Verticals: B(brands.LouisVuitton, brands.Moncler),
			Cloaking:  RedirectCloaking,
			Signature: Signature{URLToken: "moklele", TemplatePrefix: "mok"},
			PeakFrom:  day(w, 2013, time.December, 1), ReactionDays: 15,
		},
		{
			Name: "NORTHFACEC", Doorways: 432, Stores: 2, Brands: 1, PeakDays: 60,
			Verticals: B(brands.LouisVuitton),
			Cloaking:  UserAgentCloaking,
			Signature: Signature{URLToken: "northfacec", TemplatePrefix: "nfc"},
			PeakFrom:  day(w, 2014, time.January, 10), ReactionDays: 20,
		},
		{
			Name: "LV.0", Doorways: 42, Stores: 3, Brands: 1, PeakDays: 62,
			Verticals: B(brands.LouisVuitton),
			Cloaking:  IframeCloaking,
			Signature: Signature{TemplatePrefix: "lvz", CommentMarker: "lv0"},
			PeakFrom:  day(w, 2014, time.April, 1), ReactionDays: 12,
		},
		{
			Name: "LV.1", Doorways: 270, Stores: 12, Brands: 9, PeakDays: 90,
			Verticals: B(brands.LouisVuitton, brands.Sunglasses),
			Cloaking:  RedirectCloaking,
			Signature: Signature{TemplatePrefix: "lv1", AnalyticsID: "cnzz-7620011"},
			PeakFrom:  day(w, 2014, time.February, 15), ReactionDays: 11,
		},
		{
			Name: "UGGS.0", Doorways: 428, Stores: 6, Brands: 5, PeakDays: 30,
			Verticals: B(brands.Uggs),
			Cloaking:  RedirectCloaking,
			Signature: Signature{URLToken: "uggs0", TemplatePrefix: "ug0"},
			PeakFrom:  day(w, 2013, time.November, 25), ReactionDays: 13,
		},
		{
			Name: "PHP?P=", Doorways: 255, Stores: 55, Brands: 24, PeakDays: 96,
			Verticals: B(brands.Abercrombie, brands.Woolrich, brands.Uggs,
				brands.RalphLauren, brands.Adidas),
			Cloaking: RedirectCloaking,
			Signature: Signature{URLToken: "php?p=", TemplatePrefix: "pp",
				AnalyticsID: "51la-114009"},
			PeakFrom: day(w, 2013, time.December, 20), ReactionDays: 1,
		},
		{
			Name: "VERA", Doorways: 155, Stores: 38, Brands: 12, PeakDays: 156,
			Verticals: B(brands.IsabelMarant, brands.Moncler, brands.Woolrich,
				brands.Watches),
			Cloaking: IframeCloaking,
			Signature: Signature{CommentMarker: "vera-theme",
				TemplatePrefix: "vera", AnalyticsID: "cnzz-2288401"},
			PeakFrom: day(w, 2014, time.January, 1), ReactionDays: 9,
		},
		{
			Name: "BITLY", Doorways: 190, Stores: 40, Brands: 15, PeakDays: 89,
			Verticals: B(brands.LouisVuitton, brands.Nike, brands.Sunglasses),
			Cloaking:  RedirectCloaking,
			Signature: Signature{Shortener: "bit.ly", TemplatePrefix: "btl"},
			PeakFrom:  day(w, 2014, time.March, 10), ReactionDays: 10,
		},
		{
			Name: "ADFLYID", Doorways: 100, Stores: 18, Brands: 4, PeakDays: 66,
			Verticals: B(brands.Nike, brands.Adidas),
			Cloaking:  RedirectCloaking,
			Signature: Signature{Shortener: "adf.ly", TemplatePrefix: "afy"},
			PeakFrom:  day(w, 2014, time.February, 1), ReactionDays: 16,
		},
		{
			Name: "G2GMART", Doorways: 916, Stores: 28, Brands: 3, PeakDays: 53,
			Verticals: B(brands.LouisVuitton, brands.Moncler, brands.IsabelMarant),
			Cloaking:  UserAgentCloaking,
			Signature: Signature{URLToken: "g2gmart", TemplatePrefix: "g2g"},
			PeakFrom:  day(w, 2014, time.April, 10), ReactionDays: 18,
		},
		{
			Name: "HACKEDLIVEZILLA", Doorways: 43, Stores: 49, Brands: 9, PeakDays: 56,
			Verticals: B(brands.Uggs, brands.Moncler, brands.Woolrich),
			Cloaking:  RedirectCloaking,
			Signature: Signature{ChatWidget: "livezilla-hacked",
				TemplatePrefix: "hlz"},
			PeakFrom: day(w, 2014, time.January, 15), ReactionDays: 6,
		},
		{
			Name: "LIVEZILLA", Doorways: 420, Stores: 33, Brands: 16, PeakDays: 70,
			Verticals: B(brands.Uggs, brands.IsabelMarant, brands.Tiffany,
				brands.Watches),
			Cloaking:  RedirectCloaking,
			Signature: Signature{ChatWidget: "livezilla", TemplatePrefix: "lvz2"},
			PeakFrom:  day(w, 2014, time.February, 20), ReactionDays: 12,
		},
		{
			Name: "IFRAMEINJS", Doorways: 200, Stores: 2, Brands: 1, PeakDays: 39,
			Verticals: B(brands.Moncler),
			Cloaking:  IframeCloaking,
			Signature: Signature{ScriptLibrary: "frame-loader.js",
				TemplatePrefix: "ifj"},
			PeakFrom: day(w, 2014, time.March, 20), ReactionDays: 14,
		},
		{
			Name: "JAROKRAFKA", Doorways: 266, Stores: 55, Brands: 3, PeakDays: 87,
			Verticals: B(brands.LouisVuitton, brands.IsabelMarant),
			Cloaking:  RedirectCloaking,
			Signature: Signature{CommentMarker: "jarokrafka",
				TemplatePrefix: "jk", AnalyticsID: "51la-930211"},
			PeakFrom: day(w, 2014, time.January, 25), ReactionDays: 8,
		},
		{
			Name: "M10", Doorways: 581, Stores: 35, Brands: 8, PeakDays: 30,
			Verticals: B(brands.LouisVuitton, brands.Uggs, brands.Nike),
			Cloaking:  RedirectCloaking,
			Signature: Signature{URLToken: "m10", TemplatePrefix: "m10"},
			PeakFrom:  day(w, 2014, time.May, 1), ReactionDays: 13,
		},
		{
			Name: "NYY", Doorways: 29, Stores: 14, Brands: 5, PeakDays: 40,
			Verticals: B(brands.Uggs, brands.RalphLauren),
			Cloaking:  RedirectCloaking,
			Signature: Signature{TemplatePrefix: "nyy", CommentMarker: "nyy-kit"},
			PeakFrom:  day(w, 2014, time.April, 20), ReactionDays: 17,
		},
		{
			Name: "PAGERAND", Doorways: 122, Stores: 7, Brands: 4, PeakDays: 43,
			Verticals: B(brands.Uggs, brands.Golf),
			Cloaking:  RedirectCloaking,
			Signature: Signature{URLToken: "pagerand", TemplatePrefix: "pgr"},
			PeakFrom:  day(w, 2014, time.February, 5), ReactionDays: 15,
		},
		{
			Name: "PARTNER", Doorways: 62, Stores: 9, Brands: 5, PeakDays: 33,
			Verticals: B(brands.Abercrombie, brands.Adidas),
			Cloaking:  RedirectCloaking,
			Signature: Signature{URLToken: "partner", TemplatePrefix: "ptn"},
			PeakFrom:  day(w, 2014, time.March, 15), ReactionDays: 19,
		},
		{
			Name: "ROBERTPENNER", Doorways: 56, Stores: 7, Brands: 12, PeakDays: 50,
			Verticals: B(brands.Uggs, brands.Tiffany, brands.Watches),
			Cloaking:  IframeCloaking,
			Signature: Signature{ScriptLibrary: "robertpenner-tween.js",
				TemplatePrefix: "rp"},
			PeakFrom: day(w, 2014, time.January, 8), ReactionDays: 11,
		},
		{
			Name: "SCHEMA.ORG", Doorways: 46, Stores: 17, Brands: 7, PeakDays: 54,
			Verticals: B(brands.Uggs, brands.Sunglasses, brands.Clarisonic),
			Cloaking:  RedirectCloaking,
			Signature: Signature{MetaMarker: "schema.org/Offer",
				TemplatePrefix: "sch"},
			PeakFrom: day(w, 2014, time.February, 25), ReactionDays: 9,
		},
		{
			Name: "SNOWFLASH", Doorways: 271, Stores: 14, Brands: 1, PeakDays: 48,
			Verticals: B(brands.Moncler),
			Cloaking:  RedirectCloaking,
			Signature: Signature{CommentMarker: "snowflash", TemplatePrefix: "snf"},
			PeakFrom:  day(w, 2013, time.November, 20), ReactionDays: 10,
		},
		{
			Name: "STYLESHEET", Doorways: 222, Stores: 9, Brands: 6, PeakDays: 63,
			Verticals: B(brands.Uggs, brands.IsabelMarant),
			Cloaking:  RedirectCloaking,
			Signature: Signature{URLToken: "stylesheet.php", TemplatePrefix: "sty"},
			PeakFrom:  day(w, 2014, time.March, 5), ReactionDays: 12,
		},
		{
			Name: "TIFFANY.0", Doorways: 26, Stores: 1, Brands: 1, PeakDays: 4,
			Verticals: B(brands.Tiffany),
			Cloaking:  RedirectCloaking,
			Signature: Signature{TemplatePrefix: "tf0", CommentMarker: "tiffany0"},
			PeakFrom:  day(w, 2014, time.May, 10), ReactionDays: 21,
		},
		{
			Name: "171760", Doorways: 30, Stores: 14, Brands: 7, PeakDays: 44,
			Verticals: B(brands.BeatsByDre, brands.Golf),
			Cloaking:  RedirectCloaking,
			Signature: Signature{AnalyticsID: "cnzz-171760", TemplatePrefix: "c17"},
			PeakFrom:  day(w, 2014, time.April, 5), ReactionDays: 14,
		},
		{
			Name: "CHANEL.1", Doorways: 50, Stores: 10, Brands: 4, PeakDays: 24,
			Verticals: B(brands.LouisVuitton, brands.Watches),
			Cloaking:  RedirectCloaking,
			Signature: Signature{TemplatePrefix: "ch1", CommentMarker: "chanel1"},
			PeakFrom:  day(w, 2014, time.June, 1), ReactionDays: 16,
		},
		{
			Name: "CAMPAIGN.02", Doorways: 26, Stores: 4, Brands: 3, PeakDays: 61,
			Verticals: B(brands.Uggs),
			Cloaking:  RedirectCloaking,
			Signature: Signature{TemplatePrefix: "c02", CommentMarker: "c02kit"},
			PeakFrom:  day(w, 2014, time.January, 12), ReactionDays: 18,
		},
		{
			Name: "CAMPAIGN.10", Doorways: 94, Stores: 18, Brands: 5, PeakDays: 99,
			Verticals: B(brands.Uggs, brands.Woolrich),
			Cloaking:  IframeCloaking,
			Signature: Signature{TemplatePrefix: "c10", AnalyticsID: "51la-550110"},
			PeakFrom:  day(w, 2014, time.February, 12), ReactionDays: 13,
		},
		{
			Name: "CAMPAIGN.12", Doorways: 118, Stores: 5, Brands: 1, PeakDays: 59,
			Verticals: B(brands.LouisVuitton),
			Cloaking:  RedirectCloaking,
			Signature: Signature{TemplatePrefix: "c12", CommentMarker: "c12kit"},
			PeakFrom:  day(w, 2014, time.March, 25), ReactionDays: 15,
		},
		{
			Name: "CAMPAIGN.14", Doorways: 39, Stores: 8, Brands: 2, PeakDays: 67,
			Verticals: B(brands.Uggs),
			Cloaking:  RedirectCloaking,
			Signature: Signature{TemplatePrefix: "c14", AnalyticsID: "cnzz-4411449"},
			PeakFrom:  day(w, 2014, time.April, 15), ReactionDays: 12,
		},
		{
			Name: "CAMPAIGN.15", Doorways: 364, Stores: 10, Brands: 10, PeakDays: 8,
			Verticals: B(brands.Moncler, brands.Nike, brands.Adidas),
			Cloaking:  RedirectCloaking,
			Signature: Signature{TemplatePrefix: "c15", CommentMarker: "c15kit"},
			PeakFrom:  day(w, 2013, time.December, 5), ReactionDays: 20,
		},
		{
			Name: "CAMPAIGN.17", Doorways: 61, Stores: 8, Brands: 3, PeakDays: 44,
			Verticals: B(brands.Uggs, brands.EdHardy),
			Cloaking:  RedirectCloaking,
			Signature: Signature{TemplatePrefix: "c17x", AnalyticsID: "51la-778230"},
			PeakFrom:  day(w, 2014, time.May, 20), ReactionDays: 14,
		},
	}
	// Fourteen minor campaigns (below Table 2's 25-doorway cutoff) complete
	// the 52 the classifier distinguishes.
	minorVerticals := [][]brands.Vertical{
		B(brands.EdHardy), B(brands.EdHardy, brands.Golf), B(brands.Golf),
		B(brands.Sunglasses), B(brands.Watches), B(brands.EdHardy),
		B(brands.Clarisonic), B(brands.IsabelMarant), B(brands.Woolrich),
		B(brands.EdHardy, brands.Sunglasses), B(brands.Golf, brands.Watches),
		B(brands.RalphLauren), B(brands.Woolrich, brands.EdHardy),
		B(brands.Sunglasses, brands.Watches),
	}
	for i, vs := range minorVerticals {
		n := i + 1
		specs = append(specs, &Spec{
			Name:     fmt.Sprintf("MINOR.%02d", n),
			Doorways: 8 + (n*5)%17, Stores: 1 + n%4, Brands: len(vs),
			PeakDays:  20 + (n*13)%60,
			Verticals: vs,
			Cloaking:  CloakingMode(n % 3),
			Signature: Signature{TemplatePrefix: fmt.Sprintf("mn%02d", n),
				CommentMarker: fmt.Sprintf("minor%02d", n)},
			PeakFrom:     simclock.Day(10 + (n * 37 % 200)),
			ReactionDays: 10 + n%12,
		})
	}
	return specs
}

// ByName indexes a roster by campaign name.
func ByName(specs []*Spec) map[string]*Spec {
	m := make(map[string]*Spec, len(specs))
	for _, s := range specs {
		m[s.Name] = s
	}
	return m
}
