package intervention

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/store"
)

// SeizureEngine executes the firms' case schedules against the live store
// fleet and drives the campaigns' reactions. The world supplies hooks so
// the engine stays decoupled from the web and the search engine.
type SeizureEngine struct {
	r      *rng.Source
	study  simclock.Window
	firms  []*Firm
	stores []*store.Store
	// FirstVisible maps store ID to the day its current domain first became
	// visible in poisoned search results (set by the driver as it crawls);
	// used for the firms' age eligibility.
	FirstVisible map[string]simclock.Day

	// OnSeize is called when a live domain is seized (serve the notice
	// page, invalidate crawler caches, ...).
	OnSeize func(domain string, c *CourtCase)
	// OnReact is called when a campaign re-points a store to a new domain.
	OnReact func(st *store.Store, newDomain string, day simclock.Day)

	schedule map[simclock.Day][]*scheduledCase
	cases    []*CourtCase
	pending  []reaction
	seq      map[string]int
}

type scheduledCase struct {
	firm  *Firm
	brand string
}

type reaction struct {
	day simclock.Day
	st  *store.Store
}

// NewSeizureEngine lays out every firm's case schedule over the seizure
// window. Historical (pre-study) cases are materialised immediately with
// their bulk domain lists; in-study cases fire via Tick.
func NewSeizureEngine(r *rng.Source, study simclock.Window, stores []*store.Store) *SeizureEngine {
	return NewSeizureEngineWithFirms(r, study, stores, Firms())
}

// NewSeizureEngineWithFirms is NewSeizureEngine with an explicit firm
// roster (used by the reactive-seizure ablation).
func NewSeizureEngineWithFirms(r *rng.Source, study simclock.Window, stores []*store.Store, firms []*Firm) *SeizureEngine {
	e := &SeizureEngine{
		r:            r.Sub("seizure"),
		study:        study,
		firms:        firms,
		stores:       stores,
		FirstVisible: make(map[string]simclock.Day),
		schedule:     make(map[simclock.Day][]*scheduledCase),
		seq:          make(map[string]int),
	}
	seizureWin := simclock.SeizureWindow()
	for _, f := range e.firms {
		brandsOf := make([]string, 0, len(f.Clients))
		for b := range f.Clients {
			brandsOf = append(brandsOf, b)
		}
		sort.Strings(brandsOf)
		for _, b := range brandsOf {
			for _, d := range f.CaseSchedule(b, seizureWin, study) {
				if d < 0 {
					// Pre-study case: record it with filler domains only
					// (buildCase appends it to the case log).
					e.buildCase(f, b, d, nil)
					continue
				}
				e.schedule[d] = append(e.schedule[d], &scheduledCase{firm: f, brand: b})
			}
		}
	}
	return e
}

// seizedVictim pairs a store with the domain a case seizes from it.
type seizedVictim struct {
	st  *store.Store
	dom string
}

// buildCase materialises a court case from stores seized at their current
// domains (historical cases pass none).
func (e *SeizureEngine) buildCase(f *Firm, brand string, day simclock.Day, seized []*store.Store) *CourtCase {
	victims := make([]seizedVictim, 0, len(seized))
	for _, st := range seized {
		victims = append(victims, seizedVictim{st: st, dom: st.CurrentDomain(day)})
	}
	return e.buildCaseDomains(f, brand, day, victims)
}

// buildCaseDomains materialises a court case: observed store domains plus
// the bulk tail of domains outside our crawler's view.
func (e *SeizureEngine) buildCaseDomains(f *Firm, brand string, day simclock.Day, victims []seizedVictim) *CourtCase {
	e.seq[f.Key]++
	year := e.study.Date(day).Year()
	c := &CourtCase{
		ID:    NewCaseID(f.Key, year, e.seq[f.Key]),
		Firm:  f,
		Brand: brand,
		Day:   day,
	}
	for _, v := range victims {
		c.Domains = append(c.Domains, v.dom)
		c.ObservedStoreIDs = append(c.ObservedStoreIDs, v.st.ID())
	}
	// Bulk tail: domains seized through the same case that never appeared
	// in our crawled results (the paper's court documents list hundreds
	// per filing).
	tail := f.DomainsPerCase - len(c.Domains) + e.r.Intn(f.DomainsPerCase/3+1) - f.DomainsPerCase/6
	for i := 0; i < tail; i++ {
		c.Domains = append(c.Domains, fmt.Sprintf("seized-%s-%s-%d.com",
			f.Key, sanitize(brand), len(e.cases)*1000+i))
	}
	e.cases = append(e.cases, c)
	return c
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			out = append(out, c)
		} else if c >= 'A' && c <= 'Z' {
			out = append(out, c-'A'+'a')
		}
	}
	return string(out)
}

// sellsBrand reports whether a store monetises the given brand (exact brand
// match, or the brand belongs to the store's vertical for composite
// sweeps).
func sellsBrand(st *store.Store, brand string) bool {
	if st.Dep.Brand == brand {
		return true
	}
	for _, b := range st.Dep.Vertical.MemberBrands() {
		if b == brand {
			return true
		}
	}
	return false
}

// Tick fires the day's scheduled cases and processes due campaign
// reactions. It returns the cases filed today.
func (e *SeizureEngine) Tick(day simclock.Day) []*CourtCase {
	var filed []*CourtCase
	for _, sc := range e.schedule[day] {
		// The firm's evidence is as old as its investigation: the seizure
		// targets the domain each store was on back then, which a
		// proactively rotating campaign may already have abandoned.
		observedAt := day - simclock.Day(sc.firm.InvestigationLagDays)
		if observedAt < 0 {
			observedAt = 0
		}
		var victims []seizedVictim
		for _, st := range e.stores {
			if !sellsBrand(st, sc.brand) {
				continue
			}
			dom := st.CurrentDomain(observedAt)
			if _, gone := st.SeizedOn(dom); gone {
				continue
			}
			first, seen := e.FirstVisible[st.ID()]
			if !seen || int(day-first) < sc.firm.MinStoreAgeDays {
				continue
			}
			victims = append(victims, seizedVictim{st: st, dom: dom})
		}
		// A filing names a bounded set of defendant stores; prioritise the
		// longest-visible ones (the investigation's oldest evidence).
		if sc.firm.MaxStoresPerCase > 0 && len(victims) > sc.firm.MaxStoresPerCase {
			sort.Slice(victims, func(i, j int) bool {
				fi := e.FirstVisible[victims[i].st.ID()]
				fj := e.FirstVisible[victims[j].st.ID()]
				if fi != fj {
					return fi < fj
				}
				return victims[i].st.ID() < victims[j].st.ID()
			})
			victims = victims[:sc.firm.MaxStoresPerCase]
		}
		c := e.buildCaseDomains(sc.firm, sc.brand, day, victims)
		filed = append(filed, c)
		for _, v := range victims {
			v.st.MarkSeized(v.dom, day)
			if e.OnSeize != nil {
				e.OnSeize(v.dom, c)
			}
			// Only a seizure that hit the store's live domain hurts it and
			// triggers a reaction; a stale domain was already abandoned.
			if v.st.CurrentDomain(day) == v.dom {
				react := day + simclock.Day(v.st.Dep.Campaign.ReactionDays)
				e.pending = append(e.pending, reaction{day: react, st: v.st})
			}
		}
	}
	// Process due reactions.
	var rest []reaction
	for _, p := range e.pending {
		if p.day > day {
			rest = append(rest, p)
			continue
		}
		if newDom := p.st.MoveToNextDomain(day); newDom != "" {
			// The store starts a fresh observation clock on its new domain.
			e.FirstVisible[p.st.ID()] = day
			if e.OnReact != nil {
				e.OnReact(p.st, newDom, day)
			}
		}
	}
	e.pending = rest
	return filed
}

// Cases returns every case filed so far (historical first).
func (e *SeizureEngine) Cases() []*CourtCase { return e.cases }

// CasesByFirm groups filed cases per firm key.
func (e *SeizureEngine) CasesByFirm() map[string][]*CourtCase {
	out := make(map[string][]*CourtCase)
	for _, c := range e.cases {
		out[c.Firm.Key] = append(out[c.Firm.Key], c)
	}
	return out
}

// MarkVisible records the first day a store's current domain was observed
// in poisoned search results, arming the firms' age eligibility. Calling it
// again does not reset the clock.
func (e *SeizureEngine) MarkVisible(storeID string, day simclock.Day) {
	if _, seen := e.FirstVisible[storeID]; !seen {
		e.FirstVisible[storeID] = day
	}
}
