package intervention

import (
	"fmt"
	"sort"

	"repro/internal/simclock"
)

// This file exports and restores the interveners' mutable state for durable
// checkpoints. The firm roster and case schedule are rebuilt
// deterministically by the constructors; the RNG position, filed cases,
// pending reactions and the labeler's observation counters are what a run
// mutates and what is captured here.

// DomainDay pairs a domain with a day, for serialized day-keyed maps.
type DomainDay struct {
	Domain string
	Day    simclock.Day
}

// DomainCount pairs a domain with an observation tally.
type DomainCount struct {
	Domain string
	Count  int
}

// LabelerState is the labeler's complete mutable state.
type LabelerState struct {
	FirstSeen []DomainDay // all sorted by Domain
	RootSeen  []DomainDay
	ArmedOn   []DomainDay
	ObsTotal  []DomainCount
	ObsRoot   []DomainCount
	Demoted   []string
}

func sortedDomainDays(m map[string]simclock.Day) []DomainDay {
	out := make([]DomainDay, 0, len(m))
	for dom, d := range m {
		out = append(out, DomainDay{Domain: dom, Day: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

func sortedDomainCounts(m map[string]int) []DomainCount {
	out := make([]DomainCount, 0, len(m))
	for dom, n := range m {
		out = append(out, DomainCount{Domain: dom, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// ExportState captures the labeler's mutable state.
func (l *Labeler) ExportState() LabelerState {
	st := LabelerState{
		FirstSeen: sortedDomainDays(l.firstSeen),
		RootSeen:  sortedDomainDays(l.rootSeen),
		ArmedOn:   sortedDomainDays(l.armedOn),
		ObsTotal:  sortedDomainCounts(l.obsTotal),
		ObsRoot:   sortedDomainCounts(l.obsRoot),
	}
	for dom := range l.demoted {
		st.Demoted = append(st.Demoted, dom)
	}
	sort.Strings(st.Demoted)
	return st
}

// RestoreState overwrites the labeler's mutable state. The policy knobs
// (LabelProb, delays, mass-event shares) are configuration, not state, and
// are left untouched.
func (l *Labeler) RestoreState(st LabelerState) {
	l.firstSeen = make(map[string]simclock.Day, len(st.FirstSeen))
	for _, dd := range st.FirstSeen {
		l.firstSeen[dd.Domain] = dd.Day
	}
	l.rootSeen = make(map[string]simclock.Day, len(st.RootSeen))
	for _, dd := range st.RootSeen {
		l.rootSeen[dd.Domain] = dd.Day
	}
	l.armedOn = make(map[string]simclock.Day, len(st.ArmedOn))
	for _, dd := range st.ArmedOn {
		l.armedOn[dd.Domain] = dd.Day
	}
	l.obsTotal = make(map[string]int, len(st.ObsTotal))
	for _, dc := range st.ObsTotal {
		l.obsTotal[dc.Domain] = dc.Count
	}
	l.obsRoot = make(map[string]int, len(st.ObsRoot))
	for _, dc := range st.ObsRoot {
		l.obsRoot[dc.Domain] = dc.Count
	}
	l.demoted = make(map[string]bool, len(st.Demoted))
	for _, dom := range st.Demoted {
		l.demoted[dom] = true
	}
}

// CaseState is one serialized court case. The firm is carried by key and
// resolved against the engine's roster on restore.
type CaseState struct {
	ID               string
	FirmKey          string
	Brand            string
	Day              simclock.Day
	Domains          []string
	ObservedStoreIDs []string
}

// PendingReaction is one queued campaign reaction, carried by store ID.
type PendingReaction struct {
	Day     simclock.Day
	StoreID string
}

// StoreDay pairs a store ID with a day.
type StoreDay struct {
	StoreID string
	Day     simclock.Day
}

// FirmSeq records a firm's case-numbering counter.
type FirmSeq struct {
	Key string
	Seq int
}

// SeizureState is the seizure engine's complete mutable state.
type SeizureState struct {
	RNG          [4]uint64
	FirstVisible []StoreDay // sorted by StoreID
	Seq          []FirmSeq  // sorted by Key
	Cases        []CaseState
	Pending      []PendingReaction
}

// ExportState captures the seizure engine's mutable state. The schedule is
// laid out deterministically by the constructor and is not part of it.
func (e *SeizureEngine) ExportState() SeizureState {
	st := SeizureState{RNG: e.r.State()}
	for id, d := range e.FirstVisible {
		st.FirstVisible = append(st.FirstVisible, StoreDay{StoreID: id, Day: d})
	}
	sort.Slice(st.FirstVisible, func(i, j int) bool { return st.FirstVisible[i].StoreID < st.FirstVisible[j].StoreID })
	for k, n := range e.seq {
		st.Seq = append(st.Seq, FirmSeq{Key: k, Seq: n})
	}
	sort.Slice(st.Seq, func(i, j int) bool { return st.Seq[i].Key < st.Seq[j].Key })
	for _, c := range e.cases {
		st.Cases = append(st.Cases, CaseState{
			ID:               c.ID,
			FirmKey:          c.Firm.Key,
			Brand:            c.Brand,
			Day:              c.Day,
			Domains:          append([]string(nil), c.Domains...),
			ObservedStoreIDs: append([]string(nil), c.ObservedStoreIDs...),
		})
	}
	for _, p := range e.pending {
		st.Pending = append(st.Pending, PendingReaction{Day: p.day, StoreID: p.st.ID()})
	}
	return st
}

// RestoreState overwrites the seizure engine's mutable state, replacing the
// constructor-materialised case log wholesale. Firms are resolved by key
// and stores by ID against the engine's roster; an unresolvable reference
// means the snapshot belongs to a different study and is an error.
func (e *SeizureEngine) RestoreState(st SeizureState) error {
	firmByKey := make(map[string]*Firm, len(e.firms))
	for _, f := range e.firms {
		firmByKey[f.Key] = f
	}
	storeByID := make(map[string]int, len(e.stores))
	for i, s := range e.stores {
		storeByID[s.ID()] = i
	}
	cases := make([]*CourtCase, 0, len(st.Cases))
	for _, cs := range st.Cases {
		f := firmByKey[cs.FirmKey]
		if f == nil {
			return fmt.Errorf("intervention: snapshot case %s references unknown firm %q", cs.ID, cs.FirmKey)
		}
		cases = append(cases, &CourtCase{
			ID:               cs.ID,
			Firm:             f,
			Brand:            cs.Brand,
			Day:              cs.Day,
			Domains:          append([]string(nil), cs.Domains...),
			ObservedStoreIDs: append([]string(nil), cs.ObservedStoreIDs...),
		})
	}
	pending := make([]reaction, 0, len(st.Pending))
	for _, p := range st.Pending {
		idx, ok := storeByID[p.StoreID]
		if !ok {
			return fmt.Errorf("intervention: snapshot reaction references unknown store %q", p.StoreID)
		}
		pending = append(pending, reaction{day: p.Day, st: e.stores[idx]})
	}
	e.r.Restore(st.RNG)
	e.cases = cases
	e.pending = pending
	e.FirstVisible = make(map[string]simclock.Day, len(st.FirstVisible))
	for _, sd := range st.FirstVisible {
		e.FirstVisible[sd.StoreID] = sd.Day
	}
	e.seq = make(map[string]int, len(st.Seq))
	for _, fs := range st.Seq {
		e.seq[fs.Key] = fs.Seq
	}
	return nil
}
