package intervention

import (
	"strings"
	"testing"

	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/rng"
	"repro/internal/searchsim"
	"repro/internal/simclock"
	"repro/internal/store"
)

func TestFirmsMatchTable3Shape(t *testing.T) {
	fs := Firms()
	if len(fs) != 2 {
		t.Fatalf("firms = %d", len(fs))
	}
	gbc, smgpa := fs[0], fs[1]
	if gbc.TotalCases() != 69 || len(gbc.Clients) != 17 {
		t.Fatalf("GBC: %d cases, %d brands; want 69/17", gbc.TotalCases(), len(gbc.Clients))
	}
	if smgpa.TotalCases() != 47 || len(smgpa.Clients) != 11 {
		t.Fatalf("SMGPA: %d cases, %d brands; want 47/11", smgpa.TotalCases(), len(smgpa.Clients))
	}
	// §5.3 cadence: Uggs and Chanel are GBC's bi-weekly outliers.
	if gbc.Clients["Uggs"] != 19 || gbc.Clients["Chanel"] != 18 || gbc.Clients["Oakley"] != 6 {
		t.Fatal("GBC per-brand case counts changed")
	}
}

func TestCaseScheduleSpansWindow(t *testing.T) {
	gbc := Firms()[0]
	study := simclock.StudyWindow()
	days := gbc.CaseSchedule("Uggs", simclock.SeizureWindow(), study)
	if len(days) != 19 {
		t.Fatalf("Uggs cases = %d", len(days))
	}
	if days[0] >= 0 {
		t.Fatal("the schedule must include pre-study cases (Feb 2012 onward)")
	}
	var inStudy int
	for i := 1; i < len(days); i++ {
		if days[i] < days[i-1] {
			t.Fatal("schedule must be sorted")
		}
		if study.Contains(days[i]) {
			inStudy++
		}
	}
	if inStudy == 0 {
		t.Fatal("some Uggs cases must fall inside the study window")
	}
}

type fixture struct {
	eng    *SeizureEngine
	stores []*store.Store
	byID   map[string]*store.Store
}

func build(t *testing.T) *fixture {
	t.Helper()
	w := simclock.StudyWindow()
	specs := campaign.Roster(w)
	deps := campaign.DeployAll(rng.New(51), specs, 0.03)
	var stores []*store.Store
	r := rng.New(52)
	for _, dep := range deps {
		for _, sd := range dep.Stores {
			stores = append(stores, store.New(sd, r, w.Days()))
		}
	}
	e := NewSeizureEngine(rng.New(53), w, stores)
	f := &fixture{eng: e, stores: stores, byID: map[string]*store.Store{}}
	for _, st := range stores {
		f.byID[st.ID()] = st
	}
	return f
}

func TestHistoricalCasesMaterialised(t *testing.T) {
	f := build(t)
	var hist int
	for _, c := range f.eng.Cases() {
		if c.Day < 0 {
			hist++
			if len(c.Domains) == 0 {
				t.Fatal("historical case with no domains")
			}
			if len(c.ObservedStoreIDs) != 0 {
				t.Fatal("historical case cannot reference in-study stores")
			}
		}
	}
	if hist == 0 {
		t.Fatal("no historical cases")
	}
}

func TestTickSeizesEligibleStores(t *testing.T) {
	f := build(t)
	// Make every store visible from day 0 so age gates purely on days.
	for _, st := range f.stores {
		f.eng.MarkVisible(st.ID(), 0)
	}
	var seized []string
	f.eng.OnSeize = func(domain string, c *CourtCase) { seized = append(seized, domain) }
	w := simclock.StudyWindow()
	for d := simclock.Day(0); int(d) < w.Days(); d++ {
		f.eng.Tick(d)
	}
	if len(seized) == 0 {
		t.Fatal("no stores seized across the whole study")
	}
	// Every seizure must be recorded on the store and listed in a case.
	inCase := map[string]bool{}
	for _, c := range f.eng.Cases() {
		for _, dom := range c.Domains {
			inCase[dom] = true
		}
	}
	for _, dom := range seized {
		if !inCase[dom] {
			t.Fatalf("seized domain %s not listed in any case", dom)
		}
	}
}

func TestSeizedStoresReactAfterCampaignDelay(t *testing.T) {
	f := build(t)
	for _, st := range f.stores {
		f.eng.MarkVisible(st.ID(), 0)
	}
	type seizeEvt struct {
		day simclock.Day
		st  *store.Store
	}
	seizures := map[string]seizeEvt{}
	f.eng.OnSeize = func(domain string, c *CourtCase) {
		for _, id := range c.ObservedStoreIDs {
			st := f.byID[id]
			if _, dup := seizures[id]; !dup && st.CurrentDomain(c.Day) == domain {
				seizures[id] = seizeEvt{day: c.Day, st: st}
			}
		}
	}
	reactions := map[string]simclock.Day{}
	f.eng.OnReact = func(st *store.Store, newDomain string, day simclock.Day) {
		if _, dup := reactions[st.ID()]; !dup {
			reactions[st.ID()] = day
		}
	}
	w := simclock.StudyWindow()
	for d := simclock.Day(0); int(d) < w.Days(); d++ {
		f.eng.Tick(d)
	}
	if len(seizures) == 0 || len(reactions) == 0 {
		t.Fatalf("seizures=%d reactions=%d", len(seizures), len(reactions))
	}
	for id, evt := range seizures {
		rday, reacted := reactions[id]
		if !reacted {
			continue // exhausted domain pools never react
		}
		want := evt.day + simclock.Day(evt.st.Dep.Campaign.ReactionDays)
		if rday < want {
			t.Fatalf("store %s reacted on day %d before its delay (seized %d, reaction %d days)",
				id, rday, evt.day, evt.st.Dep.Campaign.ReactionDays)
		}
	}
}

func TestSeizureLifetimesReasonable(t *testing.T) {
	f := build(t)
	for _, st := range f.stores {
		f.eng.MarkVisible(st.ID(), 0)
	}
	w := simclock.StudyWindow()
	lifetimes := map[string][]float64{}
	f.eng.OnSeize = func(domain string, c *CourtCase) {
		for _, id := range c.ObservedStoreIDs {
			st := f.byID[id]
			if st.CurrentDomain(c.Day) != domain {
				continue
			}
			first, _ := f.eng.FirstVisible[id], true
			lifetimes[c.Firm.Key] = append(lifetimes[c.Firm.Key], float64(c.Day-first))
		}
	}
	for d := simclock.Day(0); int(d) < w.Days(); d++ {
		f.eng.Tick(d)
	}
	for _, key := range []string{"gbc", "smgpa"} {
		ls := lifetimes[key]
		if len(ls) == 0 {
			t.Fatalf("%s seized nothing", key)
		}
		var sum float64
		for _, l := range ls {
			sum += l
		}
		mean := sum / float64(len(ls))
		// §5.3.2: 58–68 days (GBC), 48–56 (SMGPA). Shapes, not exact values:
		// the mean store lifetime before seizure must be one to three months.
		if mean < 25 || mean > 110 {
			t.Fatalf("%s mean lifetime = %v days", key, mean)
		}
	}
}

func TestPhpCampaignReactsWithinADay(t *testing.T) {
	f := build(t)
	var php *store.Store
	for _, st := range f.stores {
		if st.Dep.Campaign.Name == "PHP?P=" && st.Dep.Label() == "abercrombie[uk]" {
			php = st
		}
	}
	if php == nil {
		t.Fatal("abercrombie[uk] store missing")
	}
	f.eng.MarkVisible(php.ID(), 0)
	// Seize it manually via a synthetic case on day 88 (Feb 9, 2014).
	day := simclock.StudyWindow().MustDay(2014, 2, 9)
	dom := php.CurrentDomain(day)
	php.MarkSeized(dom, day)
	f.eng.pending = append(f.eng.pending, reaction{day: day + simclock.Day(php.Dep.Campaign.ReactionDays), st: php})
	var reactedOn simclock.Day
	f.eng.OnReact = func(st *store.Store, newDomain string, d simclock.Day) {
		if st == php {
			reactedOn = d
		}
	}
	f.eng.Tick(day)
	f.eng.Tick(day + 1)
	if reactedOn != day+1 {
		t.Fatalf("php?p= reacted on day %d, want %d (24h)", reactedOn, day+1)
	}
	if php.CurrentDomain(day+1) == dom {
		t.Fatal("store must be on its backup domain after reacting")
	}
}

func TestLabelerDelaysAndCoverage(t *testing.T) {
	w := simclock.StudyWindow()
	specs := campaign.Roster(w)
	r := rng.New(61)
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.05)
	terms := map[brands.Vertical][]string{}
	for _, v := range brands.All() {
		terms[v] = brands.Terms(r.Sub("terms"), v, 10).Terms
	}
	cfg := searchsim.DefaultConfig()
	cfg.TermsPerVertical = 10
	cfg.SlotsPerTerm = 50
	eng := searchsim.New(cfg, r, deps, terms)
	lab := NewLabeler()

	labeledDays := map[string]simclock.Day{}
	for d := simclock.Day(0); d < 120; d++ {
		eng.Advance(d)
		for _, v := range brands.All() {
			eng.EachSlot(v, func(_, _ int, s *searchsim.Slot) {
				if s.Poisoned() {
					lab.Observe(s.Domain, d, s.Root)
				}
			})
		}
		lab.Tick(d, eng, specs, deps)
		for dom := range lab.firstSeen {
			if ld, ok := eng.LabeledOn(dom); ok {
				if _, dup := labeledDays[dom]; !dup {
					labeledDays[dom] = ld
				}
			}
		}
	}
	if len(labeledDays) == 0 {
		t.Fatal("labeler labeled nothing in 120 days")
	}
	// Delay discipline: label day - first ROOT sighting within [min,max]
	// (the detection clock starts when Google sees the hacked root).
	var keyDemoted simclock.Day
	for _, spec := range specs {
		if spec.Name == "KEY" {
			keyDemoted = spec.DemotedOn
		}
	}
	for dom, ld := range labeledDays {
		first, ok := lab.DetectionArmedOn(dom)
		if !ok || ld == keyDemoted {
			// Mass-demotion events (the KEY takedown) label doorways without
			// the root-sighting gate; those are outside the delay policy.
			continue
		}
		delta := int(ld - first)
		if delta < lab.DelayMinDays || delta > lab.DelayMaxDays+1 {
			t.Fatalf("domain %s labeled after %d days, want %d..%d",
				dom, delta, lab.DelayMinDays, lab.DelayMaxDays)
		}
	}
	// Coverage: a small fraction of observed doorways.
	frac := float64(len(labeledDays)) / float64(len(lab.firstSeen))
	if frac > 0.25 {
		t.Fatalf("label coverage = %.2f, policy must be sparse", frac)
	}
}

func TestMassDemotionEvent(t *testing.T) {
	w := simclock.StudyWindow()
	specs := campaign.Roster(w)
	r := rng.New(62)
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.03)
	terms := map[brands.Vertical][]string{}
	for _, v := range brands.All() {
		terms[v] = brands.Terms(r.Sub("terms"), v, 5).Terms
	}
	cfg := searchsim.DefaultConfig()
	cfg.TermsPerVertical = 5
	cfg.SlotsPerTerm = 50
	eng := searchsim.New(cfg, r, deps, terms)
	lab := NewLabeler()
	var key *campaign.Deployment
	for _, dep := range deps {
		if dep.Spec.Name == "KEY" {
			key = dep
		}
	}
	// The pipeline has seen the doorways (some at their roots, repeatedly)
	// before the mass event fires.
	for i, dw := range key.Doorways {
		for rep := 0; rep < 4; rep++ {
			lab.Observe(dw.Domain, simclock.Day(1+rep), i%2 == 0)
		}
	}
	lab.Tick(key.Spec.DemotedOn, eng, specs, deps)
	var demoted, labeled int
	for _, dw := range key.Doorways {
		if eng.Demoted(dw.Domain) {
			demoted++
		}
		if _, ok := eng.LabeledOn(dw.Domain); ok {
			labeled++
		}
	}
	if demoted == 0 || labeled == 0 {
		t.Fatalf("mass event: demoted=%d labeled=%d", demoted, labeled)
	}
	if demoted <= labeled {
		t.Fatal("demotion must dominate labeling in the mass event")
	}
}

func TestCaseIDFormat(t *testing.T) {
	id := NewCaseID("gbc", 2014, 7)
	if !strings.Contains(id, "cv") || !strings.Contains(id, "gbc") {
		t.Fatalf("case id = %q", id)
	}
}
