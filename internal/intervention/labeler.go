package intervention

import (
	"repro/internal/campaign"
	"repro/internal/searchsim"
	"repro/internal/simclock"
)

// Labeler models the search engine's anti-abuse pipeline of §5.2: doorways
// discovered performing black-hat SEO are (sometimes) labeled "This site
// may be hacked" after a detection delay, and campaigns can be mass-demoted
// (the KEY event). Decisions are deterministic per domain so re-running a
// study reproduces them exactly.
type Labeler struct {
	// LabelProb is the probability a poisoned doorway domain ever receives
	// the hacked label. The paper found coverage very low (≈2.5% of PSRs).
	LabelProb float64
	// DelayMinDays/DelayMaxDays bound the detection delay between a
	// doorway's first appearance and its labeling (§5.2.2: 13–32 days).
	DelayMinDays int
	DelayMaxDays int
	// MassDemoteProb/MassLabelProb govern the KEY-style event: on a
	// campaign's DemotedOn day, this share of its doorways is demoted
	// outright, and this share of the survivors is labeled.
	MassDemoteProb float64
	MassLabelProb  float64

	firstSeen map[string]simclock.Day
	rootSeen  map[string]simclock.Day // first sighting at the site root
	armedOn   map[string]simclock.Day // first day the domain looked labelable
	obsTotal  map[string]int
	obsRoot   map[string]int
	demoted   map[string]bool
}

// NewLabeler returns a labeler with the paper-calibrated policy.
func NewLabeler() *Labeler {
	return &Labeler{
		LabelProb:      0.30,
		DelayMinDays:   13,
		DelayMaxDays:   32,
		MassDemoteProb: 0.75,
		MassLabelProb:  0.5,
		firstSeen:      make(map[string]simclock.Day),
		rootSeen:       make(map[string]simclock.Day),
		armedOn:        make(map[string]simclock.Day),
		obsTotal:       make(map[string]int),
		obsRoot:        make(map[string]int),
		demoted:        make(map[string]bool),
	}
}

// Observe records that a doorway domain was present in search results on
// the given day (first sighting arms the detection clock). root marks
// whether the observed result URL was the site root: Google's pipeline
// labels the root result, so only domains that actually surface their root
// can ever carry the label.
func (l *Labeler) Observe(domain string, day simclock.Day, root bool) {
	if _, seen := l.firstSeen[domain]; !seen {
		l.firstSeen[domain] = day
	}
	l.obsTotal[domain]++
	if root {
		l.obsRoot[domain]++
		if _, seen := l.rootSeen[domain]; !seen {
			l.rootSeen[domain] = day
		}
	}
	if _, armed := l.armedOn[domain]; !armed && l.rootDominant(domain) {
		l.armedOn[domain] = day
	}
}

// DetectionArmedOn returns the day a domain first presented the labelable
// (root-dominant) profile to the pipeline.
func (l *Labeler) DetectionArmedOn(domain string) (simclock.Day, bool) {
	d, ok := l.armedOn[domain]
	return d, ok
}

// rootDominant reports whether a domain's observed results are mostly its
// root page, with enough evidence to trust the profile — Google's pipeline
// labels sites whose hacked root persistently ranks. Doorways ranking only
// deep pages (almost) never qualify, which is the policy gap §5.2.2
// quantifies.
func (l *Labeler) rootDominant(domain string) bool {
	return l.obsRoot[domain]*2 >= l.obsTotal[domain] && l.obsRoot[domain] >= 3
}

// FirstRootSeen returns the day a domain was first observed at its root —
// the moment Google's hacked-site detection clock starts.
func (l *Labeler) FirstRootSeen(domain string) (simclock.Day, bool) {
	d, ok := l.rootSeen[domain]
	return d, ok
}

// FirstSeen returns the first-sighting day for a domain.
func (l *Labeler) FirstSeen(domain string) (simclock.Day, bool) {
	d, ok := l.firstSeen[domain]
	return d, ok
}

// delayFor derives the deterministic per-domain detection delay.
func (l *Labeler) delayFor(domain string) int {
	span := l.DelayMaxDays - l.DelayMinDays + 1
	if span < 1 {
		span = 1
	}
	return l.DelayMinDays + int(hashString("delay/"+domain)%uint64(span))
}

// chosen decides deterministically whether a domain is ever labeled.
func (l *Labeler) chosen(domain string) bool {
	return float64(hashString("label/"+domain)%10000)/10000 < l.LabelProb
}

// Tick applies the day's labeling decisions and mass-demotion events to the
// search engine. specs supplies the campaign roster for event lookups.
func (l *Labeler) Tick(day simclock.Day, eng *searchsim.Engine, specs []*campaign.Spec, deps []*campaign.Deployment) {
	for dom, armed := range l.armedOn {
		if l.demoted[dom] {
			continue
		}
		if _, already := eng.LabeledOn(dom); already {
			continue
		}
		if int(day-armed) >= l.delayFor(dom) && l.chosen(dom) {
			eng.Label(dom, day)
		}
	}
	for _, dep := range deps {
		if dep.Spec.DemotedOn == 0 || dep.Spec.DemotedOn != day {
			continue
		}
		for _, dw := range dep.Doorways {
			h := float64(hashString("mass/"+dw.Domain)%10000) / 10000
			switch {
			case h < l.MassDemoteProb:
				eng.Demote(dw.Domain)
				l.demoted[dw.Domain] = true
			case h < l.MassDemoteProb+(1-l.MassDemoteProb)*l.MassLabelProb:
				if l.rootDominant(dw.Domain) {
					eng.Label(dw.Domain, day)
				}
			}
		}
	}
}
