// Package intervention implements the two intervention families the paper
// evaluates: search-engine actions (demotion and "This site may be hacked"
// labeling, §5.2) and brand-holder domain seizures executed through
// brand-protection firms' court cases (§5.3), together with the campaigns'
// observed countermeasure — re-pointing doorways at backup store domains
// within days.
package intervention

import (
	"fmt"

	"repro/internal/simclock"
)

// Firm is a brand-protection company filing seizure cases on behalf of
// brand-holder clients.
type Firm struct {
	Name string
	Key  string
	// Clients maps each represented brand to the number of court cases the
	// firm files for it across the seizure window. The totals reproduce
	// Table 3 (GBC: 69 cases / 17 brands; SMGPA: 47 / 11) and §5.3's
	// cadence observations (Uggs bi-weekly, Chanel bi-weekly, Oakley
	// monthly; most brands far less often).
	Clients map[string]int
	// DomainsPerCase is the mean number of domains listed per case (bulk
	// filings amortise legal cost; GBC ≈ 460/case, SMGPA ≈ 170/case).
	DomainsPerCase int
	// MinStoreAgeDays is how long a store domain must have been visible
	// before the firm's sweep will include it (investigation and docket
	// latency; drives the §5.3.2 lifetime numbers).
	MinStoreAgeDays int
	// InvestigationLagDays is how stale the firm's view of a store is when
	// the court order finally issues: the seizure hits the domain the firm
	// observed then, which a proactively rotating campaign may already
	// have abandoned (the §5.2.3 coco*.com episode).
	InvestigationLagDays int
	// MaxStoresPerCase caps how many live stores a single filing names;
	// the rest of the bulk list is domains outside the crawl's view. GBC's
	// bigger filings are why it accounts for the larger observed share.
	MaxStoresPerCase int
}

// Firms returns the two firms of Table 3.
func Firms() []*Firm {
	return []*Firm{
		{
			Name: "Greer, Burns & Crain", Key: "gbc",
			Clients: map[string]int{
				"Uggs": 19, "Chanel": 18, "Oakley": 6, "Louis Vuitton": 4,
				"Moncler": 3, "Abercrombie": 2, "Tiffany": 2, "Nike": 2,
				"Ralph Lauren": 2, "Woolrich": 2, "Isabel Marant": 2,
				"Rolex": 2, "Adidas": 1, "Ed Hardy": 1, "Hollister": 1,
				"Beats By Dre": 1, "Ray-Ban": 1,
			},
			DomainsPerCase:       460,
			MinStoreAgeDays:      44,
			InvestigationLagDays: 16,
			MaxStoresPerCase:     9,
		},
		{
			Name: "SMGPA", Key: "smgpa",
			Clients: map[string]int{
				"Louis Vuitton": 8, "Uggs": 7, "Moncler": 6,
				"Isabel Marant": 5, "Nike": 4, "Beats By Dre": 4,
				"Tiffany": 3, "Woolrich": 3, "Ed Hardy": 3, "Adidas": 2,
				"Clarisonic": 2,
			},
			DomainsPerCase:       170,
			MinStoreAgeDays:      36,
			InvestigationLagDays: 12,
			MaxStoresPerCase:     3,
		},
	}
}

// ReactiveFirms returns the counterfactual firms of the abl-reactive
// ablation: the same clients pursued reactively — small frequent filings
// with short investigation latency — instead of bulk periodic sweeps. The
// §5.3 discussion argues the current legal process cannot work this way;
// the ablation measures what it would buy.
func ReactiveFirms() []*Firm {
	out := Firms()
	for _, f := range out {
		for b, n := range f.Clients {
			f.Clients[b] = n * 5 // weekly-scale filings
		}
		f.DomainsPerCase /= 5
		if f.DomainsPerCase < 5 {
			f.DomainsPerCase = 5
		}
		f.MinStoreAgeDays = 10
		f.InvestigationLagDays = 3
	}
	return out
}

// TotalCases returns the number of cases the firm files over the window.
func (f *Firm) TotalCases() int {
	var n int
	for _, c := range f.Clients {
		n += c
	}
	return n
}

// CaseSchedule lays the firm's cases for one brand out over the seizure
// window. Brands pursued aggressively follow the cadences §5.3 observed —
// bi-weekly filings for 15+ case clients (Uggs, Chanel), monthly for 5-14
// (Oakley) — anchored at the end of the window, so their sweeps overlap the
// crawl; occasional clients are spread across the whole window. Days are
// expressed relative to the *study* window (negative = pre-study).
func (f *Firm) CaseSchedule(brand string, seizure, study simclock.Window) []simclock.Day {
	n := f.Clients[brand]
	if n == 0 {
		return nil
	}
	first := study.DayOf(seizure.Start)
	last := study.DayOf(seizure.End)
	span := int(last - first)
	var cadence int
	switch {
	case n >= 15:
		cadence = 14
	case n >= 5:
		cadence = 30
	default:
		cadence = span / n
	}
	phase := int(hashString(f.Key+brand) % uint64(cadence))
	start := int(last) - (n-1)*cadence - phase
	if start < int(first) {
		start = int(first)
	}
	out := make([]simclock.Day, 0, n)
	for i := 0; i < n; i++ {
		d := simclock.Day(start + i*cadence)
		if d > last {
			d = last
		}
		out = append(out, d)
	}
	return out
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// CourtCase is one bulk seizure filing.
type CourtCase struct {
	ID    string
	Firm  *Firm
	Brand string
	Day   simclock.Day // relative to the study window; negative = pre-study
	// Domains is every domain listed in the case documents, including the
	// long tail outside our crawl's view.
	Domains []string
	// ObservedStoreIDs are the stores in our world whose live domain this
	// case seized.
	ObservedStoreIDs []string
}

// NewCaseID formats a docket-style identifier.
func NewCaseID(firmKey string, year, seq int) string {
	return fmt.Sprintf("%02d-cv-%s-%04d", year%100, firmKey, seq)
}
