package cnc

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/store"
)

func fixture(t *testing.T) (*simweb.Web, *campaign.Spec, []*store.Store) {
	t.Helper()
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(rng.New(81), specs, 0.05)
	var dep *campaign.Deployment
	for _, d := range deps {
		if d.Spec.Name == "BIGLOVE" {
			dep = d
		}
	}
	var stores []*store.Store
	r := rng.New(82)
	for _, sd := range dep.Stores {
		stores = append(stores, store.New(sd, r, 245))
	}
	web := simweb.NewWeb()
	web.Register(Domain(dep.Spec.Key()), NewSite(dep.Spec, stores))
	return web, dep.Spec, stores
}

func TestInfiltrationEnumeratesStores(t *testing.T) {
	web, spec, stores := fixture(t)
	dir, err := Infiltrate(web, spec.Key(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if dir.CampaignKey != spec.Key() {
		t.Fatalf("campaign = %q", dir.CampaignKey)
	}
	if len(dir.Entries) != len(stores) {
		t.Fatalf("entries = %d, want %d", len(dir.Entries), len(stores))
	}
	// Directive domains must be each store's current domain.
	want := map[string]bool{}
	for _, st := range stores {
		want[st.CurrentDomain(10)] = true
	}
	for _, dom := range dir.Domains() {
		if !want[dom] {
			t.Fatalf("directive lists unknown domain %s", dom)
		}
	}
	if len(dir.Brands()) == 0 {
		t.Fatal("no brands in directive")
	}
}

func TestGateRefusesWithoutToken(t *testing.T) {
	web, spec, _ := fixture(t)
	resp := web.Fetch(simweb.Request{
		URL: "http://" + Domain(spec.Key()) + "/gate.php?auth=wrong"})
	if resp.Status != 403 {
		t.Fatalf("status = %d", resp.Status)
	}
	// Casual visitors see a parked page.
	front := web.Fetch(simweb.Request{URL: "http://" + Domain(spec.Key()) + "/"})
	if front.Status != 200 || !strings.Contains(front.Body, "It works!") {
		t.Fatal("C&C host must look parked")
	}
}

func TestDirectiveTracksSeizuresAndRotation(t *testing.T) {
	web, spec, stores := fixture(t)
	st := stores[0]
	dom0 := st.CurrentDomain(0)
	st.MarkSeized(dom0, 20)

	// Before reaction: the seized store drops out of the directive.
	dir, err := Infiltrate(web, spec.Key(), 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dir.Domains() {
		if d == dom0 {
			t.Fatal("seized domain still in directive")
		}
	}
	// After the campaign re-points: the backup appears.
	next := st.MoveToNextDomain(25)
	dir2, err := Infiltrate(web, spec.Key(), 26)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range dir2.Domains() {
		if d == next {
			found = true
		}
	}
	if !found {
		t.Fatalf("backup %s missing from directive", next)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"store|a|b|c|1\n",                      // missing header
		"#campaign x\nstore|a|b\n",             // malformed entry
		"#campaign x\ngarbage line\n",          // unknown line
		"#campaign x\nstore|a|b|c|1\n#eof 5\n", // truncated
	}
	for i, body := range cases {
		if _, err := Parse(body); err == nil {
			t.Errorf("case %d parsed unexpectedly", i)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	web, spec, _ := fixture(t)
	resp := web.Fetch(simweb.Request{
		URL: "http://" + Domain(spec.Key()) + "/gate.php?auth=" + GateToken(spec.Key())})
	dir, err := Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dir.CampaignKey != spec.Key() {
		t.Fatal("round trip lost campaign key")
	}
}

func TestInfiltrateUnknownCampaign(t *testing.T) {
	web, _, _ := fixture(t)
	if _, err := Infiltrate(web, "nosuch", 0); err == nil {
		t.Fatal("unknown C&C must fail")
	}
}

func TestTokenStablePerCampaign(t *testing.T) {
	if GateToken("key") != GateToken("key") {
		t.Fatal("token unstable")
	}
	if GateToken("key") == GateToken("biglove") {
		t.Fatal("tokens must differ per campaign")
	}
	if Domain("php?p=") != "cc-phpp-sync.net" {
		t.Fatalf("domain = %q", Domain("php?p="))
	}
}
