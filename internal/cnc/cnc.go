// Package cnc models SEO campaigns' command-and-control infrastructure and
// the study's infiltration of it (§3.1.2): each campaign's doorway kit
// polls a C&C host for its directive — the roster of storefronts to
// forward traffic to, per vertical, with backups. By fetching the same
// directive the kits fetch, the study enumerated campaign storefronts
// independently of the crawl ("a single SEO campaign may shill for over
// ninety distinct storefronts selling thirty distinct brands").
//
// Directives are served in the kits' idiosyncratic line format and parsed
// back, so infiltration exercises a real scrape-and-parse path.
package cnc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/store"
)

// Directive is a campaign's current storefront roster as served by its C&C.
type Directive struct {
	CampaignKey string
	Entries     []Entry
}

// Entry is one storefront assignment.
type Entry struct {
	Vertical string // vertical name the doorways rank for
	Brand    string
	Domain   string // current storefront domain
	Backup   int    // number of backup domains still unused
}

// Site serves a campaign's directive at /gate.php?auth=<token>, the kind of
// lightly protected endpoint the paper's infiltration relied on.
type Site struct {
	Spec   *campaign.Spec
	Stores []*store.Store
	// Token guards the gate; kits embed it in their source, which is how
	// the study obtained it.
	Token string
}

// NewSite builds a C&C site for a campaign over its store fleet.
func NewSite(spec *campaign.Spec, stores []*store.Store) *Site {
	return &Site{Spec: spec, Stores: stores, Token: GateToken(spec.Key())}
}

// GateToken derives the campaign's (weak) gate credential, recoverable from
// kit source code.
func GateToken(campaignKey string) string {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(campaignKey); i++ {
		h ^= uint64(campaignKey[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("k%012x", h>>16)
}

// Serve implements simweb.Site.
func (s *Site) Serve(req simweb.Request) simweb.Response {
	if !strings.Contains(req.URL, "/gate.php") {
		// The C&C host looks like a parked page to casual visitors.
		return simweb.Response{Status: 200,
			Body: "<html><head><title>It works!</title></head><body><h1>It works!</h1></body></html>"}
	}
	if !strings.Contains(req.URL, "auth="+s.Token) {
		return simweb.Response{Status: 403, Body: "denied"}
	}
	return simweb.Response{Status: 200, Body: s.render(req.Day)}
}

// render emits the directive in the kit line format:
//
//	#campaign <key>
//	store|<vertical>|<brand>|<domain>|<backups>
func (s *Site) render(d simclock.Day) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#campaign %s\n", s.Spec.Key())
	entries := s.directive(d)
	for _, e := range entries {
		fmt.Fprintf(&b, "store|%s|%s|%s|%d\n", e.Vertical, e.Brand, e.Domain, e.Backup)
	}
	fmt.Fprintf(&b, "#eof %d\n", len(entries))
	return b.String()
}

// directive computes the live roster on a day.
func (s *Site) directive(d simclock.Day) []Entry {
	var out []Entry
	for _, st := range s.Stores {
		if st.Dark(d) {
			continue
		}
		cur := st.CurrentDomain(d)
		if st.SeizedBy(cur, d) {
			continue
		}
		var backups int
		idx := -1
		for i, dom := range st.Dep.Domains {
			if dom == cur {
				idx = i
			}
		}
		for j := idx + 1; j >= 0 && j < len(st.Dep.Domains); j++ {
			if !st.SeizedBy(st.Dep.Domains[j], d) {
				backups++
			}
		}
		out = append(out, Entry{
			Vertical: st.Dep.Vertical.String(),
			Brand:    st.Dep.Brand,
			Domain:   cur,
			Backup:   backups,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Domain returns the campaign's C&C hostname.
func Domain(campaignKey string) string {
	slug := strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			return r
		}
		return -1
	}, campaignKey)
	return "cc-" + slug + "-sync.net"
}

// Infiltrate fetches and parses a campaign's directive, the §3.1.2
// technique. It fails if the gate refuses or the payload is malformed.
func Infiltrate(f simweb.Fetcher, campaignKey string, d simclock.Day) (*Directive, error) {
	u := fmt.Sprintf("http://%s/gate.php?auth=%s", Domain(campaignKey), GateToken(campaignKey))
	resp := f.Fetch(simweb.Request{URL: u, UserAgent: simweb.BrowserUA, Day: d})
	if resp.Status != 200 {
		return nil, fmt.Errorf("cnc: gate returned %d for %s", resp.Status, campaignKey)
	}
	return Parse(resp.Body)
}

// Parse decodes the kit line format.
func Parse(body string) (*Directive, error) {
	dir := &Directive{}
	var declared = -1
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "#campaign "):
			dir.CampaignKey = strings.TrimPrefix(line, "#campaign ")
		case strings.HasPrefix(line, "#eof "):
			fmt.Sscanf(line, "#eof %d", &declared)
		case strings.HasPrefix(line, "store|"):
			parts := strings.Split(line, "|")
			if len(parts) != 5 {
				return nil, fmt.Errorf("cnc: malformed entry %q", line)
			}
			var backup int
			fmt.Sscanf(parts[4], "%d", &backup)
			dir.Entries = append(dir.Entries, Entry{
				Vertical: parts[1], Brand: parts[2], Domain: parts[3], Backup: backup,
			})
		default:
			return nil, fmt.Errorf("cnc: unrecognised line %q", line)
		}
	}
	if dir.CampaignKey == "" {
		return nil, fmt.Errorf("cnc: missing campaign header")
	}
	if declared >= 0 && declared != len(dir.Entries) {
		return nil, fmt.Errorf("cnc: truncated directive: %d of %d entries", len(dir.Entries), declared)
	}
	return dir, nil
}

// Brands returns the distinct brands in the directive.
func (d *Directive) Brands() []string {
	set := map[string]bool{}
	for _, e := range d.Entries {
		set[e.Brand] = true
	}
	out := make([]string, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Domains returns the storefront domains in the directive.
func (d *Directive) Domains() []string {
	out := make([]string, 0, len(d.Entries))
	for _, e := range d.Entries {
		out = append(out, e.Domain)
	}
	return out
}
