// Package simclock provides the simulation calendar. The simulation is
// driven by integer day indices relative to a study window; this package
// converts between day indices and civil dates and defines the windows used
// by the paper.
package simclock

import (
	"fmt"
	"time"
)

// Day is a day index relative to a Window's start (day 0 is the first day).
type Day int

// Window is an inclusive range of civil dates over which a study runs.
type Window struct {
	Start time.Time // midnight UTC of the first day
	End   time.Time // midnight UTC of the last day (inclusive)
}

// StudyWindow is the paper's crawl window: 2013-11-13 through 2014-07-15
// (eight months, 245 days).
func StudyWindow() Window {
	return Window{
		Start: date(2013, time.November, 13),
		End:   date(2014, time.July, 15),
	}
}

// ExtendedWindow covers the study window plus the Figure 5 case-study tail
// that runs to 2014-08-31.
func ExtendedWindow() Window {
	return Window{
		Start: date(2013, time.November, 13),
		End:   date(2014, time.August, 31),
	}
}

// SeizureWindow is the broader window over which court cases are visible in
// the paper's seizure dataset (February 2012 – July 2014).
func SeizureWindow() Window {
	return Window{
		Start: date(2012, time.February, 1),
		End:   date(2014, time.July, 15),
	}
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Days returns the number of days in the window, inclusive of both ends.
func (w Window) Days() int {
	return int(w.End.Sub(w.Start).Hours()/24) + 1
}

// Date returns the civil date of day index d.
func (w Window) Date(d Day) time.Time {
	return w.Start.AddDate(0, 0, int(d))
}

// DayOf returns the day index of date t, which may lie outside the window
// (yielding a negative index or one >= Days()).
func (w Window) DayOf(t time.Time) Day {
	t = time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
	return Day(int(t.Sub(w.Start).Hours() / 24))
}

// Contains reports whether day index d falls inside the window.
func (w Window) Contains(d Day) bool { return d >= 0 && int(d) < w.Days() }

// String implements fmt.Stringer.
func (w Window) String() string {
	return fmt.Sprintf("%s..%s (%d days)",
		w.Start.Format("2006-01-02"), w.End.Format("2006-01-02"), w.Days())
}

// MustDay returns the day index of the given civil date within w and panics
// if it falls outside the window. It is intended for scenario constants
// whose validity is a programming invariant.
func (w Window) MustDay(y int, m time.Month, d int) Day {
	day := w.DayOf(date(y, m, d))
	if !w.Contains(day) {
		panic(fmt.Sprintf("simclock: %04d-%02d-%02d outside %s", y, m, d, w))
	}
	return day
}
