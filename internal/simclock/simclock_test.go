package simclock

import (
	"testing"
	"time"
)

func TestStudyWindowDays(t *testing.T) {
	w := StudyWindow()
	if got := w.Days(); got != 245 {
		t.Fatalf("study window has %d days, want 245", got)
	}
}

func TestDateRoundTrip(t *testing.T) {
	w := StudyWindow()
	for d := Day(0); int(d) < w.Days(); d++ {
		if back := w.DayOf(w.Date(d)); back != d {
			t.Fatalf("round trip failed at day %d: got %d", d, back)
		}
	}
}

func TestDayZeroIsStart(t *testing.T) {
	w := StudyWindow()
	if !w.Date(0).Equal(w.Start) {
		t.Fatalf("day 0 = %v, want %v", w.Date(0), w.Start)
	}
}

func TestDayOfIgnoresTimeOfDay(t *testing.T) {
	w := StudyWindow()
	noon := w.Start.Add(12 * time.Hour)
	if got := w.DayOf(noon); got != 0 {
		t.Fatalf("noon of start day = day %d, want 0", got)
	}
}

func TestContains(t *testing.T) {
	w := StudyWindow()
	cases := []struct {
		d    Day
		want bool
	}{{-1, false}, {0, true}, {244, true}, {245, false}}
	for _, c := range cases {
		if got := w.Contains(c.d); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestKnownDates(t *testing.T) {
	w := StudyWindow()
	// December 1, 2013 is day 18 (Nov 13 is day 0, Nov 30 is day 17).
	d := w.DayOf(time.Date(2013, time.December, 1, 0, 0, 0, 0, time.UTC))
	if d != 18 {
		t.Fatalf("2013-12-01 = day %d, want 18", d)
	}
	// The final day must be 2014-07-15.
	if got := w.Date(244); got.Format("2006-01-02") != "2014-07-15" {
		t.Fatalf("day 244 = %s", got.Format("2006-01-02"))
	}
}

func TestExtendedWindowCoversFigure5(t *testing.T) {
	w := ExtendedWindow()
	aug := time.Date(2014, time.August, 31, 0, 0, 0, 0, time.UTC)
	if !w.Contains(w.DayOf(aug)) {
		t.Fatal("extended window must include 2014-08-31")
	}
	if w.Days() <= StudyWindow().Days() {
		t.Fatal("extended window must be longer than the study window")
	}
}

func TestSeizureWindowPrecedesStudy(t *testing.T) {
	sw, st := SeizureWindow(), StudyWindow()
	if !sw.Start.Before(st.Start) {
		t.Fatal("seizure window must start before the study window")
	}
}

func TestMustDay(t *testing.T) {
	w := StudyWindow()
	if d := w.MustDay(2014, time.February, 9); w.Date(d).Format("01-02") != "02-09" {
		t.Fatalf("MustDay mismatch: %v", w.Date(d))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustDay outside window did not panic")
		}
	}()
	w.MustDay(2012, time.January, 1)
}

func TestWindowString(t *testing.T) {
	got := StudyWindow().String()
	want := "2013-11-13..2014-07-15 (245 days)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
