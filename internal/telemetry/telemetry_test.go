package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsInert: the nil registry is the no-op sink — every handle
// is nil, every method returns, nothing panics.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z", CountBuckets())
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	st := r.Stage("observe")
	sp := st.Start(0, "uggs")
	sp.End()
	r.Pool("observe").PoolRun(4, 16, time.Millisecond, time.Millisecond)
	r.SetSpanObserver(func(SpanEvent) { t.Fatal("observer on nil registry") })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Fatal("nil registry snapshot has nil maps")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("fetches_total")
	if again := r.Counter("fetches_total"); again != c {
		t.Fatal("counter not deduplicated by name")
	}
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d", c.Value())
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d", g.Value(), g.Max())
	}

	h := r.Histogram("lat_ms", []float64{1, 10})
	for _, v := range []float64{0.5, 0.9, 5, 11, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Sum() != 117.4 {
		t.Fatalf("hist sum = %v", h.Sum())
	}
	s := r.Snapshot()
	hs := s.Histograms["lat_ms"]
	if hs.Counts[0] != 2 || hs.Counts[1] != 1 || hs.Counts[2] != 2 {
		t.Fatalf("bucket counts = %v", hs.Counts)
	}
}

// TestConcurrentUpdates hammers the handles from many goroutines; run under
// -race this is the lock-cheapness contract.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", CountBuckets())
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i % 40))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d", c.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d", h.Count())
	}
}

func TestSpansFeedHistogramAndObserver(t *testing.T) {
	r := New()
	var mu sync.Mutex
	var events []SpanEvent
	r.SetSpanObserver(func(ev SpanEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	st := r.Stage("observe")
	sp := st.Start(12, "uggs")
	sp.End()
	st.Start(13, "").End()
	if got := r.Histogram("stage_observe_ms", DurationBuckets()).Count(); got != 2 {
		t.Fatalf("stage histogram count = %d", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0].Stage != "observe" || events[0].Day != 12 || events[0].Vertical != "uggs" {
		t.Fatalf("events = %+v", events)
	}
	r.SetSpanObserver(nil)
	st.Start(14, "").End() // must not panic with observer removed
}

func TestPoolMetrics(t *testing.T) {
	r := New()
	pm := r.Pool("crawl")
	pm.PoolRun(4, 16, 10*time.Millisecond, 20*time.Millisecond)
	s := r.Snapshot()
	if s.Counters["pool_crawl_runs_total"] != 1 || s.Counters["pool_crawl_jobs_total"] != 16 {
		t.Fatalf("pool counters = %v", s.Counters)
	}
	// capacity 40ms, busy 20ms -> 20ms idle, 50% utilisation.
	if s.Counters["pool_crawl_idle_ns_total"] != int64(20*time.Millisecond) {
		t.Fatalf("idle = %d", s.Counters["pool_crawl_idle_ns_total"])
	}
	if got := s.Histograms["pool_crawl_utilization_pct"].Sum; got != 50 {
		t.Fatalf("utilization sum = %v", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("crawler_fetch_attempts_total").Add(42)
	r.Gauge("queue_depth").Set(3)
	h := r.Histogram("lat_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)

	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE crawler_fetch_attempts_total counter",
		"crawler_fetch_attempts_total 42",
		"# TYPE queue_depth gauge",
		"queue_depth 3",
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{le="1"} 1`,
		`lat_ms_bucket{le="10"} 1`,
		`lat_ms_bucket{le="+Inf"} 2`,
		"lat_ms_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

func TestVarsHandlerJSON(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(7)
	rec := httptest.NewRecorder()
	r.VarsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("vars output not JSON: %v", err)
	}
	if snap.Counters["a_total"] != 7 {
		t.Fatalf("vars counters = %v", snap.Counters)
	}
}

// TestSnapshotMarshalDeterministic: equal metric values must marshal to
// byte-identical JSON (map keys sort), which is what lets BENCH_*.json
// diffs stay meaningful.
func TestSnapshotMarshalDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		for _, n := range []string{"z_total", "a_total", "m_total"} {
			r.Counter(n).Add(3)
		}
		r.Histogram("h_ms", []float64{1, 2}).Observe(1.5)
		return r
	}
	a, _ := json.Marshal(stripUptime(build().Snapshot()))
	b, _ := json.Marshal(stripUptime(build().Snapshot()))
	if string(a) != string(b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
}

func stripUptime(s Snapshot) Snapshot {
	s.UptimeMS = 0
	return s
}

// BenchmarkNoopCounter pins the disabled-telemetry hot-path cost: a nil
// handle must compile to a nil-check and return.
func BenchmarkNoopCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkNoopSpan: a nil stage's Start/End pair must not read the clock.
func BenchmarkNoopSpan(b *testing.B) {
	var r *Registry
	st := r.Stage("observe")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Start(i, "").End()
	}
}

// BenchmarkLiveCounter is the enabled contrast: one atomic add.
func BenchmarkLiveCounter(b *testing.B) {
	c := New().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkLiveSpan is the enabled span cost: two clock reads plus one
// histogram observe.
func BenchmarkLiveSpan(b *testing.B) {
	st := New().Stage("observe")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Start(i, "").End()
	}
}
