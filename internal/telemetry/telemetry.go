// Package telemetry is the runtime observability layer for the measurement
// pipeline: lock-cheap atomic counters and gauges, fixed-bucket latency
// histograms, and span-style stage tracing keyed by (day, stage, vertical).
//
// Two contracts govern the design:
//
// Determinism neutrality. Telemetry only ever *reads* the pipeline — it
// never draws randomness, feeds a decision, or mutates shared study state —
// so a study produces a bit-identical Dataset (and Fingerprint) with
// telemetry enabled or disabled, at any GOMAXPROCS. Counter values are
// themselves deterministic for a fault-free study; duration histograms and
// pool utilisation measure wall time and are the one legitimately
// nondeterministic surface.
//
// Near-zero disabled cost. A nil *Registry is the no-op sink: every
// constructor returns a nil handle and every handle method nil-checks and
// returns. The hot path pays one predictable branch per call — no
// interface dispatch, no allocation, no time.Now — which the
// BenchmarkNoop* benchmarks pin.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry owns a process's metric handles. The zero of *Registry (nil) is
// a valid no-op sink; New returns a live one. Handle registration takes a
// mutex once per unique name; all updates afterwards are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanObs atomic.Pointer[func(SpanEvent)]
	start   time.Time
}

// New returns a live registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		start:    time.Now(),
	}
}

// Counter is a monotonically increasing atomic count. A nil *Counter (from
// a nil registry) is inert.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns (registering on first use) the named counter; nil on a
// nil registry. Names must be Prometheus-legal ([a-z0-9_:]).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge is an instantaneous atomic value with a high-watermark. A nil
// *Gauge is inert.
type Gauge struct {
	name string
	v    atomic.Int64
	max  atomic.Int64
}

// Set stores the gauge value, updating the watermark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bump(v)
}

// Add shifts the gauge, updating the watermark.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.bump(g.v.Add(delta))
}

func (g *Gauge) bump(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the gauge's high-watermark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Gauge returns (registering on first use) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram is a fixed-bucket distribution: bounds are upper edges in
// ascending order, with an implicit +Inf overflow bucket. Counts and the
// running sum are atomic; Observe never allocates. A nil *Histogram is
// inert.
type Histogram struct {
	name   string
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DurationBuckets is the default latency bucket layout, in milliseconds:
// sub-millisecond stage work up through multi-second whole-study phases.
func DurationBuckets() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000}
}

// CountBuckets is a generic small-count layout (queue depths, attempts).
func CountBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Histogram returns (registering on first use) the named histogram; nil on
// a nil registry. The bucket layout is fixed by the first registration.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			name:   name,
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// SpanEvent is one completed stage span, delivered to the span observer
// (the cmd/searchseizure -progress reporter hangs off this).
type SpanEvent struct {
	Stage    string
	Day      int
	Vertical string
	Duration time.Duration
}

// Stage is a pre-resolved span factory for one pipeline stage; resolving it
// once (at world construction) keeps Start/End off the registry mutex. A
// nil *Stage produces inert spans.
type Stage struct {
	reg *Registry
	// name identifies the stage ("observe", "commit", "traffic", "day").
	name string
	dur  *Histogram
}

// Stage returns a span factory for the named stage; nil on a nil registry.
// Durations land in the stage_<name>_ms histogram.
func (r *Registry) Stage(name string) *Stage {
	if r == nil {
		return nil
	}
	return &Stage{reg: r, name: name, dur: r.Histogram("stage_"+name+"_ms", DurationBuckets())}
}

// Span is one in-flight stage execution. The zero Span (from a nil Stage)
// is inert; End on it returns immediately without reading the clock.
type Span struct {
	st       *Stage
	day      int
	vertical string
	t0       time.Time
}

// Start opens a span keyed by (day, stage, vertical). Vertical may be ""
// for stages that are not per-vertical.
func (st *Stage) Start(day int, vertical string) Span {
	if st == nil {
		return Span{}
	}
	return Span{st: st, day: day, vertical: vertical, t0: time.Now()}
}

// End closes the span: its duration feeds the stage histogram and, when a
// span observer is installed, a SpanEvent is delivered synchronously (the
// observer must be safe for concurrent calls — per-vertical spans end on
// pool workers).
func (s Span) End() {
	if s.st == nil {
		return
	}
	d := time.Since(s.t0)
	s.st.dur.Observe(float64(d) / float64(time.Millisecond))
	if f := s.st.reg.spanObs.Load(); f != nil {
		(*f)(SpanEvent{Stage: s.st.name, Day: s.day, Vertical: s.vertical, Duration: d})
	}
}

// SetSpanObserver installs fn as the span observer (nil uninstalls). The
// observer must not mutate study state: it exists for progress reporting,
// and feeding its view back into the pipeline would break the determinism
// contract.
func (r *Registry) SetSpanObserver(fn func(SpanEvent)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.spanObs.Store(nil)
		return
	}
	r.spanObs.Store(&fn)
}

// PoolMetrics aggregates a named worker pool's activity. It implements the
// parallel package's PoolObserver interface structurally (so the two
// packages stay uncoupled). A nil *PoolMetrics is inert but note: wrap it
// before handing it to an interface-typed parameter — a typed nil in a
// non-nil interface still reaches PoolRun, which nil-checks for exactly
// that reason.
type PoolMetrics struct {
	runs        *Counter
	jobs        *Counter
	busyNS      *Counter
	idleNS      *Counter
	depth       *Histogram
	utilization *Histogram
}

// Pool returns (registering on first use) metrics for the named pool; nil
// on a nil registry. Metrics: pool_<name>_runs_total, pool_<name>_jobs_total,
// pool_<name>_busy_ns_total, pool_<name>_idle_ns_total (queue-stall time:
// worker-lifetime the straggler tail wasted), pool_<name>_depth (jobs per
// run) and pool_<name>_utilization_pct.
func (r *Registry) Pool(name string) *PoolMetrics {
	if r == nil {
		return nil
	}
	p := "pool_" + name
	return &PoolMetrics{
		runs:        r.Counter(p + "_runs_total"),
		jobs:        r.Counter(p + "_jobs_total"),
		busyNS:      r.Counter(p + "_busy_ns_total"),
		idleNS:      r.Counter(p + "_idle_ns_total"),
		depth:       r.Histogram(p+"_depth", CountBuckets()),
		utilization: r.Histogram(p+"_utilization_pct", []float64{10, 25, 50, 75, 90, 95, 99, 100}),
	}
}

// PoolRun books one pool execution: workers goroutines drained jobs items
// in wall time, with busy the summed worker lifetimes. Idle time
// (workers×wall − busy) is the queue-stall signal: time workers spent
// parked behind the slowest item.
func (pm *PoolMetrics) PoolRun(workers, jobs int, wall, busy time.Duration) {
	if pm == nil {
		return
	}
	pm.runs.Inc()
	pm.jobs.Add(int64(jobs))
	pm.busyNS.Add(int64(busy))
	capacity := time.Duration(workers) * wall
	if idle := capacity - busy; idle > 0 {
		pm.idleNS.Add(int64(idle))
	}
	pm.depth.Observe(float64(jobs))
	if capacity > 0 {
		pm.utilization.Observe(100 * float64(busy) / float64(capacity))
	}
}

// --- snapshots ---

// HistogramSnapshot is one histogram's frozen state. Bounds and Counts are
// parallel; Counts has one extra trailing +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts
// by linear interpolation inside the containing bucket, the way Prometheus
// histogram_quantile does. The first bucket interpolates from 0; a target
// landing in the +Inf bucket clamps to the last finite bound (the
// histogram cannot resolve beyond it). An empty histogram returns 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var cum int64
	for i, n := range h.Counts {
		prev := cum
		cum += n
		if float64(cum) < target {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if n == 0 {
			return hi
		}
		return lo + (hi-lo)*(target-float64(prev))/float64(n)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// GaugeSnapshot is one gauge's frozen state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a consistent-enough point-in-time copy of every metric
// (individual values are atomic; the set is not fenced). Maps serialise in
// sorted key order under encoding/json, so two snapshots with equal values
// marshal byte-identically.
type Snapshot struct {
	UptimeMS   int64                        `json:"uptime_ms"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. A nil registry yields empty (non-nil)
// maps so consumers can index without guards.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.UptimeMS = int64(time.Since(r.start) / time.Millisecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// sortedKeys returns m's keys in sorted order (Prometheus output and tests
// need a stable walk).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
