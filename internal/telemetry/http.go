package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as plain samples, histograms
// as cumulative _bucket/_sum/_count families. Metric names walk in sorted
// order so output is stable for a fixed set of values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n%s_max %d\n", name, name, g.Value, name, g.Max); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, h.Count, name, formatBound(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a float the way Prometheus clients expect: shortest
// exact decimal, no exponent for the magnitudes buckets use.
func formatBound(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsHandler serves WritePrometheus — mount it on /metrics. A nil
// registry yields a working handler that serves an empty exposition:
// sslint's delegation rule proves the closure nil-safe because it only
// calls WritePrometheus, which nil-guards.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(rw)
	})
}

// VarsHandler serves the JSON snapshot in the expvar idiom — mount it on
// /debug/vars. A nil registry yields a working handler serving the empty
// snapshot: sslint's delegation rule proves the closure nil-safe because
// it only calls Snapshot, which nil-guards.
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
