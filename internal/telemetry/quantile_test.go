package telemetry

import (
	"math"
	"testing"
)

// TestHistogramQuantile pins the interpolation contract the service plane
// and loadtest rely on: linear within a bucket, clamped to the last finite
// bound for mass in the +Inf bucket, zero on an empty histogram.
func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{10, 100, 1000}

	t.Run("empty", func(t *testing.T) {
		var h HistogramSnapshot
		if got := h.Quantile(0.99); got != 0 {
			t.Fatalf("empty histogram quantile = %v, want 0", got)
		}
	})

	t.Run("interpolates within a bucket", func(t *testing.T) {
		// All 100 observations land in (10, 100]: the median should fall
		// halfway through that bucket.
		h := HistogramSnapshot{Count: 100, Bounds: bounds, Counts: []int64{0, 100, 0, 0}}
		if got, want := h.Quantile(0.5), 55.0; math.Abs(got-want) > 1e-9 {
			t.Fatalf("p50 = %v, want %v", got, want)
		}
		if got, want := h.Quantile(1), 100.0; math.Abs(got-want) > 1e-9 {
			t.Fatalf("p100 = %v, want %v", got, want)
		}
	})

	t.Run("spans buckets", func(t *testing.T) {
		h := HistogramSnapshot{Count: 10, Bounds: bounds, Counts: []int64{5, 5, 0, 0}}
		// p50 exhausts the first bucket exactly: its upper bound.
		if got, want := h.Quantile(0.5), 10.0; math.Abs(got-want) > 1e-9 {
			t.Fatalf("p50 = %v, want %v", got, want)
		}
		// p90 is 4/5 through the second bucket: 10 + 0.8*90.
		if got, want := h.Quantile(0.9), 82.0; math.Abs(got-want) > 1e-9 {
			t.Fatalf("p90 = %v, want %v", got, want)
		}
	})

	t.Run("overflow clamps to last bound", func(t *testing.T) {
		h := HistogramSnapshot{Count: 4, Bounds: bounds, Counts: []int64{0, 0, 0, 4}}
		if got, want := h.Quantile(0.99), 1000.0; got != want {
			t.Fatalf("overflow quantile = %v, want %v", got, want)
		}
	})

	t.Run("q clamped to [0,1]", func(t *testing.T) {
		h := HistogramSnapshot{Count: 10, Bounds: bounds, Counts: []int64{10, 0, 0, 0}}
		if got := h.Quantile(-3); got < 0 || got > 10 {
			t.Fatalf("q<0 quantile = %v, want within first bucket", got)
		}
		if got, want := h.Quantile(7), 10.0; math.Abs(got-want) > 1e-9 {
			t.Fatalf("q>1 quantile = %v, want %v", got, want)
		}
	})

	t.Run("single bucket", func(t *testing.T) {
		// One finite bound: everything the histogram can resolve lies in
		// [0, 50]. Quantiles interpolate from zero across that one bucket.
		h := HistogramSnapshot{Count: 4, Bounds: []float64{50}, Counts: []int64{4, 0}}
		if got, want := h.Quantile(0.5), 25.0; math.Abs(got-want) > 1e-9 {
			t.Fatalf("single-bucket p50 = %v, want %v", got, want)
		}
		if got, want := h.Quantile(1), 50.0; math.Abs(got-want) > 1e-9 {
			t.Fatalf("single-bucket p100 = %v, want %v", got, want)
		}
		// All mass past the only finite bound clamps to it.
		over := HistogramSnapshot{Count: 4, Bounds: []float64{50}, Counts: []int64{0, 4}}
		if got, want := over.Quantile(0.5), 50.0; got != want {
			t.Fatalf("single-bucket overflow p50 = %v, want %v", got, want)
		}
	})

	t.Run("q=0 and q=1 boundaries", func(t *testing.T) {
		h := HistogramSnapshot{Count: 10, Bounds: bounds, Counts: []int64{5, 5, 0, 0}}
		// q=0 is the distribution's floor: the bottom of the first
		// occupied bucket's interpolation range.
		if got := h.Quantile(0); got != 0 {
			t.Fatalf("q=0 quantile = %v, want 0", got)
		}
		// q=1 walks to the top of the last occupied bucket.
		if got, want := h.Quantile(1), 100.0; math.Abs(got-want) > 1e-9 {
			t.Fatalf("q=1 quantile = %v, want %v", got, want)
		}
		// An empty histogram stays 0 at both boundaries.
		var empty HistogramSnapshot
		if got := empty.Quantile(0); got != 0 {
			t.Fatalf("empty q=0 quantile = %v, want 0", got)
		}
		if got := empty.Quantile(1); got != 0 {
			t.Fatalf("empty q=1 quantile = %v, want 0", got)
		}
	})

	t.Run("live registry round trip", func(t *testing.T) {
		reg := New()
		h := reg.Histogram("lat_us", bounds)
		for i := 0; i < 100; i++ {
			h.Observe(50) // all in (10, 100]
		}
		snap := reg.Snapshot().Histograms["lat_us"]
		got := snap.Quantile(0.99)
		if got <= 10 || got > 100 {
			t.Fatalf("p99 = %v, want within (10, 100]", got)
		}
	})
}
