// Package analysistest runs one analyzer over fixture packages and checks
// its findings against expectations written in the fixture source, in the
// style of golang.org/x/tools/go/analysis/analysistest (which the module
// cannot depend on). An expectation is a comment
//
//	// want `regexp` `regexp` ...
//
// on the line the finding is reported at; each finding on a line must
// match one unmatched expectation there, and every expectation must be
// consumed. Patterns are double-quoted or backquoted Go strings compiled
// as regular expressions.
//
// Fixtures live under testdata/src/<importpath>/ exactly as upstream:
// imports resolve against testdata/src first, then the standard library,
// so fixtures can stub module packages (e.g. repro/internal/parallel).
//
// //sslint:ignore directives in fixtures are honoured for the analyzer
// under test, so suppression behaviour is testable per analyzer.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// expectation is one want pattern awaiting a finding.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile("// want (.+)$")
var patRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package from srcRoot, applies the analyzers
// (scope-free: every analyzer sees every file) and diffs findings against
// the fixtures' want comments.
func Run(t *testing.T, srcRoot string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunScoped(t, srcRoot, analyzers, nil, pkgPaths...)
}

// RunScoped is Run with an explicit scope. The interprocedural analyzers
// need one: purity only reports where a scoped caller crosses into an
// exempt callee, and under a nil scope (everything in scope) that
// frontier does not exist.
func RunScoped(t *testing.T, srcRoot string, analyzers []*analysis.Analyzer, scope *lint.Scope, pkgPaths ...string) {
	t.Helper()
	loader := load.NewFixtureLoader(srcRoot)
	pkgs, err := loader.Load(pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}

	// key findings and expectations by file:line
	wants := make(map[string][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					pats := patRe.FindAllString(m[1], -1)
					if len(pats) == 0 {
						t.Fatalf("%s: want comment with no quoted patterns: %s", key, c.Text)
					}
					for _, p := range pats {
						raw := p
						if strings.HasPrefix(p, "\"") {
							if raw, err = strconv.Unquote(p); err != nil {
								t.Fatalf("%s: bad want pattern %s: %v", key, p, err)
							}
						} else {
							raw = strings.Trim(p, "`")
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: raw})
					}
				}
			}
		}
	}

	findings, err := lint.Run(pkgs, analyzers, scope)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d:%d: unexpected finding [%s]: %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, w.raw)
			}
		}
	}
}
