package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// wallClockFuncs are the package time functions that read or wait on the
// machine clock. Referencing any of them (call, method value, deferred
// call) inside a simulation package breaks the pure-function-of-(config,
// seed, faults) contract that the golden fingerprint pins.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// NoWallTime forbids wall-clock access in simulation packages.
var NoWallTime = &analysis.Analyzer{
	Name: "nowalltime",
	Doc: `forbid wall-clock reads in simulation packages

Simulation code must be a pure function of (config, seed, faults profile):
days advance through internal/simclock, never through the machine clock.
This analyzer flags any reference to time.Now, time.Since, time.Until,
time.Sleep, time.After, time.Tick, time.NewTimer, time.NewTicker or
time.AfterFunc. Constructing time.Time values (time.Date, durations,
formatting) is fine — only reading or waiting on the real clock is not.

It also exports a UsesClock fact on every function containing such a
reference — in every package, scoped or not — which purity propagates
through the call graph to catch wall-clock access laundered through
helpers in exempt packages.`,
	Run:       runNoWallTime,
	FactTypes: []analysis.Fact{(*UsesClock)(nil)},
}

func runNoWallTime(pass *analysis.Pass) (any, error) {
	for _, use := range sortedUses(pass) {
		fn, ok := use.obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			continue
		}
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(use.id.Pos(),
				"wall-clock call time.%s in simulation package; use internal/simclock (days are the only time axis)", fn.Name())
			exportSourceFact(pass, use.id.Pos(), new(UsesClock), &UsesClock{Via: "time." + fn.Name()})
		}
	}
	return nil, nil
}

// use pairs an identifier with the object it resolves to.
type use struct {
	id  *ast.Ident
	obj types.Object
}

// sortedUses returns the Uses entries for the pass's files in position
// order. TypesInfo.Uses is a map; iterating it directly would make the
// linter's own output nondeterministic.
func sortedUses(pass *analysis.Pass) []use {
	inFiles := make(map[*ast.File]bool, len(pass.Files))
	for _, f := range pass.Files {
		inFiles[f] = true
	}
	uses := make([]use, 0, len(pass.TypesInfo.Uses))
	for id, obj := range pass.TypesInfo.Uses {
		uses = append(uses, use{id, obj})
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].id.Pos() < uses[j].id.Pos() })
	// Keep only identifiers inside files this analyzer sees (scope may
	// have excluded some files of the package).
	out := uses[:0]
	for _, u := range uses {
		pos := u.id.Pos()
		for f := range inFiles {
			if f.FileStart <= pos && pos < f.FileEnd {
				out = append(out, u)
				break
			}
		}
	}
	return out
}

// fileContaining locates the pass file whose range covers pos.
func fileContaining(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
