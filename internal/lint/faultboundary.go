package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// V1SurfaceFact marks a function that builds and returns a mux carrying
// /v1 routes (e.g. (*studysvc.Manager).Handler). Wrapping its result in
// the fault layer would subject the control plane to injected failures.
type V1SurfaceFact struct{}

func (*V1SurfaceFact) AFact() {}

// V1RouteFact marks a function registered as the handler of a /v1 route.
type V1RouteFact struct{}

func (*V1RouteFact) AFact() {}

// FaultWrapperFact marks a function that forwards one of its parameters
// into faults.Handler's wrapped-handler argument, so the ban follows the
// wrap through helpers. Param is the forwarded parameter's index.
type FaultWrapperFact struct{ Param int }

func (*FaultWrapperFact) AFact() {}

// FaultBoundary pins PR 8's "any 5xx on /v1 is real" property.
var FaultBoundary = &analysis.Analyzer{
	Name: "faultboundary",
	Doc: `/v1 handlers stay outside faults.Handler; sim packages stay off net/http

The loadtest contract is that every non-injected request to the /v1
study API succeeds: injected faults exercise the *crawl* path only, so a
5xx on the control plane is always a real bug. That holds only while no
/v1 handler is reachable through faults.Handler. This analyzer exports
facts marking /v1 mux builders (V1SurfaceFact), registered /v1 route
handlers (V1RouteFact) and helpers that forward a parameter into
faults.Handler (FaultWrapperFact), then reports any faults.Handler (or
wrapper) call whose handler argument traces back to a /v1 surface.

Second rule: packages in the "faultboundary/imports" scope — the
deterministic sim core minus the two sanctioned HTTP-facing packages
(faults, simweb) — must not import net/http at all; the fault boundary
is a property of the package graph, not of call-site discipline.`,
	FactTypes: []analysis.Fact{(*V1SurfaceFact)(nil), (*V1RouteFact)(nil), (*FaultWrapperFact)(nil)},
	Run:       runFaultBoundary,
}

func runFaultBoundary(pass *analysis.Pass) (any, error) {
	exportV1Facts(pass)
	exportWrapperFacts(pass)

	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, imp := range f.Imports {
			if imp.Path.Value == `"net/http"` &&
				pass.InSinkScope("faultboundary/imports", pass.Pkg.Path(), fname) {
				pass.Reportf(imp.Pos(), "simulation package %s imports net/http; the HTTP boundary lives in faults and simweb — route real-world traffic through them", pass.Pkg.Path())
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFaultWraps(pass, fd)
		}
	}
	return nil, nil
}

// exportV1Facts finds mux registrations whose pattern literal contains
// "/v1": the enclosing function becomes a V1Surface and every function
// referenced in the handler argument a V1Route.
func exportV1Facts(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isV1Registration(pass, call) {
					return true
				}
				if fn != nil {
					pass.ExportObjectFact(fn, &V1SurfaceFact{})
				}
				for _, arg := range call.Args[1:] {
					for _, h := range referencedFuncs(pass, arg) {
						pass.ExportObjectFact(h, &V1RouteFact{})
					}
				}
				return true
			})
		}
	}
}

// isV1Registration matches x.Handle("…/v1…", h) / x.HandleFunc("…/v1…", h).
func isV1Registration(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") || len(call.Args) < 2 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	return ok && strings.Contains(lit.Value, "/v1")
}

// referencedFuncs collects the declared functions an expression mentions
// (handler args are typically method values, idents, or small wrappers
// around them).
func referencedFuncs(pass *analysis.Pass, e ast.Expr) []*types.Func {
	var out []*types.Func
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// exportWrapperFacts marks functions that forward a parameter into the
// handler argument of faults.Handler (directly or via an already-marked
// wrapper), so cmd-layer helpers like handlerFor carry the ban to their
// call sites.
func exportWrapperFacts(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			params := make(map[*types.Var]int)
			i := 0
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						params[v] = i
					}
					i++
				}
				if len(field.Names) == 0 {
					i++
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				arg, ok := wrappedHandlerArg(pass, call)
				if !ok {
					return true
				}
				ast.Inspect(arg, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						if idx, isParam := params[v]; isParam {
							pass.ExportObjectFact(fn, &FaultWrapperFact{Param: idx})
							return false
						}
					}
					return true
				})
				return true
			})
		}
	}
}

// wrappedHandlerArg returns the handler argument of a call that wraps it
// in the fault layer: faults.Handler(plan, h) -> h, or wrapper(..., h)
// at the recorded parameter index of a FaultWrapperFact-carrying callee.
func wrappedHandlerArg(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil {
		return nil, false
	}
	if callee.Name() == "Handler" && callee.Pkg() != nil && callee.Pkg().Name() == "faults" {
		if len(call.Args) >= 2 {
			return call.Args[1], true
		}
		return nil, false
	}
	var wf FaultWrapperFact
	if pass.ImportObjectFact(callee, &wf) && wf.Param < len(call.Args) {
		return call.Args[wf.Param], true
	}
	return nil, false
}

// checkFaultWraps reports fault-layer wrap calls whose handler argument
// traces back to a /v1 surface.
func checkFaultWraps(pass *analysis.Pass, fd *ast.FuncDecl) {
	// v1Muxes: locals that had a /v1 route registered on them in this
	// function — wrapping such a mux wraps the control plane.
	v1Muxes := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isV1Registration(pass, call) {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
					v1Muxes[v] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		arg, ok := wrappedHandlerArg(pass, call)
		if !ok {
			return true
		}
		if why, bad := tracesToV1(pass, fd, arg, v1Muxes, 0); bad {
			pass.Reportf(call.Pos(), "/v1 control plane wrapped in the fault layer (%s); injected faults must only touch the crawl path — mount the API outside faults.Handler", why)
		}
		return true
	})
}

// tracesToV1 reports whether the handler expression reaches a /v1
// surface: a call to a V1Surface function, a reference to a V1Route
// handler, or a local mux that had /v1 registrations. Local variables are
// chased through their assignments within the enclosing function.
func tracesToV1(pass *analysis.Pass, fd *ast.FuncDecl, e ast.Expr, v1Muxes map[*types.Var]bool, depth int) (string, bool) {
	if depth > 4 {
		return "", false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		var callee *types.Func
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		}
		if callee != nil {
			var sf V1SurfaceFact
			if pass.ImportObjectFact(callee, &sf) {
				return callee.Name() + " builds the /v1 mux", true
			}
		}
		// Pass-through wrappers (http.TimeoutHandler, middleware): the
		// wrap applies to whatever flows through the arguments.
		for _, a := range e.Args {
			if why, bad := tracesToV1(pass, fd, a, v1Muxes, depth+1); bad {
				return why, true
			}
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			if v1Muxes[v] {
				return e.Name + " carries /v1 routes", true
			}
			// Chase local single-assignment dataflow.
			var why string
			bad := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || bad || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == v {
						if w, b := tracesToV1(pass, fd, as.Rhs[i], v1Muxes, depth+1); b {
							why, bad = w, true
						}
					}
				}
				return true
			})
			if bad {
				return why, true
			}
		}
		if fn, ok := pass.TypesInfo.Uses[e].(*types.Func); ok {
			var rf V1RouteFact
			if pass.ImportObjectFact(fn, &rf) {
				return fn.Name() + " handles a /v1 route", true
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			var rf V1RouteFact
			if pass.ImportObjectFact(fn, &rf) {
				return fn.Name() + " handles a /v1 route", true
			}
			var sf V1SurfaceFact
			if pass.ImportObjectFact(fn, &sf) {
				return fn.Name() + " builds the /v1 mux", true
			}
		}
	}
	return "", false
}
