package lint

import (
	"encoding/json"
	"net/url"
	"strings"
	"testing"
)

// TestSARIFRuleMetadata pins the reporting contract: every analyzer (plus
// the "sslint" directive pseudo-rule) ships a reportingDescriptor with a
// shortDescription and an absolute helpUri anchored into DESIGN.md §6 —
// on every run, findings or not — and results reference rules by ID.
func TestSARIFRuleMetadata(t *testing.T) {
	data, err := SARIF([]Finding{{
		ID:       "deadbeefdeadbeef",
		Analyzer: "hotalloc",
		File:     "internal/htmlgen/page.go",
		Line:     3,
		Column:   7,
		Message:  "fmt.Sprintf allocates",
	}})
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID               string `json:"id"`
						Name             string `json:"name"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						HelpURI string `json:"helpUri"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("unmarshalling SARIF: %v", err)
	}
	rules := log.Runs[0].Tool.Driver.Rules
	wantRules := len(All()) + 1 // + the "sslint" directive pseudo-rule
	if len(rules) != wantRules {
		t.Fatalf("got %d rules, want %d (every analyzer plus sslint)", len(rules), wantRules)
	}
	byID := make(map[string]bool)
	for _, r := range rules {
		byID[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
		u, err := url.Parse(r.HelpURI)
		if err != nil || !u.IsAbs() {
			t.Errorf("rule %s helpUri %q is not an absolute URI (SARIF schema requires format uri)", r.ID, r.HelpURI)
		}
		if !strings.Contains(r.HelpURI, "DESIGN.md#sslint-") {
			t.Errorf("rule %s helpUri %q does not anchor into DESIGN.md §6", r.ID, r.HelpURI)
		}
	}
	for _, a := range All() {
		if !byID[a.Name] {
			t.Errorf("analyzer %s missing from the SARIF rule registry", a.Name)
		}
	}
	if !byID["sslint"] {
		t.Error("directive pseudo-rule missing from the SARIF rule registry")
	}
	if got := log.Runs[0].Results[0].RuleID; got != "hotalloc" {
		t.Errorf("result ruleId = %q, want hotalloc", got)
	}
	if !byID[log.Runs[0].Results[0].RuleID] {
		t.Error("result references a ruleId absent from the registry")
	}
}
