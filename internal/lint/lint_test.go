package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
)

func one(a *analysis.Analyzer) []*analysis.Analyzer { return []*analysis.Analyzer{a} }

func TestNoWallTime(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.NoWallTime), "nowalltime")
}

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.SeededRand), "seededrand")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.MapOrder), "maporder")
}

func TestNilTelemetry(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.NilTelemetry), "niltelemetry")
}

func TestPoolOnly(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.PoolOnly), "poolonly")
}

// TestDirectives runs the whole suite over the directive fixtures: used
// suppressions vanish, malformed/unknown/unused directives surface.
func TestDirectives(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.All(), "ignoredir")
}
