package lint_test

import (
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/load"
)

func one(a *analysis.Analyzer) []*analysis.Analyzer { return []*analysis.Analyzer{a} }

func TestNoWallTime(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.NoWallTime), "nowalltime")
}

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.SeededRand), "seededrand")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.MapOrder), "maporder")
}

func TestNilTelemetry(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.NilTelemetry), "niltelemetry")
}

func TestPoolOnly(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.PoolOnly), "poolonly")
}

// TestPurity needs an explicit scope: the frontier only exists when the
// caller's package is gated and the callee's is not. purity/sim is the
// gated simulation stand-in, purity/exempt the trusted-looking library
// that launders wall-clock reads through helpers and an interface.
func TestPurity(t *testing.T) {
	scope := &lint.Scope{
		Packages: map[string][]string{
			lint.NoWallTime.Name: {"purity/sim"},
			lint.Purity.Name:     {"purity/sim"},
		},
	}
	analysistest.RunScoped(t, "testdata/src", one(lint.Purity), scope, "purity/sim")
}

func TestRaceCapture(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.RaceCapture), "racecapture/a")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.CtxFlow), "ctxflow/a")
}

// TestDirectives runs the whole suite over the directive fixtures: used
// suppressions vanish, malformed/unknown/unused directives surface.
func TestDirectives(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.All(), "ignoredir")
}

func TestSnapshotFields(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.SnapshotFields), "snapshotfields")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.LockDiscipline), "lockdiscipline")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.HotAlloc), "hotalloc")
}

// TestFaultBoundary needs an explicit scope: the wrap rule reports across
// the wiring packages while the net/http import ban consults the narrower
// "faultboundary/imports" pseudo-key — exactly how DefaultScope carves the
// real module.
func TestFaultBoundary(t *testing.T) {
	scope := &lint.Scope{
		Packages: map[string][]string{
			lint.FaultBoundary.Name: {"faultboundary/..."},
			"faultboundary/imports": {"faultboundary/sim"},
		},
	}
	analysistest.RunScoped(t, "testdata/src", one(lint.FaultBoundary), scope,
		"faultboundary/cmdpkg", "faultboundary/sim")
}

func TestAPICodes(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.APICodes), "apicodes")
}

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.Exhaustive), "exhaustive/a")
}

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.ErrFlow), "errflow/a")
}

// pinFixtureGolden extracts both contracts from one fixture package
// exactly as -write-schema would, lets the caller doctor them into "the
// past" the golden should pin, and writes the result under a temp dir.
// Fixture trees have no go.mod, so the returned scope carries the golden
// as an absolute path — the documented fixture-test convention.
func pinFixtureGolden(t *testing.T, a *analysis.Analyzer, pkgPath, base string,
	doctor func(api *lint.APIContract, ckpt *lint.CkptContract)) *lint.Scope {
	t.Helper()
	buildScope := &lint.Scope{Packages: map[string][]string{
		lint.WireSchema.Name: {pkgPath},
		lint.CkptSchema.Name: {pkgPath},
	}}
	pkgs, err := load.NewFixtureLoader("testdata/src").Load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	api, ckpt := lint.BuildContracts(pkgs, buildScope)
	if doctor != nil {
		doctor(api, ckpt)
	}
	golden := filepath.Join(t.TempDir(), base)
	var v any
	if a == lint.WireSchema {
		v = api
	} else {
		v = ckpt
	}
	if v == nil || (a == lint.WireSchema && api == nil) || (a == lint.CkptSchema && ckpt == nil) {
		t.Fatalf("no %s contract extracted from %s", a.Name, pkgPath)
	}
	if err := lint.WriteSchemaFile(golden, v); err != nil {
		t.Fatal(err)
	}
	return &lint.Scope{
		Packages: map[string][]string{a.Name: {pkgPath}},
		Goldens:  map[string]string{a.Name: golden},
	}
}

// TestWireSchemaClean pins the golden from the fixture itself: the
// re-check finds no drift.
func TestWireSchemaClean(t *testing.T) {
	scope := pinFixtureGolden(t, lint.WireSchema, "wireschema/clean", "api.schema.json", nil)
	analysistest.RunScoped(t, "testdata/src", one(lint.WireSchema), scope, "wireschema/clean")
}

// TestWireSchemaDrift pins a golden from the pre-revision world — the
// "message" field name, a DELETE route, no POST route — and expects a
// finding per divergence, at the drifted declaration.
func TestWireSchemaDrift(t *testing.T) {
	scope := pinFixtureGolden(t, lint.WireSchema, "wireschema/drift", "api.schema.json",
		func(api *lint.APIContract, _ *lint.CkptContract) {
			routes := []string{"DELETE /v1/items/{id}"}
			for _, r := range api.Routes {
				if r != "POST /v1/items" {
					routes = append(routes, r)
				}
			}
			sort.Strings(routes)
			api.Routes = routes
			reply := api.Types["wireschema/drift.Reply"]
			reply["message"] = reply["msg"]
			delete(reply, "msg")
		})
	analysistest.RunScoped(t, "testdata/src", one(lint.WireSchema), scope, "wireschema/drift")
}

func TestCkptSchemaClean(t *testing.T) {
	scope := pinFixtureGolden(t, lint.CkptSchema, "ckptschema/clean", "ckpt.schema.json", nil)
	analysistest.RunScoped(t, "testdata/src", one(lint.CkptSchema), scope, "ckptschema/clean")
}

// TestCkptSchemaDrift pins a golden predating a new field and a retype at
// the same SnapshotVersion: both are findings.
func TestCkptSchemaDrift(t *testing.T) {
	scope := pinFixtureGolden(t, lint.CkptSchema, "ckptschema/drift", "ckpt.schema.json",
		func(_ *lint.APIContract, ckpt *lint.CkptContract) {
			ckpt.Types["ckptschema/drift.Inner"]["N"] = "string"
			delete(ckpt.Types["ckptschema/drift.StudySnapshot"], "Extra")
		})
	analysistest.RunScoped(t, "testdata/src", one(lint.CkptSchema), scope, "ckptschema/drift")
}

// TestCkptSchemaVersionBump pins a golden at the previous SnapshotVersion:
// the shape changes are sanctioned, the sole finding is the re-pin
// reminder.
func TestCkptSchemaVersionBump(t *testing.T) {
	scope := pinFixtureGolden(t, lint.CkptSchema, "ckptschema/bump", "ckpt.schema.json",
		func(_ *lint.APIContract, ckpt *lint.CkptContract) {
			ckpt.SnapshotVersion--
			delete(ckpt.Types["ckptschema/bump.StudySnapshot"], "Extra")
		})
	analysistest.RunScoped(t, "testdata/src", one(lint.CkptSchema), scope, "ckptschema/bump")
}
