package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
)

func one(a *analysis.Analyzer) []*analysis.Analyzer { return []*analysis.Analyzer{a} }

func TestNoWallTime(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.NoWallTime), "nowalltime")
}

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.SeededRand), "seededrand")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.MapOrder), "maporder")
}

func TestNilTelemetry(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.NilTelemetry), "niltelemetry")
}

func TestPoolOnly(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.PoolOnly), "poolonly")
}

// TestPurity needs an explicit scope: the frontier only exists when the
// caller's package is gated and the callee's is not. purity/sim is the
// gated simulation stand-in, purity/exempt the trusted-looking library
// that launders wall-clock reads through helpers and an interface.
func TestPurity(t *testing.T) {
	scope := &lint.Scope{
		Packages: map[string][]string{
			lint.NoWallTime.Name: {"purity/sim"},
			lint.Purity.Name:     {"purity/sim"},
		},
	}
	analysistest.RunScoped(t, "testdata/src", one(lint.Purity), scope, "purity/sim")
}

func TestRaceCapture(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.RaceCapture), "racecapture/a")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.CtxFlow), "ctxflow/a")
}

// TestDirectives runs the whole suite over the directive fixtures: used
// suppressions vanish, malformed/unknown/unused directives surface.
func TestDirectives(t *testing.T) {
	analysistest.Run(t, "testdata/src", lint.All(), "ignoredir")
}

func TestSnapshotFields(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.SnapshotFields), "snapshotfields")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.LockDiscipline), "lockdiscipline")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.HotAlloc), "hotalloc")
}

// TestFaultBoundary needs an explicit scope: the wrap rule reports across
// the wiring packages while the net/http import ban consults the narrower
// "faultboundary/imports" pseudo-key — exactly how DefaultScope carves the
// real module.
func TestFaultBoundary(t *testing.T) {
	scope := &lint.Scope{
		Packages: map[string][]string{
			lint.FaultBoundary.Name: {"faultboundary/..."},
			"faultboundary/imports": {"faultboundary/sim"},
		},
	}
	analysistest.RunScoped(t, "testdata/src", one(lint.FaultBoundary), scope,
		"faultboundary/cmdpkg", "faultboundary/sim")
}

func TestAPICodes(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(lint.APICodes), "apicodes")
}
