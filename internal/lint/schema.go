package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"repro/internal/lint/load"
)

// Golden schema files checked in at the module root. They pin the two
// long-lived contracts — the /v1 wire surface and the checkpoint payload —
// and are regenerated only via `go run ./cmd/sslint -write-schema`.
const (
	APISchemaFile  = "api.schema.json"
	CkptSchemaFile = "ckpt.schema.json"
)

// TypeSchema is the JSON shape of one struct: wire field name (the json
// tag, or the Go name where none is set) to a type descriptor. Descriptors
// are structural — "string", "int64", "[]float64", "*bool",
// "map[string]int", "object:<pkg.Type>" for a named struct pinned under
// its own key, "struct{a:int;b:string}" for an anonymous one — with
// ",omitempty" appended when the tag carries it, so a tag-option change is
// a shape change too.
type TypeSchema map[string]string

// APIContract is the extracted /v1 wire contract: the route table plus
// the shape of every request/response type reachable from a handler.
type APIContract struct {
	Routes []string              `json:"routes"`
	Types  map[string]TypeSchema `json:"types"`
}

// CkptContract is the extracted checkpoint contract: the payload shape of
// core.StudySnapshot and every state struct it reaches, keyed by the
// payload schema version (core.SnapshotVersion) and the on-disk envelope
// version.
type CkptContract struct {
	EnvelopeVersion int                   `json:"envelope_version"`
	SnapshotVersion int                   `json:"snapshot_version"`
	Types           map[string]TypeSchema `json:"types"`
}

// WriteSchemaFile serializes a schema golden deterministically (JSON maps
// marshal with sorted keys) with a trailing newline.
func WriteSchemaFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readSchemaFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// resolveGolden makes a scope-configured golden path absolute: relative
// names resolve against the analyzed module's root, found by walking up
// from the file holding pos to the nearest go.mod. Fixture trees have no
// go.mod, so fixture tests pass absolute paths.
func resolveGolden(fset *token.FileSet, pos token.Pos, rel string) (string, error) {
	if filepath.IsAbs(rel) {
		return rel, nil
	}
	dir := filepath.Dir(fset.Position(pos).Filename)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, rel), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s to resolve %s", dir, rel)
		}
		dir = parent
	}
}

// schemaExtractor walks types.Type graphs into TypeSchema maps, recording
// positions so drift findings anchor at the drifted declaration.
type schemaExtractor struct {
	// shapeFor returns the wire shape of a named type with a custom
	// MarshalJSON, when one is known (fact-imported by the analyzer,
	// AST-extracted by the -write-schema builder). May be nil.
	shapeFor func(obj *types.TypeName) (TypeSchema, bool)

	types    map[string]TypeSchema
	typePos  map[string]token.Pos
	fieldPos map[string]map[string]token.Pos
	visiting map[string]bool
}

func newSchemaExtractor(shapeFor func(*types.TypeName) (TypeSchema, bool)) *schemaExtractor {
	return &schemaExtractor{
		shapeFor: shapeFor,
		types:    make(map[string]TypeSchema),
		typePos:  make(map[string]token.Pos),
		fieldPos: make(map[string]map[string]token.Pos),
		visiting: make(map[string]bool),
	}
}

// typeKey names a type across packages: "<import path>.<name>".
func typeKey(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// addRoot registers a top-level encoded type. Pointers unwrap (a decode
// target *T puts T on the wire); named structs pin under their own key;
// anonymous structs pin under a synthesized "<pkg>.{field,field}" key so a
// handler's inline response literal is still a tracked contract.
func (x *schemaExtractor) addRoot(t types.Type, pkgPath string, pos token.Pos) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	switch tt := t.(type) {
	case *types.Named:
		x.descriptor(t)
	case *types.Struct:
		key := pkgPath + "." + anonKey(tt)
		if _, ok := x.types[key]; ok {
			return
		}
		x.typePos[key] = pos
		x.types[key] = x.structSchema(key, tt)
	}
}

// anonKey derives a stable name for an anonymous struct from its sorted
// wire field names.
func anonKey(st *types.Struct) string {
	var names []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		name, _, skip := jsonName(f, st.Tag(i))
		if skip {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

// descriptor renders one type structurally, registering every named struct
// it reaches under its own key.
func (x *schemaExtractor) descriptor(t types.Type) string {
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() == nil { // error, comparable, ...
			return obj.Name()
		}
		key := typeKey(obj)
		if x.visiting[key] {
			return "object:" + key
		}
		if _, done := x.types[key]; done {
			return "object:" + key
		}
		if x.shapeFor != nil {
			if shape, ok := x.shapeFor(obj); ok {
				x.types[key] = shape
				x.typePos[key] = obj.Pos()
				return "object:" + key
			}
		}
		if hasCustomMarshaler(tt) {
			// The struct fields would lie about the wire shape and no
			// extracted shape is known: pin an opaque marker so a
			// marshaler appearing or vanishing is still a diff.
			return "custom:" + key
		}
		switch under := tt.Underlying().(type) {
		case *types.Struct:
			x.visiting[key] = true
			x.typePos[key] = obj.Pos()
			x.types[key] = x.structSchema(key, under)
			delete(x.visiting, key)
			return "object:" + key
		default:
			// Named non-struct (simclock.Day, metrics.Series): the wire
			// shape is the underlying type's.
			return x.descriptor(under)
		}
	case *types.Basic:
		return tt.String()
	case *types.Pointer:
		return "*" + x.descriptor(tt.Elem())
	case *types.Slice:
		if b, ok := tt.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
			return "base64"
		}
		return "[]" + x.descriptor(tt.Elem())
	case *types.Array:
		return fmt.Sprintf("[%d]%s", tt.Len(), x.descriptor(tt.Elem()))
	case *types.Map:
		return "map[" + x.descriptor(tt.Key()) + "]" + x.descriptor(tt.Elem())
	case *types.Struct:
		shape := x.structSchema("", tt)
		names := make([]string, 0, len(shape))
		for name := range shape {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, name+":"+shape[name])
		}
		return "struct{" + strings.Join(parts, ";") + "}"
	case *types.Interface:
		return "any"
	default:
		return t.String()
	}
}

// structSchema flattens one struct into wire fields, following
// encoding/json's rules: unexported and `json:"-"` fields are invisible,
// untagged embedded structs promote their fields, tag options other than
// the name collapse to the one wire-visible one (omitempty).
func (x *schemaExtractor) structSchema(key string, st *types.Struct) TypeSchema {
	schema := make(TypeSchema)
	if key != "" && x.fieldPos[key] == nil {
		x.fieldPos[key] = make(map[string]token.Pos)
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := st.Tag(i)
		if f.Embedded() && !f.Exported() {
			continue
		}
		if f.Embedded() && reflect.StructTag(tag).Get("json") == "" {
			// Untagged embedded struct: promote its fields.
			ft := f.Type()
			if p, ok := ft.(*types.Pointer); ok {
				ft = p.Elem()
			}
			if es, ok := ft.Underlying().(*types.Struct); ok {
				for name, desc := range x.structSchema("", es) {
					if _, shadowed := schema[name]; !shadowed {
						schema[name] = desc
						if key != "" {
							x.fieldPos[key][name] = f.Pos()
						}
					}
				}
				continue
			}
		}
		name, opts, skip := jsonName(f, tag)
		if skip {
			continue
		}
		desc := x.descriptor(f.Type())
		if opts != "" {
			desc += "," + opts
		}
		schema[name] = desc
		if key != "" {
			x.fieldPos[key][name] = f.Pos()
		}
	}
	return schema
}

// jsonName resolves a field's wire name and the wire-visible tag options.
func jsonName(f *types.Var, tag string) (name, opts string, skip bool) {
	if !f.Exported() {
		return "", "", true
	}
	jt := reflect.StructTag(tag).Get("json")
	if jt == "-" {
		return "", "", true
	}
	name = f.Name()
	if jt != "" {
		parts := strings.Split(jt, ",")
		if parts[0] != "" {
			name = parts[0]
		}
		for _, o := range parts[1:] {
			if o == "omitempty" {
				opts = "omitempty"
			}
		}
	}
	return name, opts, false
}

// hasCustomMarshaler reports whether T or *T declares MarshalJSON.
func hasCustomMarshaler(t types.Type) bool {
	for _, recv := range []types.Type{t, types.NewPointer(t)} {
		if obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, "MarshalJSON"); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

// schemaDiff is one divergence between a golden and the extracted schema.
type schemaDiff struct {
	kind    string // "type-removed", "type-added", "field-removed", "field-added", "field-changed"
	typeKey string
	field   string
	old     string
	new     string
}

// diffTypes compares golden against current, deterministically ordered.
func diffTypes(golden, current map[string]TypeSchema) []schemaDiff {
	var diffs []schemaDiff
	for _, key := range sortedKeys(golden) {
		cur, ok := current[key]
		if !ok {
			diffs = append(diffs, schemaDiff{kind: "type-removed", typeKey: key})
			continue
		}
		old := golden[key]
		for _, field := range sortedKeys(old) {
			now, ok := cur[field]
			switch {
			case !ok:
				diffs = append(diffs, schemaDiff{kind: "field-removed", typeKey: key, field: field, old: old[field]})
			case now != old[field]:
				diffs = append(diffs, schemaDiff{kind: "field-changed", typeKey: key, field: field, old: old[field], new: now})
			}
		}
		for _, field := range sortedKeys(cur) {
			if _, ok := old[field]; !ok {
				diffs = append(diffs, schemaDiff{kind: "field-added", typeKey: key, field: field, new: cur[field]})
			}
		}
	}
	for _, key := range sortedKeys(current) {
		if _, ok := golden[key]; !ok {
			diffs = append(diffs, schemaDiff{kind: "type-added", typeKey: key})
		}
	}
	return diffs
}

// BuildContracts extracts both contracts from pkgs (a full module load)
// exactly as the analyzers do, for `cmd/sslint -write-schema`: marshal
// shapes are gathered across every package first, then the wire contract
// is read from the scoped API package (the one registering mux routes)
// and the checkpoint contract from the scoped codec package. A contract
// whose trigger package is absent comes back nil.
func BuildContracts(pkgs []*load.Package, scope *Scope) (*APIContract, *CkptContract) {
	shapes := make(map[*types.TypeName]TypeSchema)
	for _, p := range pkgs {
		ps := pkgSyntax{fset: p.Fset, files: p.Files, pkg: p.Types, info: p.Info}
		for obj, shape := range extractMarshalShapes(ps) {
			shapes[obj] = shape
		}
	}
	shapeFor := func(obj *types.TypeName) (TypeSchema, bool) {
		shape, ok := shapes[obj]
		return shape, ok
	}

	var api *APIContract
	var ckpt *CkptContract
	for _, p := range pkgs {
		ps := pkgSyntax{fset: p.Fset, files: p.Files, pkg: p.Types, info: p.Info}
		if api == nil && scope.AppliesTo(WireSchema.Name, p.PkgPath) {
			if routes, _, _ := extractRoutes(ps); len(routes) > 0 {
				x := newSchemaExtractor(shapeFor)
				collectJSONRoots(ps, x)
				api = &APIContract{Routes: routes, Types: x.types}
			}
		}
		if ckpt == nil && scope.AppliesTo(CkptSchema.Name, p.PkgPath) {
			if anchors, ok := findCkptAnchors(p.Types); ok {
				x := newSchemaExtractor(shapeFor)
				x.addRoot(anchors.snap.Type(), pkgPathOf(anchors.snap), anchors.snap.Pos())
				ckpt = &CkptContract{
					EnvelopeVersion: int(anchors.envVersion),
					SnapshotVersion: int(anchors.snapVersion),
					Types:           x.types,
				}
			}
		}
	}
	return api, ckpt
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
