package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// RaceCapture statically flags the two closure shapes that turn the
// internal/parallel ordered-commit pool into a data race: capturing a
// loop variable, and writing to captured shared state without
// index-partitioned access. -race catches these only when the schedule
// cooperates; the shape is visible at compile time.
var RaceCapture = &analysis.Analyzer{
	Name: "racecapture",
	Doc: `flag racy closure shapes handed to the parallel pool

A closure passed to parallel.ForEach / ForEachObserved / Map runs
concurrently on every worker. Two capture shapes are flagged at the
closure's creation site:

  - capturing a loop variable of an enclosing for/range statement: even
    with per-iteration loop variables the closure's correctness silently
    depends on when the pool runs it relative to the loop;
  - writing to a captured variable, slice, map or field: concurrent
    workers race on the shared location. The sanctioned pattern is
    index-partitioned access — out[i] = ... where the index expression
    mentions the closure's own parameter — or committing results through
    the pool's ordered Map return.

The check is interprocedural: racecapture exports a PoolForwarder fact on
any function that forwards a func-typed parameter into a pool entry point
(directly or through another forwarder), so a closure handed to a wrapper
— even one living in an exempt package — is still checked where it is
built. Exemption applies at the sink (the closure's creation site), not
at the forwarding helper.`,
	Run:       runRaceCapture,
	FactTypes: []analysis.Fact{(*PoolForwarder)(nil)},
}

func runRaceCapture(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass.Files, pass.TypesInfo, pass.Universe)

	// forwards[fn] = indices of fn's parameters that flow into a pool
	// entry point. Fixpoint within the package; dependencies' facts are
	// final already.
	forwards := make(map[*types.Func]map[int]bool)
	forwardedParams := func(fn *types.Func) map[int]bool {
		if isPoolEntry(fn) {
			out := make(map[int]bool)
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				if _, ok := sig.Params().At(i).Type().Underlying().(*types.Signature); ok {
					out[i] = true
				}
			}
			return out
		}
		if fn.Pkg() == pass.Pkg {
			return forwards[fn]
		}
		var pf PoolForwarder
		if pass.ImportObjectFact(fn, &pf) {
			out := make(map[int]bool, len(pf.Params))
			for _, i := range pf.Params {
				out[i] = true
			}
			return out
		}
		return nil
	}
	paramIndex := func(fn *types.Func, obj types.Object) int {
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == obj {
				return i
			}
		}
		return -1
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, call := range n.Calls {
				if call.Static == nil {
					continue
				}
				fwd := forwardedParams(call.Static)
				for argIdx := range fwd {
					if argIdx >= len(call.Expr.Args) {
						continue
					}
					id, ok := ast.Unparen(call.Expr.Args[argIdx]).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Uses[id]
					if obj == nil {
						continue
					}
					pi := paramIndex(n.Fn, obj)
					if pi < 0 || forwards[n.Fn][pi] {
						continue
					}
					if forwards[n.Fn] == nil {
						forwards[n.Fn] = make(map[int]bool)
					}
					forwards[n.Fn][pi] = true
					changed = true
				}
			}
		}
	}
	for _, n := range g.Nodes {
		m := forwards[n.Fn]
		if len(m) == 0 {
			continue
		}
		pf := &PoolForwarder{}
		for i := range m {
			pf.Params = append(pf.Params, i)
		}
		sort.Ints(pf.Params)
		pass.ExportObjectFact(n.Fn, pf)
	}

	// Check every closure that reaches a pool, at its creation site.
	for _, n := range g.Nodes {
		loopVars := collectLoopVars(pass, n.Decl)
		localLits := collectFuncLitBindings(pass, n.Decl)
		for _, call := range n.Calls {
			if call.Static == nil {
				continue
			}
			fwd := forwardedParams(call.Static)
			for _, argIdx := range sortedKeysInt(fwd) {
				if argIdx >= len(call.Expr.Args) {
					continue
				}
				arg := ast.Unparen(call.Expr.Args[argIdx])
				var lit *ast.FuncLit
				switch a := arg.(type) {
				case *ast.FuncLit:
					lit = a
				case *ast.Ident:
					if obj := pass.TypesInfo.Uses[a]; obj != nil {
						lit = localLits[obj]
					}
				}
				if lit != nil {
					checkPoolClosure(pass, lit, loopVars)
				}
			}
		}
	}
	return nil, nil
}

// sortedKeysInt returns a small int-keyed set's members in order, for
// deterministic iteration.
func sortedKeysInt(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// isPoolEntry reports whether fn is an internal/parallel entry point
// taking worker functions.
func isPoolEntry(fn *types.Func) bool {
	return fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/parallel")
}

// collectLoopVars gathers the objects declared as for/range loop
// variables anywhere in decl.
func collectLoopVars(pass *analysis.Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	def := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				def(n.Key)
				if n.Value != nil {
					def(n.Value)
				}
			}
		case *ast.ForStmt:
			if as, ok := n.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					def(lhs)
				}
			}
		}
		return true
	})
	return out
}

// collectFuncLitBindings maps local variables to the function literal
// assigned to them ( fn := func(...){...} / var fn = func... / fn = func... ),
// so closures bound to a name before being handed to the pool are still
// checked. A variable reassigned a second literal maps to the last one —
// good enough for the lint shape.
func collectFuncLitBindings(pass *analysis.Pass, decl *ast.FuncDecl) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	bind := func(lhs ast.Expr, rhs ast.Expr, defs bool) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		var obj types.Object
		if defs {
			obj = pass.TypesInfo.Defs[id]
		} else {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			out[obj] = lit
		}
	}
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					bind(n.Lhs[i], n.Rhs[i], n.Tok == token.DEFINE)
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					bind(n.Names[i], n.Values[i], true)
				}
			}
		}
		return true
	})
	return out
}

// checkPoolClosure inspects one closure that will run on pool workers.
func checkPoolClosure(pass *analysis.Pass, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	params := make(map[types.Object]bool)
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	captured := func(obj types.Object) bool {
		if obj == nil || params[obj] {
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		// Declared outside the literal's extent = captured (locals of the
		// enclosing function, or package state).
		return v.Pos() < lit.Pos() || v.Pos() >= lit.End()
	}
	mentionsParam := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && params[pass.TypesInfo.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	reportWrite := func(pos token.Pos, name string) {
		pass.Reportf(pos,
			"closure handed to the parallel pool writes to captured %q without index-partitioned access; partition by the worker index parameter or return results through parallel.Map", name)
	}
	checkLHS := func(lhs ast.Expr) {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[l]; captured(obj) {
				reportWrite(l.Pos(), obj.Name())
			}
		case *ast.IndexExpr:
			root := rootObject(pass, l.X)
			if !captured(root) {
				return
			}
			// Index-partitioning only excuses slices/arrays: concurrent
			// map writes race on the map header no matter the key.
			if tv, ok := pass.TypesInfo.Types[l.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					reportWrite(l.Pos(), root.Name())
					return
				}
			}
			if !mentionsParam(l.Index) {
				reportWrite(l.Pos(), root.Name())
			}
		case *ast.SelectorExpr:
			root := rootObject(pass, l)
			if captured(root) {
				reportWrite(l.Pos(), root.Name())
			}
		case *ast.StarExpr:
			root := rootObject(pass, l.X)
			if captured(root) {
				reportWrite(l.Pos(), root.Name())
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && loopVars[obj] && captured(obj) {
				pass.Reportf(n.Pos(),
					"closure handed to the parallel pool captures loop variable %q; pass the value as a parameter or rebind it before the closure", obj.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkLHS(lhs)
			}
		case *ast.IncDecStmt:
			checkLHS(n.X)
		}
		return true
	})
}
