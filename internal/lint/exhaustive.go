package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"unicode"

	"repro/internal/lint/analysis"
)

// Exhaustive makes enum dispatch total: every member, or a reasoned
// default.
var Exhaustive = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: `switches over string-enum const sets cover every member or carry a reasoned default

The study states, spec validation codes, event types and disk kill points
are declared string-enum const sets (State*, Code*, Event*, Op*): the
classic drift is adding a member and missing one dispatch site, which
then falls through silently. A switch (or if/else chain of == comparisons
against the same expression) whose cases resolve to two or more declared
constants of one such set must either cover every member of the set or
carry a default (terminal else) annotated with a comment explaining why
falling through is safe — an unreasoned default would hide exactly the
new-member bug this analyzer exists to catch. The set is inferred from
the constants used: among their shared CamelCase name prefixes, the one
matching the most same-typed constants in the defining package wins.
Dispatches over raw string literals or mixed conditions are out of scope.`,
	Run: runExhaustive,
}

func runExhaustive(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		f := f
		// If-chains are analyzed from their head only; an IfStmt hanging off
		// another's Else is part of that chain.
		elseArms := make(map[*ast.IfStmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok {
				if arm, ok := ifs.Else.(*ast.IfStmt); ok {
					elseArms[arm] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkEnumSwitch(pass, f, n)
			case *ast.IfStmt:
				if !elseArms[n] {
					checkEnumIfChain(pass, f, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkEnumSwitch handles `switch tag { case Const: ... }`.
func checkEnumSwitch(pass *analysis.Pass, f *ast.File, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	var used []*types.Const
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			c := enumConstOf(pass, e)
			if c == nil {
				return // a literal or computed case: not an enum dispatch
			}
			used = append(used, c)
		}
	}
	var defaultSpan *span
	if deflt != nil {
		defaultSpan = &span{pos: deflt.Pos(), end: deflt.End()}
	}
	checkEnumCoverage(pass, f, sw.Pos(), "a switch", used, defaultSpan)
}

// checkEnumIfChain handles `if x == A { } else if x == B || x == C { } else { }`.
func checkEnumIfChain(pass *analysis.Pass, f *ast.File, head *ast.IfStmt) {
	var used []*types.Const
	var tag string
	var terminal *ast.BlockStmt
	for cur := head; ; {
		if cur.Init != nil {
			return
		}
		consts, condTag, ok := eqChainConsts(pass, cur.Cond)
		if !ok {
			return
		}
		if tag == "" {
			tag = condTag
		} else if tag != condTag {
			return // arms compare different expressions: not one dispatch
		}
		used = append(used, consts...)
		switch e := cur.Else.(type) {
		case nil:
		case *ast.IfStmt:
			cur = e
			continue
		case *ast.BlockStmt:
			terminal = e
		}
		break
	}
	var defaultSpan *span
	if terminal != nil {
		defaultSpan = &span{pos: terminal.Pos(), end: terminal.End()}
	}
	checkEnumCoverage(pass, f, head.Pos(), "an if/else chain", used, defaultSpan)
}

type span struct{ pos, end token.Pos }

// checkEnumCoverage infers the enum set from the used constants and
// reports a missing member (no default) or an unreasoned default.
func checkEnumCoverage(pass *analysis.Pass, f *ast.File, at token.Pos, form string, used []*types.Const, deflt *span) {
	prefix, members, ok := inferEnumSet(used)
	if !ok {
		return
	}
	if deflt != nil {
		// Reported at the dispatch head, not the default arm: a comment
		// anywhere near the arm is what counts as the reason.
		if !spanHasComment(pass.Fset, f, deflt) {
			pass.Reportf(at, "default in %s over %s* (%d members) needs a reason comment: an unreasoned default hides members added later", form, prefix, len(members))
		}
		return
	}
	covered := make(map[string]bool, len(used))
	for _, c := range used {
		covered[c.Name()] = true
	}
	var missing []string
	for name := range members {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(at, "%s over %s* (%d members) misses %s; cover every member or add a default with a reason comment", form, prefix, len(members), strings.Join(missing, ", "))
}

// enumConstOf resolves e to a declared string-typed constant, or nil.
func enumConstOf(pass *analysis.Pass, e ast.Expr) *types.Const {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil {
		return nil
	}
	b, ok := c.Type().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return nil
	}
	return c
}

// eqChainConsts flattens `x == A || x == B` into its constants and the
// shared tag expression (rendered as source text). Any other operator or
// shape fails the whole chain.
func eqChainConsts(pass *analysis.Pass, cond ast.Expr) ([]*types.Const, string, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil, "", false
	}
	switch be.Op {
	case token.LOR:
		left, ltag, ok := eqChainConsts(pass, be.X)
		if !ok {
			return nil, "", false
		}
		right, rtag, ok := eqChainConsts(pass, be.Y)
		if !ok || ltag != rtag {
			return nil, "", false
		}
		return append(left, right...), ltag, true
	case token.EQL:
		if c := enumConstOf(pass, be.Y); c != nil {
			return []*types.Const{c}, types.ExprString(be.X), true
		}
		if c := enumConstOf(pass, be.X); c != nil {
			return []*types.Const{c}, types.ExprString(be.Y), true
		}
	}
	return nil, "", false
}

// inferEnumSet derives the const set being dispatched on. All used
// constants must share a defining package and an identical type, and at
// least two distinct members must appear (a single comparison is a guard,
// not a dispatch). Candidate set names are the CamelCase prefixes common
// to every used constant; the candidate matching the most same-typed
// constants in the defining package wins (ties to the longer prefix).
func inferEnumSet(used []*types.Const) (string, map[string]*types.Const, bool) {
	if len(used) == 0 {
		return "", nil, false
	}
	first := used[0]
	distinct := make(map[string]bool)
	for _, c := range used {
		if c.Pkg() != first.Pkg() || !types.Identical(c.Type(), first.Type()) {
			return "", nil, false
		}
		distinct[c.Name()] = true
	}
	if len(distinct) < 2 {
		return "", nil, false
	}
	var candidates []string
	for _, p := range camelPrefixes(first.Name()) {
		ok := true
		for name := range distinct {
			if !strings.HasPrefix(name, p) {
				ok = false
				break
			}
		}
		if ok {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return "", nil, false
	}
	scope := first.Pkg().Scope()
	var bestPrefix string
	var best map[string]*types.Const
	for _, p := range candidates {
		members := make(map[string]*types.Const)
		for _, name := range scope.Names() {
			if !strings.HasPrefix(name, p) {
				continue
			}
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), first.Type()) {
				continue
			}
			members[name] = c
		}
		if len(members) > len(best) || (len(members) == len(best) && len(p) > len(bestPrefix)) {
			bestPrefix, best = p, members
		}
	}
	if len(best) < 2 {
		return "", nil, false
	}
	return bestPrefix, best, true
}

// camelPrefixes returns the prefixes of name ending at CamelCase word
// boundaries, shortest first, including the full name.
func camelPrefixes(name string) []string {
	var out []string
	runes := []rune(name)
	for i := 1; i < len(runes); i++ {
		if unicode.IsUpper(runes[i]) && !unicode.IsUpper(runes[i-1]) {
			out = append(out, string(runes[:i]))
		}
	}
	out = append(out, name)
	return out
}

// spanHasComment reports whether a comment sits inside the span, on its
// first line, or on the line directly above it — the shapes a reasoned
// `default:` takes in practice.
func spanHasComment(fset *token.FileSet, f *ast.File, s *span) bool {
	startLine := fset.Position(s.pos).Line
	for _, cg := range f.Comments {
		if cg.Pos() >= s.pos && cg.Pos() <= s.end {
			return true
		}
		line := fset.Position(cg.End()).Line
		if line == startLine || line == startLine-1 {
			return true
		}
	}
	return false
}
