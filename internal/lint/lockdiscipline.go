package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// LockDiscipline enforces the service plane's mutex and slot-semaphore
// contracts.
var LockDiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: `mutexes release on every path and never guard blocking operations

The study service multiplexes many tenants over a handful of short
critical sections; one leaked or blocking-while-held mutex stalls the
whole /v1 plane. Three rules, checked path-sensitively per function:

(1) every sync.Mutex/RWMutex Lock/RLock is paired with an Unlock/RUnlock
(or a defer of one) on every path out of the function, and branches may
not disagree about what is held; (2) no blocking operation — a channel
send, a sync.WaitGroup.Wait, or a write to an http.ResponseWriter — runs
while any mutex is held (a channel *receive* is allowed: releasing a slot
semaphore under the handle lock is the sanctioned OnDayEnd pattern);
(3) the day-slot semaphore is pair-checked: a channel-typed struct field
a package's OnDayStart hook acquires (sends to) must be released
(received from) by an OnDayEnd hook in the same package, and vice versa —
an unmatched acquire leaks a day slot forever and starves the fleet.`,
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *analysis.Pass) (any, error) {
	sem := newSemPairs()
	// Collect every declared function body first: a hook assignment may
	// reference a function declared later in the file.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				sem.bodies[fn] = fd.Body
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockFlow(pass, fd.Body, fd.Name.Name)
			// Function literals get their own flow analysis: a closure's
			// lock lifetime is its own call, not its creator's.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockFlow(pass, lit.Body, fd.Name.Name+" (closure)")
				}
				return true
			})
			sem.scanHookAssigns(pass, fd)
		}
	}
	sem.report(pass)
	return nil, nil
}

// ---- mutex flow analysis ----

// lockState is the set of held mutexes at one program point, keyed by the
// rendered receiver expression ("h.mu", "sh.mu"). defer-released locks
// stay in the set (they are held until return) but never trip the
// release-on-all-paths rule.
type lockState struct {
	held map[string]token.Pos // key -> Lock position
	def  map[string]bool      // key -> released by defer
}

func newLockState() *lockState {
	return &lockState{held: make(map[string]token.Pos), def: make(map[string]bool)}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.def {
		c.def[k] = v
	}
	return c
}

// leaked returns the held keys not covered by a defer, sorted.
func (s *lockState) leaked() []string {
	var out []string
	for k := range s.held {
		if !s.def[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (s *lockState) equal(o *lockState) bool {
	if len(s.held) != len(o.held) {
		return false
	}
	for k := range s.held {
		if _, ok := o.held[k]; !ok {
			return false
		}
	}
	return true
}

// lockFlow walks one function body tracking held mutexes.
type lockFlow struct {
	pass  *analysis.Pass
	fname string
}

// checkLockFlow runs the path-sensitive analysis over one function body.
func checkLockFlow(pass *analysis.Pass, body *ast.BlockStmt, fname string) {
	lf := &lockFlow{pass: pass, fname: fname}
	out, _ := lf.block(body, newLockState())
	for _, k := range out.leaked() {
		pass.Reportf(out.held[k], "%s: %s.Lock() is not released on the fall-through path; add the missing Unlock or defer it", fname, k)
	}
}

// block processes a statement list. Returns the fall-through state and
// whether the list terminates (return/panic on every path).
func (lf *lockFlow) block(b *ast.BlockStmt, in *lockState) (*lockState, bool) {
	st := in
	for _, s := range b.List {
		var term bool
		st, term = lf.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// stmt processes one statement, returning the out-state and whether the
// statement terminates the path.
func (lf *lockFlow) stmt(s ast.Stmt, in *lockState) (*lockState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		lf.expr(s.X, in)
		return in, false
	case *ast.SendStmt:
		lf.expr(s.Chan, in)
		lf.expr(s.Value, in)
		if ks := in.leakedOrDeferred(); len(ks) > 0 {
			lf.pass.Reportf(s.Arrow, "%s: channel send while holding %s; a blocked receiver wedges every caller of this lock", lf.fname, ks[0])
		}
		return in, false
	case *ast.DeferStmt:
		if key, op, ok := lf.mutexOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			if _, held := in.held[key]; held {
				in.def[key] = true
			}
		}
		// Arguments of the deferred call evaluate now.
		for _, a := range s.Call.Args {
			lf.expr(a, in)
		}
		return in, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lf.expr(e, in)
		}
		for _, e := range s.Lhs {
			lf.expr(e, in)
		}
		return in, false
	case *ast.IncDecStmt:
		lf.expr(s.X, in)
		return in, false
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				lf.expr(e, in)
				return false
			}
			return true
		})
		return in, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lf.expr(e, in)
		}
		for _, k := range in.leaked() {
			lf.pass.Reportf(s.Pos(), "%s: returns while holding %s; release it before returning or defer the Unlock", lf.fname, k)
		}
		return in, true
	case *ast.BranchStmt:
		// break/continue/goto: approximate as terminating this list (the
		// loop-level balance check below catches imbalance across
		// iterations).
		return in, true
	case *ast.BlockStmt:
		return lf.block(s, in)
	case *ast.IfStmt:
		if s.Init != nil {
			var term bool
			in, term = lf.stmt(s.Init, in)
			if term {
				return in, true
			}
		}
		lf.expr(s.Cond, in)
		thenSt, thenTerm := lf.block(s.Body, in.clone())
		elseSt, elseTerm := in.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = lf.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return thenSt, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			if !thenSt.equal(elseSt) {
				lf.pass.Reportf(s.If, "%s: branches disagree about held mutexes (one path holds %v, the other %v); release on both or neither", lf.fname, thenSt.heldKeys(), elseSt.heldKeys())
			}
			return thenSt, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			in, _ = lf.stmt(s.Init, in)
		}
		if s.Cond != nil {
			lf.expr(s.Cond, in)
		}
		bodySt, _ := lf.block(s.Body, in.clone())
		if s.Post != nil {
			bodySt, _ = lf.stmt(s.Post, bodySt)
		}
		if !bodySt.equal(in) {
			lf.pass.Reportf(s.For, "%s: loop body changes the held-mutex set (%v -> %v); a lock taken in one iteration leaks into the next", lf.fname, in.heldKeys(), bodySt.heldKeys())
		}
		return in, false
	case *ast.RangeStmt:
		lf.expr(s.X, in)
		bodySt, _ := lf.block(s.Body, in.clone())
		if !bodySt.equal(in) {
			lf.pass.Reportf(s.For, "%s: loop body changes the held-mutex set (%v -> %v); a lock taken in one iteration leaks into the next", lf.fname, in.heldKeys(), bodySt.heldKeys())
		}
		return in, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			in, _ = lf.stmt(s.Init, in)
		}
		if s.Tag != nil {
			lf.expr(s.Tag, in)
		}
		return lf.caseBodies(s.Body, in, s.Switch)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in, _ = lf.stmt(s.Init, in)
		}
		return lf.caseBodies(s.Body, in, s.Switch)
	case *ast.SelectStmt:
		outs := make([]*lockState, 0, len(s.Body.List))
		allTerm := len(s.Body.List) > 0
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			st := in.clone()
			if cc.Comm != nil {
				var term bool
				st, term = lf.stmt(cc.Comm, st)
				_ = term
			}
			term := false
			for _, bs := range cc.Body {
				st, term = lf.stmt(bs, st)
				if term {
					break
				}
			}
			if !term {
				outs = append(outs, st)
				allTerm = false
			}
		}
		if len(outs) == 0 {
			if allTerm {
				return in, true
			}
			return in, false
		}
		for _, o := range outs[1:] {
			if !o.equal(outs[0]) {
				lf.pass.Reportf(s.Select, "%s: select cases disagree about held mutexes; release on every case", lf.fname)
				break
			}
		}
		return outs[0], false
	case *ast.GoStmt:
		// The goroutine body is analyzed as its own function literal.
		for _, a := range s.Call.Args {
			lf.expr(a, in)
		}
		return in, false
	case *ast.LabeledStmt:
		return lf.stmt(s.Stmt, in)
	default:
		return in, false
	}
}

// caseBodies merges switch case bodies like if branches.
func (lf *lockFlow) caseBodies(body *ast.BlockStmt, in *lockState, pos token.Pos) (*lockState, bool) {
	var outs []*lockState
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		st := in.clone()
		term := false
		for _, bs := range cc.Body {
			st, term = lf.stmt(bs, st)
			if term {
				break
			}
		}
		if !term {
			outs = append(outs, st)
		}
	}
	if !hasDefault {
		outs = append(outs, in.clone()) // no case taken
	}
	if len(outs) == 0 {
		return in, true
	}
	for _, o := range outs[1:] {
		if !o.equal(outs[0]) {
			lf.pass.Reportf(pos, "%s: switch cases disagree about held mutexes; release on every case", lf.fname)
			break
		}
	}
	return outs[0], false
}

// expr handles Lock/Unlock calls and blocking operations inside an
// expression. Function literals are skipped — they run later, under their
// own analysis.
func (lf *lockFlow) expr(e ast.Expr, st *lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op, ok := lf.mutexOp(call); ok {
			switch op {
			case "Lock", "RLock":
				st.held[key] = call.Pos()
			case "Unlock", "RUnlock":
				delete(st.held, key)
				delete(st.def, key)
			}
			return true
		}
		lf.blockingCall(call, st)
		return true
	})
}

// blockingCall reports blocking operations performed while a mutex is
// held: WaitGroup.Wait and writes to an http.ResponseWriter.
func (lf *lockFlow) blockingCall(call *ast.CallExpr, st *lockState) {
	ks := st.leakedOrDeferred()
	if len(ks) == 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvT := lf.pass.TypesInfo.TypeOf(sel.X)
	if recvT == nil {
		return
	}
	if sel.Sel.Name == "Wait" && isSyncType(recvT, "WaitGroup") {
		lf.pass.Reportf(call.Pos(), "%s: WaitGroup.Wait while holding %s; waiters that need the lock deadlock", lf.fname, ks[0])
	}
	if isResponseWriter(recvT) {
		lf.pass.Reportf(call.Pos(), "%s: http.ResponseWriter.%s while holding %s; a slow client stalls the critical section", lf.fname, sel.Sel.Name, ks[0])
	}
}

// leakedOrDeferred returns every held mutex key (defer-released included:
// the lock is still held when a blocking op runs), sorted.
func (s *lockState) leakedOrDeferred() []string {
	var out []string
	for k := range s.held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s *lockState) heldKeys() []string { return s.leakedOrDeferred() }

// mutexOp matches mu.Lock()/RLock()/Unlock()/RUnlock() on a
// sync.Mutex/RWMutex-typed receiver and returns the rendered receiver key.
func (lf *lockFlow) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := lf.pass.TypesInfo.TypeOf(sel.X)
	if !isSyncType(t, "Mutex") && !isSyncType(t, "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isSyncType reports whether t (or its pointee) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isResponseWriter reports whether t is net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// ---- slot-semaphore pairing ----

// semPairs accumulates, per package, which channel-typed struct fields the
// OnDayStart hooks acquire and the OnDayEnd hooks release.
type semPairs struct {
	acquires map[*types.Var]token.Pos // sem field -> send position (OnDayStart)
	releases map[*types.Var]token.Pos // sem field -> recv position (OnDayEnd)
	// funcBodies maps same-package declared functions to their bodies so
	// hook closures that delegate to helpers are still searched.
	bodies map[*types.Func]*ast.BlockStmt
}

func newSemPairs() *semPairs {
	return &semPairs{
		acquires: make(map[*types.Var]token.Pos),
		releases: make(map[*types.Var]token.Pos),
		bodies:   make(map[*types.Func]*ast.BlockStmt),
	}
}

// scanHookAssigns finds `x.OnDayStart = f` / `x.OnDayEnd = f` assignments
// and records the semaphore operations reachable from f.
func (sp *semPairs) scanHookAssigns(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			hook := sel.Sel.Name
			if hook != "OnDayStart" && hook != "OnDayEnd" {
				continue
			}
			body := sp.hookBody(pass, as.Rhs[i])
			if body == nil {
				continue
			}
			sends, recvs := sp.chanFieldOps(pass, body, make(map[*types.Func]bool))
			if hook == "OnDayStart" {
				for v, pos := range sends {
					if _, seen := sp.acquires[v]; !seen {
						sp.acquires[v] = pos
					}
				}
			} else {
				for v, pos := range recvs {
					if _, seen := sp.releases[v]; !seen {
						sp.releases[v] = pos
					}
				}
			}
		}
		return true
	})
}

// hookBody resolves the assigned hook expression to a function body: a
// literal, or a same-package declared function/method value.
func (sp *semPairs) hookBody(pass *analysis.Pass, e ast.Expr) *ast.BlockStmt {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return e.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[e].(*types.Func); ok {
			return sp.bodies[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return sp.bodies[fn]
		}
	}
	return nil
}

// chanFieldOps collects sends to and receives from channel-typed struct
// fields reachable from body: directly, or through statically-resolved
// same-package callees (hooks that delegate their semaphore handling).
func (sp *semPairs) chanFieldOps(pass *analysis.Pass, body *ast.BlockStmt, seen map[*types.Func]bool) (sends, recvs map[*types.Var]token.Pos) {
	sends = make(map[*types.Var]token.Pos)
	recvs = make(map[*types.Var]token.Pos)
	merge := func(dst, src map[*types.Var]token.Pos) {
		for v, p := range src {
			if _, ok := dst[v]; !ok {
				dst[v] = p
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if v := chanFieldOf(pass, n.Chan); v != nil {
				if _, ok := sends[v]; !ok {
					sends[v] = n.Arrow
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if v := chanFieldOf(pass, n.X); v != nil {
					if _, ok := recvs[v]; !ok {
						recvs[v] = n.OpPos
					}
				}
			}
		case *ast.CallExpr:
			var fn *types.Func
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
			}
			if fn == nil || seen[fn] {
				break
			}
			if b := sp.bodies[fn]; b != nil {
				seen[fn] = true
				s2, r2 := sp.chanFieldOps(pass, b, seen)
				merge(sends, s2)
				merge(recvs, r2)
			}
		}
		return true
	})
	return sends, recvs
}

// chanFieldOf resolves e to a channel-typed struct field, or nil.
func chanFieldOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	return v
}

// report flags unmatched semaphore halves.
func (sp *semPairs) report(pass *analysis.Pass) {
	var acq []*types.Var
	for v := range sp.acquires {
		acq = append(acq, v)
	}
	sort.Slice(acq, func(i, j int) bool { return acq[i].Pos() < acq[j].Pos() })
	for _, v := range acq {
		if _, ok := sp.releases[v]; !ok {
			pass.Reportf(sp.acquires[v],
				"OnDayStart acquires slot semaphore %s but no OnDayEnd in this package releases it; every day leaks a slot until the fleet starves", v.Name())
		}
	}
	var rel []*types.Var
	for v := range sp.releases {
		rel = append(rel, v)
	}
	sort.Slice(rel, func(i, j int) bool { return rel[i].Pos() < rel[j].Pos() })
	for _, v := range rel {
		if _, ok := sp.acquires[v]; !ok {
			pass.Reportf(sp.releases[v],
				"OnDayEnd releases slot semaphore %s but no OnDayStart in this package acquires it; the release blocks or frees a slot that was never taken", v.Name())
		}
	}
}
