package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// APICodes keeps the /v1 error vocabulary and wire schema stable by
// construction.
var APICodes = &analysis.Analyzer{
	Name: "apicodes",
	Doc: `error codes come from the declared registry; JSON tags are snake_case

Clients program against the /v1 error codes ("invalid_spec",
"out_of_range", ...) and the StudySpec field names; both are API surface
that must never drift through a typo at one call site. Two rules in the
scoped packages: (1) every value passed where an error code is expected —
a parameter named "code", a struct field named "Code" assigned or
composite-initialised — must be a declared constant whose name matches
^(Err)?Code, or a parameter named "code" forwarding one (enforcement
then applies at that function's call sites). Raw string literals and
arbitrary variables are findings. (2) every json struct tag must name the
field in snake_case (or "-"): lower-case letters, digits and
underscores, nothing else.`,
	Run: runAPICodes,
}

var snakeCaseTag = regexp.MustCompile(`^[a-z0-9_]+$`)

func runAPICodes(pass *analysis.Pass) (any, error) {
	ac := &apiCodes{pass: pass, codeParams: make(map[types.Object]bool)}
	// First pass: collect every function/closure parameter named "code".
	// Such a parameter may forward to a code slot (the obligation moves to
	// its call sites); a *local* named "code" gets no such pass.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft = n.Type
			case *ast.FuncLit:
				ft = n.Type
			default:
				return true
			}
			if ft.Params == nil {
				return true
			}
			for _, field := range ft.Params.List {
				for _, name := range field.Names {
					if name.Name == "code" {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							ac.codeParams[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkJSONTags(pass, n)
			case *ast.CallExpr:
				ac.checkCodeArgs(n)
			case *ast.CompositeLit:
				ac.checkCodeFields(n)
			case *ast.AssignStmt:
				ac.checkCodeAssigns(n)
			}
			return true
		})
	}
	return nil, nil
}

// apiCodes carries the per-package set of parameters named "code".
type apiCodes struct {
	pass       *analysis.Pass
	codeParams map[types.Object]bool
}

// checkJSONTags enforces snake_case on every json tag name.
func checkJSONTags(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if field.Tag == nil {
			continue
		}
		raw, err := strconv.Unquote(field.Tag.Value)
		if err != nil {
			continue
		}
		tag, ok := reflect.StructTag(raw).Lookup("json")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(tag, ",")
		if name == "" || name == "-" {
			continue
		}
		if !snakeCaseTag.MatchString(name) {
			pass.Reportf(field.Tag.Pos(), "json tag %q is not snake_case; the wire schema uses lower_case_underscore names only", name)
		}
	}
}

// checkCodeArgs flags non-registry values passed to parameters named
// "code". The signature is read from the call's function type, so it
// covers declared functions, methods and function-typed locals alike.
func (ac *apiCodes) checkCodeArgs(call *ast.CallExpr) {
	pass := ac.pass
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if params.At(i).Name() != "code" {
			continue
		}
		if !ac.isRegistryCode(call.Args[i]) {
			pass.Reportf(call.Args[i].Pos(), "error code must be a declared Code*/ErrCode* constant, not %s; ad-hoc codes break clients that match on them", codeExprDesc(call.Args[i]))
		}
	}
}

// checkCodeFields flags non-registry values in `Code:` composite-literal
// fields of structs whose type lives in a scoped package.
func (ac *apiCodes) checkCodeFields(lit *ast.CompositeLit) {
	pass := ac.pass
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Code" {
			continue
		}
		if !isCodeStringField(pass, key) {
			continue
		}
		if !ac.isRegistryCode(kv.Value) {
			pass.Reportf(kv.Value.Pos(), "error code must be a declared Code*/ErrCode* constant, not %s; ad-hoc codes break clients that match on them", codeExprDesc(kv.Value))
		}
	}
}

// checkCodeAssigns flags `x.Code = <non-registry>` assignments.
func (ac *apiCodes) checkCodeAssigns(as *ast.AssignStmt) {
	pass := ac.pass
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Code" {
			continue
		}
		if !isCodeStringField(pass, sel.Sel) {
			continue
		}
		if !ac.isRegistryCode(as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(), "error code must be a declared Code*/ErrCode* constant, not %s; ad-hoc codes break clients that match on them", codeExprDesc(as.Rhs[i]))
		}
	}
}

// isCodeStringField reports whether id resolves to a string-typed struct
// field (so `Code` keys on non-API structs with other types stay out of
// scope).
func isCodeStringField(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isRegistryCode reports whether e is an acceptable error-code value: a
// declared constant named Code*/ErrCode*, or a parameter named "code"
// (whose call sites are checked in turn).
func (ac *apiCodes) isRegistryCode(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return ac.registryObject(ac.pass.TypesInfo.Uses[e])
	case *ast.SelectorExpr:
		return ac.registryObject(ac.pass.TypesInfo.Uses[e.Sel])
	}
	return false
}

func (ac *apiCodes) registryObject(obj types.Object) bool {
	switch obj := obj.(type) {
	case *types.Const:
		return strings.HasPrefix(obj.Name(), "Code") || strings.HasPrefix(obj.Name(), "ErrCode")
	case *types.Var:
		// A parameter named "code": the forwarding function's own call
		// sites carry the obligation.
		return ac.codeParams[obj]
	}
	return false
}

// codeExprDesc renders a short description for the diagnostic.
func codeExprDesc(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return "a raw string literal"
	case *ast.Ident:
		return "variable " + e.Name
	case *ast.SelectorExpr:
		return "expression " + e.Sel.Name
	default:
		return "a computed expression"
	}
}
