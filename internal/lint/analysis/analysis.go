// Package analysis is a deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The repo
// vendors no third-party modules, so sslint carries its own framework; the
// shapes match the upstream API closely enough that an analyzer written
// here ports to x/tools mechanically if the module ever grows the
// dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. Run inspects the package presented by the
// Pass and reports findings via Pass.Report; the returned value is unused
// today (upstream uses it for facts) and may be nil.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sslint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary, the
	// rest explains the precise rule and its escape hatches.
	Doc string
	// Run performs the check.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, already filtered by the
	// driver's scope configuration (a file excluded for this analyzer is
	// simply absent).
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
