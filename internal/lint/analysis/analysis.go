// Package analysis is a deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The repo
// vendors no third-party modules, so sslint carries its own framework; the
// shapes match the upstream API closely enough that an analyzer written
// here ports to x/tools mechanically if the module ever grows the
// dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/callgraph"
)

// Analyzer is one static check. Run inspects the package presented by the
// Pass and reports findings via Pass.Report; the returned value is unused
// today (upstream uses it for analyzer results) and may be nil.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sslint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary, the
	// rest explains the precise rule and its escape hatches.
	Doc string
	// Run performs the check.
	Run func(*Pass) (any, error)
	// FactTypes declares the fact types this analyzer exports (one
	// prototype value per type). An analyzer with FactTypes runs over
	// every package in the dependency closure — facts must exist for
	// exempt packages too, so impurity cannot launder through them — with
	// diagnostics filtered to the scoped sink side by the driver.
	FactTypes []Fact
	// Requires lists analyzers whose facts this analyzer imports. The
	// driver runs requirements first on each package, so by the time Run
	// executes, the current package's objects already carry the required
	// analyzers' facts.
	Requires []*Analyzer
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's complete non-test syntax. Scope-exempt
	// files are present — fact computation must see them — and the driver
	// drops diagnostics positioned inside them afterwards.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// Universe accumulates every named type seen so far in the run's
	// bottom-up package order; interprocedural analyzers resolve interface
	// method calls against it (class-hierarchy analysis).
	Universe *callgraph.Universe

	// Fact plumbing, wired by the driver. Facts attach to type-checker
	// objects; because every package in a run shares one loader (and thus
	// one object graph), a fact exported while analyzing a dependency is
	// importable verbatim when a later package mentions the same object —
	// the in-memory equivalent of upstream's fact serialization, carried
	// across the recursive type-check in internal/lint/load and exported
	// bottom-up in dependency order.

	// ExportObjectFact attaches fact to obj (a package-level object of the
	// current package, or a method thereof).
	ExportObjectFact func(obj types.Object, fact Fact)
	// ImportObjectFact copies obj's fact of *fact's concrete type into
	// fact and reports whether one was found. obj may belong to any
	// package analyzed earlier in the run (or the current one).
	ImportObjectFact func(obj types.Object, fact Fact) bool
	// ExportPackageFact attaches fact to the current package.
	ExportPackageFact func(fact Fact)
	// ImportPackageFact copies pkg's fact of *fact's concrete type into
	// fact and reports whether one was found.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool

	// InSinkScope reports whether the named analyzer's diagnostics would
	// be reported at a position inside pkgPath/filename under the run's
	// scope. Interprocedural analyzers use it to report at the scope
	// frontier: a call from gated code into exempt code is the sink, the
	// exempt body is the source, and exemption applies at the sink only.
	InSinkScope func(analyzer, pkgPath, filename string) bool
	// TrustedImpure reports whether the function (by types.Func.FullName)
	// is asserted fingerprint-neutral by the run's scope configuration,
	// so its own impurity is not reported at call sites.
	TrustedImpure func(fullName string) bool

	// GoldenPath returns the golden schema file configured for this
	// analyzer by the run's scope ("" when none is configured — fixture
	// runs under a nil scope extract but never compare). Relative paths
	// are resolved by the analyzer against the analyzed module's root.
	GoldenPath func() string
}

// Fact is a typed datum attached to a types.Object or *types.Package by
// one analyzer and importable by analyzers that require it. Implementations
// must be pointer types so ImportObjectFact can copy into them.
type Fact interface{ AFact() }

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
