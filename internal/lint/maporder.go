package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// MapOrder flags ranging over a map when the loop body feeds an
// order-dependent sink and no deterministic sort rescues the result.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: `flag map iteration that feeds order-dependent sinks

Go randomises map iteration order per run, so a map range whose body
appends to a slice, sends on a channel, writes into a hash/fingerprint or
byte sink, or calls through an interface sink makes the result depend on
iteration order — exactly the nondeterminism the golden fingerprint tests
only catch probabilistically.

Order-independent reductions (sums, maxima, counts, writes into another
map or set) are not flagged. The canonical collect-keys-then-sort idiom is
recognised: a loop that only appends to a slice which is sorted later in
the same block (sort.* or slices.Sort*) passes. Anything else needs a
deterministic sort or a justified //sslint:ignore maporder directive
(appropriate only where the nondeterminism is provably sunk, e.g. a
telemetry snapshot that is itself re-sorted before use).

It also exports a MapOrdered fact on every function containing an
unrescued order-dependent map range — in every package, scoped or not —
which purity propagates through the call graph to catch map-order-shaped
values laundered through helpers in exempt packages.`,
	Run:       runMapOrder,
	FactTypes: []analysis.Fact{(*MapOrdered)(nil)},
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := blockStmts(n)
			if !ok {
				return true
			}
			for i, stmt := range block {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					continue
				}
				checkMapRange(pass, rs, block[i+1:])
			}
			return true
		})
	}
	return nil, nil
}

// blockStmts returns the statement list of any block-like node.
func blockStmts(n ast.Node) ([]ast.Stmt, bool) {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List, true
	case *ast.CaseClause:
		return n.Body, true
	case *ast.CommClause:
		return n.Body, true
	}
	return nil, false
}

// isMapRange reports whether rs ranges over a map value.
func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body for order-dependent sinks.
// rest is the tail of the enclosing block after the range statement, where
// a rescuing sort may appear.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"map iteration sends on a channel: receive order depends on map order; collect and sort first")
			exportSourceFact(pass, n.Pos(), new(MapOrdered), &MapOrdered{Via: "channel send in map range"})
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
					continue
				}
				target := rootObject(pass, call.Args[0])
				if target == nil || sortedLater(pass, target, rest) {
					continue
				}
				pass.Reportf(call.Pos(),
					"map iteration appends to %q with no later sort in this block: element order depends on map order; sort %q before use or iterate sorted keys", target.Name(), target.Name())
				exportSourceFact(pass, call.Pos(), new(MapOrdered), &MapOrdered{Via: "unsorted append in map range"})
			}
		case *ast.CallExpr:
			checkSinkCall(pass, n)
		}
		return true
	})
}

// checkSinkCall flags calls inside a map-range body that push data into an
// order-sensitive sink: hash/byte-writer methods, or side-effecting calls
// through an interface.
func checkSinkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if selection, ok := pass.TypesInfo.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			pass.Reportf(call.Pos(),
				"map iteration writes into a byte/hash sink via %s: the digest depends on map order; iterate sorted keys", name)
			exportSourceFact(pass, call.Pos(), new(MapOrdered), &MapOrdered{Via: "byte/hash sink write in map range"})
		}
	default:
		// A statement-position call through an interface method is a
		// sink we cannot see into (telemetry handles, io writers behind
		// interfaces, observers): the emission order leaks map order.
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return
		}
		if _, isIface := selection.Recv().Underlying().(*types.Interface); !isIface {
			return
		}
		if callHasNoResult(pass, call) {
			pass.Reportf(call.Pos(),
				"map iteration calls interface method %s for effect: emission order depends on map order; iterate sorted keys", name)
			exportSourceFact(pass, call.Pos(), new(MapOrdered), &MapOrdered{Via: "interface-effect call in map range"})
		}
	}
}

// callHasNoResult reports whether the call's value is unused as far as the
// type checker is concerned (it types as void / appears for effect only).
func callHasNoResult(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return true
	}
	return tv.IsVoid()
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject resolves the base identifier of an expression (x, x.f, x[i])
// to its object.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedLater reports whether some statement in rest sorts target: a call
// to sort.* or slices.* mentioning the object anywhere in its arguments.
func sortedLater(pass *analysis.Pass, target types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == target {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
