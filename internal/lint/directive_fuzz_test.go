package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzParseDirectives feeds arbitrary comment bytes through the
// //sslint:ignore parser: it must never panic, and every parsed directive
// must be internally consistent — a well-formed one carries an analyzer
// and a reason, a malformed one says what is missing, and the coverage
// span never precedes the directive line. Unknown analyzer names are the
// suppress step's job, so here they only need to round-trip losslessly.
func FuzzParseDirectives(f *testing.F) {
	seeds := []string{
		"//sslint:ignore maporder reduction is commutative",
		"//sslint:ignore maporder",
		"//sslint:ignore",
		"//sslint:ignore   ",
		"//sslint:ignore notananalyzer some reason",
		"// sslint:ignore maporder spaced prefix still counts",
		"//sslint:ignore maporder reason // trailing want comment",
		"//sslint:ignoremaporder no space after prefix",
		"//sslint:ignore maporder \x00\x01\x02",
		"//sslint:ignore maporder " + strings.Repeat("長", 300),
		"/*sslint:ignore maporder block comments never carry directives*/",
		"//sslint:ignore\tmaporder\ttabs separate fields too",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, comment string) {
		// Mount the fuzz input as a comment in an otherwise-valid file; a
		// comment that breaks the file (embedded newline starting junk,
		// stray */) is go/parser's problem, not the directive parser's.
		src := "package p\n\n" + comment + "\nvar x = 0\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip()
		}
		dirs := parseDirectives(fset, file)
		for _, d := range dirs {
			if d.malform == "" && (d.analyzer == "" || d.reason == "") {
				t.Fatalf("well-formed directive missing analyzer (%q) or reason (%q) for input %q", d.analyzer, d.reason, comment)
			}
			if d.malform != "" && d.reason != "" {
				t.Fatalf("directive is both malformed (%q) and reasoned (%q) for input %q", d.malform, d.reason, comment)
			}
			if d.endLine < d.line {
				t.Fatalf("directive span ends (%d) before it starts (%d) for input %q", d.endLine, d.line, comment)
			}
			if d.file != "fuzz.go" {
				t.Fatalf("directive attributed to %q, want fuzz.go", d.file)
			}
		}
		// The suppress step must also hold up: unknown analyzers become
		// findings, never panics, regardless of the directive bytes.
		known := map[string]bool{"maporder": true}
		ran := map[string]bool{"maporder": true}
		_ = suppress(fset, nil, dirs, ran, known)
	})
}
