package load_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// TestBlankImportRecorded proves a blank import is a real dependency
// edge: the blank-imported package's init still runs, so the loader must
// record the edge and the driver must compute facts for it — and
// analyzing the importer must stay clean, because no call reaches the
// impurity.
func TestBlankImportRecorded(t *testing.T) {
	loader := load.NewFixtureLoader("../testdata/src")
	pkgs, err := loader.Load("blankimp/a")
	if err != nil {
		t.Fatalf("loading blankimp/a: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	imports := pkgs[0].Imports
	if len(imports) != 1 || imports[0].PkgPath != "blankimp/impure" {
		t.Fatalf("blank import edge not recorded: got %d imports %v", len(imports), importPaths(imports))
	}
	findings, err := lint.Run(pkgs, lint.All(), nil)
	if err != nil {
		t.Fatalf("analyzing blankimp/a: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding [%s] %s:%d: %s", f.Analyzer, f.File, f.Line, f.Message)
	}
}

// TestImportCycleError proves a cycle is rejected with a message naming
// a package on the cycle, rather than recursing forever or deadlocking
// the type-checker.
func TestImportCycleError(t *testing.T) {
	loader := load.NewFixtureLoader("../testdata/src")
	_, err := loader.Load("cycle/a")
	if err == nil {
		t.Fatal("loading cycle/a succeeded; want an import-cycle error")
	}
	if !strings.Contains(err.Error(), "import cycle through") {
		t.Fatalf("error %q does not mention the import cycle", err)
	}
}

// TestTestFilesDoNotTaint proves _test.go files are outside the loaded
// file set: a package whose only wall-clock use is in its test file
// loads with one file and analyzes clean.
func TestTestFilesDoNotTaint(t *testing.T) {
	loader := load.NewFixtureLoader("../testdata/src")
	pkgs, err := loader.Load("testonly/a")
	if err != nil {
		t.Fatalf("loading testonly/a: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("got %d packages / %d files, want 1 / 1 (no _test.go)", len(pkgs), len(pkgs[0].Files))
	}
	findings, err := lint.Run(pkgs, lint.All(), nil)
	if err != nil {
		t.Fatalf("analyzing testonly/a: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding [%s] %s:%d: %s", f.Analyzer, f.File, f.Line, f.Message)
	}
}

func importPaths(pkgs []*load.Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.PkgPath)
	}
	return out
}
