// Package load turns Go source on disk into type-checked packages for the
// sslint analyzers, with no dependency on golang.org/x/tools or on network
// access. Local packages (anything under the module path) are parsed and
// type-checked recursively; standard-library imports are satisfied by the
// stdlib source importer, which type-checks GOROOT sources offline.
//
// Two flavours exist:
//
//   - NewModuleLoader loads real packages from a module root, resolving
//     "./..."-style patterns by walking the tree (testdata and hidden
//     directories are skipped, exactly as the go tool does).
//   - NewFixtureLoader loads analysistest-style fixtures from a
//     testdata/src root, where an import path "a/b" resolves to the
//     directory <root>/a/b if it exists and falls back to the standard
//     library otherwise.
//
// Only non-test files are loaded: sslint enforces invariants on the
// simulation code proper, while tests remain free to use wall-clock
// timeouts and ad-hoc goroutines.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Imports holds the local (same module / same fixture root) packages
	// this one imports, including blank imports, sorted by import path.
	// Standard-library imports are absent: facts only attach to local
	// code. The driver walks these edges to analyze dependencies
	// bottom-up, so facts are always exported before they are imported.
	Imports []*Package
}

// InjectedFile is a synthetic source file appended to a package at load
// time. Tests use it to prove the analyzers catch regressions: injecting a
// time.Now() into repro/internal/core must produce a finding without
// touching the real tree.
type InjectedFile struct {
	Name string // file name, e.g. "injected.go"
	Src  string // complete file source
}

// Loader loads and caches packages against one shared FileSet. It is not
// safe for concurrent use.
type Loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	fixtures   string // testdata/src root, fixture mode

	// Inject appends synthetic files to the named packages (keyed by
	// import path) when they are loaded. Set before the first Load.
	Inject map[string][]InjectedFile

	ctxt     build.Context
	std      types.ImporterFrom
	cache    map[string]*Package
	checking map[string]bool
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	ctxt := build.Default
	// Cgo-free loading: the pure-Go fallbacks in net and friends
	// type-check from source; cgo preprocessing would need the C
	// toolchain and adds nothing for analysis.
	ctxt.CgoEnabled = false
	build.Default.CgoEnabled = false
	return &Loader{
		fset:     fset,
		ctxt:     ctxt,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:    make(map[string]*Package),
		checking: make(map[string]bool),
	}
}

// NewModuleLoader returns a loader rooted at the module directory
// containing go.mod; the module path is read from it.
func NewModuleLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePathOf(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.moduleDir = abs
	l.modulePath = modPath
	return l, nil
}

// NewFixtureLoader returns a loader that resolves import paths under
// srcRoot first (analysistest layout: <srcRoot>/<importpath>/*.go) and the
// standard library second.
func NewFixtureLoader(srcRoot string) *Loader {
	l := newLoader()
	l.fixtures = srcRoot
	return l
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Root returns the directory findings should be reported relative to: the
// module root for module loaders, the fixture source root otherwise.
func (l *Loader) Root() string {
	if l.fixtures != "" {
		return l.fixtures
	}
	return l.moduleDir
}

// modulePathOf extracts the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// Load resolves patterns to packages and type-checks them. Module loaders
// accept "./...", "./dir", "./dir/..." and plain import paths under the
// module; fixture loaders accept import paths relative to the fixture
// root. Results are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.loadLocal(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// expand turns CLI patterns into a sorted, deduplicated import-path list.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case l.fixtures != "":
			add(pat)
		case pat == "./..." || pat == "...":
			paths, err := l.walkModule(l.moduleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			dir, err := l.patternDir(root)
			if err != nil {
				return nil, err
			}
			paths, err := l.walkModule(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			dir, err := l.patternDir(pat)
			if err != nil {
				return nil, err
			}
			p, ok := l.dirImportPath(dir)
			if !ok {
				return nil, fmt.Errorf("pattern %q resolves outside module %s", pat, l.modulePath)
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// patternDir maps one non-wildcard pattern to a directory.
func (l *Loader) patternDir(pat string) (string, error) {
	if strings.HasPrefix(pat, "./") || pat == "." {
		return filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./"))), nil
	}
	if pat == l.modulePath {
		return l.moduleDir, nil
	}
	if rest, ok := strings.CutPrefix(pat, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("pattern %q is neither relative nor under module %s", pat, l.modulePath)
}

// dirImportPath maps a directory under the module root to its import path.
func (l *Loader) dirImportPath(dir string) (string, bool) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	if rel == "." {
		return l.modulePath, true
	}
	return path.Join(l.modulePath, filepath.ToSlash(rel)), true
}

// walkModule finds every directory under root holding a buildable package.
func (l *Loader) walkModule(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := l.ctxt.ImportDir(p, 0); err == nil && len(bp.GoFiles) > 0 {
			if ip, ok := l.dirImportPath(p); ok {
				out = append(out, ip)
			}
		}
		return nil
	})
	return out, err
}

// localDir resolves an import path to a local source directory, or ok=false
// if the path should be satisfied by the standard library.
func (l *Loader) localDir(importPath string) (string, bool) {
	if l.fixtures != "" {
		dir := filepath.Join(l.fixtures, filepath.FromSlash(importPath))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
	if importPath == l.modulePath {
		return l.moduleDir, true
	}
	if rest, ok := strings.CutPrefix(importPath, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer over the loader's two-tier resolution.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.localDir(importPath); ok {
		pkg, err := l.loadLocal(importPath)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(importPath, l.moduleDir, 0)
}

// loadLocal parses and type-checks one local package (memoised).
func (l *Loader) loadLocal(importPath string) (*Package, error) {
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	if l.checking[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.checking[importPath] = true
	defer delete(l.checking, importPath)

	dir, ok := l.localDir(importPath)
	if !ok {
		return nil, fmt.Errorf("package %s not found locally", importPath)
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	for _, inj := range l.Inject[importPath] {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, inj.Name), inj.Src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var terrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(terrs) < 10 {
				terrs = append(terrs, err.Error())
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("type errors in %s:\n  %s", importPath, strings.Join(terrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	pkg := &Package{
		PkgPath: importPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	// Record local import edges (blank imports included — a blank import
	// still runs the dependency's inits, so its facts still matter). The
	// type check above has already populated the cache for each of them.
	seenImp := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seenImp[p] {
				continue
			}
			seenImp[p] = true
			if dep, ok := l.cache[p]; ok {
				pkg.Imports = append(pkg.Imports, dep)
			}
		}
	}
	sort.Slice(pkg.Imports, func(i, j int) bool { return pkg.Imports[i].PkgPath < pkg.Imports[j].PkgPath })
	l.cache[importPath] = pkg
	return pkg, nil
}
