package lint

import "testing"

func TestDefaultScopeCoversSimulationPackages(t *testing.T) {
	s := DefaultScope()
	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		// The determinism analyzers cover the simulation core...
		{NoWallTime.Name, "repro/internal/core", true},
		{NoWallTime.Name, "repro/internal/crawler", true},
		{NoWallTime.Name, "repro/internal/faults", true},
		{NoWallTime.Name, "repro/internal/simclock", true},
		{SeededRand.Name, "repro/internal/traffic", true},
		{SeededRand.Name, "repro/internal/rng", true},
		{MapOrder.Name, "repro/internal/core", true},
		{MapOrder.Name, "repro/internal/telemetry", true},
		{PoolOnly.Name, "repro/internal/searchsim", true},
		{NoWallTime.Name, "repro", true},
		// ...but not the operational shell, where wall-clock reads and
		// goroutines are legitimate. These are exemptions by visible
		// configuration, not gaps.
		{NoWallTime.Name, "repro/cmd/searchseizure", false},
		{NoWallTime.Name, "repro/internal/cli", false},
		{NoWallTime.Name, "repro/internal/telemetry", false},
		{NoWallTime.Name, "repro/internal/parallel", false},
		{PoolOnly.Name, "repro/internal/parallel", false},
		{PoolOnly.Name, "repro/cmd/crawlerd", false},
		// niltelemetry exists for exactly one package.
		{NilTelemetry.Name, "repro/internal/telemetry", true},
		{NilTelemetry.Name, "repro/internal/core", false},
	}
	for _, c := range cases {
		if got := s.AppliesTo(c.analyzer, c.pkg); got != c.want {
			t.Errorf("AppliesTo(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

func TestScopeFileExclusion(t *testing.T) {
	s := DefaultScope()
	if !s.FileExcluded(NoWallTime.Name, "repro/internal/faults", "/abs/path/handler.go") {
		t.Errorf("faults/handler.go (the net/http fault layer) should be excluded from nowalltime")
	}
	if s.FileExcluded(NoWallTime.Name, "repro/internal/faults", "/abs/path/faults.go") {
		t.Errorf("faults.go (the deterministic plan) must stay in nowalltime scope")
	}
	if s.FileExcluded(MapOrder.Name, "repro/internal/faults", "/abs/path/handler.go") {
		t.Errorf("handler.go is only exempt from nowalltime, not the whole suite")
	}
}

func TestNilScopeAppliesEverything(t *testing.T) {
	var s *Scope
	if !s.AppliesTo(NoWallTime.Name, "any/path") {
		t.Fatal("nil scope must apply every analyzer everywhere (fixture mode)")
	}
	if s.FileExcluded(NoWallTime.Name, "any/path", "f.go") {
		t.Fatal("nil scope must exclude nothing")
	}
}

func TestPrefixPatterns(t *testing.T) {
	s := &Scope{Packages: map[string][]string{"a": {"x/y/..."}}}
	for pkg, want := range map[string]bool{
		"x/y":     true,
		"x/y/z":   true,
		"x/yz":    false,
		"x":       false,
		"other/y": false,
	} {
		if got := s.AppliesTo("a", pkg); got != want {
			t.Errorf("AppliesTo(a, %s) = %v, want %v", pkg, got, want)
		}
	}
}
