package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//sslint:ignore <analyzer> <reason>
//
// A directive placed as an end-of-line comment, or on its own line
// directly above a statement or declaration, suppresses that analyzer's
// findings within the annotated statement/declaration (so a directive
// above a map-range loop covers findings inside the loop body, and one
// above a method covers the method). The analyzer name must belong to the
// suite and the reason is mandatory — a suppression without a recorded
// justification is itself a finding. So is a directive that suppresses
// nothing: suppressions cannot rot in place after the code they excused is
// refactored away.
const ignorePrefix = "sslint:ignore"

// directive is one parsed //sslint:ignore comment.
type directive struct {
	pos      token.Pos
	file     string
	line     int // line the directive appears on
	endLine  int // last line the directive covers
	analyzer string
	reason   string
	malform  string // non-empty if the directive failed to parse
	used     bool
}

// parseDirectives extracts sslint directives from a file's comments and
// computes each one's coverage span from the statement layout.
func parseDirectives(fset *token.FileSet, f *ast.File) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comments cannot carry directives
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, ignorePrefix)
			if !ok {
				continue
			}
			// A reason never needs to quote further comments; cutting at
			// an embedded "//" lets fixture files pair directives with
			// expectation comments on one line.
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			p := fset.Position(c.Pos())
			d := &directive{pos: c.Pos(), file: p.Filename, line: p.Line}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.malform = "missing analyzer name and reason"
			case len(fields) == 1:
				d.analyzer = fields[0]
				d.malform = "missing reason: every suppression must say why the nondeterminism is acceptable"
			default:
				d.analyzer = fields[0]
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil
	}
	spans := stmtSpans(fset, f)
	for _, d := range out {
		d.endLine = d.line + 1
		if end, ok := spans[d.line]; ok && end > d.endLine {
			d.endLine = end // trailing comment on a multi-line statement
		}
		if end, ok := spans[d.line+1]; ok && end > d.endLine {
			d.endLine = end // directive line above the annotated statement
		}
	}
	return out
}

// stmtSpans maps the starting line of every statement and declaration in f
// to the furthest ending line among nodes starting there.
func stmtSpans(fset *token.FileSet, f *ast.File) map[int]int {
	spans := make(map[int]int)
	record := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end > spans[start] {
			spans[start] = end
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl:
			record(n)
		}
		return true
	})
	return spans
}

// suppress drops findings covered by a directive (marking it used) and
// appends findings for malformed, unknown-analyzer and unused directives.
// ran is the set of analyzer names that actually ran on the package —
// directives for analyzers outside it are left alone, so running a single
// analyzer over a fixture does not miscount the others' suppressions as
// rot. known is the full suite's analyzer names, for validation.
func suppress(fset *token.FileSet, findings []Finding, dirs []*directive, ran, known map[string]bool) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range dirs {
			if d.malform != "" || d.analyzer != f.Analyzer {
				continue
			}
			if f.Pos.Filename == d.file && f.Pos.Line >= d.line && f.Pos.Line <= d.endLine {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, d := range dirs {
		switch {
		case d.malform != "":
			kept = append(kept, Finding{
				Analyzer: "sslint",
				Pos:      fset.Position(d.pos),
				Message:  "malformed //" + ignorePrefix + " directive: " + d.malform,
			})
		case !known[d.analyzer]:
			kept = append(kept, Finding{
				Analyzer: "sslint",
				Pos:      fset.Position(d.pos),
				Message:  "//" + ignorePrefix + " names unknown analyzer " + strconv.Quote(d.analyzer),
			})
		case ran[d.analyzer] && !d.used:
			kept = append(kept, Finding{
				Analyzer: "sslint",
				Pos:      fset.Position(d.pos),
				Message:  "unused //" + ignorePrefix + " " + d.analyzer + " directive suppresses nothing; delete it (stale suppressions hide future regressions)",
			})
		}
	}
	sortFindings(kept)
	return kept
}

// sortFindings orders findings by file, line, column, analyzer, message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
