package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// HotAlloc is the static complement to the bench ratchet: it bans the
// allocation patterns that the zero-alloc packages already paid to remove.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: `no fmt.Sprintf, loop string concat, or unpooled growth in zero-alloc packages

The day pipeline's throughput rests on htmlgen/htmlparse/shard/searchsim
staying allocation-free on the hot path (bench.baseline.json pins
doorway/store page generation at 0 allocs/op). The bench ratchet catches
regressions after the fact; this analyzer catches them at review time.
Three rules inside the scoped packages: (1) fmt.Sprintf/Sprint/Sprintln
anywhere — each call allocates its result and boxes every operand;
(2) string concatenation (+ / +=) inside a loop body — quadratic
garbage; use an appended []byte or a pooled builder; (3) make() inside a
loop body, and append-growth loops feeding a slice that was created
without capacity in the same function — size it up front or take a
buffer from internal/parallel's pools. Cold paths (memoised setup,
snapshot import/export) are excluded per-file in DefaultScope with a
written rationale, or suppressed inline with //sslint:ignore hotalloc.`,
	Run: runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHotFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// checkHotFunc applies all three rules to one function body.
func checkHotFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// noCap records locals created in this function with unknown or zero
	// capacity: `make([]T, n)` / `make([]T)`-style without a cap argument,
	// empty composite literals, and plain var declarations.
	noCap := make(map[*types.Var]bool)

	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			if v, ok = pass.TypesInfo.Uses[id].(*types.Var); !ok {
				return
			}
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if bid, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[bid].(*types.Builtin); ok && b.Name() == "make" {
					// make([]T, len) has 2 args; make([]T, len, cap) has 3.
					noCap[v] = len(rhs.Args) < 3
					return
				}
			}
			delete(noCap, v) // produced elsewhere: origin unknown, stay quiet
		case *ast.CompositeLit:
			noCap[v] = len(rhs.Elts) == 0
		default:
			delete(noCap, v)
		}
	}

	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			checkHotFunc(pass, n.Body)
			return
		case *ast.ForStmt:
			walk(n.Init, inLoop)
			walk(n.Cond, inLoop)
			walk(n.Post, true)
			walk(n.Body, true)
			return
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walk(n.Body, true)
			return
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					if len(vs.Values) == 0 {
						for _, name := range vs.Names {
							if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
								if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
									noCap[v] = true
								}
							}
						}
					} else {
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								record(name, vs.Values[i])
								walk(vs.Values[i], inLoop)
							}
						}
					}
				}
				return
			}
		case *ast.AssignStmt:
			if app, grown := appendGrowth(pass, n); grown {
				if inLoop && noCap[app] {
					pass.Reportf(n.Pos(), "append-growth in a loop on %s, which was created without capacity; size it up front or use a pooled buffer", app.Name())
				}
			} else if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
			if inLoop && n.Tok == token.ADD_ASSIGN && isStringExpr(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string += in a loop builds quadratic garbage; append to a []byte or pooled builder instead")
			}
			for _, e := range n.Rhs {
				walk(e, inLoop)
			}
			for _, e := range n.Lhs {
				walk(e, inLoop)
			}
			return
		case *ast.BinaryExpr:
			if inLoop && n.Op == token.ADD && isStringExpr(pass, n) && !isConstExpr(pass, n) {
				pass.Reportf(n.OpPos, "string concatenation in a loop builds quadratic garbage; append to a []byte or pooled builder instead")
			}
		case *ast.CallExpr:
			if name, ok := fmtAllocCall(pass, n); ok {
				pass.Reportf(n.Pos(), "fmt.%s allocates its result and boxes every operand; use strconv or pooled append on this hot path", name)
			}
			if inLoop {
				if bid, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[bid].(*types.Builtin); ok && b.Name() == "make" {
						pass.Reportf(n.Pos(), "make() inside a loop allocates every iteration; hoist it out or reuse a pooled buffer")
					}
				}
			}
		}
		// Generic traversal for everything not handled above.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, inLoop)
			return false
		})
	}
	walk(body, false)
}

// appendGrowth matches `x = append(x, ...)` and returns x's object.
func appendGrowth(pass *analysis.Pass, as *ast.AssignStmt) (*types.Var, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if b, ok := pass.TypesInfo.Uses[fid].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || arg0.Name != id.Name {
		return nil, false
	}
	v, _ := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if v == nil {
		return nil, false
	}
	return v, true
}

// fmtAllocCall matches fmt.Sprintf/Sprint/Sprintln by package path.
func fmtAllocCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", false
	}
	switch fn.Name() {
	case "Sprintf", "Sprint", "Sprintln":
		return fn.Name(), true
	}
	return "", false
}

func isStringExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the type checker folded e to a constant
// (constant concat happens at compile time — no runtime garbage).
func isConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
