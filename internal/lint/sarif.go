package lint

import (
	"encoding/json"
	"sort"
)

// helpBaseURI anchors rule documentation to DESIGN.md §6. The repo has no
// canonical public host, so the authority is the RFC 2606 reserved
// ".invalid" TLD: the URI stays absolute (the SARIF schema requires
// format "uri" for helpUri) while the path and fragment name the in-repo
// doc anchor — strip the host and the link resolves against a checkout.
const helpBaseURI = "https://repro.invalid/DESIGN.md"

// SARIF serializes finalized findings as a minimal, valid SARIF 2.1.0 log
// — the format GitHub code scanning and most CI annotators ingest. One
// run, one tool ("sslint"), one reportingDescriptor per analyzer that
// actually fired, results carrying the stable finding ID as a partial
// fingerprint so annotation platforms track findings across commits the
// same way the baseline does.
func SARIF(findings []Finding) ([]byte, error) {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID               string       `json:"id"`
		Name             string       `json:"name,omitempty"`
		ShortDescription sarifMessage `json:"shortDescription"`
		HelpURI          string       `json:"helpUri,omitempty"`
	}
	type sarifArtifactLocation struct {
		URI       string `json:"uri"`
		URIBaseID string `json:"uriBaseId,omitempty"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifPhysicalLocation struct {
		ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
		Region           sarifRegion           `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID              string            `json:"ruleId"`
		Level               string            `json:"level"`
		Message             sarifMessage      `json:"message"`
		Locations           []sarifLocation   `json:"locations"`
		PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
	}
	type sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri,omitempty"`
		Rules          []sarifRule `json:"rules"`
	}
	type sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	type sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	type sarifLog struct {
		Schema  string     `json:"$schema"`
		Version string     `json:"version"`
		Runs    []sarifRun `json:"runs"`
	}

	// The full rule registry ships on every run — clean logs included —
	// so code-scanning UIs always have the metadata to render, and a
	// ruleId in results always resolves. "sslint" is the pseudo-rule the
	// directive checker reports under.
	docs := make(map[string]string)
	for _, a := range All() {
		docs[a.Name] = firstDocLine(a.Doc)
	}
	docs["sslint"] = "directive hygiene: malformed, unknown or unused //sslint:ignore"

	rules := make([]sarifRule, 0, len(docs))
	for name, desc := range docs {
		anchor := "#sslint-" + name
		if name == "sslint" {
			anchor = "#sslint-directives"
		}
		rules = append(rules, sarifRule{
			ID:               name,
			Name:             name,
			ShortDescription: sarifMessage{Text: desc},
			HelpURI:          helpBaseURI + anchor,
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       f.File,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
			PartialFingerprints: map[string]string{"sslintId": f.ID},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sslint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// firstDocLine returns the summary line of an analyzer doc string.
func firstDocLine(s string) string {
	for i := range s {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
