package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// SnapshotFields proves checkpoint schema completeness: for every type
// with an Export<S>/Restore<S> method pair, every mutable field must be
// captured by the export and written back by the restore.
var SnapshotFields = &analysis.Analyzer{
	Name: "snapshotfields",
	Doc: `every mutable field of a checkpointed type must be exported and restored

A type that declares an Export<S>/Restore<S> method pair (ExportState/
RestoreState, ExportCache/RestoreCache, ...) is a checkpoint participant:
a resumed study is bit-identical to an uninterrupted one only if the pair
round-trips the complete mutable state. The classic regression is silent —
a field added to the struct and mutated by some method, but forgotten in
the snapshot, resumes a study that is *almost* right and diverges the
fingerprint days later. This analyzer makes it a build-time finding.

A field is mutable if any pointer-receiver method of the type (other than
the pair itself) assigns it — directly, through a local aliasing it (via
selector, index, address-of or dereference chains), via the copy/delete/
clear builtins, or by calling a known mutator method on it (Store, Add,
Swap, Inc, ... — and any method of an internal/rng source, since drawing
advances the stream position). The export must reference the field; the
restore must write it by the same rules (a mutating method call such as
r.Restore(...) or fetches.Store(...) counts).

Exempt by construction: sync.Mutex/RWMutex/WaitGroup/Once fields (guards,
not state), func-typed fields (wiring installed by the driver), and
fields whose type lives in internal/telemetry or internal/parallel
(observation-only, proven fingerprint-neutral — the same rationale as the
purity trust list).`,
	Run: runSnapshotFields,
}

// snapMutatorNames are method names that mutate their receiver when called
// on a field: the sync/atomic write API plus the telemetry-style counters
// (for non-exempt lookalikes) and the rng restore verbs.
var snapMutatorNames = map[string]bool{
	"Store": true, "Add": true, "Swap": true, "CompareAndSwap": true,
	"Inc": true, "Dec": true, "Observe": true, "Restore": true, "Seed": true,
}

// snapExemptPkgPaths hold field types that are observational or driving-
// only: never part of the dataset fingerprint, so never snapshot state.
var snapExemptPkgPaths = map[string]bool{
	"repro/internal/telemetry": true,
	"repro/internal/parallel":  true,
}

// snapPair is one Export<S>/Restore<S> pair on one named struct type.
type snapPair struct {
	typ     *types.Named
	suffix  string
	export  *ast.FuncDecl
	restore *ast.FuncDecl
}

func runSnapshotFields(pass *analysis.Pass) (any, error) {
	// Group pointer-receiver methods by named receiver type.
	methods := make(map[*types.Named][]*ast.FuncDecl)
	var order []*types.Named
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := recvNamed(pass, fd)
			if named == nil {
				continue
			}
			if _, seen := methods[named]; !seen {
				order = append(order, named)
			}
			methods[named] = append(methods[named], fd)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Obj().Name() < order[j].Obj().Name() })

	for _, named := range order {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for _, pair := range snapPairs(methods[named]) {
			pair.typ = named
			checkSnapshotPair(pass, st, pair, methods[named])
		}
	}
	return nil, nil
}

// recvNamed resolves a method's receiver to its named type (through one
// pointer), or nil.
func recvNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// snapPairs finds Export<S>/Restore<S> pairs among one type's methods.
func snapPairs(decls []*ast.FuncDecl) []snapPair {
	exports := make(map[string]*ast.FuncDecl)
	restores := make(map[string]*ast.FuncDecl)
	for _, fd := range decls {
		name := fd.Name.Name
		if s, ok := strings.CutPrefix(name, "Export"); ok && s != "" {
			exports[s] = fd
		}
		if s, ok := strings.CutPrefix(name, "Restore"); ok && s != "" {
			restores[s] = fd
		}
	}
	var suffixes []string
	for s := range exports {
		if restores[s] != nil {
			suffixes = append(suffixes, s)
		}
	}
	sort.Strings(suffixes)
	pairs := make([]snapPair, 0, len(suffixes))
	for _, s := range suffixes {
		pairs = append(pairs, snapPair{suffix: s, export: exports[s], restore: restores[s]})
	}
	return pairs
}

// snapFieldExempt reports whether a struct field is outside the snapshot
// contract: lock guards, wiring callbacks, observation-only handles.
func snapFieldExempt(fld *types.Var) bool {
	t := fld.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Signature); ok {
		return true // func-typed wiring (OnSeize, OnReact, hooks)
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync":
		return true // Mutex, RWMutex, WaitGroup, Once: guards, not state
	}
	return snapExemptPkgPaths[pkg.Path()]
}

// fieldIsRNG reports whether the field's type is an internal/rng stream,
// whose every draw mutates it.
func fieldIsRNG(fld *types.Var) bool {
	t := fld.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "repro/internal/rng"
}

// checkSnapshotPair reports mutable fields the pair fails to round-trip.
func checkSnapshotPair(pass *analysis.Pass, st *types.Struct, pair snapPair, decls []*ast.FuncDecl) {
	fields := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}

	// Mutable fields: written by any pointer-receiver method other than
	// the pair itself. Remember one mutating method name per field for the
	// diagnostic.
	mutatedBy := make(map[*types.Var]string)
	for _, fd := range decls {
		if fd == pair.export || fd == pair.restore {
			continue
		}
		if _, ok := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type).(*types.Pointer); !ok {
			continue // value receiver: writes stay local
		}
		for fld := range snapWrites(pass, fd, fields) {
			if _, seen := mutatedBy[fld]; !seen {
				mutatedBy[fld] = fd.Name.Name
			}
		}
	}

	exported := snapReferences(pass, pair.export, fields)
	restored := snapWrites(pass, pair.restore, fields)

	var flds []*types.Var
	for fld := range mutatedBy {
		flds = append(flds, fld)
	}
	sort.Slice(flds, func(i, j int) bool { return flds[i].Pos() < flds[j].Pos() })
	for _, fld := range flds {
		if snapFieldExempt(fld) {
			continue
		}
		if !exported[fld] {
			pass.Reportf(fld.Pos(),
				"field %s of %s is mutated by %s but never read by %s: the snapshot misses state and a resumed run diverges",
				fld.Name(), pair.typ.Obj().Name(), mutatedBy[fld], pair.export.Name.Name)
		}
		if !restored[fld] {
			pass.Reportf(fld.Pos(),
				"field %s of %s is mutated by %s but never written by %s: restore leaves stale state behind",
				fld.Name(), pair.typ.Obj().Name(), mutatedBy[fld], pair.restore.Name.Name)
		}
	}
}

// snapReferences collects every struct field of the receiver's type that
// the method mentions at all (export only needs to read).
func snapReferences(pass *analysis.Pass, fd *ast.FuncDecl, fields map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Selections[sel]; ok && v.Kind() == types.FieldVal {
			if fld, ok := v.Obj().(*types.Var); ok && fields[fld] {
				out[fld] = true
			}
		}
		return true
	})
	return out
}

// snapWrites collects the receiver fields a method writes: direct
// assignments, writes through aliasing locals, copy/delete/clear builtins,
// and mutator method calls (Store/Add/.../rng draws). The taint pass is a
// single forward walk in source order — aliases are established before
// they are written in every pattern the codebase uses.
func snapWrites(pass *analysis.Pass, fd *ast.FuncDecl, fields map[*types.Var]bool) map[*types.Var]bool {
	written := make(map[*types.Var]bool)
	// taint maps a local variable to the receiver fields its value may
	// alias (sh := &c.shards[i] taints sh with {shards}).
	taint := make(map[*types.Var]map[*types.Var]bool)

	rootFields := func(e ast.Expr) map[*types.Var]bool {
		return snapRoots(pass, e, fields, taint)
	}
	markWrite := func(e ast.Expr) {
		for fld := range rootFields(e) {
			written[fld] = true
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Taint first (RHS evaluates before the store), then record
			// field writes for each LHS.
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if id, ok := lhs.(*ast.Ident); ok && rhs != nil {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						taint[v] = rootFields(rhs)
						continue
					}
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && !fields[v] {
						taint[v] = rootFields(rhs)
						continue
					}
				}
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				// copy/delete/clear mutate their first argument.
				if (fun.Name == "copy" || fun.Name == "delete" || fun.Name == "clear") && len(n.Args) > 0 {
					if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						markWrite(n.Args[0])
					}
				}
			case *ast.SelectorExpr:
				// A mutator method called on a field (fetches.Store,
				// r.Restore) — or any method of an rng stream — writes it.
				sel, ok := pass.TypesInfo.Selections[fun]
				if !ok || sel.Kind() != types.MethodVal {
					break
				}
				roots := rootFields(fun.X)
				if len(roots) == 0 {
					break
				}
				if snapMutatorNames[fun.Sel.Name] {
					for fld := range roots {
						written[fld] = true
					}
					break
				}
				for fld := range roots {
					if fieldIsRNG(fld) {
						written[fld] = true
					}
				}
			}
		}
		return true
	})
	return written
}

// snapRoots resolves an expression to the set of receiver fields it may
// alias: the field at the base of its selector/index/star/addr chain, or a
// tainted local's field set. Calls and composite expressions root nothing.
func snapRoots(pass *analysis.Pass, e ast.Expr, fields map[*types.Var]bool, taint map[*types.Var]map[*types.Var]bool) map[*types.Var]bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if fld, ok := sel.Obj().(*types.Var); ok && fields[fld] {
					return map[*types.Var]bool{fld: true}
				}
			}
			e = x.X
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
				if fields[v] {
					return map[*types.Var]bool{v: true}
				}
				if t := taint[v]; len(t) > 0 {
					return t
				}
			}
			return nil
		default:
			return nil
		}
	}
}
