package lint

import (
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Purity propagates the base analyzers' source facts through the call
// graph and reports *indirect* violations: a simulation-scoped call site
// whose callee — resolved statically or by class-hierarchy analysis for
// interface calls — can reach a wall-clock read, a global randomness
// draw, a map-order-dependent value or a raw goroutine through any chain
// of calls, where the chain's source sits outside the base analyzer's
// scope and would otherwise never be reported.
var Purity = &analysis.Analyzer{
	Name: "purity",
	Doc: `flag calls that launder impurity through exempt packages

nowalltime, seededrand, maporder and poolonly gate direct violations, but
only inside their scoped packages: a helper in an exempt package that
wraps time.Now silently re-enters internal/core through an ordinary call.
purity closes that hole. It folds the base analyzers' per-function facts
(UsesClock, UsesRand, MapOrdered, SpawnsGoroutine) transitively over a
conservative call graph — bottom-up across the dependency closure, with
interface calls resolved against every named type in the run — and
reports at the frontier: the scoped call site whose callee lies outside
the base analyzer's scope. Exemption applies at the sink, not the source;
an //sslint:ignore inside the exempt callee cannot silence the scoped
caller.

Functions listed in the scope's TrustedImpure set (the telemetry span and
parallel pool entry points, proven fingerprint-neutral by the determinism
tests) are trusted: their impurity neither propagates nor reports. Trust
is per function, never per package, so an unrelated helper smuggled into
an exempt package is still caught.`,
	Run:       runPurity,
	FactTypes: []analysis.Fact{(*Impure)(nil)},
	Requires:  []*analysis.Analyzer{NoWallTime, SeededRand, MapOrder, PoolOnly},
}

func runPurity(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass.Files, pass.TypesInfo, pass.Universe)

	// effects[fn][kind] = representative via chain. Keyed by kind so the
	// in-package fixpoint terminates on recursive call cycles: a kind is
	// added at most once per function, and the first discovery (in
	// deterministic node/call/callee order) fixes the chain.
	effects := make(map[*types.Func]map[string]string)
	addEffect := func(fn *types.Func, kind, via string) bool {
		m := effects[fn]
		if m == nil {
			m = make(map[string]string)
			effects[fn] = m
		}
		if _, ok := m[kind]; ok {
			return false
		}
		m[kind] = via
		return true
	}

	// Seed with the base analyzers' direct source facts on this package's
	// functions (their passes already ran: purity Requires them).
	for _, n := range g.Nodes {
		var uc UsesClock
		if pass.ImportObjectFact(n.Fn, &uc) {
			addEffect(n.Fn, kindClock, uc.Via)
		}
		var ur UsesRand
		if pass.ImportObjectFact(n.Fn, &ur) {
			addEffect(n.Fn, kindRand, ur.Via)
		}
		var mo MapOrdered
		if pass.ImportObjectFact(n.Fn, &mo) {
			addEffect(n.Fn, kindMapOrder, mo.Via)
		}
		var sg SpawnsGoroutine
		if pass.ImportObjectFact(n.Fn, &sg) {
			addEffect(n.Fn, kindGoroutine, sg.Via)
		}
	}

	// calleeEffects reads a callee's current effect set: the in-progress
	// map for functions of this package, the final exported Impure fact
	// for dependencies (analyzed earlier in bottom-up order).
	calleeEffects := func(fn *types.Func) []Effect {
		if pass.TrustedImpure(fn.FullName()) {
			return nil
		}
		if fn.Pkg() == pass.Pkg {
			m := effects[fn]
			es := make([]Effect, 0, len(m))
			for _, kind := range allKinds {
				if via, ok := m[kind]; ok {
					es = append(es, Effect{Kind: kind, Via: via})
				}
			}
			return es
		}
		var imp Impure
		if pass.ImportObjectFact(fn, &imp) {
			return imp.Effects
		}
		return nil
	}

	// Propagate within the package to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, call := range n.Calls {
				for _, callee := range callCallees(call) {
					for _, e := range calleeEffects(callee) {
						if addEffect(n.Fn, e.Kind, funcLabel(callee)+" → "+e.Via) {
							changed = true
						}
					}
				}
			}
		}
	}

	// Export the summaries for downstream packages.
	for _, n := range g.Nodes {
		m := effects[n.Fn]
		if len(m) == 0 {
			continue
		}
		imp := &Impure{}
		for _, kind := range allKinds {
			if via, ok := m[kind]; ok {
				imp.Effects = append(imp.Effects, Effect{Kind: kind, Via: via})
			}
		}
		pass.ExportObjectFact(n.Fn, imp)
	}

	// Report at the frontier: one diagnostic per (call site, kind) where a
	// reachable effect's source is outside the base analyzer's scope. The
	// driver drops reports from packages purity itself does not cover.
	for _, n := range g.Nodes {
		for _, call := range n.Calls {
			seenKind := make(map[string]bool)
			for _, callee := range callCallees(call) {
				if pass.TrustedImpure(callee.FullName()) {
					continue
				}
				for _, e := range calleeEffects(callee) {
					if seenKind[e.Kind] {
						continue
					}
					base := kindBaseAnalyzer[e.Kind]
					if inBaseScope(pass, base, callee) {
						// The callee's own body is gated by the base
						// analyzer; the direct violation is (or was,
						// before a reasoned ignore) reported there.
						continue
					}
					seenKind[e.Kind] = true
					label := funcLabel(callee)
					if call.Interface != "" {
						label += " (via " + call.Interface + ")"
					}
					pass.Reportf(call.Pos,
						"call to %s reaches %s outside the %s gate: %s → %s; scope exemptions apply at this call site, not in the exempt callee",
						label, e.Kind, base, funcLabel(callee), e.Via)
				}
			}
		}
	}
	return nil, nil
}

// allKinds fixes the deterministic order effects are serialized and
// reported in.
var allKinds = []string{kindClock, kindRand, kindMapOrder, kindGoroutine}

// callCallees returns a call's possible targets: the static callee, or
// the class-hierarchy set for interface calls.
func callCallees(c callgraph.Call) []*types.Func {
	if c.Static != nil {
		return []*types.Func{c.Static}
	}
	return c.Dynamic
}

// inBaseScope reports whether the base analyzer directly covers the
// callee's definition (package in scope and file not excluded).
func inBaseScope(pass *analysis.Pass, base string, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	filename := pass.Fset.Position(fn.Pos()).Filename
	return pass.InSinkScope(base, pkg.Path(), filename)
}

// funcLabel renders a function for diagnostics: "telemetry.Stage.Start",
// "parallel.ForEach".
func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Name() + "." + obj.Name() + "." + fn.Name()
			}
			return obj.Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
