package lint

import (
	"path"
	"strings"
)

// Scope decides which analyzers run where. Packages outside an analyzer's
// scope are exempt by configuration — visibly, in one place — rather than
// by silently never running the tool over them. cmd/ binaries and the
// interactive CLI, where wall-clock reads and ad-hoc goroutines are
// legitimate, are therefore simply absent from the lists below.
type Scope struct {
	// Packages maps analyzer name to the import-path patterns it covers.
	// A pattern is an exact import path or a prefix ending in "/...".
	Packages map[string][]string
	// ExcludeFiles maps analyzer name to file base names it must skip,
	// keyed as "importpath:base.go". Used for files whose job is to
	// bridge the simulation to the real world (the fault-injection
	// net/http layer drives real connections and may legitimately need
	// wall-clock deadlines).
	ExcludeFiles map[string]map[string]bool
	// TrustedImpure lists functions — by types.Func.FullName, e.g.
	// "(*repro/internal/telemetry.Stage).Start" — asserted
	// fingerprint-neutral: purity neither propagates their impurity nor
	// reports calls to them. Trust is granted per function, never per
	// package, so a helper smuggled into an otherwise-trusted exempt
	// package is still caught.
	TrustedImpure map[string]bool
	// Goldens maps analyzer name to the golden schema file it compares
	// the extracted contract against (the wireschema/ckptschema pair).
	// A relative path is resolved by the analyzer against the analyzed
	// module's root (the directory holding go.mod); tests pass absolute
	// paths. Analyzers with no entry extract but never compare.
	Goldens map[string]string
}

// simulationPackages are the deterministic core: everything whose output
// feeds the dataset fingerprint. The module root ("repro") is the public
// study API and orchestrates runs, so it is held to the same standard.
var simulationPackages = []string{
	"repro",
	"repro/internal/analytics",
	"repro/internal/brands",
	"repro/internal/campaign",
	"repro/internal/classify",
	"repro/internal/cnc",
	"repro/internal/core",
	"repro/internal/crawler",
	"repro/internal/experiments",
	"repro/internal/export",
	"repro/internal/faults",
	"repro/internal/htmlgen",
	"repro/internal/htmlparse",
	"repro/internal/intervention",
	"repro/internal/jsmini",
	"repro/internal/metrics",
	"repro/internal/purchase",
	"repro/internal/rng",
	"repro/internal/searchsim",
	"repro/internal/shard",
	"repro/internal/simclock",
	"repro/internal/simweb",
	"repro/internal/store",
	"repro/internal/supplier",
	"repro/internal/traffic",
}

// DefaultScope is the scope CI enforces over this module.
//
// Deliberate exclusions, and why they are configuration rather than gaps:
//   - cmd/... and internal/cli: operational binaries; server timeouts,
//     progress ticks and signal handling legitimately read the clock and
//     spawn goroutines.
//   - internal/telemetry and internal/parallel are excluded from
//     nowalltime/poolonly: measuring wall time and running workers is
//     their entire purpose, and both are proven fingerprint-neutral by
//     the determinism tests. telemetry still gets maporder (its exposition
//     formats promise stable output) and is the sole niltelemetry target.
//   - internal/faults/handler.go is excluded from nowalltime: it is the
//     net/http fault layer driving real connections, where deadline
//     plumbing against the machine clock is legitimate.
func DefaultScope() *Scope {
	return &Scope{
		Packages: map[string][]string{
			NoWallTime.Name:   simulationPackages,
			SeededRand.Name:   simulationPackages,
			MapOrder.Name:     append([]string{"repro/internal/telemetry"}, simulationPackages...),
			PoolOnly.Name:     simulationPackages,
			NilTelemetry.Name: {"repro/internal/telemetry"},
			Purity.Name:       simulationPackages,
			RaceCapture.Name:  simulationPackages,
			CtxFlow.Name:      simulationPackages,
			// Snapshot completeness applies wherever Export*/Restore* pairs
			// live; running it over the whole sim core means a pair added to
			// a new package is covered the day it lands.
			SnapshotFields.Name: simulationPackages,
			// Lock discipline targets the service plane and the sharded
			// state both studysvc and the day pipeline lean on.
			LockDiscipline.Name: {"repro/internal/studysvc", "repro/internal/shard"},
			// The zero-alloc packages the bench ratchet pins at 0 allocs/op
			// (plus searchsim, whose per-day serp walk dominates the day).
			HotAlloc.Name: {
				"repro/internal/htmlgen",
				"repro/internal/htmlparse",
				"repro/internal/shard",
				"repro/internal/searchsim",
			},
			// faultboundary's wrap rule reports wherever faults.Handler (or
			// a wrapper) can be called with control-plane handlers; its
			// import rule consults the narrower pseudo-scope below.
			FaultBoundary.Name: append([]string{
				"repro/internal/studysvc",
				"repro/cmd/crawlerd",
			}, simulationPackages...),
			// Pseudo-key consulted via InSinkScope by faultboundary's
			// net/http import ban: the deterministic core minus the two
			// sanctioned HTTP-facing packages (faults wraps real handlers,
			// simweb *is* the simulated web server).
			"faultboundary/imports": {
				"repro",
				"repro/internal/analytics",
				"repro/internal/brands",
				"repro/internal/campaign",
				"repro/internal/classify",
				"repro/internal/cnc",
				"repro/internal/core",
				"repro/internal/crawler",
				"repro/internal/experiments",
				"repro/internal/export",
				"repro/internal/htmlgen",
				"repro/internal/htmlparse",
				"repro/internal/intervention",
				"repro/internal/jsmini",
				"repro/internal/metrics",
				"repro/internal/purchase",
				"repro/internal/rng",
				"repro/internal/searchsim",
				"repro/internal/shard",
				"repro/internal/simclock",
				"repro/internal/store",
				"repro/internal/supplier",
				"repro/internal/traffic",
			},
			// The error-code registry lives in the root package (spec
			// validation) and studysvc (the /v1 HTTP error envelope).
			APICodes.Name: {"repro", "repro/internal/studysvc"},
			// The wire contract is extracted where the /v1 surface is
			// built; the checkpoint contract where the envelope codec
			// lives (it sees core.StudySnapshot through its import).
			WireSchema.Name: {"repro/internal/studysvc"},
			CkptSchema.Name: {"repro/internal/checkpoint"},
			// Exhaustiveness over the declared string-enum sets: study
			// states and event types (studysvc), spec validation codes
			// (root), disk kill points (faults) — anywhere those consts
			// are dispatched on.
			Exhaustive.Name: {
				"repro",
				"repro/internal/checkpoint",
				"repro/internal/faults",
				"repro/internal/studysvc",
			},
			// Unchecked errors are forbidden where a silent drop costs
			// durability or a tenant: the deterministic core, the
			// checkpoint write protocol, and the service plane.
			ErrFlow.Name: {
				"repro/internal/checkpoint",
				"repro/internal/core",
				"repro/internal/studysvc",
			},
		},
		ExcludeFiles: map[string]map[string]bool{
			NoWallTime.Name: {"repro/internal/faults:handler.go": true},
			// The net/http fault layer's wall-clock use is sanctioned, so
			// its internal call chains are exempt from the indirect gate
			// too; callers elsewhere in faults remain gated.
			Purity.Name: {"repro/internal/faults:handler.go": true},
			HotAlloc.Name: {
				// Cloaking-script synthesis is memoised behind
				// Generator.cache — each (id, target) pair renders once per
				// run; the per-page path replays cached bytes and the bench
				// ratchet pins it at 0 allocs/op.
				"repro/internal/htmlgen:cloak.go": true,
				// The snapshot codec runs at day boundaries only (export on
				// checkpoint, restore on resume), never inside the day loop.
				"repro/internal/searchsim:state.go": true,
			},
		},
		// The telemetry span/registry entry points and the parallel pool
		// drivers read the wall clock and spawn workers by design; the
		// determinism tests prove them fingerprint-neutral (telemetry is
		// observation-only, the pool commits in submission order).
		TrustedImpure: map[string]bool{
			"repro/internal/telemetry.New":                         true,
			"(*repro/internal/telemetry.Stage).Start":              true,
			"(repro/internal/telemetry.Span).End":                  true,
			"(*repro/internal/telemetry.Registry).Snapshot":        true,
			"(*repro/internal/telemetry.Registry).SetSpanObserver": true,
			"repro/internal/parallel.ForEach":                      true,
			"repro/internal/parallel.ForEachObserved":              true,
			"repro/internal/parallel.Map":                          true,
			// The checkpoint manager does disk I/O and times it by design;
			// it runs strictly at day boundaries, after the day's state has
			// committed, and writes never feed back into the simulation —
			// the resume tests prove a checkpointed study's fingerprint
			// bit-identical to an uninterrupted one.
			"(*repro/internal/checkpoint.Manager).Save": true,
			"(*repro/internal/checkpoint.Manager).Load": true,
		},
		// The two contract goldens, checked in at the module root and
		// regenerated only via `go run ./cmd/sslint -write-schema`.
		Goldens: map[string]string{
			WireSchema.Name: APISchemaFile,
			CkptSchema.Name: CkptSchemaFile,
		},
	}
}

// AppliesTo reports whether analyzer covers pkgPath. A nil scope applies
// everything everywhere (used by analyzer unit tests over fixtures).
func (s *Scope) AppliesTo(analyzer, pkgPath string) bool {
	if s == nil {
		return true
	}
	for _, pat := range s.Packages[analyzer] {
		if pat == pkgPath {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok &&
			(pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")) {
			return true
		}
	}
	return false
}

// FileExcluded reports whether analyzer must skip the file (base name)
// inside pkgPath.
func (s *Scope) FileExcluded(analyzer, pkgPath, filename string) bool {
	if s == nil {
		return false
	}
	return s.ExcludeFiles[analyzer][pkgPath+":"+path.Base(filename)]
}

// Trusted reports whether the function (types.Func.FullName) is asserted
// fingerprint-neutral for interprocedural analyzers. A nil scope trusts
// nothing — fixture tests see every effect.
func (s *Scope) Trusted(analyzer, fullName string) bool {
	if s == nil {
		return false
	}
	return s.TrustedImpure[fullName]
}

// Golden returns the golden schema file configured for analyzer, or ""
// (a nil scope configures no goldens: fixture runs extract but never
// compare).
func (s *Scope) Golden(analyzer string) string {
	if s == nil {
		return ""
	}
	return s.Goldens[analyzer]
}
