// Package callgraph builds a conservative static call graph for one
// type-checked package at a time, for the interprocedural sslint
// analyzers (purity, racecapture). It resolves three call shapes:
//
//   - static calls: package functions, methods on concrete receivers,
//     and function/method values whose defining object is visible;
//   - interface method calls: resolved by class-hierarchy analysis over
//     a Universe of every named type seen so far in the run — packages
//     are analyzed bottom-up, so by the time a caller is processed the
//     universe already holds every concrete type its interfaces could
//     carry;
//   - calls through function-valued locals and parameters: the callee is
//     unknown, which the analyzers handle conservatively (a function
//     literal's effects are attributed to the function that created it,
//     so any value that could flow into such a call was already
//     accounted for where it was built).
//
// Function literals are not graph nodes: their bodies belong to the
// enclosing declared function, which is what makes "a closure handed to
// the pool taints its creator" fall out of plain edge propagation.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Universe is the set of named types available for interface resolution.
// The driver adds every analyzed package bottom-up; AddPackage is cheap
// and idempotent per package.
type Universe struct {
	seen  map[*types.Package]bool
	named []*types.Named
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{seen: make(map[*types.Package]bool)}
}

// AddPackage records pkg's package-level named types (sorted by name, so
// later resolution walks them deterministically).
func (u *Universe) AddPackage(pkg *types.Package) {
	if pkg == nil || u.seen[pkg] {
		return
	}
	u.seen[pkg] = true
	scope := pkg.Scope()
	names := scope.Names() // already sorted
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			u.named = append(u.named, named)
		}
	}
}

// Implementers returns the concrete methods that an interface-method call
// sel could dispatch to: for every named non-interface type T in the
// universe where T or *T implements iface, the method with sel's name.
// Results are sorted by full name for deterministic downstream iteration.
func (u *Universe) Implementers(iface *types.Interface, method string) []*types.Func {
	if iface == nil || iface.NumMethods() == 0 {
		return nil // interface{} dispatches anywhere; callers treat nil as unknown
	}
	var out []*types.Func
	for _, named := range u.named {
		if types.IsInterface(named) {
			continue
		}
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// Call is one resolved call site inside a function.
type Call struct {
	// Pos is the call's position (the CallExpr's Lparen-side start).
	Pos token.Pos
	// Expr is the call expression itself.
	Expr *ast.CallExpr
	// Static is the single statically-resolved callee, if any: a package
	// function, a method on a concrete receiver, or the target of a
	// function/method value reference.
	Static *types.Func
	// Dynamic holds the conservative callee set of an interface method
	// call (class-hierarchy analysis over the Universe). Empty for
	// static calls and for calls through bare function values.
	Dynamic []*types.Func
	// Interface names the interface method for Dynamic calls, for
	// diagnostics ("via SearchEngine.Rank").
	Interface string
}

// Node is one declared function with its resolved call sites, in source
// order. Calls inside function literals nested in the declaration are
// attributed to the declaration.
type Node struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []Call
}

// Graph holds one package's nodes keyed by function object, plus the
// source-ordered node list for deterministic iteration.
type Graph struct {
	Nodes []*Node
	byFn  map[*types.Func]*Node
}

// NodeOf returns the node for fn, or nil if fn is not declared in the
// graph's package.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[fn] }

// Build constructs the call graph of one package from its syntax and type
// information, resolving interface calls against u.
func Build(files []*ast.File, info *types.Info, u *Universe) *Graph {
	g := &Graph{byFn: make(map[*types.Func]*Node)}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if c, ok := resolve(call, info, u); ok {
					n.Calls = append(n.Calls, c)
				}
				return true
			})
			g.Nodes = append(g.Nodes, n)
			g.byFn[fn] = n
		}
	}
	return g
}

// resolve classifies one call expression. Conversions, builtins and calls
// through bare function values yield ok=false (no edge; see the package
// comment for why that is sound enough here).
func resolve(call *ast.CallExpr, info *types.Info, u *Universe) (Call, bool) {
	c := Call{Pos: call.Pos(), Expr: call}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			c.Static = fn
			return c, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn := sel.Obj().(*types.Func)
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				c.Dynamic = u.Implementers(iface, fn.Name())
				c.Interface = recvName(sel.Recv()) + "." + fn.Name()
				return c, true
			}
			c.Static = fn
			return c, true
		}
		// Qualified package function (pkg.F) or method expression.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			c.Static = fn
			return c, true
		}
	}
	return Call{}, false
}

// recvName renders a receiver type for diagnostics ("simweb.Fetcher").
func recvName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}
