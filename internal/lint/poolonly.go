package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// PoolOnly forbids raw go statements in simulation packages.
var PoolOnly = &analysis.Analyzer{
	Name: "poolonly",
	Doc: `forbid raw go statements in simulation packages

The only sanctioned concurrency inside the simulation is the
internal/parallel ordered-commit pool: it clamps workers, joins
deterministically, and commits results in submission order, which is what
keeps the fingerprint identical at any GOMAXPROCS. A raw go statement
bypasses all of that — its completion order, panic propagation and
lifecycle are untracked. Spawn through internal/parallel instead, or if a
goroutine is provably outside the deterministic dataflow (e.g. it only
feeds telemetry), justify it with //sslint:ignore poolonly <reason>.

It also exports a SpawnsGoroutine fact on every function containing a go
statement — in every package, scoped or not — which purity propagates
through the call graph to catch spawning laundered through helpers in
exempt packages.`,
	Run:       runPoolOnly,
	FactTypes: []analysis.Fact{(*SpawnsGoroutine)(nil)},
}

func runPoolOnly(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw go statement in simulation package; use the internal/parallel ordered-commit pool")
				exportSourceFact(pass, g.Pos(), new(SpawnsGoroutine), &SpawnsGoroutine{Via: "go statement"})
			}
			return true
		})
	}
	return nil, nil
}
