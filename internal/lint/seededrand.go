package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// randPackages are the randomness sources simulation code must not touch.
// All stochastic draws go through internal/rng seeded substreams, so that
// a study replays bit-identically from (config, seed, faults profile).
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// SeededRand forbids the global and OS-entropy randomness packages in
// simulation packages.
var SeededRand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: `forbid math/rand, math/rand/v2 and crypto/rand in simulation packages

Global math/rand state is process-wide and scheduling-sensitive;
crypto/rand is OS entropy. Either one in a simulation package silently
breaks replay determinism. Simulation code draws from internal/rng seeded
substreams (Source.Sub) instead, which hand each consumer an independent,
named, reproducible stream.

It also exports a UsesRand fact on every function referencing a forbidden
randomness package — in every package, scoped or not — which purity
propagates through the call graph to catch draws laundered through
helpers in exempt packages.`,
	Run:       runSeededRand,
	FactTypes: []analysis.Fact{(*UsesRand)(nil)},
}

func runSeededRand(pass *analysis.Pass) (any, error) {
	// Flag each use of a member of a forbidden package (precise
	// positions), and fall back to flagging the import itself in any file
	// where the package is imported but never referenced (blank imports —
	// math/rand's init seeds global state — or references the
	// type-checker folded away).
	usedIn := make(map[*ast.File]map[string]bool)
	for _, use := range sortedUses(pass) {
		pkg := use.obj.Pkg()
		if pkg == nil || !randPackages[pkg.Path()] {
			continue
		}
		// Skip the package-name identifier itself ("rand" in
		// rand.Intn): the member use that follows carries the report.
		if _, isPkg := use.obj.(*types.PkgName); isPkg {
			continue
		}
		if f := fileContaining(pass, use.id.Pos()); f != nil {
			m := usedIn[f]
			if m == nil {
				m = make(map[string]bool)
				usedIn[f] = m
			}
			m[pkg.Path()] = true
		}
		pass.Reportf(use.id.Pos(),
			"use of %s.%s in simulation package; draw from internal/rng seeded substreams instead", pkg.Path(), use.obj.Name())
		exportSourceFact(pass, use.id.Pos(), new(UsesRand), &UsesRand{Via: pkg.Path() + "." + use.obj.Name()})
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !randPackages[p] || usedIn[f][p] {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s in simulation package; draw from internal/rng seeded substreams instead", p)
		}
	}
	return nil, nil
}
