package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// preV3Suite is the eight-analyzer suite as it stood before the
// state-integrity analyzers landed. Each injection test below runs it as
// a control: the smuggled violation must be invisible to the old suite
// and caught by the new analyzer, or the new analyzer adds nothing.
func preV3Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lint.CtxFlow, lint.MapOrder, lint.NilTelemetry, lint.NoWallTime,
		lint.PoolOnly, lint.Purity, lint.RaceCapture, lint.SeededRand,
	}
}

// TestInjectedUnsnapshottedFieldIsCaught proves snapshotfields closes the
// schema-drift hole: a mutable field added to a checkpointed type but
// forgotten in both halves of its Export/Restore pair — the exact bug
// class that resumes a study almost-bit-identically — is two findings at
// the field, and invisible to the old suite.
func TestInjectedUnsnapshottedFieldIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/crawler": {{
			Name: "zz_injected_gauge.go",
			Src: `package crawler

// zzGauge mimics a stats field bolted onto the crawl path: val made it
// into the snapshot, peak did not.
type zzGauge struct {
	val  int64
	peak int64
}

func (g *zzGauge) bump(d int64) {
	g.val += d
	if g.val > g.peak {
		g.peak = g.val
	}
}

type zzGaugeState struct{ Val int64 }

func (g *zzGauge) ExportState() zzGaugeState    { return zzGaugeState{Val: g.val} }
func (g *zzGauge) RestoreState(st zzGaugeState) { g.val = st.Val }
`,
		}},
	}
	pkgs, err := loader.Load("./internal/crawler")
	if err != nil {
		t.Fatalf("loading crawler with injected field: %v", err)
	}

	base, err := lint.Run(pkgs, preV3Suite(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running pre-v3 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v3 suite reported the un-snapshotted field — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var missExport, missRestore bool
	for _, f := range findings {
		if f.Analyzer != lint.SnapshotFields.Name || filepath.Base(f.File) != "zz_injected_gauge.go" {
			continue
		}
		if strings.Contains(f.Message, "field peak of zzGauge") && strings.Contains(f.Message, "never read by ExportState") {
			missExport = true
		}
		if strings.Contains(f.Message, "field peak of zzGauge") && strings.Contains(f.Message, "never written by RestoreState") {
			missRestore = true
		}
	}
	if !missExport || !missRestore {
		t.Fatalf("smuggled field not fully caught (export=%v restore=%v); findings: %+v", missExport, missRestore, findings)
	}
}

// TestInjectedSendWhileLockedIsCaught proves lockdiscipline bites in the
// real studysvc package: a Manager method sending on a channel while
// holding m.mu — a wedge waiting for one slow receiver — is a finding,
// and the old suite (which never scoped studysvc at all) says nothing.
func TestInjectedSendWhileLockedIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/studysvc": {{
			Name: "zz_injected_broadcast.go",
			Src: `package studysvc

// zzBroadcast blocks every Manager caller behind one slow subscriber.
func (m *Manager) zzBroadcast(ch chan<- string, msg string) {
	m.mu.Lock()
	ch <- msg
	m.mu.Unlock()
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/studysvc")
	if err != nil {
		t.Fatalf("loading studysvc with injected send: %v", err)
	}

	base, err := lint.Run(pkgs, preV3Suite(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running pre-v3 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v3 suite reported the send-while-locked — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.LockDiscipline.Name && filepath.Base(f.File) == "zz_injected_broadcast.go" {
			hit = append(hit, f)
		}
	}
	if len(hit) != 1 || !strings.Contains(hit[0].Message, "channel send while holding m.mu") {
		t.Fatalf("injected send-while-locked not caught; findings: %+v", findings)
	}
}

// TestInjectedSprintfInHtmlgenIsCaught proves hotalloc guards the
// zero-alloc property statically: one fmt.Sprintf added to htmlgen — the
// regression the bench ratchet only catches after the numbers move — is a
// finding, and the old suite passes it clean.
func TestInjectedSprintfInHtmlgenIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/htmlgen": {{
			Name: "zz_injected_sprintf.go",
			Src: `package htmlgen

import "fmt"

// zzTitle allocates a fresh string per page render.
func zzTitle(rank int, domain string) string {
	return fmt.Sprintf("%d-%s", rank, domain)
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/htmlgen")
	if err != nil {
		t.Fatalf("loading htmlgen with injected Sprintf: %v", err)
	}

	base, err := lint.Run(pkgs, preV3Suite(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running pre-v3 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v3 suite reported the Sprintf — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.HotAlloc.Name && filepath.Base(f.File) == "zz_injected_sprintf.go" {
			hit = append(hit, f)
		}
	}
	if len(hit) != 1 || !strings.Contains(hit[0].Message, "fmt.Sprintf") {
		t.Fatalf("injected Sprintf not caught; findings: %+v", findings)
	}
}

// preV4Suite is the thirteen-analyzer suite as it stood before the
// contract-drift gate landed: everything except the schema, exhaustive
// and errflow analyzers. The v4 injection tests run it as the control.
func preV4Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lint.APICodes, lint.CtxFlow, lint.FaultBoundary, lint.HotAlloc,
		lint.LockDiscipline, lint.MapOrder, lint.NilTelemetry,
		lint.NoWallTime, lint.PoolOnly, lint.Purity, lint.RaceCapture,
		lint.SeededRand, lint.SnapshotFields,
	}
}

// doctoredGolden copies a module-root schema golden into a temp file after
// applying edit to its parsed JSON, and returns a DefaultScope whose
// analyzer golden points at the doctored copy — "yesterday's pin", against
// which today's code has drifted.
func doctoredGolden(t *testing.T, analyzer, base string, edit func(types map[string]map[string]string)) *lint.Scope {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(moduleRoot(t), base))
	if err != nil {
		t.Fatalf("reading %s: %v", base, err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", base, err)
	}
	types := make(map[string]map[string]string)
	for key, v := range doc["types"].(map[string]any) {
		fields := make(map[string]string)
		for name, desc := range v.(map[string]any) {
			fields[name] = desc.(string)
		}
		types[key] = fields
	}
	edit(types)
	doc["types"] = types
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), base)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	scope := lint.DefaultScope()
	scope.Goldens[analyzer] = path
	return scope
}

// TestInjectedFieldRenameIsCaught proves wireschema closes the
// silent-API-revision hole: against a golden pinning the old wire name
// ("message_legacy"), today's apiError reads as a breaking remove plus an
// unpinned add — and an injected diagnostics route is an additive finding
// too. The pre-v4 suite sees none of it.
func TestInjectedFieldRenameIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/studysvc": {{
			Name: "zz_injected_route.go",
			Src: `package studysvc

import "net/http"

// zzLoadavg is a diagnostics payload bolted on without re-pinning.
type zzLoadavg struct {
	Load1 float64 ` + "`json:\"load1\"`" + `
}

func zzRegister(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/admin/loadavg", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, zzLoadavg{})
	})
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/studysvc")
	if err != nil {
		t.Fatalf("loading studysvc with injected route: %v", err)
	}

	scope := doctoredGolden(t, lint.WireSchema.Name, "api.schema.json", func(types map[string]map[string]string) {
		fields := types["repro/internal/studysvc.apiError"]
		fields["message_legacy"] = fields["message"]
		delete(fields, "message")
	})

	base, err := lint.Run(pkgs, preV4Suite(), scope)
	if err != nil {
		t.Fatalf("running pre-v4 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v4 suite reported the drift — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), scope)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var removed, added, route bool
	for _, f := range findings {
		if f.Analyzer != lint.WireSchema.Name {
			continue
		}
		if strings.Contains(f.Message, `wire field "message_legacy" of repro/internal/studysvc.apiError`) &&
			strings.Contains(f.Message, "has been removed or renamed: breaking change") {
			removed = true
		}
		if strings.Contains(f.Message, `wire field "message" of repro/internal/studysvc.apiError is not pinned`) {
			added = true
		}
		if strings.Contains(f.Message, `route "GET /v1/admin/loadavg" is not pinned`) &&
			filepath.Base(f.File) == "zz_injected_route.go" {
			route = true
		}
	}
	if !removed || !added || !route {
		t.Fatalf("wire drift not fully caught (removed=%v added=%v route=%v); findings: %+v", removed, added, route, findings)
	}
}

// TestInjectedSnapshotFieldDriftIsCaught proves ckptschema catches a
// payload shape that moved under a pinned SnapshotVersion: against a
// golden that predates DatasetState.FpIncr, the field reads as added
// without a bump. The pre-v4 suite is silent.
func TestInjectedSnapshotFieldDriftIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	pkgs, err := loader.Load("./internal/checkpoint")
	if err != nil {
		t.Fatalf("loading checkpoint: %v", err)
	}

	scope := doctoredGolden(t, lint.CkptSchema.Name, "ckpt.schema.json", func(types map[string]map[string]string) {
		delete(types["repro/internal/core.DatasetState"], "FpIncr")
	})

	base, err := lint.Run(pkgs, preV4Suite(), scope)
	if err != nil {
		t.Fatalf("running pre-v4 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v4 suite reported the drift — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), scope)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.CkptSchema.Name {
			hit = append(hit, f)
		}
	}
	if len(hit) != 1 || !strings.Contains(hit[0].Message, `checkpoint field "FpIncr" of repro/internal/core.DatasetState added without a SnapshotVersion bump`) {
		t.Fatalf("snapshot field drift not caught; findings: %+v", findings)
	}
}

// TestInjectedPartialStateSwitchIsCaught proves exhaustive catches the
// new-member bug class: a switch over two of the six study states, no
// default, smuggled into studysvc — a finding naming every missed member,
// invisible to the pre-v4 suite.
func TestInjectedPartialStateSwitchIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/studysvc": {{
			Name: "zz_injected_switch.go",
			Src: `package studysvc

// zzBadge renders a state badge, forgetting two-thirds of the states.
func zzBadge(state string) string {
	switch state {
	case StateRunning:
		return "green"
	case StateComplete:
		return "blue"
	}
	return ""
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/studysvc")
	if err != nil {
		t.Fatalf("loading studysvc with injected switch: %v", err)
	}

	base, err := lint.Run(pkgs, preV4Suite(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running pre-v4 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v4 suite reported the partial switch — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.Exhaustive.Name && filepath.Base(f.File) == "zz_injected_switch.go" {
			hit = append(hit, f)
		}
	}
	if len(hit) != 1 || !strings.Contains(hit[0].Message, "misses StateCancelled, StateCancelling, StateFailed, StatePending") {
		t.Fatalf("partial state switch not caught; findings: %+v", findings)
	}
}

// TestInjectedDroppedSaveErrorIsCaught proves errflow guards the
// durability path: a checkpoint Save whose error nobody reads — the
// classic "best-effort" regression that silently stops persisting — is a
// finding, and the pre-v4 suite passes it clean.
func TestInjectedDroppedSaveErrorIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/checkpoint": {{
			Name: "zz_injected_save.go",
			Src: `package checkpoint

import "repro/internal/core"

// zzBestEffortSave drops the save error on the floor.
func zzBestEffortSave(m *Manager, snap *core.StudySnapshot) {
	m.Save(snap)
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/checkpoint")
	if err != nil {
		t.Fatalf("loading checkpoint with injected save: %v", err)
	}

	base, err := lint.Run(pkgs, preV4Suite(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running pre-v4 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v4 suite reported the dropped error — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.ErrFlow.Name && filepath.Base(f.File) == "zz_injected_save.go" {
			hit = append(hit, f)
		}
	}
	if len(hit) != 1 || !strings.Contains(hit[0].Message, "error returned by m.Save is silently dropped") {
		t.Fatalf("dropped Save error not caught; findings: %+v", findings)
	}
}
