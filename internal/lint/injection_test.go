package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// preV3Suite is the eight-analyzer suite as it stood before the
// state-integrity analyzers landed. Each injection test below runs it as
// a control: the smuggled violation must be invisible to the old suite
// and caught by the new analyzer, or the new analyzer adds nothing.
func preV3Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lint.CtxFlow, lint.MapOrder, lint.NilTelemetry, lint.NoWallTime,
		lint.PoolOnly, lint.Purity, lint.RaceCapture, lint.SeededRand,
	}
}

// TestInjectedUnsnapshottedFieldIsCaught proves snapshotfields closes the
// schema-drift hole: a mutable field added to a checkpointed type but
// forgotten in both halves of its Export/Restore pair — the exact bug
// class that resumes a study almost-bit-identically — is two findings at
// the field, and invisible to the old suite.
func TestInjectedUnsnapshottedFieldIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/crawler": {{
			Name: "zz_injected_gauge.go",
			Src: `package crawler

// zzGauge mimics a stats field bolted onto the crawl path: val made it
// into the snapshot, peak did not.
type zzGauge struct {
	val  int64
	peak int64
}

func (g *zzGauge) bump(d int64) {
	g.val += d
	if g.val > g.peak {
		g.peak = g.val
	}
}

type zzGaugeState struct{ Val int64 }

func (g *zzGauge) ExportState() zzGaugeState    { return zzGaugeState{Val: g.val} }
func (g *zzGauge) RestoreState(st zzGaugeState) { g.val = st.Val }
`,
		}},
	}
	pkgs, err := loader.Load("./internal/crawler")
	if err != nil {
		t.Fatalf("loading crawler with injected field: %v", err)
	}

	base, err := lint.Run(pkgs, preV3Suite(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running pre-v3 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v3 suite reported the un-snapshotted field — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var missExport, missRestore bool
	for _, f := range findings {
		if f.Analyzer != lint.SnapshotFields.Name || filepath.Base(f.File) != "zz_injected_gauge.go" {
			continue
		}
		if strings.Contains(f.Message, "field peak of zzGauge") && strings.Contains(f.Message, "never read by ExportState") {
			missExport = true
		}
		if strings.Contains(f.Message, "field peak of zzGauge") && strings.Contains(f.Message, "never written by RestoreState") {
			missRestore = true
		}
	}
	if !missExport || !missRestore {
		t.Fatalf("smuggled field not fully caught (export=%v restore=%v); findings: %+v", missExport, missRestore, findings)
	}
}

// TestInjectedSendWhileLockedIsCaught proves lockdiscipline bites in the
// real studysvc package: a Manager method sending on a channel while
// holding m.mu — a wedge waiting for one slow receiver — is a finding,
// and the old suite (which never scoped studysvc at all) says nothing.
func TestInjectedSendWhileLockedIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/studysvc": {{
			Name: "zz_injected_broadcast.go",
			Src: `package studysvc

// zzBroadcast blocks every Manager caller behind one slow subscriber.
func (m *Manager) zzBroadcast(ch chan<- string, msg string) {
	m.mu.Lock()
	ch <- msg
	m.mu.Unlock()
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/studysvc")
	if err != nil {
		t.Fatalf("loading studysvc with injected send: %v", err)
	}

	base, err := lint.Run(pkgs, preV3Suite(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running pre-v3 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v3 suite reported the send-while-locked — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.LockDiscipline.Name && filepath.Base(f.File) == "zz_injected_broadcast.go" {
			hit = append(hit, f)
		}
	}
	if len(hit) != 1 || !strings.Contains(hit[0].Message, "channel send while holding m.mu") {
		t.Fatalf("injected send-while-locked not caught; findings: %+v", findings)
	}
}

// TestInjectedSprintfInHtmlgenIsCaught proves hotalloc guards the
// zero-alloc property statically: one fmt.Sprintf added to htmlgen — the
// regression the bench ratchet only catches after the numbers move — is a
// finding, and the old suite passes it clean.
func TestInjectedSprintfInHtmlgenIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/htmlgen": {{
			Name: "zz_injected_sprintf.go",
			Src: `package htmlgen

import "fmt"

// zzTitle allocates a fresh string per page render.
func zzTitle(rank int, domain string) string {
	return fmt.Sprintf("%d-%s", rank, domain)
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/htmlgen")
	if err != nil {
		t.Fatalf("loading htmlgen with injected Sprintf: %v", err)
	}

	base, err := lint.Run(pkgs, preV3Suite(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running pre-v3 suite: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("pre-v3 suite reported the Sprintf — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.HotAlloc.Name && filepath.Base(f.File) == "zz_injected_sprintf.go" {
			hit = append(hit, f)
		}
	}
	if len(hit) != 1 || !strings.Contains(hit[0].Message, "fmt.Sprintf") {
		t.Fatalf("injected Sprintf not caught; findings: %+v", findings)
	}
}
