package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// NilTelemetry enforces the "nil Registry is the no-op sink" contract: in
// the telemetry package, every exported method on a pointer receiver must
// nil-guard the receiver before touching it.
var NilTelemetry = &analysis.Analyzer{
	Name: "niltelemetry",
	Doc: `require nil-receiver guards on exported telemetry handle methods

internal/telemetry promises that a nil *Registry — and every handle
obtained from one (*Counter, *Gauge, *Histogram, *Stage, *PoolMetrics) —
is an inert no-op. Call sites are written against that promise and never
check for nil, so a single exported method that dereferences a nil
receiver turns "telemetry disabled" into a panic. This analyzer requires
each exported pointer-receiver method to guard (if recv == nil, with an
early return or panic-free exit) before the receiver's first use.

Nil-safety is computed as a fixpoint over NilSafe facts: a method is safe
if it guards, never touches its receiver, or — the delegation rule — only
uses the receiver as the operand of nil comparisons and as the receiver
of calls to other pointer-receiver methods already proven NilSafe. A
handler that merely wraps r.WritePrometheus therefore needs no guard of
its own. The fixpoint starts pessimistic, so mutually-recursive methods
stay flagged until one of them guards.`,
	Run:       runNilTelemetry,
	FactTypes: []analysis.Fact{(*NilSafe)(nil)},
}

func runNilTelemetry(pass *analysis.Pass) (any, error) {
	type method struct {
		fd   *ast.FuncDecl
		fn   *types.Func
		recv types.Object
		pre  []ast.Stmt // statements before the first top-level nil guard
	}
	var methods []method
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := fd.Recv.List[0]
			if _, isPtr := recv.Type.(*ast.StarExpr); !isPtr {
				continue // value receivers cannot be nil
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			m := method{fd: fd, fn: fn}
			if len(recv.Names) > 0 && recv.Names[0].Name != "_" {
				m.recv = pass.TypesInfo.Defs[recv.Names[0]]
			}
			if m.recv != nil {
				m.pre = preGuardStmts(pass, fd.Body.List, m.recv)
			}
			methods = append(methods, m)
		}
	}

	safe := make(map[*types.Func]bool)
	isSafe := func(fn *types.Func) bool {
		if safe[fn] {
			return true
		}
		if fn.Pkg() != pass.Pkg {
			var ns NilSafe
			return pass.ImportObjectFact(fn, &ns)
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if safe[m.fn] {
				continue
			}
			if m.recv == nil {
				safe[m.fn] = true // unnamed receiver: the body cannot touch it
				changed = true
				continue
			}
			if _, bad := firstHardUse(pass, m.pre, m.recv, isSafe); !bad {
				safe[m.fn] = true
				changed = true
			}
		}
	}

	for _, m := range methods {
		if safe[m.fn] {
			pass.ExportObjectFact(m.fn, &NilSafe{})
			continue
		}
		if !m.fd.Name.IsExported() {
			continue
		}
		pos, _ := firstHardUse(pass, m.pre, m.recv, isSafe)
		// Report at the declaration: the finding is a contract violation
		// of the method, and that is also where a justified
		// //sslint:ignore directive reads best.
		use := pass.Fset.Position(pos)
		pass.Reportf(m.fd.Name.Pos(),
			"exported method %s on pointer receiver uses %q (line %d) before a nil guard; begin with `if %s == nil` to preserve the no-op telemetry contract",
			m.fd.Name.Name, m.recv.Name(), use.Line, m.recv.Name())
	}
	return nil, nil
}

// preGuardStmts returns the prefix of stmts before the first top-level nil
// guard (the whole list if the method never guards). Everything after a
// guard may use the receiver freely.
func preGuardStmts(pass *analysis.Pass, stmts []ast.Stmt, recv types.Object) []ast.Stmt {
	for i, stmt := range stmts {
		if isNilGuard(pass, stmt, recv) {
			return stmts[:i]
		}
	}
	return stmts
}

// firstHardUse returns the position of the first receiver use in stmts
// that is neither a nil comparison nor a delegating call to a NilSafe
// pointer-receiver method, or ok=false if every use is safe.
func firstHardUse(pass *analysis.Pass, stmts []ast.Stmt, recv types.Object, isSafe func(*types.Func) bool) (token.Pos, bool) {
	benign := make(map[*ast.Ident]bool)
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || pass.TypesInfo.Uses[id] != recv {
					return true
				}
				selection, ok := pass.TypesInfo.Selections[sel]
				if !ok || selection.Kind() != types.MethodVal {
					return true
				}
				target, ok := selection.Obj().(*types.Func)
				if !ok {
					return true
				}
				// Delegation is only nil-safe through a pointer receiver
				// (calling a value-receiver method dereferences the nil
				// pointer before the body even runs).
				sig := target.Type().(*types.Signature)
				if r := sig.Recv(); r != nil {
					if _, isPtr := r.Type().(*types.Pointer); isPtr && isSafe(target) {
						benign[id] = true
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, pair := range [...][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
					if id, ok := pair[0].(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv && isNilIdent(pass, pair[1]) {
						benign[id] = true
					}
				}
			}
			return true
		})
	}
	var pos token.Pos
	found := false
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv && !benign[id] {
				pos, found = id.Pos(), true
			}
			return !found
		})
		if found {
			return pos, true
		}
	}
	return token.NoPos, false
}

// isNilGuard reports whether stmt is `if recv == nil { ... }` (possibly
// `recv == nil || more` as the leftmost condition) whose body exits early
// (final statement is a return).
func isNilGuard(pass *analysis.Pass, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond := ifs.Cond
	// Walk down the left spine of || chains.
	for {
		be, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if be.Op == token.LOR {
			cond = be.X
			continue
		}
		if be.Op != token.EQL {
			return false
		}
		if !(isObjIdent(pass, be.X, recv) && isNilIdent(pass, be.Y) ||
			isObjIdent(pass, be.Y, recv) && isNilIdent(pass, be.X)) {
			return false
		}
		break
	}
	body := ifs.Body.List
	if len(body) == 0 {
		return false
	}
	_, isReturn := body[len(body)-1].(*ast.ReturnStmt)
	return isReturn
}

func isObjIdent(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}
