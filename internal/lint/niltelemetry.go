package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// NilTelemetry enforces the "nil Registry is the no-op sink" contract: in
// the telemetry package, every exported method on a pointer receiver must
// nil-guard the receiver before touching it.
var NilTelemetry = &analysis.Analyzer{
	Name: "niltelemetry",
	Doc: `require nil-receiver guards on exported telemetry handle methods

internal/telemetry promises that a nil *Registry — and every handle
obtained from one (*Counter, *Gauge, *Histogram, *Stage, *PoolMetrics) —
is an inert no-op. Call sites are written against that promise and never
check for nil, so a single exported method that dereferences a nil
receiver turns "telemetry disabled" into a panic. This analyzer requires
each exported pointer-receiver method to guard (if recv == nil, with an
early return or panic-free exit) before the receiver's first use.
Statements that do not touch the receiver may precede the guard; methods
that never use their receiver need none.`,
	Run: runNilTelemetry,
}

func runNilTelemetry(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recv := fd.Recv.List[0]
			if _, isPtr := recv.Type.(*ast.StarExpr); !isPtr {
				continue // value receivers cannot be nil
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				continue // receiver unnamed: the body cannot touch it
			}
			recvObj := pass.TypesInfo.Defs[recv.Names[0]]
			if recvObj == nil {
				continue
			}
			if pos, ok := firstUnguardedUse(pass, fd.Body.List, recvObj); ok {
				// Report at the declaration: the finding is a contract
				// violation of the method, and that is also where a
				// justified //sslint:ignore directive reads best.
				use := pass.Fset.Position(pos)
				pass.Reportf(fd.Name.Pos(),
					"exported method %s on pointer receiver uses %q (line %d) before a nil guard; begin with `if %s == nil` to preserve the no-op telemetry contract",
					fd.Name.Name, recvObj.Name(), use.Line, recvObj.Name())
			}
		}
	}
	return nil, nil
}

// firstUnguardedUse scans statements in order. It returns the position of
// the first receiver use that happens before a nil guard, or ok=false if a
// guard precedes every use (or the receiver is never used).
func firstUnguardedUse(pass *analysis.Pass, stmts []ast.Stmt, recv types.Object) (token.Pos, bool) {
	for _, stmt := range stmts {
		if isNilGuard(pass, stmt, recv) {
			return token.NoPos, false
		}
		if pos, ok := usesObject(pass, stmt, recv); ok {
			return pos, true
		}
	}
	return token.NoPos, false
}

// isNilGuard reports whether stmt is `if recv == nil { ... }` (possibly
// `recv == nil || more` as the leftmost condition) whose body exits early
// (final statement is a return).
func isNilGuard(pass *analysis.Pass, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond := ifs.Cond
	// Walk down the left spine of || chains.
	for {
		be, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if be.Op == token.LOR {
			cond = be.X
			continue
		}
		if be.Op != token.EQL {
			return false
		}
		if !(isObjIdent(pass, be.X, recv) && isNilIdent(pass, be.Y) ||
			isObjIdent(pass, be.Y, recv) && isNilIdent(pass, be.X)) {
			return false
		}
		break
	}
	body := ifs.Body.List
	if len(body) == 0 {
		return false
	}
	_, isReturn := body[len(body)-1].(*ast.ReturnStmt)
	return isReturn
}

func isObjIdent(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// usesObject returns the position of the first reference to obj inside n,
// including references captured by function literals.
func usesObject(pass *analysis.Pass, n ast.Node, obj types.Object) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		if id, ok := node.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			pos, found = id.Pos(), true
		}
		return !found
	})
	return pos, found
}
