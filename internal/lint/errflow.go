package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// ErrFlow forbids silent error drops where a drop costs durability or a
// tenant.
var ErrFlow = &analysis.Analyzer{
	Name: "errflow",
	Doc: `error results must be checked or assigned; deliberate drops carry a directive

In the deterministic core, the checkpoint write protocol and the service
plane, an ignored error is how durability bugs are born: a Save whose
return value nobody reads, a Close swallowed in a cleanup path, an
encoder error vanishing mid-stream. Any call whose results include an
error must have those results consumed — a bare call statement (also via
go/defer) that discards an error is a finding, and so is binding the
error position to _. Deliberate drops are allowed but must say why:
` + "`_ = f()`" + ` under a //sslint:ignore errflow <reason> directive.
Methods of types from hash, bytes and strings are exempt by construction:
their Write-family methods are documented to never return an error (the
FNV checksum writes in the checkpoint codec), unlike an io.Writer, whose
static type promises nothing.`,
	Run: runErrFlow,
}

func runErrFlow(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDroppedCall(pass, n.Call, "spawned ")
			case *ast.AssignStmt:
				checkBlankErr(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkDroppedCall reports a statement-position call whose results include
// an error nobody can read.
func checkDroppedCall(pass *analysis.Pass, call *ast.CallExpr, prefix string) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	t := pass.TypesInfo.TypeOf(call)
	if t == nil || !resultsIncludeError(t) {
		return
	}
	if neverFails(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s%s is silently dropped; handle it, or assign to _ under a //sslint:ignore errflow directive with a reason", prefix, types.ExprString(call.Fun))
}

// checkBlankErr reports `_` bindings in error result positions.
func checkBlankErr(pass *analysis.Pass, as *ast.AssignStmt) {
	resultType := func(i int) types.Type {
		if len(as.Rhs) == len(as.Lhs) {
			return pass.TypesInfo.TypeOf(as.Rhs[i])
		}
		if len(as.Rhs) != 1 {
			return nil
		}
		tup, ok := pass.TypesInfo.TypeOf(as.Rhs[0]).(*types.Tuple)
		if !ok || i >= tup.Len() {
			return nil
		}
		return tup.At(i).Type()
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := resultType(i)
		if t == nil || !isErrorType(t) {
			continue
		}
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && neverFails(pass, call) {
			continue
		}
		pass.Reportf(id.Pos(), "error from %s is discarded with _; a deliberate drop needs a //sslint:ignore errflow directive with a reason", types.ExprString(rhs))
	}
}

// resultsIncludeError reports whether a call's result type (single value
// or tuple) carries an error position.
func resultsIncludeError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is an interface satisfying error (the
// error type itself, or a richer interface embedding it). Concrete types
// returned as themselves are the caller's to interpret.
func isErrorType(t types.Type) bool {
	return types.IsInterface(t) && types.Implements(t, errorIface)
}

// neverFails exempts methods whose receiver's static type lives in hash,
// bytes or strings: their error-returning methods (the io.Writer-shaped
// Write family) are documented to never fail. The receiver's *static*
// type is what grants the exemption — a plain io.Writer promises nothing,
// even if a never-failing implementation hides behind it.
func neverFails(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "hash", "bytes", "strings":
		return true
	}
	return false
}
