// Package lint is sslint: a suite of static analyzers that mechanically
// enforce the determinism and nil-safety invariants every headline number
// in this reproduction rests on. The golden fingerprint tests prove a
// study replayed bit-identically *this time*; sslint proves the properties
// that make it replay at all — no wall-clock reads, no global randomness,
// no map-order-dependent dataflow, no unguarded telemetry handles, no
// unsanctioned goroutines, no impurity laundered through helper packages,
// no shared-state captures slipping into the worker pools — before any
// test runs.
//
// Since PR 5 the suite is interprocedural: analyzers export typed facts
// (analysis.Fact) on functions and packages, the driver analyzes the full
// dependency closure bottom-up so facts always exist before they are
// imported, and the purity/racecapture analyzers walk a conservative call
// graph (internal/lint/callgraph) to catch violations that reach gated
// packages through any chain of calls — including interface dispatch into
// exempt packages.
//
// Run it as `go run ./cmd/sslint ./...`; CI runs the same command with
// -json and -sarif and fails on any non-baselined finding. Suppressions
// are explicit, reasoned and checked (see directive.go); pre-existing
// debt is grandfathered explicitly in lint.baseline.json (see
// baseline.go) and burns down monotonically.
package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/load"
)

// All returns the full sslint analyzer suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		APICodes, CkptSchema, CtxFlow, ErrFlow, Exhaustive, FaultBoundary,
		HotAlloc, LockDiscipline, MapOrder, NilTelemetry, NoWallTime,
		PoolOnly, Purity, RaceCapture, SeededRand, SnapshotFields, WireSchema,
	}
}

// Finding is one reported issue, positioned and attributed. File is the
// absolute path as loaded; Finalize rewrites it module-relative and
// assigns the stable ID used by the baseline and SARIF layers.
type Finding struct {
	ID       string         `json:"id"`
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

// factKey identifies one fact: the object it is attached to (nil for
// package facts), the package (package facts), and its concrete type.
// The fact type alone namespaces the exporter — each fact type belongs
// to exactly one analyzer — which is what lets purity import the base
// analyzers' source facts (UsesClock etc.) across the Requires edge.
type factKey struct {
	obj types.Object
	pkg *types.Package
	t   reflect.Type
}

// Run executes analyzers over pkgs under scope (nil scope = everything
// applies, for fixture tests), applies //sslint:ignore suppression, checks
// for directive rot and returns the surviving findings sorted by position.
// Analyzer errors abort the run: a linter that half-ran is worse than one
// that failed loudly.
//
// The driver walks the dependency closure of pkgs in topological order:
// fact-exporting analyzers (and the transitive Requires of the requested
// ones) run over every local package bottom-up, so cross-package facts are
// always available; diagnostics are only collected from the requested
// packages, only from the analyzers explicitly requested, and only at
// positions the scope covers (exemption applies at the sink, not the
// source).
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer, scope *Scope) ([]Finding, error) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	requested := make(map[*load.Package]bool, len(pkgs))
	for _, p := range pkgs {
		requested[p] = true
	}
	diagnostic := make(map[*analysis.Analyzer]bool, len(analyzers))
	for _, a := range analyzers {
		diagnostic[a] = true
	}

	ordered := requireOrder(analyzers)
	closure := dependencyOrder(pkgs)
	facts := make(map[factKey]analysis.Fact)
	uni := callgraph.NewUniverse()

	var all []Finding
	for _, pkg := range closure {
		pkg := pkg
		uni.AddPackage(pkg.Types)
		isRequested := requested[pkg]
		var findings []Finding
		ran := make(map[string]bool)
		for _, a := range ordered {
			a := a
			applies := scope.AppliesTo(a.Name, pkg.PkgPath)
			reportHere := isRequested && applies && diagnostic[a]
			if !reportHere && len(a.FactTypes) == 0 {
				continue
			}
			if reportHere {
				ran[a.Name] = true
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Universe:  uni,
				Report: func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					if !reportHere || scope.FileExcluded(a.Name, pkg.PkgPath, pos.Filename) {
						return
					}
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Column:   pos.Column,
						Message:  d.Message,
					})
				},
				ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
					facts[factKey{obj: obj, t: reflect.TypeOf(fact)}] = fact
				},
				ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
					return importFact(facts, factKey{obj: obj, t: reflect.TypeOf(fact)}, fact)
				},
				ExportPackageFact: func(fact analysis.Fact) {
					facts[factKey{pkg: pkg.Types, t: reflect.TypeOf(fact)}] = fact
				},
				ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
					return importFact(facts, factKey{pkg: p, t: reflect.TypeOf(fact)}, fact)
				},
				InSinkScope: func(analyzer, pkgPath, filename string) bool {
					return scope.AppliesTo(analyzer, pkgPath) && !scope.FileExcluded(analyzer, pkgPath, filename)
				},
				TrustedImpure: func(fullName string) bool {
					return scope.Trusted(a.Name, fullName)
				},
				GoldenPath: func() string {
					return scope.Golden(a.Name)
				},
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		if !isRequested {
			continue
		}
		var dirs []*directive
		for _, f := range pkg.Files {
			dirs = append(dirs, parseDirectives(pkg.Fset, f)...)
		}
		findings = suppress(pkg.Fset, findings, dirs, ran, known)
		all = append(all, findings...)
	}
	sortFindings(all)
	// Re-derive the serialisable position fields (suppress may have
	// added directive findings that only set Pos).
	for i := range all {
		all[i].File = all[i].Pos.Filename
		all[i].Line = all[i].Pos.Line
		all[i].Column = all[i].Pos.Column
	}
	return dedupe(all), nil
}

// importFact copies a stored fact into the caller's prototype via
// reflection (facts are pointer types).
func importFact(facts map[factKey]analysis.Fact, key factKey, dst analysis.Fact) bool {
	src, ok := facts[key]
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
	return true
}

// dependencyOrder returns the dependency closure of pkgs in bottom-up
// topological order (imports before importers), deterministically: the
// DFS visits each package's Imports in sorted order and the roots in
// their given (already sorted) order.
func dependencyOrder(pkgs []*load.Package) []*load.Package {
	var order []*load.Package
	state := make(map[*load.Package]int) // 1 = visiting, 2 = done
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if state[p] != 0 {
			return // done, or a cycle the loader already rejected
		}
		state[p] = 1
		for _, dep := range p.Imports {
			visit(dep)
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// requireOrder expands analyzers with their transitive Requires and
// returns them in an order where every requirement precedes its
// dependents (stable within a level: the caller's order is preserved).
func requireOrder(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var order []*analysis.Analyzer
	state := make(map[*analysis.Analyzer]int)
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if state[a] != 0 {
			return
		}
		state[a] = 1
		for _, req := range a.Requires {
			visit(req)
		}
		state[a] = 2
		order = append(order, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return order
}

// dedupe removes exact-duplicate findings (overlapping trigger rules may
// fire twice on one expression).
func dedupe(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i > 0 {
			p := fs[i-1]
			if p.Analyzer == f.Analyzer && p.Pos == f.Pos && p.Message == f.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}
