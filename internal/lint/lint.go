// Package lint is sslint: a suite of static analyzers that mechanically
// enforce the determinism and nil-safety invariants every headline number
// in this reproduction rests on. The golden fingerprint tests prove a
// study replayed bit-identically *this time*; sslint proves the properties
// that make it replay at all — no wall-clock reads, no global randomness,
// no map-order-dependent dataflow, no unguarded telemetry handles, no
// unsanctioned goroutines — before any test runs.
//
// Run it as `go run ./cmd/sslint ./...`; CI runs the same command with
// -json and fails on any finding. Suppressions are explicit, reasoned and
// checked: see the directive documentation in directive.go.
package lint

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// All returns the full sslint analyzer suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{MapOrder, NilTelemetry, NoWallTime, PoolOnly, SeededRand}
}

// Finding is one reported issue, positioned and attributed.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

// Run executes analyzers over pkgs under scope (nil scope = everything
// applies, for fixture tests), applies //sslint:ignore suppression, checks
// for directive rot and returns the surviving findings sorted by position.
// Analyzer errors abort the run: a linter that half-ran is worse than one
// that failed loudly.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer, scope *Scope) ([]Finding, error) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var all []Finding
	for _, pkg := range pkgs {
		var findings []Finding
		ran := make(map[string]bool)
		for _, a := range analyzers {
			if !scope.AppliesTo(a.Name, pkg.PkgPath) {
				continue
			}
			files := make([]*ast.File, 0, len(pkg.Files))
			for _, f := range pkg.Files {
				if !scope.FileExcluded(a.Name, pkg.PkgPath, pkg.Fset.Position(f.FileStart).Filename) {
					files = append(files, f)
				}
			}
			ran[a.Name] = true
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Column:   pos.Column,
						Message:  d.Message,
					})
				},
			}
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		var dirs []*directive
		for _, f := range pkg.Files {
			dirs = append(dirs, parseDirectives(pkg.Fset, f)...)
		}
		findings = suppress(pkg.Fset, findings, dirs, ran, known)
		all = append(all, findings...)
	}
	sortFindings(all)
	// Re-derive the serialisable position fields (suppress may have
	// added directive findings that only set Pos).
	for i := range all {
		all[i].File = all[i].Pos.Filename
		all[i].Line = all[i].Pos.Line
		all[i].Column = all[i].Pos.Column
	}
	return dedupe(all), nil
}

// dedupe removes exact-duplicate findings (overlapping trigger rules may
// fire twice on one expression).
func dedupe(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i > 0 {
			p := fs[i-1]
			if p.Analyzer == f.Analyzer && p.Pos == f.Pos && p.Message == f.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}
