package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CtxFlow enforces the context-threading discipline on the RunContext
// cancellation path.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `enforce context.Context threading discipline

Cancellation reaches the day loop through core.RunContext, and it only
works if the context flows the way the standard library promises tools
it will: (1) a function that takes a context.Context takes it as the
first parameter; (2) a context is never stored in a struct field — a
stored context outlives the call that carried it and silently detaches
cancellation from the caller; (3) a function that was handed a context
does not drop it by calling context.Background() or context.TODO() on
the way to other context-taking calls — the fresh context severs the
cancellation chain exactly where a user would expect ctrl-C to work.`,
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkCtxSignature(pass, d.Type)
				if d.Body != nil {
					checkCtxDrops(pass, d.Type, d.Body)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if isContextExpr(pass, field.Type) {
							name := "embedded"
							if len(field.Names) > 0 {
								name = field.Names[0].Name
							}
							pass.Reportf(field.Pos(),
								"context.Context stored in struct field %s of %s; thread it as the first parameter of the calls that need it", name, ts.Name.Name)
						}
					}
				}
			}
		}
		// Function literals get the same signature rule.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkCtxSignature(pass, lit.Type)
				checkCtxDrops(pass, lit.Type, lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkCtxSignature flags context parameters that are not first.
func checkCtxSignature(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // parameter ordinal, counting each name in grouped fields
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextExpr(pass, field.Type) && pos != 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter, not parameter %d", pos+1)
		}
		pos += n
	}
}

// checkCtxDrops flags context.Background()/TODO() calls inside a function
// that already has a context parameter: the caller's context was dropped.
func checkCtxDrops(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	if ft.Params == nil {
		return
	}
	hasCtx := false
	for _, field := range ft.Params.List {
		if isContextExpr(pass, field.Type) {
			hasCtx = true
			break
		}
	}
	if !hasCtx {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// Nested literals are checked with their own signatures by
			// the caller's Inspect walk.
			return lit.Type.Params == nil || !funcTypeHasCtx(pass, lit.Type)
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if name := fn.Name(); name == "Background" || name == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s() inside a function that already has a context parameter drops the caller's cancellation; pass the parameter through", name)
		}
		return true
	})
}

func funcTypeHasCtx(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextExpr(pass, field.Type) {
			return true
		}
	}
	return false
}

// isContextExpr reports whether the type expression denotes
// context.Context.
func isContextExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
