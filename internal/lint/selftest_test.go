package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// TestSuiteRunsCleanOverModule is the meta-gate: sslint over ./... must
// report nothing. Every invariant the analyzers encode is therefore known
// to hold on the committed tree, and any future finding is a regression
// introduced by the change that surfaced it — the gate cannot drift.
func TestSuiteRunsCleanOverModule(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the walker is missing the tree", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
	}
}

// TestInjectedWallClockIsCaught proves the CI gate bites: a time.Now()
// smuggled into repro/internal/core — the exact regression the golden
// fingerprint would only catch probabilistically — is a build-time
// finding.
func TestInjectedWallClockIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/core": {{
			Name: "zz_injected_regression.go",
			Src: `package core

import "time"

// injectedJitter is the classic determinism bug: skewing a simulated
// quantity by the machine clock.
func injectedJitter() int64 { return time.Now().UnixNano() % 3 }
`,
		}},
	}
	pkgs, err := loader.Load("./internal/core")
	if err != nil {
		t.Fatalf("loading core with injected regression: %v", err)
	}
	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.NoWallTime.Name && strings.Contains(f.Message, "time.Now") {
			hit = append(hit, f)
		}
	}
	if len(hit) != 1 {
		t.Fatalf("expected exactly one nowalltime finding for the injected time.Now, got %d (all findings: %+v)", len(hit), findings)
	}
	if filepath.Base(hit[0].File) != "zz_injected_regression.go" {
		t.Errorf("finding attributed to %s, want the injected file", hit[0].File)
	}
}

// TestInjectedRawGoroutineIsCaught does the same for the concurrency
// invariant: a raw goroutine in the observe path bypassing the
// ordered-commit pool is refused at analysis time.
func TestInjectedRawGoroutineIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/core": {{
			Name: "zz_injected_goroutine.go",
			Src: `package core

func injectedSpawn(fns []func()) {
	for _, fn := range fns {
		go fn()
	}
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/core")
	if err != nil {
		t.Fatalf("loading core with injected goroutine: %v", err)
	}
	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	found := false
	for _, f := range findings {
		if f.Analyzer == lint.PoolOnly.Name {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected raw goroutine in internal/core not caught; findings: %+v", findings)
	}
}

// moduleRoot locates the repo root from the test's working directory
// (internal/lint).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}
