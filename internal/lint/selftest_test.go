package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// TestSuiteRunsCleanOverModule is the meta-gate: sslint over ./... must
// report nothing beyond the checked-in baseline, and the baseline must
// carry no stale entries. Every invariant the analyzers encode is
// therefore known to hold on the committed tree (modulo explicitly
// grandfathered debt), any future finding is a regression introduced by
// the change that surfaced it, and the debt only ever shrinks — the gate
// cannot drift in either direction.
func TestSuiteRunsCleanOverModule(t *testing.T) {
	root := moduleRoot(t)
	loader, err := load.NewModuleLoader(root)
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the walker is missing the tree", len(pkgs))
	}
	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	findings = lint.Finalize(findings, root)
	baseline, err := lint.LoadBaseline(filepath.Join(root, lint.BaselineFile))
	if err != nil {
		t.Fatalf("loading baseline: %v", err)
	}
	fresh, stale := baseline.Apply(findings)
	for _, f := range fresh {
		t.Errorf("%s:%d:%d: [%s] %s (id %s)", f.File, f.Line, f.Column, f.Analyzer, f.Message, f.ID)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry %s (%s, %s): the finding is gone — shrink %s", e.ID, e.Analyzer, e.File, lint.BaselineFile)
	}
}

// TestInjectedWallClockIsCaught proves the CI gate bites: a time.Now()
// smuggled into repro/internal/core — the exact regression the golden
// fingerprint would only catch probabilistically — is a build-time
// finding.
func TestInjectedWallClockIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/core": {{
			Name: "zz_injected_regression.go",
			Src: `package core

import "time"

// injectedJitter is the classic determinism bug: skewing a simulated
// quantity by the machine clock.
func injectedJitter() int64 { return time.Now().UnixNano() % 3 }
`,
		}},
	}
	pkgs, err := loader.Load("./internal/core")
	if err != nil {
		t.Fatalf("loading core with injected regression: %v", err)
	}
	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.NoWallTime.Name && strings.Contains(f.Message, "time.Now") {
			hit = append(hit, f)
		}
	}
	if len(hit) != 1 {
		t.Fatalf("expected exactly one nowalltime finding for the injected time.Now, got %d (all findings: %+v)", len(hit), findings)
	}
	if filepath.Base(hit[0].File) != "zz_injected_regression.go" {
		t.Errorf("finding attributed to %s, want the injected file", hit[0].File)
	}
}

// TestInjectedRawGoroutineIsCaught does the same for the concurrency
// invariant: a raw goroutine in the observe path bypassing the
// ordered-commit pool is refused at analysis time.
func TestInjectedRawGoroutineIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/core": {{
			Name: "zz_injected_goroutine.go",
			Src: `package core

func injectedSpawn(fns []func()) {
	for _, fn := range fns {
		go fn()
	}
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/core")
	if err != nil {
		t.Fatalf("loading core with injected goroutine: %v", err)
	}
	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	found := false
	for _, f := range findings {
		if f.Analyzer == lint.PoolOnly.Name {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected raw goroutine in internal/core not caught; findings: %+v", findings)
	}
}

// TestInjectedLaunderedWallClockIsCaught proves the tentpole property:
// a wall-clock read laundered through two helper hops AND an interface
// method inside an exempt package (telemetry is outside the nowalltime
// gate) is still caught — as a purity finding at the call site inside the
// gated package. The control run with only the intraprocedural base
// analyzers finds nothing, which is exactly the hole the call-graph pass
// closes.
func TestInjectedLaunderedWallClockIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/telemetry": {{
			Name: "zz_injected_launder.go",
			Src: `package telemetry

import "time"

// zzTicker hides the clock behind an interface: the call site in core
// never names the impure method's concrete receiver.
type zzTicker interface{ ZZTick() int64 }

type zzClock struct{}

// ZZTick is hop one; zzHelper is hop two; only the leaf touches time.
func (zzClock) ZZTick() int64 { return zzHelper() }

func zzHelper() int64 { return time.Now().UnixNano() }

// ZZNow hands the laundered clock to callers.
func ZZNow() zzTicker { return zzClock{} }
`,
		}},
		"repro/internal/core": {{
			Name: "zz_injected_skew.go",
			Src: `package core

import "repro/internal/telemetry"

// zzSkew smuggles the machine clock into the simulation through an
// exempt package's interface.
func zzSkew() int64 { return telemetry.ZZNow().ZZTick() }
`,
		}},
	}
	pkgs, err := loader.Load("./internal/core")
	if err != nil {
		t.Fatalf("loading core with laundered clock: %v", err)
	}

	// Control: the intraprocedural base analyzers see nothing — the
	// time.Now lives in an exempt package.
	base, err := lint.Run(pkgs, []*analysis.Analyzer{lint.NoWallTime, lint.SeededRand, lint.MapOrder, lint.PoolOnly}, lint.DefaultScope())
	if err != nil {
		t.Fatalf("running base analyzers: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("base analyzers reported the laundered clock without the call graph — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var hit []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.Purity.Name && filepath.Base(f.File) == "zz_injected_skew.go" {
			hit = append(hit, f)
		}
	}
	if len(hit) == 0 {
		t.Fatalf("laundered wall clock not caught by purity; findings: %+v", findings)
	}
	msg := hit[0].Message
	for _, want := range []string{"wall-clock access", "via ", "scope exemptions apply at this call site"} {
		if !strings.Contains(msg, want) {
			t.Errorf("purity message %q missing %q", msg, want)
		}
	}
}

// TestInjectedPoolCaptureIsCaught proves racecapture follows forwarding:
// the closure never syntactically touches internal/parallel — it goes
// through a helper in an exempt package that forwards its func parameter
// to the pool — yet the loop-variable capture and the unsynchronised
// write to captured state are both findings at the closure in core.
func TestInjectedPoolCaptureIsCaught(t *testing.T) {
	loader, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	loader.Inject = map[string][]load.InjectedFile{
		"repro/internal/telemetry": {{
			Name: "zz_injected_runner.go",
			Src: `package telemetry

import "repro/internal/parallel"

// ZZRun hands fn to the worker pool on the caller's behalf.
func ZZRun(n int, fn func(int)) { parallel.ForEach(2, n, fn) }
`,
		}},
		"repro/internal/core": {{
			Name: "zz_injected_tally.go",
			Src: `package core

import "repro/internal/telemetry"

// zzTally races twice over: the closure captures the loop variable and
// accumulates into captured shared state with no partitioning.
func zzTally(rows [][]int) int {
	total := 0
	for _, row := range rows {
		telemetry.ZZRun(len(row), func(i int) {
			total += row[0]
		})
	}
	return total
}
`,
		}},
	}
	pkgs, err := loader.Load("./internal/core")
	if err != nil {
		t.Fatalf("loading core with pool capture: %v", err)
	}

	// Control: without the fact-propagating pass nothing fires — no
	// analyzer but racecapture knows ZZRun reaches the pool.
	base, err := lint.Run(pkgs, []*analysis.Analyzer{lint.NoWallTime, lint.SeededRand, lint.MapOrder, lint.PoolOnly}, lint.DefaultScope())
	if err != nil {
		t.Fatalf("running base analyzers: %v", err)
	}
	if len(base) != 0 {
		t.Fatalf("base analyzers reported the forwarded capture — the control is broken: %+v", base)
	}

	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var loopVar, write bool
	for _, f := range findings {
		if f.Analyzer != lint.RaceCapture.Name || filepath.Base(f.File) != "zz_injected_tally.go" {
			continue
		}
		if strings.Contains(f.Message, `captures loop variable "row"`) {
			loopVar = true
		}
		if strings.Contains(f.Message, `writes to captured "total"`) {
			write = true
		}
	}
	if !loopVar || !write {
		t.Fatalf("forwarded pool capture not fully caught (loopVar=%v write=%v); findings: %+v", loopVar, write, findings)
	}
}

// moduleRoot locates the repo root from the test's working directory
// (internal/lint).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}
