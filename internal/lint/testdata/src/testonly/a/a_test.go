package a

import (
	"testing"
	"time"
)

// TestDay may use the wall clock freely: tests are outside the loaded
// file set.
func TestDay(t *testing.T) {
	if Day() != 7 || time.Now().IsZero() {
		t.Fatal("impossible")
	}
}
