// Package a is clean; its _test.go file uses the wall clock, which must
// not taint the library package (only non-test files are loaded).
package a

// Day is deterministic.
func Day() int { return 7 }
