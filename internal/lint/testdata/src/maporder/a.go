// Package maporder exercises the map-iteration-order analyzer: map ranges
// feeding order-dependent sinks are flagged, order-independent reductions
// and the collect-then-sort idiom are not.
package maporder

import (
	"hash/fnv"
	"sort"
)

// --- flagged forms ---

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to "keys" with no later sort`
	}
	return keys
}

func appendFieldSink(m map[string]int) {
	type acc struct{ names []string }
	var a acc
	for k := range m {
		a.names = append(a.names, k) // want `appends to "a" with no later sort`
	}
	_ = a
}

func hashFeed(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want `writes into a byte/hash sink via Write`
	}
	return h.Sum64()
}

func chanSend(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `sends on a channel`
	}
}

type sink interface{ Emit(string) }

func interfaceSink(m map[string]int, s sink) {
	for k := range m {
		s.Emit(k) // want `calls interface method Emit for effect`
	}
}

// --- allowed forms ---

func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func reuseThenSort(m map[string]int, scratch []string) []string {
	scratch = scratch[:0]
	for k := range m {
		scratch = append(scratch, k)
	}
	sort.Strings(scratch)
	return scratch
}

// Order-independent reductions must not be flagged: sums, maxima and
// counts commute, so map order cannot leak into the result.
func reductions(m map[string]int) (sum, max, count int) {
	for _, v := range m {
		sum += v
		if v > max {
			max = v
		}
		count++
	}
	return
}

func setBuild(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func deleteEntries(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// An interface method whose result is consumed is a query, not a sink.
func interfaceQuery(m map[string]int, s interface{ Seen(string) bool }) int {
	n := 0
	for k := range m {
		if s.Seen(k) {
			n++
		}
	}
	return n
}

// Ranging over a slice is free to feed anything.
func sliceRange(keys []string, ch chan<- string) {
	for _, k := range keys {
		ch <- k
	}
}
