package maporder

// justified shows the sanctioned escape hatch: a reasoned directive above
// the loop suppresses findings anywhere inside that statement.
func justified(m map[string]int, s sink) {
	//sslint:ignore maporder fixture: the sink is an order-insensitive test double
	for k := range m {
		s.Emit(k)
	}
}

// trailing shows the end-of-line placement on the loop header.
func trailing(m map[string]int, ch chan<- string) {
	for k := range m { //sslint:ignore maporder fixture: consumer drains into a set
		ch <- k
	}
}
