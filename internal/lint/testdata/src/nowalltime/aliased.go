package nowalltime

import wall "time"

// Renaming the import does not hide the clock.
func aliased() {
	_ = wall.Now() // want `wall-clock call time\.Now`
}
