// Package nowalltime exercises the wall-clock analyzer: reads of and
// waits on the machine clock are flagged; constructing and arithmetic on
// time values is allowed.
package nowalltime

import "time"

func flagged() {
	_ = time.Now()                             // want `wall-clock call time\.Now`
	time.Sleep(time.Millisecond)               // want `wall-clock call time\.Sleep`
	_ = time.Since(time.Time{})                // want `wall-clock call time\.Since`
	_ = time.Until(time.Time{})                // want `wall-clock call time\.Until`
	<-time.After(time.Millisecond)             // want `wall-clock call time\.After`
	_ = time.NewTimer(time.Second)             // want `wall-clock call time\.NewTimer`
	_ = time.NewTicker(time.Second)            // want `wall-clock call time\.NewTicker`
	_ = time.Tick(time.Second)                 // want `wall-clock call time\.Tick`
	_ = time.AfterFunc(time.Second, func() {}) // want `wall-clock call time\.AfterFunc`
}

func flaggedIndirect() {
	// Taking a clock function as a value is as order-breaking as calling
	// it: the call just happens elsewhere.
	clock := time.Now // want `wall-clock call time\.Now`
	_ = clock
	defer time.Sleep(0) // want `wall-clock call time\.Sleep`
}

func allowed() {
	d := 5 * time.Second
	_ = d
	t := time.Date(2013, time.March, 1, 0, 0, 0, 0, time.UTC)
	t = t.Add(24 * time.Hour)
	_ = t.Sub(t)
	_ = t.Format(time.RFC3339)
	_ = time.Duration(42)
	_ = time.Unix(0, 0)
}
