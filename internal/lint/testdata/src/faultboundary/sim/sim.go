// Package sim stands in for a deterministic simulation package: the HTTP
// boundary belongs to faults and simweb, never here.
package sim

import "net/http" // want `simulation package faultboundary/sim imports net/http`

var _ = http.StatusOK
