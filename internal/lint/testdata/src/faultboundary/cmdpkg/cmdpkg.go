// Package cmdpkg wires handlers the way cmd/crawlerd does; the fault
// layer may wrap the crawl path but never the /v1 control plane.
package cmdpkg

import (
	"net/http"

	"faultboundary/faults"
	"faultboundary/svc"
)

func wire(p *faults.Plan, m *svc.Manager, web http.Handler) {
	_ = faults.Handler(p, web)         // crawl path: sanctioned
	_ = faults.Handler(p, m.Handler()) // want `/v1 control plane wrapped in the fault layer`
	_ = wrap(p, m.Handler())           // want `/v1 control plane wrapped in the fault layer`
	_ = wrap(p, web)                   // crawl path through the helper: sanctioned
}

// wrap forwards its handler into the fault layer, so the ban follows it.
func wrap(p *faults.Plan, h http.Handler) http.Handler {
	return faults.Handler(p, http.TimeoutHandler(h, 0, ""))
}

func wireMux(p *faults.Plan) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", handleStatus)
	return faults.Handler(p, mux) // want `/v1 control plane wrapped in the fault layer`
}

func handleStatus(w http.ResponseWriter, r *http.Request) {}

func wireRoute(p *faults.Plan) http.Handler {
	return faults.Handler(p, http.HandlerFunc(handleStatus)) // want `/v1 control plane wrapped in the fault layer`
}
