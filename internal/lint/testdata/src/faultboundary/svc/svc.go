// Package svc stubs the study-service control plane: a manager whose
// Handler() builds the /v1 mux.
package svc

import "net/http"

type Manager struct{}

// Handler returns the /v1 API surface.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/studies", m.handleStudies)
	return mux
}

func (m *Manager) handleStudies(w http.ResponseWriter, r *http.Request) {}
