// Package faults stubs the module's fault-injection wrapper.
package faults

import "net/http"

type Plan struct{}

// Handler wraps h with injected failures.
func Handler(p *Plan, h http.Handler) http.Handler { return h }
