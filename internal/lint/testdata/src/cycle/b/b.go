// Package b closes the deliberate import cycle.
package b

import "cycle/a"

// B bounces back to a.
func B() int { return a.A() }
