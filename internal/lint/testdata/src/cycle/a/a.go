// Package a is half of a deliberate import cycle for loader error tests.
package a

import "cycle/b"

// A bounces to b.
func A() int { return b.B() }
