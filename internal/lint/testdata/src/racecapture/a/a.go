// Package a exercises the racy closure shapes racecapture flags at pool
// call sites — and the sanctioned shapes it must not.
package a

import (
	"racecapture/fwd"

	"repro/internal/parallel"
)

// Partitioned is the sanctioned pattern: each worker writes its own slot.
func Partitioned(n int) []int {
	out := make([]int, n)
	parallel.ForEach(n, func(i int) {
		out[i] = i * i
	})
	return out
}

// SharedWrite races every worker on one captured accumulator.
func SharedWrite(n int) int {
	sum := 0
	parallel.ForEach(n, func(i int) {
		sum += i // want `closure handed to the parallel pool writes to captured "sum"`
	})
	return sum
}

// LoopCapture hands the pool a closure over the range variable.
func LoopCapture(rows [][]int) {
	for _, row := range rows {
		parallel.ForEach(len(row), func(i int) {
			row[i] = 0 // want `closure handed to the parallel pool captures loop variable "row"`
		})
	}
}

// MapWrite shows index-partitioning does not excuse maps: concurrent map
// writes race no matter the key.
func MapWrite(n int) map[int]bool {
	hits := make(map[int]bool)
	record := func(i int) {
		hits[i] = true // want `closure handed to the parallel pool writes to captured "hits"`
	}
	parallel.ForEach(n, record)
	return hits
}

// Forwarded reaches the pool through another package's wrapper: without
// the PoolForwarder fact the closure never looks pool-bound and the
// finding disappears.
func Forwarded(n int) int {
	total := 0
	fwd.Run(n, func(i int) {
		total += i // want `closure handed to the parallel pool writes to captured "total"`
	})
	return total
}

// FieldWrite covers the captured-struct-field shape.
type acc struct{ n int }

func FieldWrite(n int) int {
	var a acc
	parallel.ForEach(n, func(i int) {
		a.n = i // want `closure handed to the parallel pool writes to captured "a"`
	})
	return a.n
}
