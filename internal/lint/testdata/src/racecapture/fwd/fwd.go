// Package fwd forwards worker functions into the pool from another
// package. Closures handed to Run must be checked at their creation
// site, which only works through the PoolForwarder fact exported here.
package fwd

import "repro/internal/parallel"

// Run hands fn straight to the pool.
func Run(n int, fn func(int)) {
	parallel.ForEach(n, fn)
}
