// Package exempt stands in for a scope-exempt helper package (telemetry,
// parallel, cli): the base analyzers do not report inside it, but the
// facts computed here are what lets purity catch the laundering below.
package exempt

import "time"

// Stamp wraps the wall clock one hop away from the caller.
func Stamp() int64 { return stamp() }

// stamp is the second hop: the impurity is two calls deep and the
// source-side ignore directive must not protect scoped callers.
func stamp() int64 {
	//sslint:ignore nowalltime source-side suppression: legitimate here, irrelevant to scoped callers
	return time.Now().UnixNano()
}

// Source is the interface scoped code calls through; resolving its
// implementers requires the class-hierarchy pass.
type Source interface {
	Value() int64
}

// Clock implements Source on top of the laundered wall clock.
type Clock struct{}

// Value is three hops from time.Now by the time a caller dispatches
// through Source.
func (Clock) Value() int64 { return Stamp() }

// NewClock hands scoped code a Source without naming Clock.
func NewClock() Source { return Clock{} }

// Pure is a control: calling it from scoped code must not be reported.
func Pure() int64 { return 42 }
