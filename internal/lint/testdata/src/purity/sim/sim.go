// Package sim stands in for a simulation-scoped package: every call that
// can reach impurity inside purity/exempt must be reported here, at the
// sink, regardless of how many hops or interfaces sit in between.
package sim

import "purity/exempt"

// Direct crosses the scope frontier in one call.
func Direct() int64 {
	return exempt.Stamp() // want `call to exempt.Stamp reaches wall-clock access outside the nowalltime gate`
}

// ViaInterface crosses it through dynamic dispatch: without the
// class-hierarchy resolution there is no edge to Clock.Value and this
// finding disappears.
func ViaInterface(s exempt.Source) int64 {
	return s.Value() // want `call to exempt.Clock.Value \(via exempt.Source.Value\) reaches wall-clock access`
}

// Chained calls a scoped function that itself crosses the frontier: the
// report belongs to ViaInterface's call site, not here.
func Chained() int64 {
	return ViaInterface(exempt.NewClock())
}

// Suppressed shows the sink-side escape hatch: the directive suppresses
// exactly this call site and nothing else.
func Suppressed() int64 {
	//sslint:ignore purity fixture: this specific call site accepts the impurity
	return exempt.Stamp()
}

// Control: pure cross-package calls stay silent.
func Fine() int64 {
	return exempt.Pure()
}
