// Package a exercises the exhaustive analyzer: dispatches over declared
// string-enum const sets must cover every member or carry a reasoned
// default.
package a

// State is a four-member string enum in the style of the studysvc study
// states.
type State string

const (
	StateRunning State = "running"
	StatePaused  State = "paused"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Op shares the camel-prefix convention but is a different set.
const (
	OpRead  = "read"
	OpWrite = "write"
)

func act(s State) int {
	return 0
}

// full covers every member: clean.
func full(s State) int {
	switch s {
	case StateRunning:
		return 0
	case StatePaused:
		return 1
	case StateDone:
		return 2
	case StateFailed:
		return 3
	}
	return -1
}

// missing skips two members and has no default.
func missing(s State) int {
	switch s { // want `a switch over State\* \(4 members\) misses StateDone, StateFailed; cover every member or add a default with a reason comment`
	case StateRunning:
		return 0
	case StatePaused:
		return 1
	}
	return -1
}

// multiCase groups members in one case clause; still exhaustive: clean.
func multiCase(s State) int {
	switch s {
	case StateRunning, StatePaused:
		return 0
	case StateDone, StateFailed:
		return 1
	}
	return -1
}

// unreasonedDefault hides future members behind a bare default.
func unreasonedDefault(s State) int {
	switch s { // want `default in a switch over State\* \(4 members\) needs a reason comment: an unreasoned default hides members added later`
	case StateRunning:
		return 0
	case StatePaused:
		return 1
	default:
		return -1
	}
}

// reasonedDefault says why falling through is safe: clean.
func reasonedDefault(s State) int {
	switch s {
	case StateRunning:
		return 0
	case StatePaused:
		return 1
	default:
		// terminal states are all rendered the same way
		return -1
	}
}

// chainMissing is the if/else spelling of a partial dispatch.
func chainMissing(s State) int {
	if s == StateRunning { // want `an if/else chain over State\* \(4 members\) misses StateFailed; cover every member or add a default with a reason comment`
		return 0
	} else if s == StatePaused || s == StateDone {
		return 1
	}
	return -1
}

// chainUnreasoned has a bare terminal else.
func chainUnreasoned(s State) int {
	if s == StateRunning { // want `default in an if/else chain over State\* \(4 members\) needs a reason comment`
		return 0
	} else if s == StatePaused {
		return 1
	} else if s == StateDone {
		return 2
	} else {
		return act(s)
	}
}

// chainReasoned carries the reason on the terminal else: clean.
func chainReasoned(s State) int {
	if s == StateRunning {
		return 0
	} else if s == StatePaused {
		return 1
	} else {
		// done and failed share the archived rendering
		return 2
	}
}

// chainFull covers everything without an else: clean.
func chainFull(s State) int {
	if s == StateRunning || s == StatePaused {
		return 0
	} else if s == StateDone || s == StateFailed {
		return 1
	}
	return -1
}

// guard is a single comparison, not a dispatch: clean.
func guard(s State) bool {
	if s == StateDone {
		return true
	}
	return false
}

// literals dispatches on raw strings, out of scope: clean.
func literals(s string) int {
	switch s {
	case "running":
		return 0
	case "paused":
		return 1
	}
	return -1
}

// mixed has a literal case alongside a const, out of scope: clean.
func mixed(s State) int {
	switch s {
	case StateRunning:
		return 0
	case "paused":
		return 1
	}
	return -1
}

// otherSet dispatches over the complete Op set: clean.
func otherSet(op string) int {
	switch op {
	case OpRead:
		return 0
	case OpWrite:
		return 1
	}
	return -1
}

// suppressed carries a directive: the finding is eaten.
func suppressed(s State) int {
	//sslint:ignore exhaustive fixture: proving dispatches can be suppressed with a reason
	switch s {
	case StateRunning:
		return 0
	case StatePaused:
		return 1
	}
	return -1
}
