// Fixtures for snapshotfields: every mutable field of a type with an
// Export*/Restore* pair must be read by the export and written by the
// restore.
package snapshotfields

// tracker smuggles a mutable field (peak) past its snapshot pair.
type tracker struct {
	day   int
	peak  int // want `field peak of tracker is mutated by Advance but never read by ExportState` `field peak of tracker is mutated by Advance but never written by RestoreState`
	notes map[string]int
	onEvt func(int) // func-typed wiring is exempt: rebuilt by the owner, not snapshotted
}

func (t *tracker) Advance(d int) {
	t.day = d
	if d > t.peak {
		t.peak = d
	}
	delete(t.notes, "stale")
}

type trackerState struct {
	Day   int
	Notes map[string]int
}

func (t *tracker) ExportState() trackerState {
	return trackerState{Day: t.day, Notes: t.notes}
}

func (t *tracker) RestoreState(st trackerState) {
	t.day = st.Day
	t.notes = st.Notes
}

// lopsided exports a field but forgets to restore it.
type lopsided struct {
	count int // want `field count of lopsided is mutated by Bump but never written by RestoreState`
}

func (l *lopsided) Bump() { l.count++ }

type lopsidedState struct{ Count int }

func (l *lopsided) ExportState() lopsidedState { return lopsidedState{Count: l.count} }

func (l *lopsided) RestoreState(st lopsidedState) {}

// nested proves writes through local aliases count: RestoreState reaches
// rows only via the vs alias, and that still covers the field.
type nested struct {
	rows map[string]*row
	mode int
}

type row struct{ vals []int }

func (n *nested) Grow(k string, v int) {
	r := n.rows[k]
	r.vals = append(r.vals, v)
	n.mode = v
}

type nestedState struct {
	Rows map[string][]int
	Mode int
}

func (n *nested) ExportState() nestedState {
	st := nestedState{Rows: make(map[string][]int), Mode: n.mode}
	for k, r := range n.rows {
		st.Rows[k] = append([]int(nil), r.vals...)
	}
	return st
}

func (n *nested) RestoreState(st nestedState) {
	for k, vals := range st.Rows {
		r := n.rows[k]
		r.vals = append(r.vals[:0], vals...)
	}
	n.mode = st.Mode
}

// frozen has no mutators outside its pair, so nothing is required of the
// snapshot.
type frozen struct {
	label string
}

type frozenState struct{ Label string }

func (f *frozen) ExportState() frozenState    { return frozenState{Label: f.label} }
func (f *frozen) RestoreState(st frozenState) {}

// unpaired has state methods that do not form an Export/Restore pair and
// must be left alone.
type unpaired struct {
	n int
}

func (u *unpaired) Inc()             { u.n++ }
func (u *unpaired) ExportTotal() int { return u.n }
