// Package parallel is a fixture stub for the module's ordered-commit
// pool, giving "allowed form" fixtures the sanctioned spelling. The stub
// runs serially: fixtures only need the shape, not the concurrency.
package parallel

// ForEach applies fn to each index.
func ForEach(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
