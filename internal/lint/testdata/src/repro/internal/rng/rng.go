// Package rng is a fixture stub standing in for the module's seeded
// substream source, so "allowed form" fixtures can show the sanctioned
// idiom without depending on the real tree.
package rng

// Source is a deterministic stream.
type Source struct{ state uint64 }

// New returns a seeded source.
func New(seed uint64) *Source { return &Source{state: seed} }

// Sub derives a named substream.
func (s *Source) Sub(name string) *Source {
	child := s.state
	for _, c := range name {
		child = child*1099511628211 + uint64(c)
	}
	return &Source{state: child}
}

// Uint64 advances the stream.
func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

// Intn draws from [0, n).
func (s *Source) Intn(n int) int { return int(s.Uint64() % uint64(n)) }

// Float64 draws from [0, 1).
func (s *Source) Float64() float64 { return float64(s.Uint64()>>11) / (1 << 53) }
