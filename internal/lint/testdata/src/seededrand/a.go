// Package seededrand exercises the randomness analyzer: math/rand,
// math/rand/v2 and crypto/rand are forbidden; internal/rng substreams are
// the sanctioned source.
package seededrand

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"

	"repro/internal/rng"
)

func flagged() {
	_ = rand.Intn(10)                  // want `use of math/rand\.Intn`
	_ = rand.Float64()                 // want `use of math/rand\.Float64`
	rand.Shuffle(3, func(i, j int) {}) // want `use of math/rand\.Shuffle`
	_ = rand.New(rand.NewSource(1))    // want `use of math/rand\.New` `use of math/rand\.NewSource`
	_ = randv2.IntN(10)                // want `use of math/rand/v2\.IntN`
	buf := make([]byte, 8)
	_, _ = crand.Read(buf) // want `use of crypto/rand\.Read`
	_ = crand.Reader       // want `use of crypto/rand\.Reader`
}

func allowed() {
	r := rng.New(42).Sub("traffic")
	_ = r.Intn(10)
	_ = r.Float64()
}
