package seededrand

// A blank import still runs math/rand's init and advertises intent; with
// no member uses in this file, the import line itself is the finding.
import _ "math/rand" // want `import of math/rand`
