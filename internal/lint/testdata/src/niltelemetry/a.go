// Package niltelemetry exercises the nil-receiver-guard analyzer: every
// exported method on a pointer receiver must guard before touching the
// receiver, preserving the "nil handle is a no-op" contract.
package niltelemetry

// Handle stands in for a telemetry handle type.
type Handle struct{ n int64 }

// --- allowed forms ---

// Add guards first: the canonical shape.
func (h *Handle) Add(v int64) {
	if h == nil {
		return
	}
	h.n += v
}

// AddOr guards in the leftmost conjunct of an || chain; short-circuit
// evaluation keeps the receiver-touching arm safe.
func (h *Handle) AddOr(v int64) {
	if h == nil || v < 0 {
		return
	}
	h.n += v
}

// LocalsFirst may compute receiver-free locals before the guard.
func (h *Handle) LocalsFirst(v int64) int64 {
	scaled := v * 2
	if h == nil {
		return scaled
	}
	return scaled + h.n
}

// NilFlipped accepts the guard written backwards.
func (h *Handle) NilFlipped() int64 {
	if nil == h {
		return 0
	}
	return h.n
}

// Reset never uses its receiver through an unnamed binding, so there is
// nothing to guard.
func (*Handle) Reset() {}

// value receivers cannot be nil.
func (h Handle) Value() int64 { return h.n }

// unexported methods are callee-guarded internals.
func (h *Handle) bump() { h.n++ }

// --- flagged forms ---

func (h *Handle) Bad(v int64) { // want `exported method Bad on pointer receiver uses "h" \(line \d+\) before a nil guard`
	h.n += v
}

// GuardTooLate dereferences before checking.
func (h *Handle) GuardTooLate(v int64) { // want `exported method GuardTooLate`
	h.n += v
	if h == nil {
		return
	}
}

// GuardNoExit checks but falls through to the dereference anyway.
func (h *Handle) GuardNoExit(v int64) { // want `exported method GuardNoExit`
	if h == nil {
		v = 0
	}
	h.n += v
}

// Captured leaks the unguarded receiver into a closure.
func (h *Handle) Captured() func() int64 { // want `exported method Captured`
	return func() int64 { return h.n }
}
