// Package a exercises the errflow analyzer: error results must be checked
// or assigned, blank discards need a reasoned directive, and the
// never-failing hash/bytes/strings writers are exempt.
package a

import (
	"bytes"
	"errors"
	"hash/fnv"
	"io"
)

func fail() error { return errors.New("x") }

func pair() (int, error) { return 0, errors.New("x") }

func value() int { return 1 }

type closer struct{}

func (closer) Close() error { return nil }

func drops(c closer) {
	fail()          // want `error returned by fail is silently dropped; handle it, or assign to _ under a //sslint:ignore errflow directive with a reason`
	defer fail()    // want `error returned by deferred fail is silently dropped`
	go fail()       // want `error returned by spawned fail is silently dropped`
	pair()          // want `error returned by pair is silently dropped`
	defer c.Close() // want `error returned by deferred c\.Close is silently dropped`
	value()         // no error in the results: clean
}

func blanks() {
	_ = fail()     // want `error from fail\(\) is discarded with _; a deliberate drop needs a //sslint:ignore errflow directive with a reason`
	n, _ := pair() // want `error from pair\(\) is discarded with _`
	_ = n
	//sslint:ignore errflow fixture: proving a reasoned blank discard is accepted
	_ = fail()
}

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := pair()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// exemptWriters: the hash/bytes/strings Write family is documented to
// never fail, so statement-position calls are clean — but the same method
// behind a plain io.Writer promises nothing.
func exemptWriters(w io.Writer, buf *bytes.Buffer) {
	h := fnv.New64a()
	h.Write([]byte("ok"))
	buf.WriteString("ok")
	buf.Write(nil)
	w.Write(nil) // want `error returned by w\.Write is silently dropped`
}

// conversions are not calls: clean.
type errAlias = error

func convert(e error) errAlias {
	return errAlias(e)
}
