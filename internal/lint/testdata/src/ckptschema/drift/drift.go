// Package drift is the clean codec after unsanctioned payload changes:
// the golden the test pins predates a new field and a retype, but the
// versions did not move — every divergence is a finding.
package drift

const envelopeVersion = 1

const SnapshotVersion = 3

// Inner retyped N from string to int without a bump.
type Inner struct {
	N     int // want `checkpoint field "N" of ckptschema/drift\.Inner changed type string -> int without a SnapshotVersion bump`
	Names []string
}

// StudySnapshot grew Extra without a bump.
type StudySnapshot struct {
	Version int
	Hash    uint64
	Inner   Inner
	Extra   bool // want `checkpoint field "Extra" of ckptschema/drift\.StudySnapshot added without a SnapshotVersion bump: a version-3 payload no longer describes what this code writes`
}
