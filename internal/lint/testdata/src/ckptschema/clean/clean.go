// Package clean is a miniature checkpoint codec: it declares the envelope
// version and sees a StudySnapshot + SnapshotVersion in its own scope, so
// the ckptschema analyzer treats it as the contract package. The test pins
// its golden from this exact source: no drift, no findings.
package clean

// envelopeVersion is the on-disk framing version.
const envelopeVersion = 1

// SnapshotVersion is the payload schema version.
const SnapshotVersion = 3

// Inner is a state struct the snapshot reaches.
type Inner struct {
	N     int
	Names []string
}

// StudySnapshot is the payload root.
type StudySnapshot struct {
	Version int
	Hash    uint64
	Inner   Inner
	ByKey   map[string]float64
	Blob    []byte
}
