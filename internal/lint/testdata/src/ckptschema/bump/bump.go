// Package bump is the codec after a sanctioned revision: SnapshotVersion
// moved but the golden still pins the old version, so the only finding is
// the re-pin reminder — the shape changes themselves are sanctioned.
package bump

const envelopeVersion = 1 // want `checkpoint contract version moved \(envelope 1 -> 1, snapshot 2 -> 3\) but ckpt\.schema\.json still pins the old one; run .go run \./cmd/sslint -write-schema. to re-pin`

const SnapshotVersion = 3

type StudySnapshot struct {
	Version int
	Extra   bool
}
