// Fixtures for lockdiscipline: release-on-every-path and the
// no-blocking-while-held rule.
package lockdiscipline

import (
	"net/http"
	"sync"
)

type handle struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (h *handle) good() {
	h.mu.Lock()
	h.n++
	h.mu.Unlock()
}

func (h *handle) goodDefer() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

func (h *handle) goodRead() int {
	h.rw.RLock()
	defer h.rw.RUnlock()
	return h.n
}

func (h *handle) goodEarlyReturn(err error) error {
	h.mu.Lock()
	if err != nil {
		h.mu.Unlock()
		return err
	}
	h.n++
	h.mu.Unlock()
	return nil
}

func (h *handle) goodBothBranches(b bool) {
	h.mu.Lock()
	if b {
		h.n++
		h.mu.Unlock()
	} else {
		h.mu.Unlock()
	}
}

func (h *handle) leak() {
	h.mu.Lock() // want `leak: h\.mu\.Lock\(\) is not released on the fall-through path`
	h.n++
}

func (h *handle) leakReturn(err error) error {
	h.mu.Lock()
	if err != nil {
		return err // want `leakReturn: returns while holding h\.mu`
	}
	h.mu.Unlock()
	return nil
}

func (h *handle) disagree(b bool) {
	h.mu.Lock()
	if b { // want `disagree: branches disagree about held mutexes`
		h.mu.Unlock()
	}
	h.mu.Unlock()
}

func (h *handle) sendWhileHeld(ch chan int) {
	h.mu.Lock()
	ch <- 1 // want `sendWhileHeld: channel send while holding h\.mu`
	h.mu.Unlock()
}

// recvWhileHeld is the sanctioned OnDayEnd shape: releasing a slot
// semaphore under the handle lock blocks nobody.
func (h *handle) recvWhileHeld(ch chan int) {
	h.mu.Lock()
	<-ch
	h.mu.Unlock()
}

func (h *handle) waitWhileHeld(wg *sync.WaitGroup) {
	h.mu.Lock()
	defer h.mu.Unlock()
	wg.Wait() // want `waitWhileHeld: WaitGroup\.Wait while holding h\.mu`
}

func (h *handle) writeWhileHeld(w http.ResponseWriter) {
	h.mu.Lock()
	w.WriteHeader(200) // want `writeWhileHeld: http\.ResponseWriter\.WriteHeader while holding h\.mu`
	h.mu.Unlock()
}

func (h *handle) lockInLoop(n int) {
	for i := 0; i < n; i++ { // want `lockInLoop: loop body changes the held-mutex set`
		h.mu.Lock()
	}
}

func (h *handle) lockPerIter(n int) {
	for i := 0; i < n; i++ {
		h.mu.Lock()
		h.n++
		h.mu.Unlock()
	}
}

// closures are their own scope: the literal leaks, not the creator.
func (h *handle) spawn() func() {
	return func() {
		h.mu.Lock() // want `spawn \(closure\): h\.mu\.Lock\(\) is not released on the fall-through path`
	}
}
