package lockdiscipline

// world exposes the day-boundary hooks the studysvc manager wires.
type world struct {
	OnDayStart func()
	OnDayEnd   func()
}

// mgrGood pairs the acquire and release directly.
type mgrGood struct {
	sem chan struct{}
}

func (m *mgrGood) wire(w *world) {
	w.OnDayStart = func() { m.sem <- struct{}{} }
	w.OnDayEnd = func() { <-m.sem }
}

// mgrHelper pairs them through named methods.
type mgrHelper struct {
	sem chan struct{}
}

func (m *mgrHelper) wire(w *world) {
	w.OnDayStart = m.acquire
	w.OnDayEnd = m.release
}

func (m *mgrHelper) acquire() { m.sem <- struct{}{} }
func (m *mgrHelper) release() { <-m.sem }

// mgrLeaky acquires a slot every day and never gives it back.
type mgrLeaky struct {
	slots chan struct{}
}

func (m *mgrLeaky) wire(w *world) {
	w.OnDayStart = func() { m.slots <- struct{}{} } // want `OnDayStart acquires slot semaphore slots but no OnDayEnd`
	w.OnDayEnd = func() {}
}

// mgrOrphan releases a slot nothing acquired.
type mgrOrphan struct {
	sem chan struct{}
}

func (m *mgrOrphan) wire(w *world) {
	w.OnDayEnd = func() { <-m.sem } // want `OnDayEnd releases slot semaphore sem but no OnDayStart`
}
