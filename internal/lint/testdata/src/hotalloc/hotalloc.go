// Fixtures for hotalloc: the allocation patterns banned inside the
// zero-alloc packages.
package hotalloc

import "fmt"

func sprintf(id int) string {
	return fmt.Sprintf("d%d", id) // want `fmt\.Sprintf allocates its result`
}

func concatLoop(parts []string) string {
	var s string
	for _, p := range parts {
		s += p // want `string \+= in a loop builds quadratic garbage`
	}
	return s
}

func binaryConcatLoop(parts []string) []string {
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, "<"+p) // want `string concatenation in a loop builds quadratic garbage`
	}
	return out
}

func makeInLoop(n int) [][]int {
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		row := make([]int, 8) // want `make\(\) inside a loop allocates every iteration`
		out = append(out, row)
	}
	return out
}

func appendGrowthLoop(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append-growth in a loop on out`
	}
	return out
}

// sizedAppendLoop pre-sizes the buffer: growth never reallocates.
func sizedAppendLoop(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// constConcat folds at compile time: no runtime garbage.
func constConcat() string {
	s := ""
	for i := 0; i < 3; i++ {
		s = "a" + "b"
	}
	return s
}

// paramAppend grows a slice of unknown origin: the caller may have sized
// it, so the analyzer stays quiet.
func paramAppend(out []int, n int) []int {
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
