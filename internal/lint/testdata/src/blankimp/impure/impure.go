// Package impure exists to be blank-imported: its init reads the wall
// clock, so the loader must still record the edge and the driver must
// still compute facts for it.
package impure

import "time"

var initedAt int64

func init() { initedAt = Stamp() }

// Stamp reads the machine clock.
func Stamp() int64 { return time.Now().UnixNano() + initedAt }
