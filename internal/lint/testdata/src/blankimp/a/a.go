// Package a blank-imports an impure package: the import edge must be
// recorded (the dependency's inits still run) and analyzing it must not
// fail, but with no call edge there is nothing to report here.
package a

import _ "blankimp/impure"

// Pure is untouched by the blank import.
func Pure() int { return 4 }
