// Package ignoredir exercises the //sslint:ignore directive machinery:
// used suppressions are honoured silently, while malformed, unknown and
// unused directives are themselves findings.
package ignoredir

import "time"

// justified: directive above the statement, used — no findings at all.
func justified() {
	//sslint:ignore nowalltime fixture: proving a reasoned suppression is honoured
	_ = time.Now()
}

// trailing: directive at end of the offending line, used.
func trailing() {
	_ = time.Now() //sslint:ignore nowalltime fixture: trailing placement is honoured too
}

// wrongAnalyzer: the directive names a different analyzer, so it neither
// suppresses the clock finding nor counts as used.
func wrongAnalyzer() {
	//sslint:ignore poolonly fixture: names the wrong analyzer // want `unused //sslint:ignore poolonly directive`
	_ = time.Now() // want `wall-clock call time\.Now`
}

//sslint:ignore nowalltime fixture: nothing below to suppress // want `unused //sslint:ignore nowalltime directive`
func clean() {}

func missingReason() {
	//sslint:ignore nowalltime // want `missing reason`
	_ = time.Now() // want `wall-clock call time\.Now`
}

//sslint:ignore nosuchanalyzer because reasons // want `unknown analyzer "nosuchanalyzer"`
func unknownAnalyzer() {}
