package ignoredir

// multiline proves a directive on its own line above a multi-line
// statement covers the statement's full extent: the append finding sits
// three lines below the directive, inside the annotated range statement.
func multilineCovered(m map[string]int) []int {
	out := make([]int, 0, len(m))
	//sslint:ignore maporder fixture: directive must span the whole multi-line range statement
	for _, v := range m {
		out = append(
			out,
			v,
		)
	}
	return out
}

// trailing proves an end-of-line directive on the first line of a
// multi-line statement covers its later lines too.
func trailingCovered(m map[string]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m { //sslint:ignore maporder fixture: trailing directive on a multi-line statement
		out = append(
			out,
			v)
	}
	return out
}
