// Package poolonly exercises the raw-goroutine analyzer: go statements
// are flagged wherever they appear; the internal/parallel ordered-commit
// pool is the sanctioned alternative.
package poolonly

import "repro/internal/parallel"

func flagged(work []func()) {
	done := make(chan struct{})
	go func() { // want `raw go statement in simulation package`
		close(done)
	}()
	<-done
	for _, w := range work {
		go w() // want `raw go statement in simulation package`
	}
}

func flaggedNested() {
	f := func() {
		go func() {}() // want `raw go statement in simulation package`
	}
	f()
}

func allowed(items []int) []int {
	out := make([]int, len(items))
	parallel.ForEach(len(items), func(i int) { out[i] = items[i] * 2 })
	return out
}

// justified shows the escape hatch for goroutines provably outside the
// deterministic dataflow.
func justified(notify chan<- struct{}) {
	//sslint:ignore poolonly fixture: fire-and-forget progress notification never rejoins the dataflow
	go func() { notify <- struct{}{} }()
}
