// Package a exercises the context-threading rules: first-parameter
// position, no storage in structs, no dropping mid-chain.
package a

import "context"

type holder struct {
	ctx context.Context // want `context.Context stored in struct field ctx of holder`
}

func secondParam(name string, ctx context.Context) string { // want `context.Context must be the first parameter, not parameter 2`
	_ = ctx
	return name
}

func drop(ctx context.Context) error {
	return blocking(context.Background()) // want `context.Background\(\) inside a function that already has a context parameter drops the caller's cancellation`
}

func todoDrop(ctx context.Context) error {
	return blocking(context.TODO()) // want `context.TODO\(\) inside a function that already has a context parameter drops the caller's cancellation`
}

func litBad() {
	fn := func(n int, ctx context.Context) int { // want `context.Context must be the first parameter, not parameter 2`
		_ = ctx
		return n
	}
	_ = fn
}

// Controls: correct threading is silent.

func blocking(ctx context.Context) error {
	_ = ctx
	return nil
}

func good(ctx context.Context, name string) error {
	_ = name
	return blocking(ctx)
}

// entry has no context parameter of its own, so minting the root context
// here is legitimate.
func entry() error {
	return good(context.Background(), "root")
}
