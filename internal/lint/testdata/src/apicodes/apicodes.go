// Fixtures for apicodes: error codes come from the declared registry and
// json tags stay snake_case.
package apicodes

const (
	CodeBad       = "bad_value"
	ErrCodeOops   = "oops"
	looseConstant = "loose"
)

type FieldError struct {
	Field   string `json:"field"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

type spec struct {
	MaxDays  int    `json:"max_days"`
	BadName  int    `json:"BadName"`    // want `json tag "BadName" is not snake_case`
	Kebabbed int    `json:"kebab-case"` // want `json tag "kebab-case" is not snake_case`
	Skipped  string `json:"-"`
	Untagged string
}

func writeError(status int, code, msg string) {}

func use() {
	writeError(500, CodeBad, "m")
	writeError(500, ErrCodeOops, "m")
	writeError(500, "raw_code", "m")    // want `error code must be a declared Code\*/ErrCode\* constant, not a raw string literal`
	writeError(500, looseConstant, "m") // want `error code must be a declared Code\*/ErrCode\* constant, not variable looseConstant`

	_ = FieldError{Field: "f", Code: CodeBad}
	_ = FieldError{Field: "f", Code: "ad_hoc"} // want `error code must be a declared Code\*/ErrCode\* constant, not a raw string literal`

	var fe FieldError
	fe.Code = ErrCodeOops
	fe.Code = "typo_code" // want `error code must be a declared Code\*/ErrCode\* constant, not a raw string literal`

	add := func(field, code, msg string) {
		_ = FieldError{Field: field, Code: code, Message: msg}
	}
	add("f", CodeBad, "m")
	add("f", "sneaky", "m") // want `error code must be a declared Code\*/ErrCode\* constant, not a raw string literal`

	local := "not_registered"
	writeError(500, local, "m") // want `error code must be a declared Code\*/ErrCode\* constant, not variable local`
}
