// Package clean is a miniature /v1 service whose extracted contract the
// test pins to a golden and re-checks: no drift, no findings.
package clean

import (
	"encoding/json"
	"net/http"
)

// Reply is a handler response type.
type Reply struct {
	ID      int    `json:"id"`
	Message string `json:"message,omitempty"`
}

// CreateReq is a decode target.
type CreateReq struct {
	Name string `json:"name"`
}

// writeJSON forwards its payload to the encoder, so arguments at its call
// sites are wire roots.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	//sslint:ignore errflow fixture helper; encode failures mean the client hung up
	_ = json.NewEncoder(w).Encode(v)
}

// Routes builds the served surface.
func Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/items", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, Reply{ID: 1})
	})
	mux.HandleFunc("POST /v1/items", func(w http.ResponseWriter, r *http.Request) {
		var req CreateReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		writeJSON(w, Reply{ID: 2, Message: req.Name})
	})
	return mux
}
