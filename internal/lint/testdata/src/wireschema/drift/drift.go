// Package drift is the clean service after an unsanctioned API revision:
// the test pins a golden from the pre-revision world (field "message"
// instead of "msg", a DELETE route that no longer exists, and no POST
// route yet) and expects one finding per divergence.
package drift

import (
	"encoding/json"
	"net/http"
)

// Reply renamed its wire field "message" to "msg" without re-pinning:
// the golden reports the old name removed and the new one unpinned.
type Reply struct { // want `wire field "message" of wireschema/drift\.Reply \(pinned string,omitempty in api\.schema\.json\) has been removed or renamed: breaking change for clients`
	ID  int    `json:"id"`
	Msg string `json:"msg,omitempty"` // want `wire field "msg" of wireschema/drift\.Reply is not pinned in api\.schema\.json: additive change`
}

// CreateReq is unchanged.
type CreateReq struct {
	Name string `json:"name"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	//sslint:ignore errflow fixture helper; encode failures mean the client hung up
	_ = json.NewEncoder(w).Encode(v)
}

// Routes serves GET (pinned) and POST (not yet pinned); the pinned
// DELETE route is gone.
func Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/items", func(w http.ResponseWriter, r *http.Request) { // want `route "DELETE /v1/items/\{id\}" is pinned in api\.schema\.json but no longer served: breaking change for clients`
		writeJSON(w, Reply{ID: 1})
	})
	mux.HandleFunc("POST /v1/items", func(w http.ResponseWriter, r *http.Request) { // want `route "POST /v1/items" is not pinned in api\.schema\.json: additive change`
		var req CreateReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		writeJSON(w, Reply{ID: 2, Msg: req.Name})
	})
	return mux
}
