package lint

import (
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"

	"repro/internal/lint/analysis"
)

// CkptSchema pins the checkpoint payload contract against a checked-in
// golden, keyed by version.
var CkptSchema = &analysis.Analyzer{
	Name: "ckptschema",
	Doc: `the checkpoint payload shape matches ckpt.schema.json at its pinned version

snapshotfields proves every mutable field is exported and restored;
this analyzer proves the *compatibility* half of the contract: the JSON
shape of core.StudySnapshot — and every state struct it reaches
recursively — is extracted and compared against the golden
ckpt.schema.json, which pins it under (envelope version, SnapshotVersion).
Any field added, removed, renamed or retyped while the versions stay put
is a finding: an old checkpoint would decode into a different shape than
the one that wrote it, silently. Bumping core.SnapshotVersion (or the
envelope version) sanctions the change; the golden is then re-pinned with
` + "`go run ./cmd/sslint -write-schema`" + `. The analyzer triggers in
the package that declares the envelope version const and sees
StudySnapshot + SnapshotVersion in its own scope or a direct import, so
fixtures can define a miniature contract locally.`,
	Requires: []*analysis.Analyzer{WireSchema},
	Run:      runCkptSchema,
}

// ckptAnchors locates the contract's constituents from the codec package.
type ckptAnchors struct {
	snap        *types.TypeName
	snapVerPos  token.Pos
	envPos      token.Pos // envelopeVersion const: the in-package anchor
	snapVersion int64
	envVersion  int64
}

// findCkptAnchors returns ok only for the package declaring the envelope
// version const with StudySnapshot/SnapshotVersion visible (its own scope
// first, then direct imports) — i.e. the checkpoint codec, or a fixture
// modeled on it.
func findCkptAnchors(pkg *types.Package) (ckptAnchors, bool) {
	var a ckptAnchors
	env, ok := pkg.Scope().Lookup("envelopeVersion").(*types.Const)
	if !ok {
		return a, false
	}
	a.envPos = env.Pos()
	v, ok := constant.Int64Val(env.Val())
	if !ok {
		return a, false
	}
	a.envVersion = v
	scopes := []*types.Scope{pkg.Scope()}
	for _, imp := range pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, s := range scopes {
		snap, ok := s.Lookup("StudySnapshot").(*types.TypeName)
		if !ok {
			continue
		}
		ver, ok := s.Lookup("SnapshotVersion").(*types.Const)
		if !ok {
			continue
		}
		sv, ok := constant.Int64Val(ver.Val())
		if !ok {
			continue
		}
		a.snap, a.snapVerPos, a.snapVersion = snap, ver.Pos(), sv
		return a, true
	}
	return a, false
}

func runCkptSchema(pass *analysis.Pass) (any, error) {
	anchors, ok := findCkptAnchors(pass.Pkg)
	if !ok {
		return nil, nil // not the checkpoint codec
	}
	goldenRel := pass.GoldenPath()
	if goldenRel == "" {
		return nil, nil
	}
	anchorFile := pass.Fset.Position(anchors.envPos).Filename
	if !pass.InSinkScope(pass.Analyzer.Name, pass.Pkg.Path(), anchorFile) {
		return nil, nil
	}
	goldenPath, err := resolveGolden(pass.Fset, anchors.envPos, goldenRel)
	if err != nil {
		return nil, err
	}
	base := filepath.Base(goldenPath)

	x := newSchemaExtractor(func(obj *types.TypeName) (TypeSchema, bool) {
		var f marshalShapeFact
		if pass.ImportObjectFact(obj, &f) {
			return f.Shape, true
		}
		return nil, false
	})
	x.addRoot(anchors.snap.Type(), pkgPathOf(anchors.snap), anchors.snap.Pos())
	current := &CkptContract{
		EnvelopeVersion: int(anchors.envVersion),
		SnapshotVersion: int(anchors.snapVersion),
		Types:           x.types,
	}

	var golden CkptContract
	if err := readSchemaFile(goldenPath, &golden); err != nil {
		pass.Reportf(anchors.envPos, "checkpoint-contract golden %s is missing or unreadable; run `go run ./cmd/sslint -write-schema` to pin the payload shape", base)
		return nil, nil
	}

	if golden.EnvelopeVersion != current.EnvelopeVersion || golden.SnapshotVersion != current.SnapshotVersion {
		// A version bump sanctions shape changes; the only obligation left
		// is re-pinning the golden at the new version.
		pass.Reportf(anchors.envPos, "checkpoint contract version moved (envelope %d -> %d, snapshot %d -> %d) but %s still pins the old one; run `go run ./cmd/sslint -write-schema` to re-pin", golden.EnvelopeVersion, current.EnvelopeVersion, golden.SnapshotVersion, current.SnapshotVersion, base)
		return nil, nil
	}

	at := func(key, field string) token.Pos {
		if field != "" {
			if p := x.fieldPos[key][field]; p != token.NoPos && p != 0 {
				return p
			}
		}
		if p := x.typePos[key]; p != token.NoPos && p != 0 {
			return p
		}
		return anchors.envPos
	}
	for _, d := range diffTypes(golden.Types, x.types) {
		switch d.kind {
		case "type-removed":
			pass.Reportf(anchors.envPos, "checkpoint type %s dropped from the payload without a SnapshotVersion bump: version-%d checkpoints no longer round-trip; bump core.SnapshotVersion and re-pin %s", d.typeKey, golden.SnapshotVersion, base)
		case "type-added":
			pass.Reportf(at(d.typeKey, ""), "checkpoint type %s added to the payload without a SnapshotVersion bump; bump core.SnapshotVersion and re-pin %s with -write-schema", d.typeKey, base)
		case "field-removed":
			pass.Reportf(at(d.typeKey, ""), "checkpoint field %q of %s removed or renamed without a SnapshotVersion bump: existing version-%d checkpoints silently lose state on decode; bump core.SnapshotVersion and re-pin %s", d.field, d.typeKey, golden.SnapshotVersion, base)
		case "field-changed":
			pass.Reportf(at(d.typeKey, d.field), "checkpoint field %q of %s changed type %s -> %s without a SnapshotVersion bump; bump core.SnapshotVersion and re-pin %s", d.field, d.typeKey, d.old, d.new, base)
		case "field-added":
			pass.Reportf(at(d.typeKey, d.field), "checkpoint field %q of %s added without a SnapshotVersion bump: a version-%d payload no longer describes what this code writes; bump core.SnapshotVersion and re-pin %s", d.field, d.typeKey, golden.SnapshotVersion, base)
		}
	}
	return nil, nil
}

func pkgPathOf(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
