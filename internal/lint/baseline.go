package lint

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
)

// Finalize prepares findings for emission: paths become module-relative
// with forward slashes (so -json artifacts are byte-identical across
// machines and operating systems) and every finding gets its stable ID.
//
// The ID hashes (analyzer, relative file, message) — deliberately not the
// line number, so a finding keeps its identity while unrelated edits move
// it around the file, which is what lets the baseline ratchet down
// instead of churning. When the same triple legitimately occurs more than
// once, later occurrences (in position order) get an ordinal suffix.
func Finalize(findings []Finding, root string) []Finding {
	out := make([]Finding, len(findings))
	copy(out, findings)
	for i := range out {
		if rel, err := filepath.Rel(root, out[i].File); err == nil && !filepath.IsAbs(rel) {
			out[i].File = filepath.ToSlash(rel)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	seen := make(map[string]int)
	for i := range out {
		base := findingID(out[i].Analyzer, out[i].File, out[i].Message)
		seen[base]++
		if n := seen[base]; n > 1 {
			out[i].ID = fmt.Sprintf("%s-%d", base, n)
		} else {
			out[i].ID = base
		}
	}
	return out
}

// findingID is a 64-bit FNV-1a over the identity triple, hex-encoded.
func findingID(analyzer, file, message string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s", analyzer, file, message)
	return fmt.Sprintf("%016x", h.Sum64())
}

// BaselineEntry is one grandfathered finding. Analyzer, file and message
// are recorded alongside the ID so a human reading the baseline knows
// what debt it carries without recomputing hashes.
type BaselineEntry struct {
	ID       string `json:"id"`
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is the checked-in ratchet (lint.baseline.json): findings listed
// here are pre-existing debt and do not fail the gate, but they may only
// disappear — a baseline entry that no longer matches any finding is
// itself an error, forcing the file to be re-written (smaller) in the same
// change that paid the debt down.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineFile is the canonical baseline name at the module root.
const BaselineFile = "lint.baseline.json"

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// not an error: the gate simply has no grandfathered debt.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported baseline version %d", path, b.Version)
	}
	return &b, nil
}

// Apply splits finalized findings into fresh (not baselined — these fail
// the gate) and returns the stale baseline entries that matched nothing
// (these fail the gate too: the ratchet only turns one way).
func (b *Baseline) Apply(findings []Finding) (fresh []Finding, stale []BaselineEntry) {
	known := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		known[e.ID] = true
	}
	matched := make(map[string]bool)
	for _, f := range findings {
		if known[f.ID] {
			matched[f.ID] = true
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range b.Findings {
		if !matched[e.ID] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

// BaselineOf builds a baseline grandfathering every given (finalized)
// finding.
func BaselineOf(findings []Finding) *Baseline {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			ID:       f.ID,
			Analyzer: f.Analyzer,
			File:     f.File,
			Message:  f.Message,
		})
	}
	return b
}

// Write emits the baseline as stable, human-reviewable JSON.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
