package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// This file defines the fact vocabulary the suite propagates across
// packages. The base analyzers (nowalltime, seededrand, maporder,
// poolonly, niltelemetry) export source-level facts on the functions that
// contain violations — in every package, scoped or not, because a fact is
// evidence, not a verdict — and purity folds them transitively over the
// call graph. Scope decides where verdicts (diagnostics) land; facts are
// scope-free.

// Effect kinds, each owned by one base analyzer whose scope defines where
// the effect is *directly* forbidden. purity reports an indirect effect at
// a call site exactly when the callee's own definition lies outside that
// base analyzer's scope (the sink is gated, the source is exempt).
const (
	kindClock     = "wall-clock access"
	kindRand      = "global/OS randomness"
	kindMapOrder  = "a map-order-dependent value"
	kindGoroutine = "an unsanctioned goroutine"
)

// kindBaseAnalyzer maps an effect kind to the analyzer whose scope governs
// its direct form.
var kindBaseAnalyzer = map[string]string{
	kindClock:     "nowalltime",
	kindRand:      "seededrand",
	kindMapOrder:  "maporder",
	kindGoroutine: "poolonly",
}

// UsesClock marks a function whose body references a wall-clock reading
// time.* function. Exported by nowalltime.
type UsesClock struct {
	Via string // e.g. "time.Now"
}

func (*UsesClock) AFact() {}

// UsesRand marks a function whose body references math/rand, math/rand/v2
// or crypto/rand. Exported by seededrand.
type UsesRand struct {
	Via string // e.g. "math/rand.Intn"
}

func (*UsesRand) AFact() {}

// MapOrdered marks a function containing a map iteration that feeds an
// order-dependent sink with no rescuing sort. Exported by maporder.
type MapOrdered struct {
	Via string // e.g. "append in map range"
}

func (*MapOrdered) AFact() {}

// SpawnsGoroutine marks a function containing a raw go statement.
// Exported by poolonly.
type SpawnsGoroutine struct {
	Via string // always "go statement"
}

func (*SpawnsGoroutine) AFact() {}

// Impure is purity's transitive summary: the effect kinds a function can
// reach through any chain of calls, each with one representative chain for
// the diagnostic. Kinds are sorted; Via chains are deterministic (first
// discovery in bottom-up, source-ordered analysis wins).
type Impure struct {
	Effects []Effect
}

func (*Impure) AFact() {}

// Effect is one reachable impurity: its kind and a representative
// provenance chain ("telemetry.stamp → time.Now").
type Effect struct {
	Kind string
	Via  string
}

// PoolForwarder marks a function that forwards one or more of its
// func-typed parameters into a parallel pool entry point (directly or
// through another forwarder). Exported by racecapture so closures handed
// to a wrapper in another package are checked at their creation site.
type PoolForwarder struct {
	Params []int // forwarded parameter indices, sorted
}

func (*PoolForwarder) AFact() {}

// NilSafe marks a pointer-receiver method proven safe to call on a nil
// receiver: it nil-guards, never touches the receiver, or only delegates
// to other NilSafe methods. Exported by niltelemetry.
type NilSafe struct{}

func (*NilSafe) AFact() {}

// enclosingFuncObj returns the declared function whose body contains pos,
// or nil for positions outside any function declaration (package-level
// initializers are out of the fact model's reach; their direct violations
// are still reported by the base analyzers).
func enclosingFuncObj(pass *analysis.Pass, pos token.Pos) *types.Func {
	f := fileContaining(pass, pos)
	if f == nil {
		return nil
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Pos() <= pos && pos < fd.End() {
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			return fn
		}
	}
	return nil
}

// exportSourceFact attaches fact to the function enclosing pos unless that
// function already carries a fact of the same type (the first violation in
// source order names the representative Via).
func exportSourceFact(pass *analysis.Pass, pos token.Pos, probe, fact analysis.Fact) {
	fn := enclosingFuncObj(pass, pos)
	if fn == nil {
		return
	}
	if pass.ImportObjectFact(fn, probe) {
		return
	}
	pass.ExportObjectFact(fn, fact)
}
