package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/lint/analysis"
)

// marshalShapeFact records the wire shape a custom MarshalJSON emits for a
// named type: the struct (usually anonymous) it hands to json.Marshal,
// flattened to a TypeSchema. Exported bottom-up over the closure so the
// schema analyzers see through marshalers defined in other packages
// (export.Table's {id,title,text} shape, not its Go fields).
type marshalShapeFact struct{ Shape TypeSchema }

func (*marshalShapeFact) AFact() {}

// WireSchema pins the /v1 wire contract against a checked-in golden.
var WireSchema = &analysis.Analyzer{
	Name: "wireschema",
	Doc: `the served /v1 surface matches the checked-in api.schema.json golden

The route table is read from mux.Handle("METHOD /path") literals; the
JSON shape of every request/response type reachable from a handler —
decode targets, encoder payloads, and anything flowing through an
any-typed parameter into encoding/json (the writeJSON helper) — is
extracted recursively (field, json tag, type, omitempty) and compared
against the golden api.schema.json at the module root. A route or field
that vanishes, a json-tag rename (it reads as a remove + add pair), or a
type change is a breaking change for clients and fails lint outright;
additive changes fail too until the golden is deliberately re-pinned with
` + "`go run ./cmd/sslint -write-schema`" + `. Types with a custom
MarshalJSON contribute the shape their marshaler actually emits, carried
across packages as facts.`,
	FactTypes: []analysis.Fact{new(marshalShapeFact)},
	Run:       runWireSchema,
}

// pkgSyntax is the package view the extraction helpers need; both the
// analyzers (from a Pass) and the -write-schema builder (from loaded
// packages) construct one.
type pkgSyntax struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func passSyntax(pass *analysis.Pass) pkgSyntax {
	return pkgSyntax{fset: pass.Fset, files: pass.Files, pkg: pass.Pkg, info: pass.TypesInfo}
}

func runWireSchema(pass *analysis.Pass) (any, error) {
	ps := passSyntax(pass)
	for obj, shape := range extractMarshalShapes(ps) {
		pass.ExportObjectFact(obj, &marshalShapeFact{Shape: shape})
	}

	routes, routePos, anchor := extractRoutes(ps)
	if len(routes) == 0 {
		return nil, nil // not a package that serves an API
	}
	goldenRel := pass.GoldenPath()
	if goldenRel == "" {
		return nil, nil // no golden configured: extract-only (fixture default)
	}
	anchorFile := pass.Fset.Position(anchor).Filename
	if !pass.InSinkScope(pass.Analyzer.Name, pass.Pkg.Path(), anchorFile) {
		return nil, nil // a mux outside the contract scope (operational binaries)
	}
	goldenPath, err := resolveGolden(pass.Fset, anchor, goldenRel)
	if err != nil {
		return nil, err
	}
	base := filepath.Base(goldenPath)

	x := newSchemaExtractor(func(obj *types.TypeName) (TypeSchema, bool) {
		var f marshalShapeFact
		if pass.ImportObjectFact(obj, &f) {
			return f.Shape, true
		}
		return nil, false
	})
	collectJSONRoots(ps, x)
	current := &APIContract{Routes: routes, Types: x.types}

	var golden APIContract
	if err := readSchemaFile(goldenPath, &golden); err != nil {
		pass.Reportf(anchor, "wire-contract golden %s is missing or unreadable; run `go run ./cmd/sslint -write-schema` to pin the /v1 surface", base)
		return nil, nil
	}

	reportRouteDrift(pass, &golden, current, routePos, anchor, base)
	reportWireTypeDrift(pass, x, diffTypes(golden.Types, current.Types), anchor, base)
	return nil, nil
}

// reportRouteDrift compares the route tables as sets.
func reportRouteDrift(pass *analysis.Pass, golden, current *APIContract, routePos map[string]token.Pos, anchor token.Pos, base string) {
	have := make(map[string]bool, len(current.Routes))
	for _, r := range current.Routes {
		have[r] = true
	}
	pinned := make(map[string]bool, len(golden.Routes))
	for _, r := range golden.Routes {
		pinned[r] = true
	}
	for _, r := range golden.Routes {
		if !have[r] {
			pass.Reportf(anchor, "route %q is pinned in %s but no longer served: breaking change for clients; restore it or deliberately re-pin with -write-schema", r, base)
		}
	}
	for _, r := range current.Routes {
		if !pinned[r] {
			pos := routePos[r]
			if pos == token.NoPos {
				pos = anchor
			}
			pass.Reportf(pos, "route %q is not pinned in %s: additive change; run `go run ./cmd/sslint -write-schema` to re-pin", r, base)
		}
	}
}

// reportWireTypeDrift renders type diffs as breaking/additive findings,
// anchored at the drifted declaration where one exists.
func reportWireTypeDrift(pass *analysis.Pass, x *schemaExtractor, diffs []schemaDiff, anchor token.Pos, base string) {
	at := func(key, field string) token.Pos {
		if field != "" {
			if p := x.fieldPos[key][field]; p != token.NoPos && p != 0 {
				return p
			}
		}
		if p := x.typePos[key]; p != token.NoPos && p != 0 {
			return p
		}
		return anchor
	}
	for _, d := range diffs {
		switch d.kind {
		case "type-removed":
			pass.Reportf(anchor, "wire type %s is pinned in %s but no longer reachable from any handler: breaking change for clients; restore it or re-pin with -write-schema", d.typeKey, base)
		case "type-added":
			pass.Reportf(at(d.typeKey, ""), "wire type %s is not pinned in %s: additive change; run `go run ./cmd/sslint -write-schema` to re-pin", d.typeKey, base)
		case "field-removed":
			pass.Reportf(at(d.typeKey, ""), "wire field %q of %s (pinned %s in %s) has been removed or renamed: breaking change for clients; restore it or re-pin with -write-schema after a deliberate API revision", d.field, d.typeKey, d.old, base)
		case "field-changed":
			pass.Reportf(at(d.typeKey, d.field), "wire field %q of %s changed type %s -> %s: breaking change for clients; revert or re-pin with -write-schema", d.field, d.typeKey, d.old, d.new)
		case "field-added":
			pass.Reportf(at(d.typeKey, d.field), "wire field %q of %s is not pinned in %s: additive change; run `go run ./cmd/sslint -write-schema` to re-pin", d.field, d.typeKey, base)
		}
	}
}

// extractMarshalShapes finds every MarshalJSON method in the package whose
// body hands a struct to json.Marshal and records the emitted shape,
// keyed by the receiver's TypeName.
func extractMarshalShapes(ps pkgSyntax) map[*types.TypeName]TypeSchema {
	out := make(map[*types.TypeName]TypeSchema)
	for _, f := range ps.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "MarshalJSON" || fd.Body == nil {
				continue
			}
			recv := ps.info.TypeOf(fd.Recv.List[0].Type)
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				continue
			}
			var shape TypeSchema
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || shape != nil || len(call.Args) == 0 {
					return true
				}
				if fn := calleeFunc(ps.info, call); fn == nil || fn.FullName() != "encoding/json.Marshal" {
					return true
				}
				t := ps.info.TypeOf(call.Args[0])
				if t == nil {
					return true
				}
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if st, ok := t.Underlying().(*types.Struct); ok {
					// A throwaway extractor: marshal shapes are flat structs
					// of basics in practice; nested named structs fall back
					// to their structural descriptor.
					shape = newSchemaExtractor(nil).structSchema("", st)
				}
				return true
			})
			if shape != nil {
				out[named.Obj()] = shape
			}
		}
	}
	return out
}

// calleeFunc resolves a call's static callee, or nil (function-typed
// locals, type conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// extractRoutes collects the string-literal patterns of every
// Handle/HandleFunc call on a *net/http.ServeMux, sorted; the anchor is
// the first such call in file order (where package-level findings point).
func extractRoutes(ps pkgSyntax) (routes []string, routePos map[string]token.Pos, anchor token.Pos) {
	routePos = make(map[string]token.Pos)
	for _, f := range ps.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") {
				return true
			}
			recv := ps.info.TypeOf(sel.X)
			if recv == nil {
				return true
			}
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "net/http" || named.Obj().Name() != "ServeMux" {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			route, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if _, seen := routePos[route]; !seen {
				routes = append(routes, route)
				routePos[route] = lit.Pos()
			}
			if anchor == token.NoPos {
				anchor = call.Pos()
			}
			return true
		})
	}
	sort.Strings(routes)
	return routes, routePos, anchor
}

// collectJSONRoots registers every concrete type the package puts on the
// JSON wire: payload arguments of encoding/json calls (Marshal, Unmarshal,
// Encoder.Encode, Decoder.Decode) plus arguments flowing into those calls
// through any-typed parameters of local helpers (a fixpoint, so
// writeError → writeJSON → enc.Encode still roots errorEnvelope).
func collectJSONRoots(ps pkgSyntax, x *schemaExtractor) {
	encParams := findEncodingParams(ps)
	for _, f := range ps.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, idx := range payloadIndices(ps.info, call, encParams) {
				if idx >= len(call.Args) {
					continue
				}
				arg := ast.Unparen(call.Args[idx])
				t := ps.info.TypeOf(arg)
				if t == nil || types.IsInterface(t) {
					continue // a forwarded any-param: rooted at its own call sites
				}
				x.addRoot(t, ps.pkg.Path(), arg.Pos())
			}
			return true
		})
	}
}

// findEncodingParams computes, per declared function, the parameter
// indices whose values reach a JSON payload slot — directly or through
// another local function already known to forward (iterated to fixpoint).
func findEncodingParams(ps pkgSyntax) map[*types.Func]map[int]bool {
	encParams := make(map[*types.Func]map[int]bool)
	for changed := true; changed; {
		changed = false
		for _, f := range ps.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := ps.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig := fn.Type().(*types.Signature)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, idx := range payloadIndices(ps.info, call, encParams) {
						if idx >= len(call.Args) {
							continue
						}
						id, ok := ast.Unparen(call.Args[idx]).(*ast.Ident)
						if !ok {
							continue
						}
						obj := ps.info.Uses[id]
						for i := 0; i < sig.Params().Len(); i++ {
							if sig.Params().At(i) == obj {
								if encParams[fn] == nil {
									encParams[fn] = make(map[int]bool)
								}
								if !encParams[fn][i] {
									encParams[fn][i] = true
									changed = true
								}
							}
						}
					}
					return true
				})
			}
		}
	}
	return encParams
}

// payloadIndices returns the argument positions of call that land on the
// JSON wire.
func payloadIndices(info *types.Info, call *ast.CallExpr, encParams map[*types.Func]map[int]bool) []int {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	switch fn.FullName() {
	case "encoding/json.Marshal", "encoding/json.MarshalIndent":
		return []int{0}
	case "encoding/json.Unmarshal":
		return []int{1}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "encoding/json" {
			if (named.Obj().Name() == "Encoder" && fn.Name() == "Encode") ||
				(named.Obj().Name() == "Decoder" && fn.Name() == "Decode") {
				return []int{0}
			}
		}
	}
	if idxs := encParams[fn]; len(idxs) > 0 {
		out := make([]int, 0, len(idxs))
		for i := range idxs {
			out = append(out, i)
		}
		sort.Ints(out)
		return out
	}
	return nil
}
