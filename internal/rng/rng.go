// Package rng provides deterministic pseudo-random number generation for
// the simulation. Every component draws from a named substream derived from
// a single study seed, so that adding randomness to one subsystem never
// perturbs another and a given seed reproduces every result bit-for-bit.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic pseudo-random source based on xoshiro256**.
// The zero value is not usable; construct with New or Sub.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, which guarantees
// well-distributed internal state even for small or clustered seeds.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Sub derives an independent substream identified by name. Two substreams
// with different names are statistically independent; the same (seed, name)
// pair always yields the same stream.
func (r *Source) Sub(name string) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	// Mix the substream label with the parent state rather than the parent
	// position, so that drawing from the parent does not shift substreams.
	return New(r.s[0] ^ h.Sum64())
}

// State returns the raw xoshiro256** state, for checkpointing. Restoring
// the same words with Restore resumes the stream at exactly this position.
func (r *Source) State() [4]uint64 { return r.s }

// Restore overwrites the source state with words previously obtained from
// State. An all-zero state is invalid for xoshiro256** and is rejected by
// leaving the source unchanged.
func (r *Source) Restore(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return
	}
	r.s = s
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal distribution.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson returns a Poisson-distributed count with mean lambda. For large
// lambda it falls back to a normal approximation to stay O(1).
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns a value in [0, n) following a Zipf distribution with
// exponent s (s > 0); smaller indices are more likely. It uses inverse
// transform sampling over the exact finite distribution and is intended
// for modest n (rank positions, template pools), not unbounded domains.
func (r *Source) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	var total float64
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
	}
	u := r.Float64() * total
	var cum float64
	for i := 1; i <= n; i++ {
		cum += 1 / math.Pow(float64(i), s)
		if u < cum {
			return i - 1
		}
	}
	return n - 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice.
func Pick[T any](r *Source, items []T) T {
	return items[r.Intn(len(items))]
}

// WeightedPick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. Non-positive weights are treated as zero. If
// all weights are zero it returns a uniform index.
func (r *Source) WeightedPick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	u := r.Float64() * total
	var cum float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		cum += w
		if u < cum {
			return i
		}
	}
	return len(weights) - 1
}
