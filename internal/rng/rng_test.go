package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("got %d identical draws from different seeds", same)
	}
}

func TestSubstreamIndependence(t *testing.T) {
	root := New(7)
	s1 := root.Sub("crawler")
	// Drawing from the parent must not shift the substream.
	root.Uint64()
	root.Uint64()
	s2 := New(7).Sub("crawler")
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("substream depends on parent position (draw %d)", i)
		}
	}
	if New(7).Sub("a").Uint64() == New(7).Sub("b").Uint64() {
		t.Fatal("differently named substreams produced the same first draw")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		n := 1 + i%17
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		r := New(19)
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > lambda*0.05+0.1 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	r := New(1)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
	if v := r.Poisson(-3); v != 0 {
		t.Fatalf("Poisson(-3) = %d", v)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[r.Zipf(10, 1.2)]++
	}
	if counts[0] <= counts[5] || counts[0] <= counts[9] {
		t.Fatalf("zipf not skewed toward low indices: %v", counts)
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("zipf index %d never drawn", i)
		}
	}
}

func TestZipfSmallN(t *testing.T) {
	r := New(29)
	if v := r.Zipf(1, 1.0); v != 0 {
		t.Fatalf("Zipf(1) = %d", v)
	}
	if v := r.Zipf(0, 1.0); v != 0 {
		t.Fatalf("Zipf(0) = %d", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPick(t *testing.T) {
	r := New(31)
	counts := make([]int, 3)
	w := []float64{1, 0, 9}
	for i := 0; i < 20000; i++ {
		counts[r.WeightedPick(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 7 || ratio > 11 {
		t.Fatalf("weight ratio = %v, want ~9", ratio)
	}
}

func TestWeightedPickAllZero(t *testing.T) {
	r := New(37)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.WeightedPick([]float64{0, 0, 0})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("all-zero weights should fall back to uniform, saw %v", seen)
	}
}

func TestIntRange(t *testing.T) {
	r := New(41)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if v := r.IntRange(4, 4); v != 4 {
		t.Fatalf("IntRange(4,4) = %d", v)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(43)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(1, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}

func TestPick(t *testing.T) {
	r := New(47)
	items := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, items)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never returned some element: %v", seen)
	}
}

func TestShuffle(t *testing.T) {
	r := New(53)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), v...)
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	sum := 0
	for _, x := range v {
		sum += x
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", v)
	}
	_ = orig
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPoisson(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(12)
	}
}
