package searchsim

import (
	"fmt"
	"sort"

	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/simclock"
)

// This file exports and restores the engine's mutable state for durable
// checkpoints. The engine's wiring (terms, campaign specs, doorway pools) is
// rebuilt deterministically by New from the study config, so only the state
// that a run mutates is captured: the RNG position, every SERP's slots and
// per-campaign slot indices, and the demote/label/churn bookkeeping.

// SlotState is one serialized search result. Doorway identity is carried by
// domain and resolved back to the campaign's *Doorway on restore.
type SlotState struct {
	Domain        string
	URL           string
	DoorwayDomain string `json:",omitempty"` // "" for benign slots
	Root          bool
	Labeled       bool
}

// CampaignSlots records which slot indices a campaign holds in one SERP.
// Index order is significant — the churn and suppression loops iterate it
// while drawing from the sequential RNG — and is preserved verbatim.
type CampaignSlots struct {
	Key  string
	Idxs []int
}

// SERPState is one serialized result page.
type SERPState struct {
	Slots     []SlotState
	Campaigns []CampaignSlots // sorted by Key; Idxs order verbatim
}

// VerticalSERPs holds one vertical's result pages in term order.
type VerticalSERPs struct {
	Vertical int
	SERPs    []SERPState
}

// DomainDay pairs a domain with a day, for serialized day-keyed maps.
type DomainDay struct {
	Domain string
	Day    simclock.Day
}

// EngineState is the engine's complete mutable state.
type EngineState struct {
	Day         simclock.Day
	RNG         [4]uint64
	Verticals   []VerticalSERPs // sorted by Vertical
	Demoted     []string        // sorted
	Labeled     []DomainDay     // sorted by Domain
	SeenDomains []string        // sorted
	NewToday    int
	SlotsToday  int
}

// ExportState captures the engine's mutable state. Safe to call between
// Advance calls (it takes the read lock).
func (e *Engine) ExportState() EngineState {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := EngineState{
		Day:        e.day,
		RNG:        e.r.State(),
		NewToday:   e.newToday,
		SlotsToday: e.slotsToday,
	}
	for _, v := range brands.All() {
		vs := e.verticals[v]
		vst := VerticalSERPs{Vertical: int(v)}
		for _, sp := range vs.serps {
			ss := SERPState{Slots: make([]SlotState, len(sp.slots))}
			for i, s := range sp.slots {
				ss.Slots[i] = SlotState{Domain: s.Domain, URL: s.URL, Root: s.Root, Labeled: s.Labeled}
				if s.Doorway != nil {
					ss.Slots[i].DoorwayDomain = s.Doorway.Domain
				}
			}
			keys := make([]string, 0, len(sp.byCampaign))
			for k := range sp.byCampaign {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				ss.Campaigns = append(ss.Campaigns, CampaignSlots{Key: k, Idxs: append([]int(nil), sp.byCampaign[k]...)})
			}
			vst.SERPs = append(vst.SERPs, ss)
		}
		st.Verticals = append(st.Verticals, vst)
	}
	st.Demoted = sortedKeys(e.demoted)
	for dom, d := range e.labeled {
		st.Labeled = append(st.Labeled, DomainDay{Domain: dom, Day: d})
	}
	sort.Slice(st.Labeled, func(i, j int) bool { return st.Labeled[i].Domain < st.Labeled[j].Domain })
	st.SeenDomains = sortedKeys(e.seenDomains)
	return st
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RestoreState overwrites the engine's mutable state with a previously
// exported snapshot. The engine must have been built by New over the same
// config and campaign roster; shape mismatches are reported, not patched.
// resolve maps a doorway domain back to the deployed doorway (the world's
// domain index); it is consulted only for poisoned slots.
func (e *Engine) RestoreState(st EngineState, resolve func(domain string) *campaign.Doorway) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	byVert := make(map[int]VerticalSERPs, len(st.Verticals))
	for _, vst := range st.Verticals {
		byVert[vst.Vertical] = vst
	}
	for _, v := range brands.All() {
		vs := e.verticals[v]
		vst, ok := byVert[int(v)]
		if !ok {
			return fmt.Errorf("searchsim: snapshot missing vertical %d", int(v))
		}
		if len(vst.SERPs) != len(vs.serps) {
			return fmt.Errorf("searchsim: vertical %d has %d serps, snapshot has %d", int(v), len(vs.serps), len(vst.SERPs))
		}
		for si, ss := range vst.SERPs {
			sp := vs.serps[si]
			if len(ss.Slots) != len(sp.slots) {
				return fmt.Errorf("searchsim: vertical %d serp %d has %d slots, snapshot has %d", int(v), si, len(sp.slots), len(ss.Slots))
			}
			for i, sl := range ss.Slots {
				slot := Slot{Rank: i, Domain: sl.Domain, URL: sl.URL, Root: sl.Root, Labeled: sl.Labeled}
				if sl.DoorwayDomain != "" {
					dw := resolve(sl.DoorwayDomain)
					if dw == nil {
						return fmt.Errorf("searchsim: snapshot references unknown doorway %q", sl.DoorwayDomain)
					}
					slot.Doorway = dw
				}
				sp.slots[i] = slot
			}
			sp.byCampaign = make(map[string][]int, len(ss.Campaigns))
			for _, cs := range ss.Campaigns {
				sp.byCampaign[cs.Key] = append([]int(nil), cs.Idxs...)
			}
		}
	}
	e.day = st.Day
	e.r.Restore(st.RNG)
	e.newToday = st.NewToday
	e.slotsToday = st.SlotsToday
	e.demoted = make(map[string]bool, len(st.Demoted))
	for _, d := range st.Demoted {
		e.demoted[d] = true
	}
	e.labeled = make(map[string]simclock.Day, len(st.Labeled))
	for _, ld := range st.Labeled {
		e.labeled[ld.Domain] = ld.Day
	}
	e.seenDomains = make(map[string]bool, len(st.SeenDomains))
	for _, d := range st.SeenDomains {
		e.seenDomains[d] = true
	}
	return nil
}
