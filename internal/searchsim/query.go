package searchsim

import (
	"repro/internal/brands"
	"repro/internal/simclock"
)

// Day returns the day the engine last advanced to.
func (e *Engine) Day() simclock.Day {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.day
}

// Terms returns the monitored terms for a vertical.
func (e *Engine) Terms(v brands.Vertical) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.verticals[v].terms...)
}

// SERP returns a copy of the current result list for (vertical, term index).
func (e *Engine) SERP(v brands.Vertical, termIdx int) []Slot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	vs := e.verticals[v]
	if termIdx < 0 || termIdx >= len(vs.serps) {
		return nil
	}
	out := append([]Slot(nil), vs.serps[termIdx].slots...)
	for i := range out {
		out[i].Rank = i
	}
	return out
}

// EachSlot visits every current slot of a vertical in (term, rank) order.
// The callback must not retain the slot pointer.
//
// EachSlot holds the engine's read lock for the whole walk, so any number
// of goroutines may run EachSlot (and the other RLock readers — LabeledOn,
// Demoted, CountPoisoned) concurrently; the day pipeline's observe phase
// relies on this. Callbacks may call the read-side accessors (Go RWMutex
// read locks are recursive-safe as long as no writer is waiting) but must
// not call Label, Demote, or Advance: writers are excluded until every
// observe worker finishes its walk.
func (e *Engine) EachSlot(v brands.Vertical, fn func(termIdx, rank int, s *Slot)) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	vs := e.verticals[v]
	// One reused copy for the whole walk: &s escapes into fn, so a
	// per-slot copy would heap-allocate every slot of every SERP (the
	// observe phase's single largest allocation site before this hoist).
	var s Slot
	for ti, sp := range vs.serps {
		for rank := range sp.slots {
			s = sp.slots[rank]
			s.Rank = rank
			fn(ti, rank, &s)
		}
	}
}

// Demote removes a doorway domain from all results and blocks reinsertion —
// the search engine's strongest lever (§5.2.1).
func (e *Engine) Demote(domain string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.demoted[domain] = true
	// Slots are expelled on the next Advance; expel eagerly so the effect
	// is visible the same day.
	for _, vs := range e.verticals {
		for ti, sp := range vs.serps {
			for idx := range sp.slots {
				if sp.slots[idx].Poisoned() && sp.slots[idx].Domain == domain {
					e.replaceWithBenign(vs, ti, sp, idx)
				}
			}
		}
	}
}

// Demoted reports whether a domain has been demoted.
func (e *Engine) Demoted(domain string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.demoted[domain]
}

// Label applies the "This site may be hacked" warning to a doorway domain
// starting on day d. Per Google's policy the label appears only on results
// whose URL is the site root (§5.2.2); deep-page results for the same
// domain remain unlabeled.
func (e *Engine) Label(domain string, d simclock.Day) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.labeled[domain]; dup {
		return
	}
	e.labeled[domain] = d
	for _, vs := range e.verticals {
		for _, sp := range vs.serps {
			for idx := range sp.slots {
				s := &sp.slots[idx]
				if s.Poisoned() && s.Domain == domain && s.Root {
					s.Labeled = true
				}
			}
		}
	}
}

// LabeledOn returns the day a domain was labeled, if it was.
func (e *Engine) LabeledOn(domain string) (simclock.Day, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	d, ok := e.labeled[domain]
	return d, ok
}

// ChurnToday returns (newly seen domains, total slots) for the last
// Advance, the §4.1.2 churn statistic.
func (e *Engine) ChurnToday() (newDomains, totalSlots int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.newToday, e.slotsToday
}

// PoisonedCounts summarises a vertical's current poisoning: the number of
// poisoned slots in the top 10 and in the full top N, and the totals.
type PoisonedCounts struct {
	Top10Poisoned  int
	Top10Slots     int
	TopNPoisoned   int
	TopNSlots      int
	LabeledResults int
}

// CountPoisoned tallies the vertical's current poisoning levels.
func (e *Engine) CountPoisoned(v brands.Vertical) PoisonedCounts {
	var pc PoisonedCounts
	e.EachSlot(v, func(_, rank int, s *Slot) {
		pc.TopNSlots++
		if rank < 10 {
			pc.Top10Slots++
		}
		if s.Poisoned() {
			pc.TopNPoisoned++
			if rank < 10 {
				pc.Top10Poisoned++
			}
			if s.Labeled {
				pc.LabeledResults++
			}
		}
	})
	return pc
}
