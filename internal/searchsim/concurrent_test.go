package searchsim

import (
	"sync"
	"testing"

	"repro/internal/brands"
	"repro/internal/simclock"
)

// TestConcurrentReaders hammers the read-side API — EachSlot walks with
// callbacks that themselves call LabeledOn and Demoted, plus CountPoisoned
// and ChurnToday — from many goroutines at once. The observe phase of the
// day pipeline does exactly this; `go test -race` on this test is the
// regression guard for the engine's reader contract documented on EachSlot.
func TestConcurrentReaders(t *testing.T) {
	wd := build(t, 0.02, 6, 30)
	for d := 0; d < 10; d++ {
		wd.eng.Advance(simclock.Day(d))
	}

	const readers = 8
	var wg sync.WaitGroup
	counts := make([]int, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				for _, v := range brands.All() {
					wd.eng.EachSlot(v, func(_, _ int, s *Slot) {
						counts[g]++
						if s.Poisoned() {
							wd.eng.LabeledOn(s.Domain)
							wd.eng.Demoted(s.Domain)
						}
					})
					wd.eng.CountPoisoned(v)
				}
				wd.eng.ChurnToday()
			}
		}(g)
	}
	wg.Wait()

	for g := 1; g < readers; g++ {
		if counts[g] != counts[0] {
			t.Fatalf("reader %d saw %d slots, reader 0 saw %d", g, counts[g], counts[0])
		}
	}
}
