package searchsim

import (
	"strings"
	"testing"

	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/rng"
	"repro/internal/simclock"
)

type world struct {
	eng  *Engine
	deps []*campaign.Deployment
	w    simclock.Window
}

func build(t testing.TB, scale float64, terms, slots int) *world {
	t.Helper()
	r := rng.New(31)
	w := simclock.StudyWindow()
	specs := campaign.Roster(w)
	deps := campaign.DeployAll(r.Sub("deploy"), specs, scale)
	termSets := make(map[brands.Vertical][]string)
	for _, v := range brands.All() {
		ts := brands.Terms(r.Sub("terms"), v, terms)
		termSets[v] = ts.Terms
	}
	cfg := DefaultConfig()
	cfg.TermsPerVertical = terms
	cfg.SlotsPerTerm = slots
	return &world{eng: New(cfg, r, deps, termSets), deps: deps, w: w}
}

func (wd *world) spec(name string) *campaign.Spec {
	for _, d := range wd.deps {
		if d.Spec.Name == name {
			return d.Spec
		}
	}
	return nil
}

func TestInitialSERPsAllBenign(t *testing.T) {
	wd := build(t, 0.02, 10, 50)
	for _, v := range brands.All() {
		pc := wd.eng.CountPoisoned(v)
		if pc.TopNPoisoned != 0 {
			t.Fatalf("%s poisoned before any Advance: %d", v, pc.TopNPoisoned)
		}
		if pc.TopNSlots != 10*50 {
			t.Fatalf("%s slots = %d", v, pc.TopNSlots)
		}
	}
}

func TestAdvancePoisonsTargetedVerticals(t *testing.T) {
	wd := build(t, 0.02, 10, 50)
	wd.eng.Advance(5) // KEY peak period
	pc := wd.eng.CountPoisoned(brands.BeatsByDre)
	if pc.TopNPoisoned == 0 {
		t.Fatal("Beats By Dre should be poisoned during KEY peak")
	}
	frac := float64(pc.TopNPoisoned) / float64(pc.TopNSlots)
	if frac < 0.05 || frac > 0.6 {
		t.Fatalf("Beats poisoning fraction = %v, want 5%%..60%%", frac)
	}
}

func TestPoisonedSlotsBelongToTargetingCampaigns(t *testing.T) {
	wd := build(t, 0.02, 8, 50)
	wd.eng.Advance(30)
	for _, v := range brands.All() {
		wd.eng.EachSlot(v, func(_, _ int, s *Slot) {
			if s.Poisoned() && !s.Doorway.Campaign.Targets(v) {
				t.Errorf("campaign %s holds a slot in untargeted vertical %s",
					s.Doorway.Campaign.Name, v)
			}
		})
	}
}

func TestSlotInvariants(t *testing.T) {
	wd := build(t, 0.02, 8, 60)
	for _, d := range []simclock.Day{1, 15, 40} {
		wd.eng.Advance(d)
	}
	wd.eng.EachSlot(brands.Uggs, func(_, rank int, s *Slot) {
		if s.Rank != rank {
			t.Fatalf("rank mismatch: %d vs %d", s.Rank, rank)
		}
		if s.Domain == "" || s.URL == "" {
			t.Fatal("slot without domain/url")
		}
		if !strings.Contains(s.URL, s.Domain) {
			t.Fatalf("URL %q does not contain domain %q", s.URL, s.Domain)
		}
		if s.Root && strings.Count(strings.TrimPrefix(s.URL, "http://"), "/") > 1 {
			t.Fatalf("root slot with deep URL %q", s.URL)
		}
	})
}

func TestChurnIsLow(t *testing.T) {
	wd := build(t, 0.02, 20, 100)
	wd.eng.Advance(10)
	wd.eng.Advance(11)
	neu, total := wd.eng.ChurnToday()
	frac := float64(neu) / float64(total)
	// The paper measured 1.84% newly seen domains per day on average.
	if frac > 0.12 {
		t.Fatalf("daily churn = %.3f, want low", frac)
	}
	if total != 16*20*100 {
		t.Fatalf("total slots = %d", total)
	}
}

func TestDayToDayPersistence(t *testing.T) {
	wd := build(t, 0.02, 10, 50)
	wd.eng.Advance(20)
	before := wd.eng.SERP(brands.LouisVuitton, 0)
	wd.eng.Advance(21)
	after := wd.eng.SERP(brands.LouisVuitton, 0)
	same := 0
	for i := range before {
		if before[i].Domain == after[i].Domain {
			same++
		}
	}
	if same < len(before)*7/10 {
		t.Fatalf("only %d/%d slots persisted across a day", same, len(before))
	}
}

func TestKeyCollapseReflectedInSERPs(t *testing.T) {
	wd := build(t, 0.05, 10, 100)
	key := wd.spec("KEY")
	countKey := func() int {
		n := 0
		wd.eng.EachSlot(brands.Abercrombie, func(_, _ int, s *Slot) {
			if s.Poisoned() && s.Doorway.Campaign.Name == "KEY" {
				n++
			}
		})
		return n
	}
	wd.eng.Advance(key.DemotedOn - 5)
	before := countKey()
	wd.eng.Advance(key.DemotedOn + 10)
	after := countKey()
	if before == 0 {
		t.Fatal("KEY absent before demotion")
	}
	if after > before/3 {
		t.Fatalf("KEY slots %d -> %d; want collapse", before, after)
	}
}

func TestDemoteExpelsDomain(t *testing.T) {
	wd := build(t, 0.02, 10, 50)
	wd.eng.Advance(5)
	var victim string
	wd.eng.EachSlot(brands.BeatsByDre, func(_, _ int, s *Slot) {
		if victim == "" && s.Poisoned() {
			victim = s.Domain
		}
	})
	if victim == "" {
		t.Fatal("no poisoned slot to demote")
	}
	wd.eng.Demote(victim)
	wd.eng.EachSlot(brands.BeatsByDre, func(_, _ int, s *Slot) {
		if s.Domain == victim && s.Poisoned() {
			t.Fatalf("demoted domain %s still in results", victim)
		}
	})
	if !wd.eng.Demoted(victim) {
		t.Fatal("Demoted() should report true")
	}
	// And it must not come back.
	for d := simclock.Day(6); d < 20; d++ {
		wd.eng.Advance(d)
	}
	wd.eng.EachSlot(brands.BeatsByDre, func(_, _ int, s *Slot) {
		if s.Poisoned() && s.Domain == victim {
			t.Fatalf("demoted domain %s reinserted", victim)
		}
	})
}

func TestLabelAppliesOnlyToRootResults(t *testing.T) {
	wd := build(t, 0.05, 10, 100)
	wd.eng.Advance(5)
	// Find a doorway domain that holds both root and deep slots anywhere.
	counts := map[string][2]int{} // domain -> [root, deep]
	for _, v := range brands.All() {
		wd.eng.EachSlot(v, func(_, _ int, s *Slot) {
			if !s.Poisoned() {
				return
			}
			c := counts[s.Domain]
			if s.Root {
				c[0]++
			} else {
				c[1]++
			}
			counts[s.Domain] = c
		})
	}
	var victim string
	for dom, c := range counts {
		if c[0] > 0 && c[1] > 0 {
			victim = dom
			break
		}
	}
	if victim == "" {
		t.Skip("no domain with both root and deep slots at this scale")
	}
	wd.eng.Label(victim, 5)
	var rootLabeled, deepLabeled, rootUnlabeled int
	for _, v := range brands.All() {
		wd.eng.EachSlot(v, func(_, _ int, s *Slot) {
			if !s.Poisoned() || s.Domain != victim {
				return
			}
			switch {
			case s.Root && s.Labeled:
				rootLabeled++
			case s.Root && !s.Labeled:
				rootUnlabeled++
			case !s.Root && s.Labeled:
				deepLabeled++
			}
		})
	}
	if rootLabeled == 0 || rootUnlabeled > 0 {
		t.Fatalf("root slots: %d labeled, %d unlabeled", rootLabeled, rootUnlabeled)
	}
	if deepLabeled != 0 {
		t.Fatalf("deep slots must not carry the label, got %d", deepLabeled)
	}
	if d, ok := wd.eng.LabeledOn(victim); !ok || d != 5 {
		t.Fatalf("LabeledOn = %d, %v", d, ok)
	}
}

func TestLabelSurvivesAdvance(t *testing.T) {
	wd := build(t, 0.05, 10, 100)
	wd.eng.Advance(5)
	var victim string
	wd.eng.EachSlot(brands.Uggs, func(_, _ int, s *Slot) {
		if victim == "" && s.Poisoned() && s.Root {
			victim = s.Domain
		}
	})
	if victim == "" {
		t.Skip("no root poisoned slot")
	}
	wd.eng.Label(victim, 5)
	wd.eng.Advance(6)
	found := false
	for _, v := range brands.All() {
		wd.eng.EachSlot(v, func(_, _ int, s *Slot) {
			if s.Poisoned() && s.Domain == victim && s.Root && s.Labeled {
				found = true
			}
		})
	}
	if !found {
		// The slot may have churned out; only fail if the domain is present
		// unlabeled at root.
		for _, v := range brands.All() {
			wd.eng.EachSlot(v, func(_, _ int, s *Slot) {
				if s.Poisoned() && s.Domain == victim && s.Root && !s.Labeled {
					t.Fatal("label lost after Advance")
				}
			})
		}
	}
}

func TestMoonkisTop10Suppression(t *testing.T) {
	wd := build(t, 0.3, 10, 100)
	mk := wd.spec("MOONKIS")
	mid := mk.Top10SuppressedFrom + 10
	wd.eng.Advance(mid - 40) // February: active, not suppressed
	wd.eng.Advance(mid)      // March: suppressed
	var top10, top100 int
	wd.eng.EachSlot(brands.BeatsByDre, func(_, rank int, s *Slot) {
		if s.Poisoned() && s.Doorway.Campaign.Name == "MOONKIS" {
			top100++
			if rank < 10 {
				top10++
			}
		}
	})
	if top100 == 0 {
		t.Fatal("MOONKIS absent from top 100 in March")
	}
	if top10 != 0 {
		t.Fatalf("MOONKIS in top 10 while suppressed: %d slots", top10)
	}
}

func TestSERPCopyIsolated(t *testing.T) {
	wd := build(t, 0.02, 5, 20)
	wd.eng.Advance(3)
	s := wd.eng.SERP(brands.Nike, 0)
	if len(s) != 20 {
		t.Fatalf("serp size = %d", len(s))
	}
	s[0].Domain = "mutated"
	if wd.eng.SERP(brands.Nike, 0)[0].Domain == "mutated" {
		t.Fatal("SERP must return a copy")
	}
	if wd.eng.SERP(brands.Nike, 99) != nil {
		t.Fatal("out-of-range term index must return nil")
	}
}

func TestDeterminism(t *testing.T) {
	a := build(t, 0.02, 8, 40)
	b := build(t, 0.02, 8, 40)
	for d := simclock.Day(0); d < 10; d++ {
		a.eng.Advance(d)
		b.eng.Advance(d)
	}
	for _, v := range brands.All() {
		sa := a.eng.SERP(v, 0)
		sb := b.eng.SERP(v, 0)
		for i := range sa {
			if sa[i].Domain != sb[i].Domain {
				t.Fatalf("nondeterministic engine at %s slot %d", v, i)
			}
		}
	}
}

func TestCapacityMonotoneAndCapped(t *testing.T) {
	if capacity(10, 100) >= capacity(1000, 100) {
		t.Fatal("capacity must grow with pool size")
	}
	if capacity(100000, 100) > 28.01 {
		t.Fatalf("capacity must cap at 28%% of slots: %v", capacity(100000, 100))
	}
	if capacity(0, 100) < 1 {
		t.Fatal("even a tiny campaign can rank a couple of results")
	}
}

func BenchmarkAdvanceDay(b *testing.B) {
	wd := build(b, 0.1, 20, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wd.eng.Advance(simclock.Day(i % 245))
	}
}
