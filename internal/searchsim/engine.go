// Package searchsim simulates the search engine surface the study crawls:
// for every (vertical, term) pair it maintains a persistent ranked list of
// the top-N results, which SEO campaigns push doorway pages into according
// to their scheduled intensity. Day-over-day persistence produces the low
// result churn the paper measured (≈1.84% newly seen domains per day), and
// the engine exposes the two intervention levers search providers hold:
// demoting doorways out of results and labeling results as hacked.
package searchsim

import (
	"fmt"
	"sync"

	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/htmlgen"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// Config sizes the engine.
type Config struct {
	TermsPerVertical int
	SlotsPerTerm     int
	// Top10Prob is the probability a newly inserted doorway result lands in
	// the top 10 (the paper finds poisoning the top 10 harder than the top
	// 100).
	Top10Prob float64
	// ChurnProb is the per-day probability an existing doorway slot swaps
	// to a different doorway domain of the same campaign.
	ChurnProb float64
	// BenignChurnProb is the per-day probability a benign slot changes
	// domain.
	BenignChurnProb float64
	// Doorways split into two kit styles: "root-heavy" domains whose
	// ranked URLs are mostly the site root, and the rest, whose results
	// are almost all deep pages. This split is what the root-only hacked
	// label policy interacts with (§5.2.2). RootHeavyShare is the fraction
	// of doorway domains in the first style; RootProbHeavy/RootProbDeep
	// are the per-result root probabilities within each style.
	RootHeavyShare float64
	RootProbHeavy  float64
	RootProbDeep   float64
}

// DefaultConfig returns the study-scale configuration.
func DefaultConfig() Config {
	return Config{
		TermsPerVertical: 100,
		SlotsPerTerm:     100,
		Top10Prob:        0.07,
		ChurnProb:        0.015,
		BenignChurnProb:  0.004,
		RootHeavyShare:   0.18,
		RootProbHeavy:    0.67,
		RootProbDeep:     0.04,
	}
}

// Slot is one observable search result.
type Slot struct {
	Rank    int
	Domain  string
	URL     string
	Doorway *campaign.Doorway // nil for benign results
	Root    bool              // URL is the site root
	Labeled bool              // carries the "This site may be hacked" label
}

// Poisoned reports whether the slot is a doorway result.
func (s *Slot) Poisoned() bool { return s.Doorway != nil }

type serp struct {
	term  string
	slots []Slot
	// byCampaign tracks the slot indices each campaign currently holds.
	byCampaign map[string][]int
}

type verticalState struct {
	vertical brands.Vertical
	terms    []string
	serps    []*serp
	// specs are the campaigns targeting this vertical, with their doorway
	// pools restricted to it.
	specs []*campaign.Spec
	pools map[string][]*campaign.Doorway
}

// Engine is the simulated search engine. Not safe for concurrent Advance;
// reads are safe after Advance returns.
type Engine struct {
	cfg Config
	r   *rng.Source

	mu        sync.RWMutex
	day       simclock.Day
	verticals map[brands.Vertical]*verticalState
	demoted   map[string]bool         // doorway domains removed from results
	labeled   map[string]simclock.Day // doorway domain -> day labeled
	// newDomains/totalSlots track daily churn for the §4.1.2 statistic.
	seenDomains map[string]bool
	newToday    int
	slotsToday  int
}

// New builds an engine over the deployed campaigns and term sets. terms
// maps each vertical to its monitored term set (only the first
// cfg.TermsPerVertical terms are used).
//
//sslint:ignore hotalloc one-time study construction; the per-day hot path is Advance, and these maps live for the whole run
func New(cfg Config, r *rng.Source, deps []*campaign.Deployment, terms map[brands.Vertical][]string) *Engine {
	e := &Engine{
		cfg:         cfg,
		r:           r.Sub("searchsim"),
		verticals:   make(map[brands.Vertical]*verticalState),
		demoted:     make(map[string]bool),
		labeled:     make(map[string]simclock.Day),
		seenDomains: make(map[string]bool),
	}
	for _, v := range brands.All() {
		ts := terms[v]
		if len(ts) > cfg.TermsPerVertical {
			ts = ts[:cfg.TermsPerVertical]
		}
		vs := &verticalState{
			vertical: v,
			terms:    ts,
			pools:    make(map[string][]*campaign.Doorway),
		}
		for _, dep := range deps {
			if !dep.Spec.Targets(v) {
				continue
			}
			vs.specs = append(vs.specs, dep.Spec)
			var pool []*campaign.Doorway
			for _, dw := range dep.Doorways {
				if dw.Vertical == v {
					pool = append(pool, dw)
				}
			}
			if len(pool) == 0 {
				pool = dep.Doorways
			}
			vs.pools[dep.Spec.Key()] = pool
		}
		for i, term := range vs.terms {
			sp := &serp{term: term, byCampaign: make(map[string][]int)}
			sp.slots = make([]Slot, cfg.SlotsPerTerm)
			for k := range sp.slots {
				sp.slots[k] = e.benignSlot(v, i, k)
			}
			vs.serps = append(vs.serps, sp)
		}
		e.verticals[v] = vs
	}
	return e
}

// benignSlot synthesises a benign result for (vertical, term index, rank).
//
//sslint:ignore hotalloc domain format is pinned by the golden fingerprints and runs per churned slot at day boundaries, not per page
func (e *Engine) benignSlot(v brands.Vertical, termIdx, rank int) Slot {
	dom := fmt.Sprintf("site%d-%d.v%d.example.org", termIdx, e.r.Intn(1<<20), int(v))
	return Slot{Rank: rank, Domain: dom, URL: "http://" + dom + "/", Root: true}
}

// capacity is the number of result slots per SERP a campaign can hold in a
// vertical at full intensity, scaled by the size of its doorway pool there
// (more doorways -> more distinct domains to rank, with diminishing
// returns and a cap; the paper notes doorway count correlates only weakly
// with efficacy).
func capacity(poolSize, slotsPerTerm int) float64 {
	c := 2 + 0.5*sqrtf(poolSize)
	maxC := 0.22 * float64(slotsPerTerm)
	if c > maxC {
		c = maxC
	}
	return c
}

// maxPoisonedShare bounds how much of one SERP campaigns can hold in total:
// they compete with each other and with legitimate results for rankings, so
// demand beyond this share is scaled down proportionally (the paper's worst
// verticals peaked at 31-42%% of the top 100).
const maxPoisonedShare = 0.45

// rootHeavy deterministically assigns a doorway domain to the root-heavy
// kit style.
func rootHeavy(domain string, share float64) bool {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= 1099511628211
	}
	return float64(h%10000)/10000 < share
}

func sqrtf(n int) float64 {
	if n <= 0 {
		return 0
	}
	x := float64(n)
	guess := x
	for i := 0; i < 24; i++ {
		guess = (guess + x/guess) / 2
	}
	return guess
}

// Advance moves the engine to the given day: campaigns' slot counts track
// their scheduled intensity, churn rotates domains, and demoted doorways
// are expelled.
func (e *Engine) Advance(day simclock.Day) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.day = day
	e.newToday = 0
	e.slotsToday = 0
	for _, v := range brands.All() {
		vs := e.verticals[v]
		for si, sp := range vs.serps {
			e.advanceSERP(vs, si, sp, day)
		}
	}
}

func (e *Engine) advanceSERP(vs *verticalState, termIdx int, sp *serp, day simclock.Day) {
	// Campaigns bid for slots; when their combined demand exceeds the
	// ranking headroom, everyone is squeezed proportionally.
	demands := make([]float64, len(vs.specs))
	var totalDemand float64
	for i, spec := range vs.specs {
		pool := vs.pools[spec.Key()]
		demands[i] = spec.Intensity(vs.vertical, day) * capacity(len(pool), e.cfg.SlotsPerTerm)
		totalDemand += demands[i]
	}
	headroom := maxPoisonedShare * float64(e.cfg.SlotsPerTerm)
	squeeze := 1.0
	if totalDemand > headroom {
		squeeze = headroom / totalDemand
	}
	for i, spec := range vs.specs {
		key := spec.Key()
		pool := vs.pools[key]
		want := int(demands[i]*squeeze + e.r.Float64()*0.8)
		have := len(sp.byCampaign[key])
		switch {
		case want > have:
			for n := have; n < want; n++ {
				e.insertDoorway(vs, sp, spec, pool, day)
			}
		case want < have:
			for n := have; n > want; n-- {
				e.removeOneDoorway(vs, termIdx, sp, key)
			}
		}
		// Expel demoted doorways regardless of targets.
		idxs := sp.byCampaign[key]
		for i := 0; i < len(idxs); {
			slotIdx := idxs[i]
			if e.demoted[sp.slots[slotIdx].Domain] {
				e.replaceWithBenign(vs, termIdx, sp, slotIdx)
				idxs = sp.byCampaign[key]
				continue
			}
			i++
		}
		// Top-10 suppression: move slots out of ranks 0..9.
		if spec.Top10Suppressed(day) {
			e.suppressTop10(vs, termIdx, sp, key)
		}
		// Churn: swap some doorway domains for fresh ones.
		for _, slotIdx := range sp.byCampaign[key] {
			if e.r.Bool(e.cfg.ChurnProb) && len(pool) > 1 {
				e.assignDoorway(&sp.slots[slotIdx], sp.term, spec, pool)
			}
		}
	}
	// Benign churn and label refresh; also count churn statistics.
	for k := range sp.slots {
		s := &sp.slots[k]
		if !s.Poisoned() && e.r.Bool(e.cfg.BenignChurnProb) {
			*s = e.benignSlot(vs.vertical, termIdx, k)
		}
		if s.Poisoned() {
			_, lab := e.labeled[s.Domain]
			s.Labeled = lab && s.Root
		}
		e.slotsToday++
		if !e.seenDomains[s.Domain] {
			e.seenDomains[s.Domain] = true
			e.newToday++
		}
	}
}

// insertDoorway converts a benign slot into a doorway result.
func (e *Engine) insertDoorway(vs *verticalState, sp *serp, spec *campaign.Spec, pool []*campaign.Doorway, day simclock.Day) {
	idx := e.pickBenignIndex(sp, spec.Top10Suppressed(day))
	if idx < 0 {
		return
	}
	s := &sp.slots[idx]
	s.Rank = idx
	e.assignDoorway(s, sp.term, spec, pool)
	key := spec.Key()
	sp.byCampaign[key] = append(sp.byCampaign[key], idx)
}

// assignDoorway points a slot at a (fresh) doorway of the campaign,
// skipping demoted domains when possible.
func (e *Engine) assignDoorway(s *Slot, term string, spec *campaign.Spec, pool []*campaign.Doorway) {
	var dw *campaign.Doorway
	for tries := 0; tries < 6; tries++ {
		cand := pool[e.r.Intn(len(pool))]
		if !e.demoted[cand.Domain] {
			dw = cand
			break
		}
	}
	if dw == nil {
		return
	}
	s.Doorway = dw
	s.Domain = dw.Domain
	rootProb := e.cfg.RootProbDeep
	if rootHeavy(dw.Domain, e.cfg.RootHeavyShare) {
		rootProb = e.cfg.RootProbHeavy
	}
	s.Root = e.r.Bool(rootProb)
	if s.Root {
		s.URL = "http://" + dw.Domain + "/"
	} else {
		s.URL = "http://" + dw.Domain + htmlgen.DoorwayPath(spec.Signature, term)
	}
	_, lab := e.labeled[s.Domain]
	s.Labeled = lab && s.Root
}

// pickBenignIndex selects a benign slot to displace, honouring the top-10
// insertion bias and suppression.
func (e *Engine) pickBenignIndex(sp *serp, suppressTop10 bool) int {
	n := len(sp.slots)
	top10 := !suppressTop10 && e.r.Bool(e.cfg.Top10Prob)
	for tries := 0; tries < 25; tries++ {
		var idx int
		if top10 && n > 10 {
			idx = e.r.Intn(10)
		} else if n > 10 {
			idx = 10 + e.r.Intn(n-10)
		} else {
			idx = e.r.Intn(n)
		}
		if !sp.slots[idx].Poisoned() {
			return idx
		}
	}
	for idx := n - 1; idx >= 0; idx-- {
		if !sp.slots[idx].Poisoned() {
			return idx
		}
	}
	return -1
}

// removeOneDoorway demotes the campaign's lowest-ranked slot back to benign.
func (e *Engine) removeOneDoorway(vs *verticalState, termIdx int, sp *serp, key string) {
	idxs := sp.byCampaign[key]
	if len(idxs) == 0 {
		return
	}
	worst := 0
	for i, idx := range idxs {
		if idx > idxs[worst] {
			worst = i
		}
	}
	e.replaceWithBenign(vs, termIdx, sp, idxs[worst])
}

// replaceWithBenign restores a slot to a benign result and fixes indices.
func (e *Engine) replaceWithBenign(vs *verticalState, termIdx int, sp *serp, slotIdx int) {
	old := sp.slots[slotIdx]
	if old.Doorway != nil {
		key := old.Doorway.Campaign.Key()
		idxs := sp.byCampaign[key]
		for i, idx := range idxs {
			if idx == slotIdx {
				idxs[i] = idxs[len(idxs)-1]
				sp.byCampaign[key] = idxs[:len(idxs)-1]
				break
			}
		}
	}
	sp.slots[slotIdx] = e.benignSlot(vs.vertical, termIdx, slotIdx)
}

// suppressTop10 moves a campaign's slots out of ranks 0-9 by swapping them
// with benign slots below.
func (e *Engine) suppressTop10(vs *verticalState, termIdx int, sp *serp, key string) {
	idxs := sp.byCampaign[key]
	for i, slotIdx := range idxs {
		if slotIdx >= 10 {
			continue
		}
		// Find a benign slot at rank >= 10 to swap with.
		dst := -1
		for tries := 0; tries < 20; tries++ {
			cand := 10 + e.r.Intn(len(sp.slots)-10)
			if !sp.slots[cand].Poisoned() {
				dst = cand
				break
			}
		}
		if dst < 0 {
			e.replaceWithBenign(vs, termIdx, sp, slotIdx)
			idxs = sp.byCampaign[key]
			continue
		}
		sp.slots[slotIdx], sp.slots[dst] = sp.slots[dst], sp.slots[slotIdx]
		sp.slots[slotIdx].Rank = slotIdx
		sp.slots[dst].Rank = dst
		idxs[i] = dst
	}
}
