package searchsim

import (
	"testing"
	"testing/quick"

	"repro/internal/brands"
	"repro/internal/simclock"
)

// TestSlotAccountingProperty: after arbitrary advance sequences, every SERP
// still holds exactly SlotsPerTerm slots, the per-campaign index lists are
// consistent with the slot array, and no slot is double-owned.
func TestSlotAccountingProperty(t *testing.T) {
	wd := build(t, 0.02, 6, 40)
	check := func(daysRaw []uint8) bool {
		for _, d := range daysRaw {
			wd.eng.Advance(simclock.Day(d) % 245)
		}
		for _, v := range brands.All() {
			vs := wd.eng.verticals[v]
			for _, sp := range vs.serps {
				if len(sp.slots) != 40 {
					return false
				}
				owned := make(map[int]string)
				for key, idxs := range sp.byCampaign {
					for _, idx := range idxs {
						if idx < 0 || idx >= len(sp.slots) {
							return false
						}
						if prev, dup := owned[idx]; dup {
							t.Logf("slot %d owned by %s and %s", idx, prev, key)
							return false
						}
						owned[idx] = key
						s := sp.slots[idx]
						if !s.Poisoned() || s.Doorway.Campaign.Key() != key {
							return false
						}
					}
				}
				// Every poisoned slot must be indexed.
				var poisoned int
				for idx := range sp.slots {
					if sp.slots[idx].Poisoned() {
						poisoned++
					}
				}
				if poisoned != len(owned) {
					t.Logf("%d poisoned slots, %d indexed", poisoned, len(owned))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPoisonedCountsConsistentProperty: CountPoisoned agrees with a direct
// scan over EachSlot for any day.
func TestPoisonedCountsConsistentProperty(t *testing.T) {
	wd := build(t, 0.02, 5, 30)
	check := func(day uint8) bool {
		wd.eng.Advance(simclock.Day(day) % 245)
		for _, v := range brands.All() {
			pc := wd.eng.CountPoisoned(v)
			var top10, topN, slots int
			wd.eng.EachSlot(v, func(_, rank int, s *Slot) {
				slots++
				if s.Poisoned() {
					topN++
					if rank < 10 {
						top10++
					}
				}
			})
			if pc.TopNPoisoned != topN || pc.Top10Poisoned != top10 || pc.TopNSlots != slots {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
