package cli

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func parse(t *testing.T, args ...string) *StudyFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterStudyFlags(fs, 7, false)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDefaults(t *testing.T) {
	f := parse(t)
	if f.Seed() != 7 {
		t.Fatalf("seed = %d", f.Seed())
	}
	if f.FaultProfileName() != "off" {
		t.Fatalf("faults = %q", f.FaultProfileName())
	}
	fc, err := f.Faults()
	if err != nil || fc.Enabled() {
		t.Fatalf("default fault profile = %+v, %v", fc, err)
	}
	if f.Registry() != nil {
		t.Fatal("telemetry off must yield the nil (no-op) registry")
	}
}

func TestFaultProfileResolution(t *testing.T) {
	fc, err := parse(t, "-faults", "moderate").Faults()
	if err != nil || !fc.Enabled() {
		t.Fatalf("moderate = %+v, %v", fc, err)
	}
	if _, err := parse(t, "-faults", "bogus").Faults(); err == nil {
		t.Fatal("unknown profile must error")
	}
}

func TestTelemetryFlagYieldsStableRegistry(t *testing.T) {
	f := parse(t, "-telemetry")
	r := f.Registry()
	if r == nil {
		t.Fatal("-telemetry must yield a live registry")
	}
	if f.Registry() != r {
		t.Fatal("Registry must be stable across calls")
	}
}

func TestProgressImpliesTelemetry(t *testing.T) {
	f := parse(t, "-progress")
	if !f.TelemetryEnabled() || f.Registry() == nil {
		t.Fatal("-progress must imply a live registry")
	}
}

func TestEnableProgressReportsDays(t *testing.T) {
	reg := telemetry.New()
	var sb strings.Builder
	EnableProgress(reg, &sb)
	reg.Counter("core_slots_observed_total").Add(42)
	day := reg.Stage("day")
	day.Start(3, "").End()
	reg.Stage("observe").Start(3, "").End() // non-day spans must not print
	out := sb.String()
	if !strings.Contains(out, "day    3") || !strings.Contains(out, "slots=42") {
		t.Fatalf("progress line = %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("expected exactly one line, got %q", out)
	}
	EnableProgress(nil, &sb) // nil registry must be a no-op
}
