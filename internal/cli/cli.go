// Package cli is the flag plumbing the repo's commands share. Every
// study-running command takes the same -seed and -faults flags plus the
// observability switches -telemetry and -progress; registering them here
// keeps the spelling, defaults, help text and validation identical across
// binaries instead of drifting per-command.
package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// StudyFlags holds the shared flags after registration. Read the resolved
// values only after the owning FlagSet has been parsed.
type StudyFlags struct {
	seed      *uint64
	faultsArg *string
	telemetry *bool
	progress  *bool

	once sync.Once
	reg  *telemetry.Registry
}

// RegisterStudyFlags registers the shared study flags on fs:
//
//	-seed       study seed (defaultSeed)
//	-faults     fault-injection profile, validated by Faults()
//	-telemetry  collect runtime metrics and stage spans (defaultTelemetry)
//	-progress   live per-day stage reporter (implies -telemetry)
func RegisterStudyFlags(fs *flag.FlagSet, defaultSeed uint64, defaultTelemetry bool) *StudyFlags {
	f := &StudyFlags{}
	f.seed = fs.Uint64("seed", defaultSeed, "study seed (same seed => identical results)")
	f.faultsArg = fs.String("faults", "off",
		fmt.Sprintf("fault-injection profile for the crawl pipeline (%s)", strings.Join(faults.Profiles(), "|")))
	f.telemetry = fs.Bool("telemetry", defaultTelemetry,
		"collect runtime metrics and stage spans (see also -progress)")
	f.progress = fs.Bool("progress", false,
		"print a live per-day stage report to stderr (implies -telemetry)")
	return f
}

// Seed returns the parsed -seed value.
func (f *StudyFlags) Seed() uint64 { return *f.seed }

// FaultProfileName returns the raw -faults argument.
func (f *StudyFlags) FaultProfileName() string { return *f.faultsArg }

// Faults resolves the -faults profile name to its configuration; unknown
// names return the error commands should print and exit 2 on.
func (f *StudyFlags) Faults() (faults.Config, error) {
	return faults.Profile(*f.faultsArg)
}

// TelemetryEnabled reports whether any telemetry sink was requested
// (-telemetry, or -progress which needs one).
func (f *StudyFlags) TelemetryEnabled() bool { return *f.telemetry || *f.progress }

// ProgressEnabled reports whether -progress was set.
func (f *StudyFlags) ProgressEnabled() bool { return *f.progress }

// Registry returns the command's telemetry registry: a live registry when
// -telemetry or -progress was given, nil (the no-op sink) otherwise. The
// same registry is returned on every call.
func (f *StudyFlags) Registry() *telemetry.Registry {
	f.once.Do(func() {
		if f.TelemetryEnabled() {
			f.reg = telemetry.New()
		}
	})
	return f.reg
}

// EnableProgress installs the -progress live stage reporter on reg: one
// line per completed simulation day to w, with the day's wall time and the
// cumulative observed/lost slot counters. A nil reg is a no-op. The
// reporter only reads telemetry — it cannot perturb study results — but
// the span observer fires on the pipeline goroutine, so keep w cheap
// (stderr, a buffered file), not a blocking pipe.
func EnableProgress(reg *telemetry.Registry, w io.Writer) {
	if reg == nil {
		return
	}
	slots := reg.Counter("core_slots_observed_total")
	lost := reg.Counter("core_slots_lost_total")
	reg.SetSpanObserver(func(ev telemetry.SpanEvent) {
		if ev.Stage != "day" {
			return
		}
		fmt.Fprintf(w, "day %4d  %8.1fms  slots=%d lost=%d\n",
			ev.Day, float64(ev.Duration.Microseconds())/1000, slots.Value(), lost.Value())
	})
}
