// Package experiments regenerates every table and figure of the paper's
// evaluation from a completed study dataset, plus the validation numbers
// quoted in the text and the ablations DESIGN.md calls out. Each experiment
// returns a structured result whose String method renders the same rows or
// series the paper reports.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	// Run computes the result from a completed dataset.
	Run func(d *core.Dataset) fmt.Stringer
}

// All returns the experiment registry in the paper's order. Ablations that
// require running alternate worlds are listed separately (Ablations).
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: verticals monitored (PSRs, doorways, stores, campaigns)",
			func(d *core.Dataset) fmt.Stringer { return Table1(d) }},
		{"table2", "Table 2: classified campaigns (doorways, stores, brands, peak)",
			func(d *core.Dataset) fmt.Stringer { return Table2(d) }},
		{"table3", "Table 3: domain seizures by brand-protection firm",
			func(d *core.Dataset) fmt.Stringer { return Table3(d) }},
		{"fig2", "Figure 2: PSR attribution over time (4 verticals)",
			func(d *core.Dataset) fmt.Stringer { return Figure2(d) }},
		{"fig3", "Figure 3: % of search results poisoned per vertical",
			func(d *core.Dataset) fmt.Stringer { return Figure3(d) }},
		{"fig4", "Figure 4: PSR visibility vs order activity (4 campaigns)",
			func(d *core.Dataset) fmt.Stringer { return Figure4(d) }},
		{"fig5", "Figure 5: the coco*.com case study (PSRs, traffic, orders)",
			func(d *core.Dataset) fmt.Stringer { return Figure5(d) }},
		{"fig6", "Figure 6: PHP?P= order numbers under a domain seizure",
			func(d *core.Dataset) fmt.Stringer { return Figure6(d) }},
		{"classifier", "§4.2: campaign classifier accuracy and refinement",
			func(d *core.Dataset) fmt.Stringer { return Classifier(d) }},
		{"storedetect", "§4.1.3: storefront detection validation",
			func(d *core.Dataset) fmt.Stringer { return StoreDetect(d) }},
		{"terms", "§4.1.1: term-selection methodology comparison",
			func(d *core.Dataset) fmt.Stringer { return Terms(d) }},
		{"hackedlabels", "§5.2.2: hacked-label coverage and reaction time",
			func(d *core.Dataset) fmt.Stringer { return HackedLabels(d) }},
		{"seizurelife", "§5.3.2: seizure lifetimes and campaign reaction",
			func(d *core.Dataset) fmt.Stringer { return SeizureLife(d) }},
		{"supplier", "§4.5: supply-side shipment records",
			func(d *core.Dataset) fmt.Stringer { return Supplier(d) }},
		{"transactions", "§4.3.2: transaction probes and payment banks",
			func(d *core.Dataset) fmt.Stringer { return Transactions(d) }},
		{"cnc", "§3.1.2: C&C infiltration vs crawl coverage",
			func(d *core.Dataset) fmt.Stringer { return CnC(d) }},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table is a small fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func commas(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
