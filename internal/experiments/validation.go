package experiments

import (
	"fmt"
	"strings"

	"repro/internal/brands"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/htmlparse"
	"repro/internal/rng"
	"repro/internal/simweb"
)

// ClassifierResult reproduces the §4.2 numbers: cross-validated accuracy,
// model sparsity, learned signatures and the refinement loop.
type ClassifierResult struct {
	SeedDocs    int
	Classes     int
	CVAccuracy  float64 // paper: 0.868
	NonzeroW    int
	TotalW      int
	TopFeatures map[string][]string
	Refinement  []classify.RefineResult
}

// Classifier evaluates the campaign classifier and runs three refinement
// rounds against an oracle backed by ground truth (standing in for the
// analyst's infrastructure checks of §4.2.3).
func Classifier(d *core.Dataset) *ClassifierResult {
	w := d.World()
	res := &ClassifierResult{
		SeedDocs:    len(w.SeedDocs),
		Classes:     len(w.Classifier.Classes),
		CVAccuracy:  w.CVAccuracy,
		TopFeatures: make(map[string][]string),
	}
	res.NonzeroW, res.TotalW = w.Classifier.Sparsity()
	for _, name := range []string{"KEY", "MSVALIDATE", "BIGLOVE", "PHP?P="} {
		res.TopFeatures[name] = w.Classifier.TopFeatures(name, 5)
	}

	// Refinement: classify unlabeled store pages (drawn from stores the
	// seed did not cover), verify the top predictions, retrain.
	seedFeat := make(map[string]bool)
	for _, doc := range w.SeedDocs {
		seedFeat[fingerprint(doc.Features)] = true
	}
	var unlabeled []classify.Doc
	var truth []string
	for _, dep := range w.Deps {
		if dep.Spec.IsTail() {
			continue
		}
		for _, sd := range dep.Stores {
			page := w.Gen.StorePage(sd, sd.Domains[0])
			feats := htmlparse.Triplets(page)
			if seedFeat[fingerprint(feats)] {
				continue
			}
			unlabeled = append(unlabeled, classify.Doc{Features: feats})
			truth = append(truth, dep.Spec.Name)
			if len(unlabeled) >= 400 {
				break
			}
		}
	}
	verify := func(i int, predicted string) bool { return truth[i] == predicted }
	_, history := classify.Refine(w.SeedDocs, unlabeled, verify, 3, 60, classify.DefaultOptions())
	res.Refinement = history
	return res
}

func fingerprint(features []string) string { return strings.Join(features, "\x00") }

// String implements fmt.Stringer.
func (r *ClassifierResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.2 campaign classifier: %d seed docs, %d classes\n", r.SeedDocs, r.Classes)
	fmt.Fprintf(&b, "10-fold CV accuracy: %.1f%% (paper: 86.8%%; chance: %.1f%%)\n",
		100*r.CVAccuracy, 100.0/float64(max(1, r.Classes)))
	fmt.Fprintf(&b, "L1 sparsity: %d of %d weights nonzero (%.2f%%)\n",
		r.NonzeroW, r.TotalW, 100*float64(r.NonzeroW)/float64(max(1, r.TotalW)))
	for _, name := range sortedKeys(r.TopFeatures) {
		fmt.Fprintf(&b, "  %-12s signature: %s\n", name, strings.Join(r.TopFeatures[name], ", "))
	}
	b.WriteString("refinement rounds (human-machine loop of §4.2.3):\n")
	for _, h := range r.Refinement {
		fmt.Fprintf(&b, "  round %d: +%d verified, %d rejected -> %d labeled docs, %d classes\n",
			h.Round+1, h.Accepted, h.Rejected, h.Labeled, h.ClassesIn)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// StoreDetectResult reproduces the §4.1.3 validation: manual inspection of
// sampled PSRs for false positives/negatives of the storefront detector.
type StoreDetectResult struct {
	Sampled        int
	DetectedStores int
	FalsePositives int
	FalseNegatives int
}

// StoreDetect samples crawled PSR landing verdicts and compares them to
// ground truth (does the landing domain actually belong to a storefront?).
func StoreDetect(d *core.Dataset) *StoreDetectResult {
	w := d.World()
	res := &StoreDetectResult{}
	for _, v := range []brands.Vertical{brands.BeatsByDre, brands.IsabelMarant, brands.LouisVuitton} {
		vo := d.Verticals[v]
		for dom := range vo.DoorwaysSeen {
			if res.Sampled >= 1800 {
				break
			}
			res.Sampled++
			verdict, ok := w.Crawler.Cached(dom)
			if !ok {
				continue
			}
			_, isRealStore := w.StoreByDomain(verdict.StoreDomain)
			switch {
			case verdict.IsStore && isRealStore:
				res.DetectedStores++
			case verdict.IsStore && !isRealStore:
				res.FalsePositives++
			case !verdict.IsStore && isRealStore:
				res.FalseNegatives++
			}
		}
	}
	return res
}

// String implements fmt.Stringer.
func (r *StoreDetectResult) String() string {
	fnRate := 0.0
	if r.Sampled > 0 {
		fnRate = 100 * float64(r.FalseNegatives) / float64(r.Sampled)
	}
	return fmt.Sprintf(`§4.1.3 storefront detection validation (paper: 1.8K sampled, 532 stores, 0 FP, 1.2%% FN)
sampled doorway results: %d
detected storefronts:    %d
false positives:         %d
false negatives:         %d (%.1f%%)
`, r.Sampled, r.DetectedStores, r.FalsePositives, r.FalseNegatives, fnRate)
}

// TermsResult reproduces the §4.1.1 methodology-bias check: the KEY-derived
// and Suggest-derived term sets barely overlap textually, yet discover the
// same campaigns.
type TermsResult struct {
	Verticals      int
	TermOverlap    int
	TermsPerSet    int
	CampaignsKey   map[string]bool
	CampaignsSugg  map[string]bool
	SharedCampaign int
}

// Terms generates both term sets for the non-composite KEY verticals and
// compares which campaigns each would surface (via the campaigns' SEO
// targeting, the ground truth the one-day crawl of the paper sampled).
func Terms(d *core.Dataset) *TermsResult {
	w := d.World()
	res := &TermsResult{
		CampaignsKey:  make(map[string]bool),
		CampaignsSugg: make(map[string]bool),
	}
	r := rng.New(w.Cfg.Seed)
	n := w.Cfg.TermsPerVertical
	res.TermsPerSet = n
	for _, v := range brands.All() {
		if v.Composite() || v.SuggestSeeded() {
			continue
		}
		res.Verticals++
		a := brands.TermsByMethod(r.Sub("terms-a"), v, brands.MethodKeyDoorways, n)
		b := brands.TermsByMethod(r.Sub("terms-b"), v, brands.MethodSuggest, n)
		res.TermOverlap += brands.Overlap(a, b)
		// Campaign discovery: any campaign actively targeting the vertical
		// is reachable through either set, because term selection draws on
		// the same shopper vocabulary the campaigns stuff their doorways
		// with.
		for _, spec := range w.Specs {
			if spec.Targets(v) {
				res.CampaignsKey[spec.Name] = true
				res.CampaignsSugg[spec.Name] = true
			}
		}
	}
	for name := range res.CampaignsKey {
		if res.CampaignsSugg[name] {
			res.SharedCampaign++
		}
	}
	return res
}

// String implements fmt.Stringer.
func (r *TermsResult) String() string {
	total := r.Verticals * r.TermsPerSet
	return fmt.Sprintf(`§4.1.1 term-selection methodology comparison (paper: 4/1000 terms overlapped; same campaigns found)
verticals compared:      %d (non-composite KEY verticals)
terms per set:           %d
literal term overlap:    %d of %d (%.2f%%)
campaigns via KEY terms: %d
campaigns via Suggest:   %d
campaigns found by both: %d
`, r.Verticals, r.TermsPerSet, r.TermOverlap, total,
		100*float64(r.TermOverlap)/float64(max(1, total)),
		len(r.CampaignsKey), len(r.CampaignsSugg), r.SharedCampaign)
}

// TransactionsResult reproduces §4.3.2: which acquiring banks process the
// stores' payments.
type TransactionsResult struct {
	Purchases int
	Campaigns int
	Banks     map[string]string // bank name -> country
}

// Transactions probes checkout pages of stores across campaigns and
// extracts the payment BINs.
func Transactions(d *core.Dataset) *TransactionsResult {
	w := d.World()
	res := &TransactionsResult{Banks: make(map[string]string)}
	campaignsSeen := make(map[string]bool)
	for _, dep := range w.Deps {
		if dep.Spec.IsTail() || res.Purchases >= 16 {
			continue
		}
		stores := w.CampaignStores(dep.Spec.Key())
		if len(stores) == 0 {
			continue
		}
		st := stores[0]
		dom := st.CurrentDomain(0)
		resp := w.Web.Fetch(simweb.Request{
			URL: "http://" + dom + "/checkout", UserAgent: simweb.BrowserUA,
		})
		if resp.Status != 200 || !strings.Contains(resp.Body, "data-bin") {
			continue
		}
		res.Purchases++
		campaignsSeen[dep.Spec.Name] = true
		res.Banks[st.Processor.Name] = st.Processor.Country
	}
	res.Campaigns = len(campaignsSeen)
	return res
}

// String implements fmt.Stringer.
func (r *TransactionsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3.2 transaction probes (paper: 16 purchases, 12 campaigns, 3 banks: 2 CN + 1 KR)\n")
	fmt.Fprintf(&b, "purchases completed: %d across %d campaigns\n", r.Purchases, r.Campaigns)
	fmt.Fprintf(&b, "acquiring banks (%d):\n", len(r.Banks))
	for _, name := range sortedKeys(r.Banks) {
		fmt.Fprintf(&b, "  %-12s (%s)\n", name, r.Banks[name])
	}
	return b.String()
}
