package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cnc"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// CnCResult reproduces the §3.1.2 infiltration findings: enumerating a
// campaign's storefront roster from its command-and-control directive and
// comparing it with what the search crawl surfaced.
type CnCResult struct {
	Rows []CnCRow
}

// CnCRow is one infiltrated campaign.
type CnCRow struct {
	Campaign      string
	LiveStores    int // storefronts in the directive
	Brands        int
	CrawlSeen     int     // store domains the crawl observed for the campaign
	CrawlCoverage float64 // crawl-seen directive domains / directive size
	Err           string
}

// cncTargets are the campaigns the infiltration experiment taps: the big
// multi-brand operations (the paper's example shilled for 90+ storefronts
// across thirty brands).
var cncTargets = []string{"KEY", "BIGLOVE", "MSVALIDATE", "JSUS", "PHP?P="}

// CnC infiltrates each target campaign's C&C repeatedly across the study
// (as the paper did) and joins the union of its directives with the crawl's
// view. Repeated polls matter: a single snapshot can catch every store in
// its brief seized-awaiting-reaction window.
func CnC(d *core.Dataset) *CnCResult {
	w := d.World()
	sampleDays := []simclock.Day{
		simclock.Day(d.StudyDays / 8),
		simclock.Day(d.StudyDays / 4),
		simclock.Day(d.StudyDays / 2),
		simclock.Day(3 * d.StudyDays / 4),
		simclock.Day(d.StudyDays - 10),
	}
	res := &CnCResult{}
	for _, name := range cncTargets {
		row := CnCRow{Campaign: name}
		var key string
		for _, spec := range w.Specs {
			if spec.Name == name {
				key = spec.Key()
			}
		}
		domains := make(map[string]bool)
		brandSet := make(map[string]bool)
		var lastErr error
		var polled int
		for _, day := range sampleDays {
			dir, err := cnc.Infiltrate(w.Web, key, day)
			if err != nil {
				lastErr = err
				continue
			}
			polled++
			for _, e := range dir.Entries {
				domains[e.Domain] = true
				brandSet[e.Brand] = true
			}
		}
		if polled == 0 && lastErr != nil {
			row.Err = lastErr.Error()
			res.Rows = append(res.Rows, row)
			continue
		}
		row.LiveStores = len(domains)
		row.Brands = len(brandSet)
		if co := d.Campaigns[name]; co != nil {
			row.CrawlSeen = len(co.StoresSeen)
		}
		// Coverage: how many of the directive's domains has the crawl seen
		// behind PSRs (under any attribution)?
		var covered int
		for dom := range domains {
			if _, ok := d.StoreFirstSeen[dom]; ok {
				covered++
			}
		}
		if row.LiveStores > 0 {
			row.CrawlCoverage = float64(covered) / float64(row.LiveStores)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String implements fmt.Stringer.
func (r *CnCResult) String() string {
	var b strings.Builder
	b.WriteString("§3.1.2 C&C infiltration: campaign storefront rosters vs the crawl's view\n")
	b.WriteString("(paper: one campaign shilled for 90+ storefronts selling 30 brands; crawls see only the SEO'ed subset)\n\n")
	t := &table{header: []string{"Campaign", "Directive stores", "Brands", "Crawl saw", "Crawl coverage"}}
	for _, row := range r.Rows {
		if row.Err != "" {
			t.add(row.Campaign, "error", "-", "-", row.Err)
			continue
		}
		t.add(row.Campaign,
			fmt.Sprintf("%d", row.LiveStores),
			fmt.Sprintf("%d", row.Brands),
			fmt.Sprintf("%d", row.CrawlSeen),
			fmt.Sprintf("%.0f%%", 100*row.CrawlCoverage))
	}
	b.WriteString(t.String())
	return b.String()
}

// PaymentResult is the abl-payment counterfactual: what breaking one
// acquiring bank does to the ecosystem's order flow (§4.3.2: "payment
// processing is another viable area for interventions").
type PaymentResult struct {
	Bank            string
	Day             int
	BaseOrders      float64
	InterventionOrd float64
	AffectedStores  int
	TotalStores     int
	// AffectedAfter/BaseAfter compare only the post-intervention window.
	BaseAfter     float64
	InterventionA float64
}

// AblationPayment runs the study with and without the bank takedown.
func AblationPayment(base core.Config) *PaymentResult {
	withCfg := base
	withCfg.BreakBank = "realypay"
	withCfg.BreakBankDay = 100

	run := func(cfg core.Config) (total, after float64, affected, stores int) {
		w := core.NewWorld(cfg)
		w.Run()
		for _, st := range w.Stores {
			stores++
			if st.Processor.Name == withCfg.BreakBank {
				affected++
			}
			series := metrics.Series(st.OrderSeries())
			total += series.Sum()
			for day := withCfg.BreakBankDay; day < len(series); day++ {
				after += series[day]
			}
		}
		return total, after, affected, stores
	}
	res := &PaymentResult{Bank: withCfg.BreakBank, Day: withCfg.BreakBankDay}
	res.BaseOrders, res.BaseAfter, res.AffectedStores, res.TotalStores = run(base)
	res.InterventionOrd, res.InterventionA, _, _ = run(withCfg)
	return res
}

// String implements fmt.Stringer.
func (r *PaymentResult) String() string {
	drop := 0.0
	if r.BaseAfter > 0 {
		drop = 100 * (r.BaseAfter - r.InterventionA) / r.BaseAfter
	}
	return fmt.Sprintf(`ablation: payment-level intervention (break the %q acquiring bank on day %d)
(the paper identifies payment processing as a concentrated choke point: 3 banks served every probed store)
stores on the broken bank: %d of %d
ecosystem orders, no intervention:   %.0f (%.0f after day %d)
ecosystem orders, with intervention: %.0f (%.0f after day %d)
order loss in the post-intervention window: %.0f%%
`, r.Bank, r.Day, r.AffectedStores, r.TotalStores,
		r.BaseOrders, r.BaseAfter, r.Day,
		r.InterventionOrd, r.InterventionA, r.Day, drop)
}
