package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/brands"
	"repro/internal/core"
)

var (
	once sync.Once
	data *core.Dataset
)

func dataset(t *testing.T) *core.Dataset {
	t.Helper()
	once.Do(func() {
		cfg := core.TestConfig()
		data = core.NewWorld(cfg).Run()
	})
	return data
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig2", "fig3", "fig4",
		"fig5", "fig6", "classifier", "storedetect", "terms", "hackedlabels",
		"seizurelife", "supplier", "transactions", "cnc"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Fatalf("ByID(%s) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id resolved")
	}
	if len(Ablations()) != 5 {
		t.Fatalf("ablations = %d", len(Ablations()))
	}
	if _, ok := AblationByID("abl-l1"); !ok {
		t.Fatal("abl-l1 missing")
	}
}

func TestAllExperimentsRenderNonEmpty(t *testing.T) {
	d := dataset(t)
	for _, e := range All() {
		out := e.Run(d).String()
		if len(out) < 40 {
			t.Errorf("%s renders %d bytes", e.ID, len(out))
		}
		if strings.Contains(out, "%!") {
			t.Errorf("%s has a formatting bug:\n%s", e.ID, out)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	d := dataset(t)
	r := Table1(d)
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	tot := r.Totals(d)
	if tot.PSRs == 0 || tot.Doorways == 0 || tot.Stores == 0 {
		t.Fatalf("totals empty: %+v", tot)
	}
	// Heavy verticals must out-poison light ones, as in the paper.
	byV := map[brands.Vertical]Table1Row{}
	for _, row := range r.Rows {
		byV[row.Vertical] = row
	}
	if byV[brands.LouisVuitton].PSRs <= byV[brands.Clarisonic].PSRs {
		t.Fatalf("Louis Vuitton (%d) must out-poison Clarisonic (%d)",
			byV[brands.LouisVuitton].PSRs, byV[brands.Clarisonic].PSRs)
	}
	// Starred verticals are exactly the suggest-seeded three.
	var starred int
	for _, row := range r.Rows {
		if row.Starred {
			starred++
		}
	}
	if starred != 3 {
		t.Fatalf("starred = %d", starred)
	}
}

func TestTable2Shape(t *testing.T) {
	d := dataset(t)
	r := Table2(d)
	if len(r.Rows) == 0 {
		t.Fatal("no campaigns above cutoff")
	}
	names := map[string]Table2Row{}
	for _, row := range r.Rows {
		names[row.Name] = row
		if row.Doorways < r.Cutoff {
			t.Fatalf("%s below cutoff", row.Name)
		}
		if row.PeakDays <= 0 || row.PeakDays > d.StudyDays {
			t.Fatalf("%s peak days = %d", row.Name, row.PeakDays)
		}
	}
	if _, ok := names["KEY"]; !ok {
		t.Fatal("KEY missing from Table 2")
	}
	// KEY operates one of the largest doorway fleets.
	key := names["KEY"]
	var larger int
	for _, row := range r.Rows {
		if row.Doorways > key.Doorways {
			larger++
		}
	}
	if larger > 4 {
		t.Fatalf("KEY doorway fleet rank too low (%d larger)", larger)
	}
}

func TestTable3Shape(t *testing.T) {
	d := dataset(t)
	r := Table3(d)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	gbc, smgpa := r.Rows[0], r.Rows[1]
	if gbc.Cases != 69 || smgpa.Cases != 47 {
		t.Fatalf("cases = %d/%d, want 69/47", gbc.Cases, smgpa.Cases)
	}
	if gbc.Brands != 17 || smgpa.Brands != 11 {
		t.Fatalf("brands = %d/%d", gbc.Brands, smgpa.Brands)
	}
	if gbc.DomainsSeized <= smgpa.DomainsSeized {
		t.Fatal("GBC must seize more domains than SMGPA")
	}
	if gbc.ObservedStores == 0 {
		t.Fatal("no observed store seizures")
	}
	if gbc.ClassifiedStores > gbc.ObservedStores {
		t.Fatal("classified cannot exceed observed")
	}
}

func TestFigure2Shape(t *testing.T) {
	d := dataset(t)
	r := Figure2(d)
	if len(r.Panels) != 4 {
		t.Fatalf("panels = %d", len(r.Panels))
	}
	for _, p := range r.Panels {
		if p.ClassifiedShare <= 0 || p.ClassifiedShare > 1 {
			t.Fatalf("%s classified share = %v", p.Vertical, p.ClassifiedShare)
		}
		if len(p.Stack.Labels) == 0 {
			t.Fatalf("%s has no attribution layers", p.Vertical)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	d := dataset(t)
	r := Figure3(d)
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Top100.Max < row.Top10.Max-20 {
			t.Fatalf("%s: top100 max far below top10 max", row.Vertical)
		}
		if row.Top100.Min < 0 || row.Top10.Min < 0 {
			t.Fatalf("%s: negative poisoning rate", row.Vertical)
		}
	}
}

func TestFigure4KeyCollapse(t *testing.T) {
	d := dataset(t)
	r := Figure4(d)
	if len(r.Panels) != 4 {
		t.Fatalf("panels = %d", len(r.Panels))
	}
	var key *Figure4Panel
	for i := range r.Panels {
		if r.Panels[i].Campaign == "KEY" {
			key = &r.Panels[i]
		}
	}
	if key == nil {
		t.Fatal("KEY panel missing")
	}
	// KEY's orders stop shortly after its PSR collapse (§5.2.1): the rate
	// series must be near zero over the final two months of the study.
	var late float64
	for day := d.StudyDays - 60; day < d.StudyDays; day++ {
		late += key.Rate.At(day)
	}
	var early float64
	for day := 0; day < 60; day++ {
		early += key.Rate.At(day)
	}
	if early == 0 {
		t.Skip("KEY sampled no early orders at this scale")
	}
	if late > early/2 {
		t.Fatalf("KEY order rate early=%v late=%v; want collapse", early, late)
	}
}

func TestFigure4CorrelationPositive(t *testing.T) {
	d := dataset(t)
	r := Figure4(d)
	// At least two campaigns must show positive PSR/order correlation (the
	// paper's central observation).
	var positive int
	for i := range r.Panels {
		if r.Panels[i].Correlation() > 0.2 {
			positive++
		}
	}
	if positive < 2 {
		t.Fatalf("only %d campaigns show PSR/order correlation", positive)
	}
}

func TestFigure5CocoStory(t *testing.T) {
	d := dataset(t)
	r := Figure5(d)
	if r.StoreID == "" {
		t.Fatal("no coco store")
	}
	if len(r.Domains) != 3 || r.Domains[0] != "cocoviphandbags.com" {
		t.Fatalf("coco domains = %v", r.Domains)
	}
	if len(r.Epochs) < 2 {
		t.Fatalf("store never rotated: %+v", r.Epochs)
	}
	// Conversion rate near the paper's 0.7%.
	if r.Conversion < 0.002 || r.Conversion > 0.02 {
		t.Fatalf("conversion = %v", r.Conversion)
	}
	if r.PagesPerVis < 5 || r.PagesPerVis > 6.5 {
		t.Fatalf("pages/visit = %v", r.PagesPerVis)
	}
	if r.ReferrerCoverage <= 0 {
		t.Fatal("no referrer coverage")
	}
}

func TestFigure6SeizureReaction(t *testing.T) {
	d := dataset(t)
	r := Figure6(d)
	if len(r.Stores) != 4 {
		t.Fatalf("stores = %d", len(r.Stores))
	}
	labels := map[string]bool{}
	for _, fs := range r.Stores {
		labels[fs.Label] = true
		if len(fs.Samples) < 3 {
			t.Fatalf("%s has %d samples", fs.Label, len(fs.Samples))
		}
	}
	for _, want := range []string{"abercrombie[uk]", "abercrombie[de]", "hollister[uk]", "woolrich[de]"} {
		if !labels[want] {
			t.Fatalf("missing store %s (have %v)", want, labels)
		}
	}
	// Any seized store of PHP?P= must react within ~a day.
	for _, fs := range r.Stores {
		if fs.SeizedDay >= 0 && fs.ReactDay >= 0 {
			if delta := fs.ReactDay - fs.SeizedDay; delta > 3 {
				t.Fatalf("%s reacted after %d days; php?p= reacts within ~1", fs.Label, delta)
			}
		}
	}
}

func TestClassifierExperiment(t *testing.T) {
	d := dataset(t)
	r := Classifier(d)
	if r.Classes != 52 {
		t.Fatalf("classes = %d", r.Classes)
	}
	if r.CVAccuracy < 0.3 {
		t.Fatalf("cv accuracy = %v", r.CVAccuracy)
	}
	if r.NonzeroW == 0 || r.NonzeroW >= r.TotalW {
		t.Fatalf("sparsity = %d/%d", r.NonzeroW, r.TotalW)
	}
	if len(r.Refinement) == 0 {
		t.Fatal("no refinement rounds")
	}
}

func TestStoreDetectValidation(t *testing.T) {
	d := dataset(t)
	r := StoreDetect(d)
	if r.Sampled == 0 {
		t.Fatal("nothing sampled")
	}
	if r.FalsePositives > r.Sampled/50 {
		t.Fatalf("FP rate too high: %d/%d", r.FalsePositives, r.Sampled)
	}
	fnRate := float64(r.FalseNegatives) / float64(r.Sampled)
	if fnRate > 0.15 {
		t.Fatalf("FN rate = %v", fnRate)
	}
}

func TestTermsExperiment(t *testing.T) {
	d := dataset(t)
	r := Terms(d)
	if r.Verticals == 0 {
		t.Fatal("no verticals compared")
	}
	overlapRate := float64(r.TermOverlap) / float64(r.Verticals*r.TermsPerSet)
	if overlapRate > 0.08 {
		t.Fatalf("term overlap = %v, must be tiny", overlapRate)
	}
	if r.SharedCampaign != len(r.CampaignsKey) {
		t.Fatal("both methodologies must surface the same campaigns")
	}
}

func TestHackedLabelsExperiment(t *testing.T) {
	d := dataset(t)
	r := HackedLabels(d)
	if r.TotalPSRs == 0 {
		t.Fatal("no PSRs")
	}
	cov := r.CoveragePct()
	if cov <= 0 || cov > 25 {
		t.Fatalf("label coverage = %v%%; must be small but nonzero", cov)
	}
	if r.EligiblePSRs < r.LabeledPSRs {
		t.Fatal("eligible must include labeled")
	}
	if r.PolicyGainPct() <= 0 {
		t.Fatal("full-URL policy must gain coverage (root-only gap)")
	}
	if r.DelayMean < float64(10) || r.DelayMean > 40 {
		t.Fatalf("label delay mean = %v, want 13..32-ish", r.DelayMean)
	}
}

func TestSeizureLifeExperiment(t *testing.T) {
	d := dataset(t)
	r := SeizureLife(d)
	if len(r.Firms) != 2 {
		t.Fatalf("firms = %d", len(r.Firms))
	}
	for _, row := range r.Firms {
		if row.ObservedSeizures == 0 {
			t.Fatalf("%s observed nothing", row.FirmKey)
		}
		if row.LifetimeMean < 20 || row.LifetimeMean > 120 {
			t.Fatalf("%s lifetime = %v days", row.FirmKey, row.LifetimeMean)
		}
		if row.Redirected == 0 {
			t.Fatalf("%s: no campaign redirected after seizure", row.FirmKey)
		}
		if row.ReactionMean <= 0 || row.ReactionMean > 30 {
			t.Fatalf("%s reaction = %v days", row.FirmKey, row.ReactionMean)
		}
		// Only a small share of stores is ever seized (paper: 3.9%).
		if row.SeizedShare > 0.5 {
			t.Fatalf("%s seized share = %v", row.FirmKey, row.SeizedShare)
		}
	}
}

func TestSupplierExperiment(t *testing.T) {
	d := dataset(t)
	r := Supplier(d)
	if !r.ScrapeOK {
		t.Fatal("scrape failed")
	}
	if r.Records == 0 || r.Delivered == 0 {
		t.Fatalf("records = %d delivered = %d", r.Records, r.Delivered)
	}
	if float64(r.Delivered)/float64(r.Records) < 0.85 {
		t.Fatal("deliveries must dominate")
	}
	if r.SeizedDest <= r.SeizedSource {
		t.Fatal("destination seizures must dominate source seizures")
	}
	if r.TopRegionsShare < 0.7 {
		t.Fatalf("top regions share = %v", r.TopRegionsShare)
	}
}

func TestTransactionsExperiment(t *testing.T) {
	d := dataset(t)
	r := Transactions(d)
	if r.Purchases == 0 {
		t.Fatal("no purchases")
	}
	if len(r.Banks) == 0 || len(r.Banks) > 3 {
		t.Fatalf("banks = %d", len(r.Banks))
	}
	for _, country := range r.Banks {
		if country != "CN" && country != "KR" {
			t.Fatalf("unexpected bank country %s", country)
		}
	}
}

func TestCnCExperiment(t *testing.T) {
	d := dataset(t)
	r := CnC(d)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Err != "" {
			t.Fatalf("%s infiltration failed: %s", row.Campaign, row.Err)
		}
		if row.LiveStores == 0 || row.Brands == 0 {
			t.Fatalf("%s directive empty", row.Campaign)
		}
		if row.CrawlCoverage < 0 || row.CrawlCoverage > 1 {
			t.Fatalf("%s coverage = %v", row.Campaign, row.CrawlCoverage)
		}
	}
	// BIGLOVE is the paper's example of a large multi-brand operation.
	for _, row := range r.Rows {
		if row.Campaign == "BIGLOVE" && row.Brands < 2 {
			t.Fatalf("BIGLOVE brands = %d", row.Brands)
		}
	}
}

func TestAblationPayment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := core.TestConfig()
	cfg.TermsPerVertical = 4
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	r := AblationPayment(cfg)
	if r.AffectedStores == 0 {
		t.Fatal("no stores on the broken bank")
	}
	if r.InterventionA >= r.BaseAfter {
		t.Fatalf("breaking a bank must cut post-intervention orders: base=%v with=%v",
			r.BaseAfter, r.InterventionA)
	}
}

func TestCampaignSortedByPSRs(t *testing.T) {
	d := dataset(t)
	names := campaignSortedByPSRs(d)
	if len(names) != len(d.Campaigns) {
		t.Fatal("wrong count")
	}
	for i := 1; i < len(names); i++ {
		if d.Campaigns[names[i-1]].PSRTop100.Sum() < d.Campaigns[names[i]].PSRTop100.Sum() {
			t.Fatal("not sorted by PSRs")
		}
	}
}

func TestAblationLabelPolicyAndRegularizers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := core.TestConfig()
	cfg.TermsPerVertical = 4
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false

	lp := AblationLabelPolicy(cfg)
	if lp.Eligible < lp.Labeled {
		t.Fatal("eligible < labeled")
	}
	reg := AblationRegularizers(cfg)
	if len(reg.Rows) != 3 {
		t.Fatalf("rows = %d", len(reg.Rows))
	}
	var l1, none RegularizerRow
	for _, row := range reg.Rows {
		switch row.Reg {
		case 0:
			l1 = row
		case 2:
			none = row
		}
	}
	if l1.Nonzero >= none.Nonzero {
		t.Fatal("L1 must be sparser than unregularised")
	}
}

func TestAblationNoRender(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := core.TestConfig()
	cfg.TermsPerVertical = 4
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	r := AblationNoRender(cfg)
	if r.PSRsWithout >= r.PSRsWith {
		t.Fatalf("rendering must reveal more PSRs: with=%d without=%d",
			r.PSRsWith, r.PSRsWithout)
	}
	if r.IframeCampaignsWithout >= r.IframeCampaignsWith {
		t.Fatalf("iframe campaigns: with=%d without=%d",
			r.IframeCampaignsWith, r.IframeCampaignsWithout)
	}
}
