package experiments

import (
	"fmt"
	"strings"

	"repro/internal/brands"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// figure2Verticals are the four verticals the paper plots, chosen for
// their diversity in merchandise, campaigns and term methodology.
var figure2Verticals = []brands.Vertical{
	brands.Abercrombie, brands.BeatsByDre, brands.LouisVuitton, brands.Uggs,
}

// Figure2Result holds the stacked attribution series per vertical.
type Figure2Result struct {
	Panels []Figure2Panel
}

// Figure2Panel is one vertical's stacked-area data.
type Figure2Panel struct {
	Vertical        brands.Vertical
	ClassifiedShare float64 // fraction of PSR share attributed to campaigns
	Stack           *metrics.Stacked
	Penalized       metrics.Series
}

// Figure2 builds the attribution panels: the top campaigns per vertical,
// a "misc" bucket, the unknown remainder and the penalised share.
func Figure2(d *core.Dataset) *Figure2Result {
	res := &Figure2Result{}
	for _, v := range figure2Verticals {
		vo := d.Verticals[v]
		stack := vo.Attributed.TopLayers(6, "misc")
		var named, total float64
		for label, s := range vo.Attributed.Layers {
			total += s.Sum()
			if label != core.Unknown {
				named += s.Sum()
			}
		}
		share := 0.0
		if total > 0 {
			share = named / total
		}
		res.Panels = append(res.Panels, Figure2Panel{
			Vertical:        v,
			ClassifiedShare: share,
			Stack:           stack,
			Penalized:       vo.PenalizedPct,
		})
	}
	return res
}

// String renders each panel as labelled sparkline layers (the stacked area
// plot, linearised), matching the paper's reading: which campaigns hold
// which share of the vertical's results over time, and how much of the
// poisoning is penalised.
func (r *Figure2Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2: PSRs attributed to campaigns per vertical (paper classified shares: Abercrombie 64.2%, Beats 62.2%, Louis Vuitton 66%, Uggs 58%)\n")
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n[%s] classified share of PSRs: %.1f%%\n", p.Vertical, 100*p.ClassifiedShare)
		for _, label := range p.Stack.Labels {
			s := p.Stack.Layers[label]
			if s.Sum() == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-14s %s  (mean %.2f%% of slots)\n",
				label, metrics.Spark(s, 48).Glyphs, s.Mean())
		}
		fmt.Fprintf(&b, "  %-14s %s  (mean %.2f%% of slots)\n",
			"penalized", metrics.Spark(p.Penalized, 48).Glyphs, p.Penalized.Mean())
	}
	return b.String()
}

// Figure3Result holds the per-vertical poisoning sparklines.
type Figure3Result struct {
	Rows []Figure3Row
}

// Figure3Row is one vertical's pair of sparklines.
type Figure3Row struct {
	Vertical brands.Vertical
	Top10    metrics.Sparkline
	Top100   metrics.Sparkline
}

// Figure3 computes the study-window poisoning-rate summaries.
func Figure3(d *core.Dataset) *Figure3Result {
	res := &Figure3Result{}
	for _, v := range brands.All() {
		vo := d.Verticals[v]
		res.Rows = append(res.Rows, Figure3Row{
			Vertical: v,
			Top10:    metrics.Spark(vo.Top10PoisonedPct[:d.StudyDays], 24),
			Top100:   metrics.Spark(vo.Top100PoisonedPct[:d.StudyDays], 24),
		})
	}
	return res
}

// String implements fmt.Stringer in the paper's min/sparkline/max layout.
func (r *Figure3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: % of search results poisoned per vertical (left: top 10, right: top 100; min/max over the study)\n\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s  top10 %s   top100 %s\n",
			row.Vertical, row.Top10, row.Top100)
	}
	return b.String()
}

// figure4Campaigns are the campaigns of Figure 4.
var figure4Campaigns = []string{"KEY", "MOONKIS", "VERA", "PHP?P="}

// Figure4Result correlates PSR visibility with order activity.
type Figure4Result struct {
	Panels []Figure4Panel
}

// Figure4Panel is one campaign's column of graphs.
type Figure4Panel struct {
	Campaign    string
	Volume      metrics.Series // cumulative sampled order growth
	Rate        metrics.Series // estimated orders/day
	Top100      metrics.Series // PSRs/day across the top 100
	Top10       metrics.Series
	Labeled     metrics.Series // labeled PSRs/day (dark bars in the paper)
	VolumeTotal float64
	RateMax     float64
}

// Figure4 aggregates the purchase-pair estimates of each campaign's
// representative (sampled) stores against its PSR prevalence.
func Figure4(d *core.Dataset) *Figure4Result {
	w := d.World()
	res := &Figure4Result{}
	for _, name := range figure4Campaigns {
		co := d.Campaigns[name]
		p := Figure4Panel{Campaign: name,
			Volume:  metrics.NewSeries(d.SimDays),
			Rate:    metrics.NewSeries(d.SimDays),
			Top100:  metrics.NewSeries(d.SimDays),
			Top10:   metrics.NewSeries(d.SimDays),
			Labeled: metrics.NewSeries(d.SimDays),
		}
		if co != nil {
			copy(p.Top100, co.PSRTop100)
			copy(p.Top10, co.PSRTop10)
			copy(p.Labeled, co.LabeledPSRs)
		}
		// Representative stores: the campaign's sampled stores.
		var spec string
		for _, s := range w.Specs {
			if s.Name == name {
				spec = s.Key()
			}
		}
		for _, st := range w.CampaignStores(spec) {
			if os, ok := d.SampledOrders[st.ID()]; ok {
				for day := 0; day < d.SimDays; day++ {
					p.Rate[day] += os.Rates.At(day)
					p.Volume[day] += os.Volume.At(day)
				}
			}
		}
		p.VolumeTotal = p.Volume.Max()
		p.RateMax = p.Rate.Max()
		res.Panels = append(res.Panels, p)
	}
	return res
}

// String implements fmt.Stringer.
func (r *Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: store visibility in PSRs vs order activity (paper volume maxima: KEY 132, MOONKIS 1273, VERA 1742, PHP?P= 2107)\n")
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n[%s]\n", p.Campaign)
		fmt.Fprintf(&b, "  volume  %s  (max %.0f cumulative orders at sampled stores)\n",
			metrics.Spark(p.Volume, 48).Glyphs, p.VolumeTotal)
		fmt.Fprintf(&b, "  rate    %s  (max %.2f orders/day)\n",
			metrics.Spark(p.Rate, 48).Glyphs, p.RateMax)
		fmt.Fprintf(&b, "  top100  %s  (max %.0f PSRs/day)\n",
			metrics.Spark(p.Top100, 48).Glyphs, p.Top100.Max())
		fmt.Fprintf(&b, "  top10   %s  (max %.0f PSRs/day)\n",
			metrics.Spark(p.Top10, 48).Glyphs, p.Top10.Max())
		fmt.Fprintf(&b, "  labeled %s  (max %.0f labeled PSRs/day)\n",
			metrics.Spark(p.Labeled, 48).Glyphs, p.Labeled.Max())
	}
	return b.String()
}

// Correlation returns the Pearson correlation between a campaign's PSR
// top-100 prevalence and its estimated order rate — the headline
// relationship of §5.2.1.
func (p *Figure4Panel) Correlation() float64 {
	return pearson(p.Top100, p.Rate)
}

func pearson(a, b metrics.Series) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	ma, _ := metrics.MeanStddev(a[:n])
	mb, _ := metrics.MeanStddev(b[:n])
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / sqrt(va*vb)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 30; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// Figure5Result is the coco*.com case study.
type Figure5Result struct {
	StoreID     string
	Domains     []string
	Epochs      []EpochInfo
	Top100      metrics.Series
	Top10       metrics.Series
	Traffic     metrics.Series // daily HTML pages fetched by users
	Visits      metrics.Series
	Rate        metrics.Series
	Volume      metrics.Series
	SeizedDay   simclock.Day // day the abandoned first domain was seized (-1 if none)
	Conversion  float64      // orders per visit
	PagesPerVis float64
	// ReferrerCoverage is the fraction of AWStats referrer doorways our
	// crawl had independently observed (paper: 47.7%).
	ReferrerCoverage float64
	TotalVisits      int
}

// EpochInfo is one domain epoch of the rotating store.
type EpochInfo struct {
	Domain string
	From   simclock.Day
}

// Figure5 assembles the BIGLOVE Chanel-store case study from the watched
// PSR series, the store's (scraped) analytics and the purchase-pair
// estimates.
func Figure5(d *core.Dataset) *Figure5Result {
	w := d.World()
	stores := w.CampaignStores("biglove")
	if len(stores) == 0 {
		return &Figure5Result{SeizedDay: -1}
	}
	st := stores[0] // the scripted coco*.com store
	res := &Figure5Result{StoreID: st.ID(), SeizedDay: -1}
	for _, dom := range st.Dep.Domains {
		if strings.HasPrefix(dom, "coco") && strings.HasSuffix(dom, ".com") {
			res.Domains = append(res.Domains, dom)
		}
	}
	for _, e := range st.Epochs() {
		res.Epochs = append(res.Epochs, EpochInfo{Domain: e.Domain, From: e.From})
	}
	if ws := d.WatchedPSRs[st.ID()]; ws != nil {
		res.Top100 = ws.Top100
		res.Top10 = ws.Top10
	}
	snap := st.Snapshot()
	res.Traffic = snap.PageViews
	res.Visits = snap.Visits
	if os := d.SampledOrders[st.ID()]; os != nil {
		res.Rate = os.Rates
		res.Volume = os.Volume
	}
	// SeizedDay: the first coco domain's seizure, the event of §5.2.3.
	if len(res.Domains) > 0 {
		if day, ok := st.SeizedOn(res.Domains[0]); ok {
			res.SeizedDay = day
		}
	}
	visits := metrics.Series(snap.Visits).Sum()
	if visits > 0 {
		res.Conversion = metrics.Series(snap.Orders).Sum() / visits
		res.PagesPerVis = metrics.Series(snap.PageViews).Sum() / visits
	}
	res.TotalVisits = int(visits)
	// Referrer coverage: which of the store's referrer doorways did the
	// crawl independently see?
	var seen, total int
	for dom := range snap.Referrers {
		total++
		if _, ok := d.DoorFirstSeen[dom]; ok {
			seen++
		}
	}
	if total > 0 {
		res.ReferrerCoverage = float64(seen) / float64(total)
	}
	return res
}

// String implements fmt.Stringer.
func (r *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: the BIGLOVE counterfeit Chanel store rotating across coco*.com domains\n")
	fmt.Fprintf(&b, "store %s; scripted domains: %s\n", r.StoreID, strings.Join(r.Domains, " -> "))
	for _, e := range r.Epochs {
		fmt.Fprintf(&b, "  epoch: %-28s from day %d\n", e.Domain, e.From)
	}
	if r.SeizedDay >= 0 {
		abandoned := false
		for _, e := range r.Epochs {
			if len(r.Domains) > 0 && e.Domain != r.Domains[0] && e.From <= r.SeizedDay {
				// Some later epoch had already started by the seizure day.
				for _, e2 := range r.Epochs {
					if e2.Domain == r.Domains[0] && e2.From < e.From && e.From <= r.SeizedDay {
						abandoned = true
					}
				}
			}
		}
		if abandoned {
			fmt.Fprintf(&b, "  %s seized on day %d - after the campaign had already rotated away (no downtime)\n", r.Domains[0], r.SeizedDay)
		} else {
			fmt.Fprintf(&b, "  %s seized on day %d while live; the campaign re-pointed doorways to the next domain\n", r.Domains[0], r.SeizedDay)
		}
	}
	fmt.Fprintf(&b, "  top100  %s (max %.0f PSRs/day)\n", metrics.Spark(r.Top100, 48).Glyphs, r.Top100.Max())
	fmt.Fprintf(&b, "  top10   %s (max %.0f PSRs/day)\n", metrics.Spark(r.Top10, 48).Glyphs, r.Top10.Max())
	fmt.Fprintf(&b, "  traffic %s (max %.0f pages/day)\n", metrics.Spark(r.Traffic, 48).Glyphs, r.Traffic.Max())
	fmt.Fprintf(&b, "  volume  %s (max %.0f orders)\n", metrics.Spark(r.Volume, 48).Glyphs, r.Volume.Max())
	fmt.Fprintf(&b, "  rate    %s (max %.1f orders/day)\n", metrics.Spark(r.Rate, 48).Glyphs, r.Rate.Max())
	fmt.Fprintf(&b, "conversion: %.2f%% of %d visits (paper: 0.7%%); %.1f pages/visit (paper: 5.6); referrer doorways covered by crawl: %.1f%% (paper: 47.7%%)\n",
		100*r.Conversion, r.TotalVisits, r.PagesPerVis, 100*r.ReferrerCoverage)
	return b.String()
}

// Figure6Result is the PHP?P= seizure-reaction case study.
type Figure6Result struct {
	Stores []Figure6Store
}

// Figure6Store is one of the four international stores.
type Figure6Store struct {
	StoreID   string
	Label     string
	Samples   []OrderSample
	SeizedDay simclock.Day // -1 if never seized
	ReactDay  simclock.Day // -1 if no reaction observed
}

// OrderSample is one purchase-pair observation.
type OrderSample struct {
	Day     simclock.Day
	OrderNo int64
}

// Figure6 collects the order-number samples of the scripted PHP?P= stores
// alongside their seizure and reaction days.
func Figure6(d *core.Dataset) *Figure6Result {
	w := d.World()
	res := &Figure6Result{}
	stores := w.CampaignStores("php?p=")
	n := 4
	if len(stores) < n {
		n = len(stores)
	}
	for i := 0; i < n; i++ {
		st := stores[i]
		fs := Figure6Store{StoreID: st.ID(), Label: st.Dep.Label(), SeizedDay: -1, ReactDay: -1}
		if s := w.Sampler.Series(st.ID()); s != nil {
			for _, sm := range s.Samples {
				fs.Samples = append(fs.Samples, OrderSample{Day: sm.Day, OrderNo: sm.OrderNo})
			}
		}
		for _, sz := range d.Seizures {
			if sz.StoreID == st.ID() && fs.SeizedDay < 0 {
				fs.SeizedDay = sz.Day
			}
		}
		for _, rc := range d.Reactions {
			if rc.StoreID == st.ID() && fs.SeizedDay >= 0 && rc.Day >= fs.SeizedDay && fs.ReactDay < 0 {
				fs.ReactDay = rc.Day
			}
		}
		res.Stores = append(res.Stores, fs)
	}
	return res
}

// String implements fmt.Stringer.
func (r *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: PHP?P= order numbers at four international stores (paper: abercrombie[uk] seized 2014-02-09; doorways re-pointed within 24h)\n")
	for _, fs := range r.Stores {
		fmt.Fprintf(&b, "\n[%s] (%s)\n", fs.Label, fs.StoreID)
		if fs.SeizedDay >= 0 {
			fmt.Fprintf(&b, "  seized on day %d", fs.SeizedDay)
			if fs.ReactDay >= 0 {
				fmt.Fprintf(&b, "; campaign re-pointed doorways on day %d (+%d days)",
					fs.ReactDay, fs.ReactDay-fs.SeizedDay)
			}
			b.WriteByte('\n')
		}
		var prev int64
		for _, sm := range fs.Samples {
			delta := ""
			if prev != 0 {
				delta = fmt.Sprintf("  (+%d)", sm.OrderNo-prev)
			}
			fmt.Fprintf(&b, "  day %3d: order #%d%s\n", sm.Day, sm.OrderNo, delta)
			prev = sm.OrderNo
		}
	}
	return b.String()
}
