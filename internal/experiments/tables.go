package experiments

import (
	"fmt"
	"sort"

	"repro/internal/brands"
	"repro/internal/core"
	"repro/internal/intervention"
)

// Table1Result reproduces Table 1: per-vertical PSR, doorway, store and
// campaign counts over the crawl window.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one vertical's line.
type Table1Row struct {
	Vertical  brands.Vertical
	Starred   bool // KEY does not target this vertical (suggest-seeded)
	PSRs      int64
	Doorways  int
	Stores    int
	Campaigns int
}

// Table1 computes the verticals breakdown.
func Table1(d *core.Dataset) *Table1Result {
	res := &Table1Result{}
	for _, v := range brands.All() {
		vo := d.Verticals[v]
		res.Rows = append(res.Rows, Table1Row{
			Vertical:  v,
			Starred:   v.SuggestSeeded(),
			PSRs:      vo.PSRObservations,
			Doorways:  len(vo.DoorwaysSeen),
			Stores:    len(vo.StoresSeen),
			Campaigns: len(vo.CampaignsSeen),
		})
	}
	return res
}

// Totals sums the rows (campaign total is the distinct count, not a sum).
func (r *Table1Result) Totals(d *core.Dataset) Table1Row {
	var t Table1Row
	for _, row := range r.Rows {
		t.PSRs += row.PSRs
	}
	t.Doorways = d.TotalDoorways()
	t.Stores = d.TotalStores()
	t.Campaigns = len(d.Campaigns)
	return t
}

// String implements fmt.Stringer in the paper's layout.
func (r *Table1Result) String() string {
	t := &table{header: []string{"Vertical", "# PSRs", "# Doorways", "# Stores", "# Campaigns"}}
	for _, row := range r.Rows {
		name := row.Vertical.String()
		if row.Starred {
			name += "*"
		}
		t.add(name, commas(row.PSRs), commas(int64(row.Doorways)),
			commas(int64(row.Stores)), fmt.Sprintf("%d", row.Campaigns))
	}
	return "Table 1: verticals monitored (paper: 2,773,044 PSRs / 27,008 doorways / 7,484 stores / 52 campaigns)\n" +
		"(* = vertical not targeted by the KEY campaign)\n\n" + t.String()
}

// Table2Result reproduces Table 2: per-campaign infrastructure and peak
// poisoning duration, for campaigns above the doorway cutoff.
type Table2Result struct {
	Rows   []Table2Row
	Cutoff int
}

// Table2Row is one campaign's line.
type Table2Row struct {
	Name     string
	Doorways int
	Stores   int
	Brands   int
	PeakDays int
}

// Table2 computes the classified-campaign table. The doorway cutoff scales
// with the world (the paper used 25 at full scale).
func Table2(d *core.Dataset) *Table2Result {
	w := d.World()
	cutoff := int(25 * w.Cfg.Scale)
	if cutoff < 2 {
		cutoff = 2
	}
	res := &Table2Result{Cutoff: cutoff}
	for _, name := range sortedKeys(d.Campaigns) {
		co := d.Campaigns[name]
		if len(co.Doorways) < cutoff {
			continue
		}
		// Brands abused: distinct brands among the stores attributed to the
		// campaign.
		brandSet := make(map[string]bool)
		for dom := range co.StoresSeen {
			if st, ok := w.StoreByDomain(dom); ok {
				brandSet[st.Dep.Brand] = true
			}
		}
		_, _, peak := co.PSRTop100.PeakRange(0.6)
		res.Rows = append(res.Rows, Table2Row{
			Name:     name,
			Doorways: len(co.Doorways),
			Stores:   len(co.StoresSeen),
			Brands:   len(brandSet),
			PeakDays: peak,
		})
	}
	return res
}

// String implements fmt.Stringer.
func (r *Table2Result) String() string {
	t := &table{header: []string{"Campaign", "# Doorways", "# Stores", "# Brands", "Peak (days)"}}
	for _, row := range r.Rows {
		t.add(row.Name, fmt.Sprintf("%d", row.Doorways), fmt.Sprintf("%d", row.Stores),
			fmt.Sprintf("%d", row.Brands), fmt.Sprintf("%d", row.PeakDays))
	}
	return fmt.Sprintf("Table 2: classified campaigns with %d+ observed doorways (peak = shortest span holding 60%%+ of the campaign's PSRs; paper mean 51.3 days)\n\n%s",
		r.Cutoff, t.String())
}

// Table3Result reproduces Table 3: seizure activity per firm.
type Table3Result struct {
	Rows []Table3Row
}

// Table3Row is one firm's line.
type Table3Row struct {
	Firm             string
	Cases            int
	Brands           int
	DomainsSeized    int
	ObservedStores   int
	ClassifiedStores int
	Campaigns        int
}

// Table3 computes the per-firm seizure summary from the court cases and
// the crawl-observed subset.
func Table3(d *core.Dataset) *Table3Result {
	w := d.World()
	res := &Table3Result{}
	byFirm := w.Seizure.CasesByFirm()
	for _, firm := range intervention.Firms() {
		cases := byFirm[firm.Key]
		row := Table3Row{Firm: firm.Name, Cases: len(cases)}
		brandSet := make(map[string]bool)
		var domains int
		for _, c := range cases {
			brandSet[c.Brand] = true
			domains += len(c.Domains)
		}
		row.Brands = len(brandSet)
		row.DomainsSeized = domains
		campaigns := make(map[string]bool)
		seenStores := make(map[string]bool)
		for _, s := range d.Seizures {
			if s.FirmKey != firm.Key || !s.SeenInPSRs || s.StoreID == "" {
				continue
			}
			if seenStores[s.Domain] {
				continue
			}
			seenStores[s.Domain] = true
			row.ObservedStores++
			// "Classified": one of the store's domains was attributed to a
			// named campaign by the classifier.
			if name := attributedName(d, s.Domain); name != "" {
				row.ClassifiedStores++
				campaigns[name] = true
			}
		}
		row.Campaigns = len(campaigns)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// attributedName looks up which named campaign the crawl attributed a store
// domain to, if any.
func attributedName(d *core.Dataset, storeDomain string) string {
	for name, co := range d.Campaigns {
		if co.StoresSeen[storeDomain] {
			return name
		}
	}
	return ""
}

// String implements fmt.Stringer.
func (r *Table3Result) String() string {
	t := &table{header: []string{"Company", "# Cases", "# Brands", "# Seized",
		"# Stores", "# Classified", "# Campaigns"}}
	for _, row := range r.Rows {
		t.add(row.Firm, fmt.Sprintf("%d", row.Cases), fmt.Sprintf("%d", row.Brands),
			commas(int64(row.DomainsSeized)), fmt.Sprintf("%d", row.ObservedStores),
			fmt.Sprintf("%d", row.ClassifiedStores), fmt.Sprintf("%d", row.Campaigns))
	}
	return "Table 3: domain seizures initiated by brand holders, Feb 2012 - Jul 2014\n" +
		"(paper: GBC 69 cases / 17 brands / 31,819 seized / 214 stores / 40 classified / 17 campaigns;\n" +
		"        SMGPA 47 / 11 / 8,056 / 76 / 20 / 12)\n\n" + t.String()
}

// campaignSortedByPSRs orders campaign names by total observed PSRs.
func campaignSortedByPSRs(d *core.Dataset) []string {
	names := sortedKeys(d.Campaigns)
	sort.Slice(names, func(i, j int) bool {
		si := d.Campaigns[names[i]].PSRTop100.Sum()
		sj := d.Campaigns[names[j]].PSRTop100.Sum()
		if si != sj {
			return si > sj
		}
		return names[i] < names[j]
	})
	return names
}
