package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/supplier"
)

// SupplierResult reproduces §4.5: the scraped shipment records of the
// fulfilment partner.
type SupplierResult struct {
	Records         int
	Delivered       int
	SeizedSource    int
	SeizedDest      int
	Returned        int
	TopCountries    []CountryCount
	TopRegionsShare float64
	ScrapeOK        bool
}

// CountryCount pairs a destination with its order count.
type CountryCount struct {
	Country string
	Orders  int
}

// Supplier scrapes the supplier's tracking site through its bulk lookup
// interface (exactly as §4.5 did) and summarises the records.
func Supplier(d *core.Dataset) *SupplierResult {
	w := d.World()
	res := &SupplierResult{}
	recs, err := supplier.Scrape(w.Web, core.SupplierDomain)
	if err != nil {
		// Fall back to the generator's dataset if the site is unreachable.
		recs = w.Supplier.Records
	} else {
		res.ScrapeOK = true
	}
	ds := &supplier.Dataset{Records: recs}
	res.Records = len(recs)
	by := ds.ByStatus()
	res.Delivered = by[supplier.Delivered]
	res.SeizedSource = by[supplier.SeizedAtSource]
	res.SeizedDest = by[supplier.SeizedAtDestination]
	res.Returned = by[supplier.Returned]
	res.TopRegionsShare = ds.TopRegionsShare()
	counts := ds.ByCountry()
	for _, c := range []string{"US", "JP", "AU"} {
		res.TopCountries = append(res.TopCountries, CountryCount{c, counts[c]})
	}
	var we int
	for c, n := range counts {
		if supplier.WesternEurope[c] {
			we += n
		}
	}
	res.TopCountries = append(res.TopCountries, CountryCount{"W.Europe", we})
	return res
}

// String implements fmt.Stringer.
func (r *SupplierResult) String() string {
	var b strings.Builder
	b.WriteString("§4.5 supply-side shipments (paper: 279K records; 256K delivered, 4K seized at source, 15K at destination, 1,319 returned; US/JP/AU + W.Europe = 81%)\n")
	fmt.Fprintf(&b, "records scraped via bulk lookup: %s (scrape ok: %v)\n", commas(int64(r.Records)), r.ScrapeOK)
	fmt.Fprintf(&b, "delivered: %s   seized@source: %s   seized@destination: %s   returned: %s\n",
		commas(int64(r.Delivered)), commas(int64(r.SeizedSource)),
		commas(int64(r.SeizedDest)), commas(int64(r.Returned)))
	for _, cc := range r.TopCountries {
		fmt.Fprintf(&b, "  %-9s %s\n", cc.Country, commas(int64(cc.Orders)))
	}
	fmt.Fprintf(&b, "top regions share: %.1f%%\n", 100*r.TopRegionsShare)
	return b.String()
}
