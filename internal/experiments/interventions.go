package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
)

// HackedLabelsResult reproduces §5.2.2: the coverage and reaction time of
// the "This site may be hacked" warning.
type HackedLabelsResult struct {
	TotalPSRs      int64
	LabeledPSRs    int64
	EligiblePSRs   int64 // PSRs sharing a labeled root (full-URL policy gain)
	LabeledDomains int
	DelayMean      float64
	DelayMin       float64
	DelayMax       float64
}

// HackedLabels computes label coverage and detection delays from the
// crawled observations.
func HackedLabels(d *core.Dataset) *HackedLabelsResult {
	res := &HackedLabelsResult{}
	for _, vo := range d.Verticals {
		res.TotalPSRs += vo.PSRObservations
		res.LabeledPSRs += vo.LabeledObservations
		res.EligiblePSRs += vo.LabelEligible
	}
	// Walk labeled domains in sorted order: delays feeds MeanStddev, and
	// float accumulation is not associative — map-order iteration would
	// wobble the reported delay statistics between runs.
	doms := make([]string, 0, len(d.DoorLabeledOn))
	for dom := range d.DoorLabeledOn {
		doms = append(doms, dom)
	}
	sort.Strings(doms)
	var delays []float64
	lab := d.World().Labeler
	for _, dom := range doms {
		labeled := d.DoorLabeledOn[dom]
		res.LabeledDomains++
		// The detection clock runs from when the domain first presented a
		// labelable (root-dominant) profile. Mass-demotion labels have no
		// delay semantics and are excluded.
		first, ok := lab.DetectionArmedOn(dom)
		if !ok || labeled < first {
			continue
		}
		delays = append(delays, float64(labeled-first))
	}
	if len(delays) > 0 {
		res.DelayMean, _ = metrics.MeanStddev(delays)
		res.DelayMin = metrics.Quantile(delays, 0.05)
		res.DelayMax = metrics.Quantile(delays, 0.95)
	}
	return res
}

// CoveragePct returns the share of PSRs actually labeled.
func (r *HackedLabelsResult) CoveragePct() float64 {
	if r.TotalPSRs == 0 {
		return 0
	}
	return 100 * float64(r.LabeledPSRs) / float64(r.TotalPSRs)
}

// PolicyGainPct returns the additional share a full-URL (rather than
// root-only) policy would have labeled (the paper's +49%).
func (r *HackedLabelsResult) PolicyGainPct() float64 {
	if r.LabeledPSRs == 0 {
		return 0
	}
	return 100 * float64(r.EligiblePSRs-r.LabeledPSRs) / float64(r.LabeledPSRs)
}

// String implements fmt.Stringer.
func (r *HackedLabelsResult) String() string {
	return fmt.Sprintf(`§5.2.2 hacked-label coverage and reaction time
(paper: 2.5%% of PSRs labeled; root-only policy left +49%% unlabeled; delays 13-32 days)
PSR observations:            %s
labeled (root-only policy):  %s (%.2f%%)
eligible under full-URL:     %s (policy gain: +%.0f%%)
labeled doorway domains:     %d
label delay after first SEO: mean %.1f days (p5 %.0f - p95 %.0f)
`, commas(r.TotalPSRs), commas(r.LabeledPSRs), r.CoveragePct(),
		commas(r.EligiblePSRs), r.PolicyGainPct(),
		r.LabeledDomains, r.DelayMean, r.DelayMin, r.DelayMax)
}

// SeizureLifeResult reproduces §5.3: store lifetimes before seizure,
// campaign reaction times, and re-seizure of backup domains.
type SeizureLifeResult struct {
	Firms []SeizureFirmRow
}

// SeizureFirmRow is one firm's measured dynamics.
type SeizureFirmRow struct {
	FirmKey          string
	ObservedSeizures int
	LifetimeMean     float64 // days from first PSR sighting to seizure
	Redirected       int     // stores that re-pointed to a backup
	RedirectedAgain  int     // of those, seized again later
	ReactionMean     float64 // days from seizure to re-point
	SeizedShare      float64 // observed seizures / total stores seen
}

// SeizureLife joins the observed seizures with first-sighting days and the
// campaigns' reactions.
func SeizureLife(d *core.Dataset) *SeizureLifeResult {
	res := &SeizureLifeResult{}
	totalStores := d.TotalStores()
	// Per-store seizure count to detect re-seizure of backups.
	perStore := make(map[string]int)
	for _, s := range d.Seizures {
		if s.SeenInPSRs && s.StoreID != "" {
			perStore[s.StoreID]++
		}
	}
	for _, firmKey := range []string{"gbc", "smgpa"} {
		row := SeizureFirmRow{FirmKey: firmKey}
		var lifetimes, reactions []float64
		for _, s := range d.Seizures {
			if s.FirmKey != firmKey || !s.SeenInPSRs || s.StoreID == "" {
				continue
			}
			row.ObservedSeizures++
			if first, ok := d.StoreFirstSeen[s.Domain]; ok && s.Day >= first {
				lifetimes = append(lifetimes, float64(s.Day-first))
			}
			// Find the store's reaction after this seizure.
			for _, rc := range d.Reactions {
				if rc.StoreID == s.StoreID && rc.Day >= s.Day && float64(rc.Day-s.Day) <= 40 {
					row.Redirected++
					reactions = append(reactions, float64(rc.Day-s.Day))
					if perStore[s.StoreID] > 1 {
						row.RedirectedAgain++
					}
					break
				}
			}
		}
		row.LifetimeMean, _ = metrics.MeanStddev(lifetimes)
		row.ReactionMean, _ = metrics.MeanStddev(reactions)
		if totalStores > 0 {
			row.SeizedShare = float64(row.ObservedSeizures) / float64(totalStores)
		}
		res.Firms = append(res.Firms, row)
	}
	return res
}

// String implements fmt.Stringer.
func (r *SeizureLifeResult) String() string {
	var b strings.Builder
	b.WriteString("§5.3 seizure dynamics\n")
	b.WriteString("(paper: lifetimes 58-68d GBC / 48-56d SMGPA; reactions 7d / 15d; 130/214 and 57/76 redirected; 3.9% of stores ever seized)\n\n")
	t := &table{header: []string{"Firm", "Observed", "Lifetime (d)", "Redirected", "Re-seized", "Reaction (d)", "% of stores"}}
	for _, row := range r.Firms {
		t.add(strings.ToUpper(row.FirmKey),
			fmt.Sprintf("%d", row.ObservedSeizures),
			fmt.Sprintf("%.1f", row.LifetimeMean),
			fmt.Sprintf("%d", row.Redirected),
			fmt.Sprintf("%d", row.RedirectedAgain),
			fmt.Sprintf("%.1f", row.ReactionMean),
			fmt.Sprintf("%.1f%%", 100*row.SeizedShare))
	}
	b.WriteString(t.String())
	return b.String()
}
