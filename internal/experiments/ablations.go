package experiments

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Ablation is an experiment that re-runs (part of) the study under an
// alternate design choice. Ablations take a base config because they build
// their own worlds.
type Ablation struct {
	ID    string
	Title string
	Run   func(base core.Config) fmt.Stringer
}

// Ablations returns the design-choice studies DESIGN.md calls out.
func Ablations() []Ablation {
	return []Ablation{
		{"abl-render", "detection without rendering (Dagger-only vs +VanGogh)",
			func(cfg core.Config) fmt.Stringer { return AblationNoRender(cfg) }},
		{"abl-l1", "classifier regularisation: L1 vs L2 vs none",
			func(cfg core.Config) fmt.Stringer { return AblationRegularizers(cfg) }},
		{"abl-rootlabel", "root-only vs full-URL hacked labeling",
			func(cfg core.Config) fmt.Stringer { return AblationLabelPolicy(cfg) }},
		{"abl-reactive", "bulk periodic vs reactive seizures",
			func(cfg core.Config) fmt.Stringer { return AblationReactiveSeizure(cfg) }},
		{"abl-payment", "payment-level intervention (break one acquiring bank)",
			func(cfg core.Config) fmt.Stringer { return AblationPayment(cfg) }},
	}
}

// AblationByID returns the ablation with the given id.
func AblationByID(id string) (Ablation, bool) {
	for _, a := range Ablations() {
		if a.ID == id {
			return a, true
		}
	}
	return Ablation{}, false
}

// NoRenderResult quantifies the iframe-cloaking blind spot of diff-only
// detection (§3.1.1's motivation for VanGogh).
type NoRenderResult struct {
	PSRsWith    int64
	PSRsWithout int64
	// IframeCampaignsWith/Without count iframe-cloaking campaigns detected.
	IframeCampaignsWith    int
	IframeCampaignsWithout int
}

// AblationNoRender runs the study twice — with and without the rendering
// crawler — and compares what detection sees.
func AblationNoRender(base core.Config) *NoRenderResult {
	with := base
	with.VanGogh = true
	without := base
	without.VanGogh = false
	without.RenderOnDagger = false

	dWith := core.NewWorld(with).Run()
	dWithout := core.NewWorld(without).Run()

	count := func(d *core.Dataset) (int64, int) {
		var iframeCampaigns int
		for name := range d.Campaigns {
			if spec, ok := d.GroundTruthSpec(name); ok && spec.Cloaking == campaign.IframeCloaking {
				iframeCampaigns++
			}
		}
		return d.TotalPSRs(), iframeCampaigns
	}
	res := &NoRenderResult{}
	res.PSRsWith, res.IframeCampaignsWith = count(dWith)
	res.PSRsWithout, res.IframeCampaignsWithout = count(dWithout)
	return res
}

// String implements fmt.Stringer.
func (r *NoRenderResult) String() string {
	missed := 0.0
	if r.PSRsWith > 0 {
		missed = 100 * float64(r.PSRsWith-r.PSRsWithout) / float64(r.PSRsWith)
	}
	return fmt.Sprintf(`ablation: diff-only detection vs rendering (VanGogh)
PSRs with rendering:        %s
PSRs without rendering:     %s  (%.1f%% of PSRs invisible without rendering)
iframe campaigns detected:  %d with rendering, %d without
`, commas(r.PSRsWith), commas(r.PSRsWithout), missed,
		r.IframeCampaignsWith, r.IframeCampaignsWithout)
}

// RegularizerResult compares penalties on the classification task.
type RegularizerResult struct {
	Rows []RegularizerRow
}

// RegularizerRow is one penalty's outcome.
type RegularizerRow struct {
	Reg        classify.Regularizer
	CVAccuracy float64
	Nonzero    int
	Total      int
}

// AblationRegularizers trains the campaign classifier under L1, L2 and no
// regularisation on the same corpus (§4.2.2's choice of L1 for sparse,
// interpretable models).
func AblationRegularizers(base core.Config) *RegularizerResult {
	w := core.NewWorld(base)
	res := &RegularizerResult{}
	for _, reg := range []classify.Regularizer{classify.L1, classify.L2, classify.NoReg} {
		opts := classify.DefaultOptions()
		opts.Reg = reg
		acc := classify.CrossValidate(w.SeedDocs, 10, opts)
		m := classify.Train(w.SeedDocs, opts)
		nz, tot := m.Sparsity()
		res.Rows = append(res.Rows, RegularizerRow{Reg: reg, CVAccuracy: acc, Nonzero: nz, Total: tot})
	}
	return res
}

// String implements fmt.Stringer.
func (r *RegularizerResult) String() string {
	t := &table{header: []string{"Penalty", "10-fold CV acc", "Nonzero weights", "Sparsity"}}
	for _, row := range r.Rows {
		t.add(row.Reg.String(),
			fmt.Sprintf("%.1f%%", 100*row.CVAccuracy),
			fmt.Sprintf("%d / %d", row.Nonzero, row.Total),
			fmt.Sprintf("%.1f%%", 100*float64(row.Nonzero)/float64(max(1, row.Total))))
	}
	return "ablation: classifier regularisation (the paper uses L1 for interpretable sparse signatures)\n\n" + t.String()
}

// LabelPolicyResult quantifies the root-only labeling policy cost from the
// observational data (no re-run needed: eligibility was recorded).
type LabelPolicyResult struct {
	Labeled  int64
	Eligible int64
	GainPct  float64
}

// AblationLabelPolicy compares coverage under the root-only policy with the
// counterfactual full-URL policy (§5.2.2: 68,193 labeled vs 102,104
// labelable, +49%).
func AblationLabelPolicy(base core.Config) *LabelPolicyResult {
	d := core.NewWorld(base).Run()
	hl := HackedLabels(d)
	return &LabelPolicyResult{
		Labeled:  hl.LabeledPSRs,
		Eligible: hl.EligiblePSRs,
		GainPct:  hl.PolicyGainPct(),
	}
}

// String implements fmt.Stringer.
func (r *LabelPolicyResult) String() string {
	return fmt.Sprintf(`ablation: root-only vs full-URL hacked labeling (paper: +49%% more results labelable)
labeled under root-only policy:  %s
labelable under full-URL policy: %s
coverage gain:                   +%.0f%%
`, commas(r.Labeled), commas(r.Eligible), r.GainPct)
}

// ReactiveSeizureResult compares store lifetimes under bulk periodic vs
// reactive seizure strategies.
type ReactiveSeizureResult struct {
	BulkLifetime     float64
	ReactiveLifetime float64
	BulkSeized       int
	ReactiveSeized   int
	BulkOrders       float64
	ReactiveOrders   float64
}

// AblationReactiveSeizure runs the study under both seizure postures and
// compares how long stores survive and how many orders the ecosystem books.
func AblationReactiveSeizure(base core.Config) *ReactiveSeizureResult {
	bulk := base
	bulk.ReactiveSeizures = false
	reactive := base
	reactive.ReactiveSeizures = true

	run := func(cfg core.Config) (float64, int, float64) {
		w := core.NewWorld(cfg)
		d := w.Run()
		var lifetimes []float64
		var seized int
		for _, s := range d.Seizures {
			if !s.SeenInPSRs || s.StoreID == "" {
				continue
			}
			seized++
			if first, ok := d.StoreFirstSeen[s.Domain]; ok && s.Day >= first {
				lifetimes = append(lifetimes, float64(s.Day-first))
			}
		}
		mean, _ := metrics.MeanStddev(lifetimes)
		var orders float64
		for _, st := range w.Stores {
			for _, o := range st.OrderSeries() {
				orders += o
			}
		}
		return mean, seized, orders
	}
	res := &ReactiveSeizureResult{}
	res.BulkLifetime, res.BulkSeized, res.BulkOrders = run(bulk)
	res.ReactiveLifetime, res.ReactiveSeized, res.ReactiveOrders = run(reactive)
	return res
}

// String implements fmt.Stringer.
func (r *ReactiveSeizureResult) String() string {
	var b strings.Builder
	b.WriteString("ablation: bulk periodic vs reactive seizures (§5.3 argues current practice is too slow and too sparse)\n\n")
	t := &table{header: []string{"Posture", "Observed seizures", "Store lifetime (d)", "Ecosystem orders"}}
	t.add("bulk (paper)", fmt.Sprintf("%d", r.BulkSeized),
		fmt.Sprintf("%.1f", r.BulkLifetime), fmt.Sprintf("%.0f", r.BulkOrders))
	t.add("reactive", fmt.Sprintf("%d", r.ReactiveSeized),
		fmt.Sprintf("%.1f", r.ReactiveLifetime), fmt.Sprintf("%.0f", r.ReactiveOrders))
	b.WriteString(t.String())
	return b.String()
}
