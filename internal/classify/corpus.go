package classify

import (
	"repro/internal/campaign"
	"repro/internal/htmlgen"
	"repro/internal/htmlparse"
	"repro/internal/rng"
)

// CorpusOptions controls labeled-corpus generation.
type CorpusOptions struct {
	// DoorwaysPerCampaign adds that many doorway crawler pages per
	// campaign alongside the storefront pages.
	DoorwaysPerCampaign int
	// GenericShare is the fraction of store pages rendered from a stock
	// template with the campaign's kit markers stripped — the pages that
	// make classification genuinely hard (campaigns sometimes deploy
	// unmodified Zen Cart/Magento themes).
	GenericShare float64
}

// DefaultCorpusOptions mirrors the ambiguity level that yields held-out
// accuracy in the high-80s, as the paper observed.
func DefaultCorpusOptions() CorpusOptions {
	return CorpusOptions{DoorwaysPerCampaign: 2, GenericShare: 0.10}
}

// BuildCorpus renders one document per deployed store (plus sampled
// doorway pages) and extracts triplet features, labeled with the owning
// campaign — the ground truth the classifier is trained and validated on.
func BuildCorpus(r *rng.Source, gen *htmlgen.Generator, deps []*campaign.Deployment, opts CorpusOptions) []Doc {
	cr := r.Sub("corpus")
	var docs []Doc
	for _, dep := range deps {
		for _, sd := range dep.Stores {
			var page string
			if cr.Bool(opts.GenericShare) {
				page = gen.StorePage(genericClone(sd), sd.Domains[0])
			} else {
				page = gen.StorePage(sd, sd.Domains[0])
			}
			docs = append(docs, Doc{
				Features: htmlparse.Triplets(page),
				Label:    dep.Spec.Name,
			})
		}
		terms := []string{"cheap goods online", "brand outlet", "discount store"}
		for i := 0; i < opts.DoorwaysPerCampaign && i < len(dep.Doorways); i++ {
			page := gen.DoorwayCrawlerPage(dep.Doorways[i], terms)
			docs = append(docs, Doc{
				Features: htmlparse.Triplets(page),
				Label:    dep.Spec.Name,
			})
		}
	}
	return docs
}

// genericClone returns the store deployment re-homed under a campaign
// clone whose kit signature has been wiped, leaving only platform markup.
func genericClone(sd *campaign.StoreDeployment) *campaign.StoreDeployment {
	spec := *sd.Campaign
	spec.Signature = campaign.Signature{}
	clone := *sd
	clone.Campaign = &spec
	return &clone
}
