package classify

import "repro/internal/htmlparse"

func tripletsHelper(page string) []string { return htmlparse.Triplets(page) }
