package classify

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/htmlgen"
	"repro/internal/rng"
	"repro/internal/simclock"
)

func corpus(t testing.TB, scale float64) []Doc {
	t.Helper()
	r := rng.New(71)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, scale)
	gen := htmlgen.New(r)
	return BuildCorpus(r, gen, deps, DefaultCorpusOptions())
}

func quickOpts() Options {
	o := DefaultOptions()
	o.Epochs = 25
	return o
}

func TestTrainPredictSeparatesCampaigns(t *testing.T) {
	docs := corpus(t, 0.05)
	m := Train(docs, quickOpts())
	if len(m.Classes) != 52 {
		t.Fatalf("classes = %d, want 52", len(m.Classes))
	}
	// Training accuracy must be high.
	var correct int
	for _, d := range docs {
		if m.Predict(d.Features).Label == d.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(len(docs))
	if acc < 0.85 {
		t.Fatalf("training accuracy = %v", acc)
	}
}

func TestCrossValidationAccuracyInPaperRange(t *testing.T) {
	docs := corpus(t, 0.22)
	acc := CrossValidate(docs, 10, quickOpts())
	// The paper reports 86.8% for 52-way classification; demand the same
	// regime: far above chance (1/52 ≈ 2%), below perfect.
	if acc < 0.70 {
		t.Fatalf("10-fold CV accuracy = %v, want >= 0.70", acc)
	}
	if acc >= 0.995 {
		t.Fatalf("10-fold CV accuracy = %v; corpus too separable to be realistic", acc)
	}
	t.Logf("10-fold CV accuracy: %.3f (paper: 0.868)", acc)
}

func TestL1ProducesSparseModels(t *testing.T) {
	docs := corpus(t, 0.03)
	l1 := Train(docs, quickOpts())
	o := quickOpts()
	o.Reg = NoReg
	dense := Train(docs, o)
	nz1, tot1 := l1.Sparsity()
	nzD, _ := dense.Sparsity()
	if nz1 >= nzD {
		t.Fatalf("L1 nonzeros (%d) must be below unregularised (%d)", nz1, nzD)
	}
	if nz1 == 0 || tot1 == 0 {
		t.Fatal("degenerate model")
	}
	frac := float64(nz1) / float64(tot1)
	if frac > 0.5 {
		t.Fatalf("L1 model not sparse: %.2f nonzero", frac)
	}
}

func TestTopFeaturesRecoverSignatures(t *testing.T) {
	docs := corpus(t, 0.05)
	m := Train(docs, quickOpts())
	// The MSVALIDATE campaign's signature marker should be among its most
	// strongly weighted features.
	top := m.TopFeatures("MSVALIDATE", 25)
	var found bool
	for _, f := range top {
		if strings.Contains(f, "msvalidate") || strings.Contains(f, "msv") {
			found = true
		}
	}
	if !found {
		t.Fatalf("MSVALIDATE top features lack its marker: %v", top)
	}
	if m.TopFeatures("NOSUCH", 5) != nil {
		t.Fatal("unknown class must yield nil")
	}
}

func TestPredictProbabilities(t *testing.T) {
	docs := corpus(t, 0.03)
	m := Train(docs, quickOpts())
	p := m.Predict(docs[0].Features)
	if p.Prob <= 0 || p.Prob > 1 {
		t.Fatalf("prob = %v", p.Prob)
	}
}

func TestCrossValidateDegenerateInputs(t *testing.T) {
	if CrossValidate(nil, 10, quickOpts()) != 0 {
		t.Fatal("empty corpus must CV to 0")
	}
	docs := corpus(t, 0.01)
	if CrossValidate(docs[:3], 10, quickOpts()) != 0 {
		t.Fatal("fewer docs than folds must CV to 0")
	}
}

func TestVocabDeterministic(t *testing.T) {
	docs := corpus(t, 0.02)
	a, b := BuildVocab(docs), BuildVocab(docs)
	if a.Size() != b.Size() {
		t.Fatal("vocab size nondeterministic")
	}
	for i := 0; i < a.Size(); i++ {
		if a.Term(i) != b.Term(i) {
			t.Fatal("vocab order nondeterministic")
		}
	}
}

func TestTrainDeterministicAcrossWorkerCounts(t *testing.T) {
	docs := corpus(t, 0.02)
	o1 := quickOpts()
	o1.Workers = 1
	o8 := quickOpts()
	o8.Workers = 8
	m1, m8 := Train(docs, o1), Train(docs, o8)
	for _, d := range docs[:20] {
		if m1.Predict(d.Features).Label != m8.Predict(d.Features).Label {
			t.Fatal("prediction depends on worker count")
		}
	}
}

func TestRefinementGrowsTrainingSet(t *testing.T) {
	docs := corpus(t, 0.22)
	// Seed with a third of the corpus; the rest is "unlabeled" with ground
	// truth held by the oracle.
	var seed, unlabeled []Doc
	var truth []string
	for i, d := range docs {
		if i%3 == 0 {
			seed = append(seed, d)
		} else {
			unlabeled = append(unlabeled, Doc{Features: d.Features})
			truth = append(truth, d.Label)
		}
	}
	verify := func(i int, predicted string) bool { return truth[i] == predicted }
	model, history := Refine(seed, unlabeled, verify, 3, 60, quickOpts())
	if len(history) == 0 {
		t.Fatal("no refinement rounds")
	}
	last := history[len(history)-1]
	if last.Labeled <= len(seed) {
		t.Fatalf("training set did not grow: %d", last.Labeled)
	}
	if last.Accepted == 0 && history[0].Accepted == 0 {
		t.Fatal("no predictions verified")
	}
	// High-confidence predictions should mostly be right.
	accepted, rejected := 0, 0
	for _, h := range history {
		accepted += h.Accepted
		rejected += h.Rejected
	}
	if accepted <= rejected {
		t.Fatalf("refinement unreliable: %d accepted, %d rejected", accepted, rejected)
	}
	if model == nil {
		t.Fatal("no final model")
	}
}

func TestRegularizerString(t *testing.T) {
	if L1.String() != "l1" || L2.String() != "l2" || NoReg.String() != "none" {
		t.Fatal("names changed")
	}
}

func BenchmarkTrain(b *testing.B) {
	docs := corpus(b, 0.05)
	o := quickOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(docs, o)
	}
}

func BenchmarkPredict(b *testing.B) {
	docs := corpus(b, 0.05)
	m := Train(docs, quickOpts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(docs[i%len(docs)].Features)
	}
}
